// Scenario: a mapping team has to pick a map matcher for sparse probe
// data. This example pits the classical stack (Nearest, HMM, FMM, LHMM)
// against the paper's MMA on the same city, reporting quality and speed —
// the decision table a practitioner actually wants.
//
//   ./examples/map_matching_comparison [num_trajectories]
#include <cstdio>
#include <cstdlib>

#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace trmma;
  const int count = argc > 1 ? std::atoi(argv[1]) : 800;

  std::printf("Building city with %d trajectories...\n", count);
  Dataset dataset = std::move(BuildCityDatasetByName("CD", count).value());
  StackConfig config;
  ExperimentStack stack = BuildStack(dataset, config);

  std::printf("Training learned matchers...\n");
  TrainLhmm(stack, 3);
  TrainStats mma_stats;
  for (int epoch = 0; epoch < 8; ++epoch) mma_stats = TrainMma(stack, 1);
  std::printf("  MMA final loss %.4f, %.2fs/epoch\n", mma_stats.final_loss,
              mma_stats.seconds_per_epoch);

  std::printf("\n%-10s %8s %8s %8s %10s %12s\n", "method", "Prec%", "Recall%",
              "F1%", "Jaccard%", "s/1k traj");
  std::vector<MapMatcher*> methods = {stack.nearest.get(), stack.hmm.get(),
                                      stack.fmm.get(), stack.lhmm.get(),
                                      stack.mma.get()};
  for (MapMatcher* matcher : methods) {
    MapMatchEval ev = EvaluateMapMatching(stack, *matcher, 150);
    std::printf("%-10s %8.2f %8.2f %8.2f %10.2f %12.3f\n",
                matcher->name().c_str(), 100 * ev.metrics.precision,
                100 * ev.metrics.recall, 100 * ev.metrics.f1,
                100 * ev.metrics.jaccard, ev.seconds_per_1000);
  }

  std::printf(
      "\nReading the table: MMA should lead every quality column (the\n"
      "paper's Table V shape); FMM/LHMM show what the UBODT buys over\n"
      "plain HMM in the time column.\n");
  return 0;
}
