// Scenario: persisting and inspecting datasets. Generates a city, saves it
// to disk in the text format of traj/dataset.h, reloads it, verifies the
// round trip, and prints summary statistics like the paper's Table II.
//
//   ./examples/dataset_tooling [output_path]
#include <cstdio>
#include <string>

#include "traj/dataset.h"
#include "gen/presets.h"

int main(int argc, char** argv) {
  using namespace trmma;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/trmma_example_dataset.txt";

  std::printf("Generating the four city presets (small versions)...\n\n");
  std::printf("%-10s %10s %8s %10s %10s %10s\n", "dataset", "traj", "eps(s)",
              "avg pts", "avg len(m)", "segments");
  for (const std::string& city : CityNames()) {
    Dataset ds = std::move(BuildCityDatasetByName(city, 120).value());
    double pts = 0.0;
    double len = 0.0;
    for (const auto& s : ds.samples) {
      pts += s.raw.size();
      len += RouteLength(*ds.network, s.route);
    }
    std::printf("%-10s %10zu %8.0f %10.1f %10.0f %10d\n", city.c_str(),
                ds.samples.size(), ds.epsilon_s, pts / ds.samples.size(),
                len / ds.samples.size(), ds.network->num_segments());
  }

  std::printf("\nSaving XA to %s ...\n", path.c_str());
  Dataset ds = std::move(BuildCityDatasetByName("XA", 120).value());
  Status save = SaveDataset(ds, path);
  if (!save.ok()) {
    std::printf("save failed: %s\n", save.ToString().c_str());
    return 1;
  }
  auto loaded = LoadDataset(path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Reloaded: %zu trajectories on %d segments — round trip OK\n",
              loaded.value().samples.size(),
              loaded.value().network->num_segments());
  return 0;
}
