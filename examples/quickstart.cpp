// Quickstart: the full TRMMA pipeline in ~60 lines.
//
// 1. Generate a synthetic city and taxi trajectories (stand-in for the
//    paper's Porto/Xi'an/Beijing/Chengdu data; see DESIGN.md).
// 2. Build the experiment stack (R-tree, UBODT, route planner, models).
// 3. Train MMA (map matching) and TRMMA (trajectory recovery).
// 4. Map-match one sparse trajectory and recover its dense version.
//
//   ./examples/quickstart
#include <cstdio>

#include "eval/experiment.h"

int main() {
  using namespace trmma;

  // 1. A small city with 400 simulated trips, sparse inputs at gamma=0.1.
  std::printf("Generating synthetic city + trajectories...\n");
  Dataset dataset = std::move(BuildCityDatasetByName("XA", 400).value());
  std::printf("  network: %d intersections, %d segments; %zu trajectories\n",
              dataset.network->num_nodes(), dataset.network->num_segments(),
              dataset.samples.size());

  // 2. Substrates + models.
  StackConfig config;
  ExperimentStack stack = BuildStack(dataset, config);

  // 3. Train the two models of the paper.
  std::printf("Training MMA (map matching)...\n");
  for (int epoch = 0; epoch < 6; ++epoch) {
    TrainStats s = TrainMma(stack, 1);
    std::printf("  epoch %d: loss %.4f (%.2fs)\n", epoch, s.final_loss,
                s.seconds_per_epoch);
  }
  std::printf("Training TRMMA (trajectory recovery)...\n");
  for (int epoch = 0; epoch < 4; ++epoch) {
    TrainStats s = TrainTrmma(stack, 1);
    std::printf("  epoch %d: loss %.4f (%.2fs)\n", epoch, s.final_loss,
                s.seconds_per_epoch);
  }

  // 4. Use the public API on one held-out sparse trajectory.
  const TrajectorySample& sample = dataset.samples[dataset.test_idx[0]];
  std::printf("\nSparse input: %d GPS points over %.0f seconds\n",
              sample.sparse.size(),
              sample.sparse.points.back().t - sample.sparse.points.front().t);

  const std::vector<SegmentId> segments =
      stack.mma->MatchPoints(sample.sparse);
  const Route route = StitchRoute(*dataset.network, *stack.planner,
                                  *stack.engine, segments);
  std::printf("MMA route: %zu segments (ground truth: %zu)\n", route.size(),
              sample.route.size());

  const MatchedTrajectory recovered =
      stack.trmma->Recover(sample.sparse, dataset.epsilon_s);
  std::printf("TRMMA recovered %zu points at eps=%.0fs (truth: %zu)\n",
              recovered.size(), dataset.epsilon_s, sample.truth.size());

  int correct = 0;
  for (size_t i = 0; i < std::min(recovered.size(), sample.truth.size());
       ++i) {
    correct += recovered[i].segment == sample.truth[i].segment;
  }
  std::printf("Pointwise segment accuracy on this trajectory: %.1f%%\n",
              100.0 * correct / sample.truth.size());

  // Show a few recovered points as (segment, ratio, time).
  std::printf("\nFirst recovered points:\n");
  for (size_t i = 0; i < std::min<size_t>(recovered.size(), 6); ++i) {
    const MatchedPoint& a = recovered[i];
    const LatLng pos = dataset.network->LatLngOnSegment(a.segment, a.ratio);
    std::printf("  t=%7.0f  segment %4d  ratio %.2f  (%.5f, %.5f)\n", a.t,
                a.segment, a.ratio, pos.lat, pos.lng);
  }
  return 0;
}
