// Scenario: a fleet logs GPS every 2 minutes to save bandwidth, but the
// analytics team needs ~12-second resolution for travel-time and
// congestion statistics. This example recovers dense trajectories for a
// batch of sparse fleet traces with TRMMA and compares per-segment travel
// speed estimates computed from (a) the sparse data with linear
// interpolation and (b) the TRMMA-recovered data, against ground truth.
//
//   ./examples/fleet_densification
#include <cmath>
#include <cstdio>
#include <map>

#include "eval/experiment.h"

namespace {

using namespace trmma;

/// Mean absolute relative error of per-segment speed estimates derived
/// from recovered trajectories vs the simulator's true segment speeds.
double SpeedEstimationError(const Dataset& dataset,
                            const std::vector<MatchedTrajectory>& recovered) {
  const RoadNetwork& g = *dataset.network;
  // Estimate speed on each segment from consecutive recovered points that
  // share it: distance covered / epsilon.
  std::map<SegmentId, std::pair<double, int>> speed_sums;
  for (const MatchedTrajectory& traj : recovered) {
    for (size_t i = 1; i < traj.size(); ++i) {
      if (traj[i].segment != traj[i - 1].segment) continue;
      const double dr = traj[i].ratio - traj[i - 1].ratio;
      if (dr <= 0) continue;
      const double dt = traj[i].t - traj[i - 1].t;
      if (dt <= 0) continue;
      const double speed = dr * g.segment(traj[i].segment).length_m / dt;
      auto& acc = speed_sums[traj[i].segment];
      acc.first += speed;
      acc.second += 1;
    }
  }
  double err = 0.0;
  int count = 0;
  for (const auto& [segment, acc] : speed_sums) {
    if (acc.second < 3) continue;  // need a few observations
    const double estimated = acc.first / acc.second;
    const double truth = g.segment(segment).speed_mps;
    err += std::abs(estimated - truth) / truth;
    ++count;
  }
  return count > 0 ? err / count : 1.0;
}

}  // namespace

int main() {
  using namespace trmma;
  std::printf("Simulating a fleet on the PT city...\n");
  Dataset dataset = std::move(BuildCityDatasetByName("PT", 700).value());
  StackConfig config;
  ExperimentStack stack = BuildStack(dataset, config);

  std::printf("Training MMA + TRMMA...\n");
  TrainMma(stack, 8);
  TrainTrmma(stack, 5);

  std::printf("Densifying %zu held-out fleet traces...\n",
              dataset.test_idx.size());
  std::vector<MatchedTrajectory> via_linear;
  std::vector<MatchedTrajectory> via_trmma;
  double acc_linear = 0.0;
  double acc_trmma = 0.0;
  int count = 0;
  for (int idx : dataset.test_idx) {
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2) continue;
    via_linear.push_back(
        stack.linear->Recover(sample.sparse, dataset.epsilon_s));
    via_trmma.push_back(
        stack.trmma->Recover(sample.sparse, dataset.epsilon_s));
    acc_linear += PointwiseAccuracy(via_linear.back(), sample.truth);
    acc_trmma += PointwiseAccuracy(via_trmma.back(), sample.truth);
    ++count;
  }

  std::printf("\nRecovery accuracy:   linear %.1f%%   TRMMA %.1f%%\n",
              100 * acc_linear / count, 100 * acc_trmma / count);
  const double err_linear = SpeedEstimationError(dataset, via_linear);
  const double err_trmma = SpeedEstimationError(dataset, via_trmma);
  std::printf("Per-segment speed estimation error (lower is better):\n");
  std::printf("  from linear-interpolated data: %.1f%%\n", 100 * err_linear);
  std::printf("  from TRMMA-recovered data:     %.1f%%\n", 100 * err_trmma);
  std::printf(
      "\nDownstream analytics (here: segment speed maps) inherit the\n"
      "recovery quality - the reason the paper cares about high-sampling\n"
      "trajectories in the first place.\n");
  return 0;
}
