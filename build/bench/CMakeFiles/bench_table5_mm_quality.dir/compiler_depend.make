# Empty compiler generated dependencies file for bench_table5_mm_quality.
# This may be replaced when dependencies are built.
