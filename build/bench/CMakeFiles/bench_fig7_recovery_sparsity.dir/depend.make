# Empty dependencies file for bench_fig7_recovery_sparsity.
# This may be replaced when dependencies are built.
