# Empty dependencies file for bench_fig10_mm_training.
# This may be replaced when dependencies are built.
