file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mm_training.dir/bench_fig10_mm_training.cc.o"
  "CMakeFiles/bench_fig10_mm_training.dir/bench_fig10_mm_training.cc.o.d"
  "bench_fig10_mm_training"
  "bench_fig10_mm_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mm_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
