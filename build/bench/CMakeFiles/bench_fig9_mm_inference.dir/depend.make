# Empty dependencies file for bench_fig9_mm_inference.
# This may be replaced when dependencies are built.
