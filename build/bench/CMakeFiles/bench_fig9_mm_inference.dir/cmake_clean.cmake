file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_mm_inference.dir/bench_fig9_mm_inference.cc.o"
  "CMakeFiles/bench_fig9_mm_inference.dir/bench_fig9_mm_inference.cc.o.d"
  "bench_fig9_mm_inference"
  "bench_fig9_mm_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mm_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
