file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mm_sparsity.dir/bench_fig11_mm_sparsity.cc.o"
  "CMakeFiles/bench_fig11_mm_sparsity.dir/bench_fig11_mm_sparsity.cc.o.d"
  "bench_fig11_mm_sparsity"
  "bench_fig11_mm_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mm_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
