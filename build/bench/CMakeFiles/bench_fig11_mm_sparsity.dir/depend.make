# Empty dependencies file for bench_fig11_mm_sparsity.
# This may be replaced when dependencies are built.
