file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_recovery_training.dir/bench_fig6_recovery_training.cc.o"
  "CMakeFiles/bench_fig6_recovery_training.dir/bench_fig6_recovery_training.cc.o.d"
  "bench_fig6_recovery_training"
  "bench_fig6_recovery_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_recovery_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
