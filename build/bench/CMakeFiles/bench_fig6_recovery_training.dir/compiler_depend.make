# Empty compiler generated dependencies file for bench_fig6_recovery_training.
# This may be replaced when dependencies are built.
