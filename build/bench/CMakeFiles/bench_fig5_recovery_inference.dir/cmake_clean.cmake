file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_recovery_inference.dir/bench_fig5_recovery_inference.cc.o"
  "CMakeFiles/bench_fig5_recovery_inference.dir/bench_fig5_recovery_inference.cc.o.d"
  "bench_fig5_recovery_inference"
  "bench_fig5_recovery_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_recovery_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
