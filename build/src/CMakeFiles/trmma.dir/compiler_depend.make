# Empty compiler generated dependencies file for trmma.
# This may be replaced when dependencies are built.
