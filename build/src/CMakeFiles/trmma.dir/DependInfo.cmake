
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/trmma.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/trmma.dir/common/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/trmma.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/trmma.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/trmma.dir/common/random.cc.o" "gcc" "src/CMakeFiles/trmma.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/trmma.dir/common/status.cc.o" "gcc" "src/CMakeFiles/trmma.dir/common/status.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/trmma.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/trmma.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/trmma.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/trmma.dir/eval/metrics.cc.o.d"
  "/root/repo/src/gen/network_gen.cc" "src/CMakeFiles/trmma.dir/gen/network_gen.cc.o" "gcc" "src/CMakeFiles/trmma.dir/gen/network_gen.cc.o.d"
  "/root/repo/src/gen/presets.cc" "src/CMakeFiles/trmma.dir/gen/presets.cc.o" "gcc" "src/CMakeFiles/trmma.dir/gen/presets.cc.o.d"
  "/root/repo/src/gen/traj_gen.cc" "src/CMakeFiles/trmma.dir/gen/traj_gen.cc.o" "gcc" "src/CMakeFiles/trmma.dir/gen/traj_gen.cc.o.d"
  "/root/repo/src/geo/geometry.cc" "src/CMakeFiles/trmma.dir/geo/geometry.cc.o" "gcc" "src/CMakeFiles/trmma.dir/geo/geometry.cc.o.d"
  "/root/repo/src/geo/latlng.cc" "src/CMakeFiles/trmma.dir/geo/latlng.cc.o" "gcc" "src/CMakeFiles/trmma.dir/geo/latlng.cc.o.d"
  "/root/repo/src/graph/road_network.cc" "src/CMakeFiles/trmma.dir/graph/road_network.cc.o" "gcc" "src/CMakeFiles/trmma.dir/graph/road_network.cc.o.d"
  "/root/repo/src/graph/route.cc" "src/CMakeFiles/trmma.dir/graph/route.cc.o" "gcc" "src/CMakeFiles/trmma.dir/graph/route.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/CMakeFiles/trmma.dir/graph/shortest_path.cc.o" "gcc" "src/CMakeFiles/trmma.dir/graph/shortest_path.cc.o.d"
  "/root/repo/src/graph/spatial_index.cc" "src/CMakeFiles/trmma.dir/graph/spatial_index.cc.o" "gcc" "src/CMakeFiles/trmma.dir/graph/spatial_index.cc.o.d"
  "/root/repo/src/graph/transition_stats.cc" "src/CMakeFiles/trmma.dir/graph/transition_stats.cc.o" "gcc" "src/CMakeFiles/trmma.dir/graph/transition_stats.cc.o.d"
  "/root/repo/src/graph/ubodt.cc" "src/CMakeFiles/trmma.dir/graph/ubodt.cc.o" "gcc" "src/CMakeFiles/trmma.dir/graph/ubodt.cc.o.d"
  "/root/repo/src/mm/candidates.cc" "src/CMakeFiles/trmma.dir/mm/candidates.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/candidates.cc.o.d"
  "/root/repo/src/mm/deep_mm_lite.cc" "src/CMakeFiles/trmma.dir/mm/deep_mm_lite.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/deep_mm_lite.cc.o.d"
  "/root/repo/src/mm/grid_cells.cc" "src/CMakeFiles/trmma.dir/mm/grid_cells.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/grid_cells.cc.o.d"
  "/root/repo/src/mm/hmm.cc" "src/CMakeFiles/trmma.dir/mm/hmm.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/hmm.cc.o.d"
  "/root/repo/src/mm/lhmm.cc" "src/CMakeFiles/trmma.dir/mm/lhmm.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/lhmm.cc.o.d"
  "/root/repo/src/mm/mma.cc" "src/CMakeFiles/trmma.dir/mm/mma.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/mma.cc.o.d"
  "/root/repo/src/mm/nearest.cc" "src/CMakeFiles/trmma.dir/mm/nearest.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/nearest.cc.o.d"
  "/root/repo/src/mm/route_stitch.cc" "src/CMakeFiles/trmma.dir/mm/route_stitch.cc.o" "gcc" "src/CMakeFiles/trmma.dir/mm/route_stitch.cc.o.d"
  "/root/repo/src/nn/adam.cc" "src/CMakeFiles/trmma.dir/nn/adam.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/adam.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/trmma.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "src/CMakeFiles/trmma.dir/nn/gradcheck.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/gradcheck.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/CMakeFiles/trmma.dir/nn/gru.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/gru.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/trmma.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/CMakeFiles/trmma.dir/nn/matrix.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/matrix.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/trmma.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/CMakeFiles/trmma.dir/nn/ops.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/ops.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/trmma.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/trmma.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/CMakeFiles/trmma.dir/nn/transformer.cc.o" "gcc" "src/CMakeFiles/trmma.dir/nn/transformer.cc.o.d"
  "/root/repo/src/node2vec/node2vec.cc" "src/CMakeFiles/trmma.dir/node2vec/node2vec.cc.o" "gcc" "src/CMakeFiles/trmma.dir/node2vec/node2vec.cc.o.d"
  "/root/repo/src/recovery/linear.cc" "src/CMakeFiles/trmma.dir/recovery/linear.cc.o" "gcc" "src/CMakeFiles/trmma.dir/recovery/linear.cc.o.d"
  "/root/repo/src/recovery/seq2seq.cc" "src/CMakeFiles/trmma.dir/recovery/seq2seq.cc.o" "gcc" "src/CMakeFiles/trmma.dir/recovery/seq2seq.cc.o.d"
  "/root/repo/src/recovery/trmma.cc" "src/CMakeFiles/trmma.dir/recovery/trmma.cc.o" "gcc" "src/CMakeFiles/trmma.dir/recovery/trmma.cc.o.d"
  "/root/repo/src/traj/dataset.cc" "src/CMakeFiles/trmma.dir/traj/dataset.cc.o" "gcc" "src/CMakeFiles/trmma.dir/traj/dataset.cc.o.d"
  "/root/repo/src/traj/sparsify.cc" "src/CMakeFiles/trmma.dir/traj/sparsify.cc.o" "gcc" "src/CMakeFiles/trmma.dir/traj/sparsify.cc.o.d"
  "/root/repo/src/traj/types.cc" "src/CMakeFiles/trmma.dir/traj/types.cc.o" "gcc" "src/CMakeFiles/trmma.dir/traj/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
