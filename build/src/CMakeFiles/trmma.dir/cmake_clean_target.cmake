file(REMOVE_RECURSE
  "libtrmma.a"
)
