# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_index_test[1]_include.cmake")
include("/root/repo/build/tests/shortest_path_test[1]_include.cmake")
include("/root/repo/build/tests/ubodt_test[1]_include.cmake")
include("/root/repo/build/tests/transition_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/traj_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/nn_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/nn_ops_test[1]_include.cmake")
include("/root/repo/build/tests/nn_autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_modules_test[1]_include.cmake")
include("/root/repo/build/tests/nn_optim_test[1]_include.cmake")
include("/root/repo/build/tests/node2vec_test[1]_include.cmake")
include("/root/repo/build/tests/candidates_test[1]_include.cmake")
include("/root/repo/build/tests/mm_classic_test[1]_include.cmake")
include("/root/repo/build/tests/mma_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/trmma_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
