file(REMOVE_RECURSE
  "CMakeFiles/node2vec_test.dir/node2vec_test.cc.o"
  "CMakeFiles/node2vec_test.dir/node2vec_test.cc.o.d"
  "node2vec_test"
  "node2vec_test.pdb"
  "node2vec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node2vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
