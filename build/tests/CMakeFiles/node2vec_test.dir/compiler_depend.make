# Empty compiler generated dependencies file for node2vec_test.
# This may be replaced when dependencies are built.
