# Empty dependencies file for ubodt_test.
# This may be replaced when dependencies are built.
