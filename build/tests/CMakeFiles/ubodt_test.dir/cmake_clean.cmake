file(REMOVE_RECURSE
  "CMakeFiles/ubodt_test.dir/ubodt_test.cc.o"
  "CMakeFiles/ubodt_test.dir/ubodt_test.cc.o.d"
  "ubodt_test"
  "ubodt_test.pdb"
  "ubodt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubodt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
