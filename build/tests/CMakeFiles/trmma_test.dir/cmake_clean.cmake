file(REMOVE_RECURSE
  "CMakeFiles/trmma_test.dir/trmma_test.cc.o"
  "CMakeFiles/trmma_test.dir/trmma_test.cc.o.d"
  "trmma_test"
  "trmma_test.pdb"
  "trmma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trmma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
