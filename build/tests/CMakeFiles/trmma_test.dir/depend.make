# Empty dependencies file for trmma_test.
# This may be replaced when dependencies are built.
