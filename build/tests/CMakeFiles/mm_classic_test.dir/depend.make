# Empty dependencies file for mm_classic_test.
# This may be replaced when dependencies are built.
