file(REMOVE_RECURSE
  "CMakeFiles/mm_classic_test.dir/mm_classic_test.cc.o"
  "CMakeFiles/mm_classic_test.dir/mm_classic_test.cc.o.d"
  "mm_classic_test"
  "mm_classic_test.pdb"
  "mm_classic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
