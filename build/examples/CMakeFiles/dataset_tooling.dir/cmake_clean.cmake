file(REMOVE_RECURSE
  "CMakeFiles/dataset_tooling.dir/dataset_tooling.cpp.o"
  "CMakeFiles/dataset_tooling.dir/dataset_tooling.cpp.o.d"
  "dataset_tooling"
  "dataset_tooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_tooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
