# Empty compiler generated dependencies file for dataset_tooling.
# This may be replaced when dependencies are built.
