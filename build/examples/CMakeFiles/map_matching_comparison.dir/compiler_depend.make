# Empty compiler generated dependencies file for map_matching_comparison.
# This may be replaced when dependencies are built.
