file(REMOVE_RECURSE
  "CMakeFiles/map_matching_comparison.dir/map_matching_comparison.cpp.o"
  "CMakeFiles/map_matching_comparison.dir/map_matching_comparison.cpp.o.d"
  "map_matching_comparison"
  "map_matching_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_matching_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
