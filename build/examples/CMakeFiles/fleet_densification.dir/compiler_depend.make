# Empty compiler generated dependencies file for fleet_densification.
# This may be replaced when dependencies are built.
