file(REMOVE_RECURSE
  "CMakeFiles/fleet_densification.dir/fleet_densification.cpp.o"
  "CMakeFiles/fleet_densification.dir/fleet_densification.cpp.o.d"
  "fleet_densification"
  "fleet_densification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_densification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
