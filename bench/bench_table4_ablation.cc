// Reproduces paper Table IV: ablation study of TRMMA by recovery Accuracy
// (%). Variants: full TRMMA; TRMMA-HMM (route from HMM instead of MMA);
// TRMMA-Near (route from nearest-segment matching); MMA+linear and
// Nearest+linear (no learned decoder); TRMMA-DF (no DualFormer cross
// attention); TRMMA-C (MMA without candidate context); TRMMA-DI (MMA
// without directional features). Expected shape: full TRMMA on top;
// removing MMA (Near) or the decoder (X+linear) hurts the most.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::EnableQualityTelemetry();
  bench::PrintBanner("Table IV: TRMMA ablation, recovery accuracy (%)");
  PrintHeader("variant", CityNames());

  std::vector<std::string> names = {"TRMMA",      "TRMMA-HMM",
                                    "TRMMA-Near", "MMA+linear",
                                    "Nearest+linear", "TRMMA-DF",
                                    "TRMMA-C",    "TRMMA-DI"};
  std::vector<std::vector<double>> rows(names.size());

  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);
    TrainMma(stack, scale.mma_epochs);
    TrainTrmma(stack, scale.trmma_epochs);
    const int cap = std::min(scale.eval_cap, 120);
    const RoadNetwork& g = *ds.network;

    auto train_trmma_variant = [&](TrmmaRecovery& model) {
      Rng rng(stack.config.seed + 40);
      for (int e = 0; e < scale.trmma_epochs; ++e) {
        model.TrainEpoch(ds, rng);
      }
    };

    int r = 0;
    // Full TRMMA.
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, *stack.trmma, cap).accuracy);

    // TRMMA-HMM: decoder unchanged, route from the HMM matcher.
    TrmmaRecovery trmma_hmm(g, stack.fmm.get(), stack.planner.get(),
                            stack.engine.get(), config.trmma, "TRMMA-HMM");
    train_trmma_variant(trmma_hmm);
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, trmma_hmm, cap).accuracy);

    // TRMMA-Near: route from nearest-segment matching.
    TrmmaRecovery trmma_near(g, stack.nearest.get(), stack.planner.get(),
                             stack.engine.get(), config.trmma, "TRMMA-Near");
    train_trmma_variant(trmma_near);
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, trmma_near, cap).accuracy);

    // MMA+linear and Nearest+linear.
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, *stack.mma_linear, cap).accuracy);
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, *stack.nearest_linear, cap).accuracy);

    // TRMMA-DF: no DualFormer fusion.
    TrmmaConfig df_config = config.trmma;
    df_config.use_dualformer = false;
    TrmmaRecovery trmma_df(g, stack.mma.get(), stack.planner.get(),
                           stack.engine.get(), df_config, "TRMMA-DF");
    train_trmma_variant(trmma_df);
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, trmma_df, cap).accuracy);

    // TRMMA-C: MMA without candidate context feeding TRMMA.
    MmaConfig mma_c = config.mma;
    mma_c.use_candidate_context = false;
    MmaMatcher mma_no_ctx(g, *stack.index, mma_c);
    mma_no_ctx.LoadPretrainedSegmentEmbeddings(stack.node2vec_table);
    {
      Rng rng(stack.config.seed + 41);
      for (int e = 0; e < scale.mma_epochs; ++e) {
        mma_no_ctx.TrainEpoch(ds, rng);
      }
    }
    TrmmaRecovery trmma_c(g, &mma_no_ctx, stack.planner.get(),
                          stack.engine.get(), config.trmma, "TRMMA-C");
    train_trmma_variant(trmma_c);
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, trmma_c, cap).accuracy);

    // TRMMA-DI: MMA without directional features feeding TRMMA.
    MmaConfig mma_di = config.mma;
    mma_di.use_directional = false;
    MmaMatcher mma_no_dir(g, *stack.index, mma_di);
    mma_no_dir.LoadPretrainedSegmentEmbeddings(stack.node2vec_table);
    {
      Rng rng(stack.config.seed + 42);
      for (int e = 0; e < scale.mma_epochs; ++e) {
        mma_no_dir.TrainEpoch(ds, rng);
      }
    }
    TrmmaRecovery trmma_di(g, &mma_no_dir, stack.planner.get(),
                           stack.engine.get(), config.trmma, "TRMMA-DI");
    train_trmma_variant(trmma_di);
    rows[r++].push_back(
        100 * EvaluateRecovery(stack, trmma_di, cap).accuracy);
  }

  for (size_t i = 0; i < names.size(); ++i) {
    PrintRow(names[i], rows[i]);
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("table4_ablation");
  trmma::Run();
  return 0;
}
