// Micro-benchmarks (google-benchmark) of the spatial substrates: R-tree
// k-nearest queries, Dijkstra shortest paths, UBODT lookups and the DA
// route planner. Not a paper figure; used to track substrate regressions.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "common/random.h"
#include "gen/network_gen.h"
#include "graph/shortest_path.h"
#include "graph/spatial_index.h"
#include "graph/transition_stats.h"
#include "graph/ubodt.h"

namespace trmma {
namespace {

const RoadNetwork& Network() {
  static const RoadNetwork* network = [] {
    NetworkGenConfig config;
    config.grid_width = 24;
    config.grid_height = 18;
    Rng rng(42);
    auto net = GenerateNetwork(config, rng);
    return net.ok() ? std::move(net).value().release() : nullptr;
  }();
  return *network;
}

void BM_RTreeBuild(benchmark::State& state) {
  const RoadNetwork& g = Network();
  for (auto _ : state) {
    SegmentRTree tree(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(tree.height());
  }
}
BENCHMARK(BM_RTreeBuild)->Arg(8)->Arg(16)->Arg(64);

void BM_RTreeKnn(benchmark::State& state) {
  const RoadNetwork& g = Network();
  static const SegmentRTree tree(g);
  Rng rng(1);
  for (auto _ : state) {
    Vec2 q{rng.Uniform(0, 4000), rng.Uniform(0, 3000)};
    benchmark::DoNotOptimize(tree.KNearest(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(50);

void BM_Dijkstra(benchmark::State& state) {
  const RoadNetwork& g = Network();
  ShortestPathEngine engine(g);
  Rng rng(2);
  for (auto _ : state) {
    const NodeId src = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    const NodeId dst = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(engine.NodeToNode(src, dst));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_UbodtLookupVsDijkstra(benchmark::State& state) {
  const RoadNetwork& g = Network();
  static const Ubodt table(g, 2000.0);
  Rng rng(3);
  for (auto _ : state) {
    const NodeId src = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    const NodeId dst = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(table.Distance(src, dst));
  }
}
BENCHMARK(BM_UbodtLookupVsDijkstra);

void BM_DaRoutePlanner(benchmark::State& state) {
  const RoadNetwork& g = Network();
  static TransitionStats stats(g);
  DaRoutePlanner planner(g, stats);
  Rng rng(4);
  for (auto _ : state) {
    const SegmentId a = static_cast<SegmentId>(rng.UniformInt(g.num_segments()));
    const SegmentId b = static_cast<SegmentId>(rng.UniformInt(g.num_segments()));
    benchmark::DoNotOptimize(planner.Plan(a, b));
  }
}
BENCHMARK(BM_DaRoutePlanner);

}  // namespace
}  // namespace trmma

int main(int argc, char** argv) {
  trmma::bench::BenchRun run("micro_spatial");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
