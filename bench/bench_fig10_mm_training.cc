// Reproduces paper Fig. 10: map-matching training time per epoch (FMM has
// none - it only precomputes the UBODT, reported separately). Expected
// shape: MMA and LHMM train fast; DeepMM pays for its |E|-sized softmax,
// most visibly on BJ.
#include "bench/bench_common.h"
#include "common/stopwatch.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::PrintBanner("Fig. 10: map matching training time (s / epoch)");
  PrintHeader("method", CityNames());

  std::vector<double> lhmm_row;
  std::vector<double> deepmm_row;
  std::vector<double> mma_row;
  std::vector<double> ubodt_row;
  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;
    Stopwatch ubodt_watch;
    ExperimentStack stack = BuildStack(ds, config);
    // The stack build includes the UBODT precomputation; rebuild it alone
    // for a clean figure of FMM's one-off cost.
    ubodt_watch.Restart();
    Ubodt ubodt(*ds.network, config.ubodt_delta_m);
    ubodt_row.push_back(ubodt_watch.ElapsedSeconds());

    lhmm_row.push_back(TrainLhmm(stack, 2).seconds_per_epoch);
    deepmm_row.push_back(TrainDeepMm(stack, 2).seconds_per_epoch);
    mma_row.push_back(TrainMma(stack, 2).seconds_per_epoch);
  }
  PrintRow("LHMM", lhmm_row, 16, 10, 3);
  PrintRow("DeepMM", deepmm_row, 16, 10, 3);
  PrintRow("MMA", mma_row, 16, 10, 3);
  PrintRow("FMM(ubodt)", ubodt_row, 16, 10, 3);
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig10_mm_training");
  trmma::Run();
  return 0;
}
