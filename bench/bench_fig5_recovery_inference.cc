// Reproduces paper Fig. 5: recovery inference time per 1000 trajectories
// (seconds). Expected shape: TRMMA decodes over the route's few segments
// while the seq2seq baselines score all |E| segments per step, so TRMMA's
// relative cost improves as the network grows (largest on BJ). Note that
// at this scaled-down |E| the absolute gap is smaller than the paper's
// (their networks have up to 65k segments; see EXPERIMENTS.md).
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::PrintBanner("Fig. 5: recovery inference time (s / 1000 traj)");
  PrintHeader("method", CityNames());

  // Record/replay smoke (see bench_fig9): sampled capture during the timed
  // evals, exact-route replay of the exemplars afterwards.
  bench::EnableFlightRecorder(scale.eval_cap >= 100 ? 25 : 5);

  std::vector<std::vector<double>> rows(5);
  std::vector<std::string> names;
  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);
    TrainMma(stack, scale.mma_epochs);
    TrainTrmma(stack, 1);
    TrainSeq2Seq(stack, *stack.mtrajrec, 1);
    TrainSeq2Seq(stack, *stack.trajformer, 1);
    std::vector<RecoveryMethod*> methods = {
        stack.linear.get(), stack.nearest_linear.get(),
        stack.mtrajrec.get(), stack.trajformer.get(), stack.trmma.get()};
    names.clear();
    for (size_t i = 0; i < methods.size(); ++i) {
      auto ev = EvaluateRecovery(stack, *methods[i], scale.eval_cap);
      rows[i].push_back(ev.seconds_per_1000);
      names.push_back(methods[i]->name());
    }
    bench::CheckFlightReplay(stack);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    PrintRow(names[i], rows[i], 16, 10, 3);
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig5_recovery_inference");
  trmma::Run();
  return 0;
}
