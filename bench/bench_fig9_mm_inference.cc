// Reproduces paper Fig. 9: map-matching inference time per 1000
// trajectories (seconds). Models are lightly trained first (timing does
// not depend on weight quality). Expected shape: FMM/LHMM much faster than
// plain HMM (UBODT acceleration); MMA in the fast group; DeepMM's
// full-network output layer costs more on the large BJ network.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::PrintBanner("Fig. 9: map matching inference time (s / 1000 traj)");
  PrintHeader("method", CityNames());

  // Record/replay smoke rides along with the timing run: 1-in-N request
  // sampling, then every retained exemplar is replayed against the live
  // stack and must reproduce its route exactly (CheckFlightReplay aborts
  // otherwise). Sampling is sparse enough to stay off the timing's back.
  bench::EnableFlightRecorder(scale.eval_cap >= 100 ? 25 : 5);

  std::vector<std::vector<double>> rows(6);
  std::vector<std::string> names;
  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);
    TrainLhmm(stack, 1);
    TrainDeepMm(stack, 1);
    TrainMma(stack, scale.mma_epochs);
    std::vector<MapMatcher*> methods = {
        stack.nearest.get(), stack.hmm.get(),    stack.fmm.get(),
        stack.lhmm.get(),    stack.deepmm.get(), stack.mma.get()};
    names.clear();
    for (size_t i = 0; i < methods.size(); ++i) {
      auto ev = EvaluateMapMatching(stack, *methods[i], scale.eval_cap);
      rows[i].push_back(ev.seconds_per_1000);
      names.push_back(methods[i]->name());
    }
    bench::CheckFlightReplay(stack);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    PrintRow(names[i], rows[i], 16, 10, 3);
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig9_mm_inference");
  trmma::Run();
  return 0;
}
