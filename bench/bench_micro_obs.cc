// Micro-benchmarks for the observability layer itself. The headline
// comparison is BM_SpanDisabled vs BM_SpanMetrics vs BM_SpanTrace: with
// TRMMA_TRACE unset a TRMMA_SPAN site must cost about one predicted branch
// (a relaxed atomic load and compare), which is what makes it safe to leave
// in the MMA/TRMMA hot paths.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {
namespace {

class ModeGuard {
 public:
  explicit ModeGuard(TraceMode mode) : prev_(CurrentTraceMode()) {
    SetTraceMode(mode);
  }
  ~ModeGuard() { SetTraceMode(prev_); }

 private:
  TraceMode prev_;
};

void BM_SpanDisabled(benchmark::State& state) {
  ModeGuard guard(TraceMode::kOff);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanMetrics(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanMetrics);

void BM_SpanTrace(benchmark::State& state) {
  ModeGuard guard(TraceMode::kTrace);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanTrace);

void BM_CounterIncrement(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  Counter* counter =
      MetricRegistry::Global().GetCounter("bench.obs.counter");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  Histogram* hist =
      MetricRegistry::Global().GetHistogram("bench.obs.hist.us");
  double v = 0.5;
  for (auto _ : state) {
    hist->Observe(v);
    v += 1.375;
    if (v > 1e6) v = 0.5;
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_HistogramObserve);

// Restores the recorder to a known state around the flight-hook benches.
class FlightGuard {
 public:
  explicit FlightGuard(bool enabled) {
    FlightRecorderConfig config;
    config.enabled = enabled;
    config.path = "";  // retention only, no file
    FlightRecorder::Global().Configure(config);
  }
  ~FlightGuard() {
    FlightRecorder::Global().Configure(FlightRecorderConfig());
    FlightRecorder::Global().ResetForTest();
  }
};

// The acceptance contract for leaving capture hooks in mm/recovery hot
// paths: with the recorder off, ActiveRecord() is one relaxed atomic load
// plus a predicted branch — on the order of a nanosecond or two.
void BM_FlightHookDisabled(benchmark::State& state) {
  FlightGuard guard(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ActiveRecord());
  }
}
BENCHMARK(BM_FlightHookDisabled);

// Recorder enabled but no request active on this thread (the common state
// for non-request threads): still just the load plus a TLS read.
void BM_FlightHookEnabledIdle(benchmark::State& state) {
  FlightGuard guard(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ActiveRecord());
  }
}
BENCHMARK(BM_FlightHookEnabledIdle);

// Whole-scope cost when disabled: RequestScope must degrade to a couple of
// branches, since every evaluated trajectory constructs one.
void BM_FlightScopeDisabled(benchmark::State& state) {
  FlightGuard guard(false);
  for (auto _ : state) {
    RequestScope scope("bench");
    benchmark::DoNotOptimize(scope.record());
  }
}
BENCHMARK(BM_FlightScopeDisabled);

void BM_RegistryLookup(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  for (auto _ : state) {
    Counter* counter = MetricRegistry::Global().GetCounter(
        "bench.obs.lookup", {{"city", "PT"}});
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_RegistryLookup);

}  // namespace
}  // namespace obs
}  // namespace trmma

int main(int argc, char** argv) {
  trmma::bench::BenchRun run("micro_obs");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
