// Micro-benchmarks for the observability layer itself. The headline
// comparison is BM_SpanDisabled vs BM_SpanMetrics vs BM_SpanTrace: with
// TRMMA_TRACE unset a TRMMA_SPAN site must cost about one predicted branch
// (a relaxed atomic load and compare), which is what makes it safe to leave
// in the MMA/TRMMA hot paths.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {
namespace {

class ModeGuard {
 public:
  explicit ModeGuard(TraceMode mode) : prev_(CurrentTraceMode()) {
    SetTraceMode(mode);
  }
  ~ModeGuard() { SetTraceMode(prev_); }

 private:
  TraceMode prev_;
};

void BM_SpanDisabled(benchmark::State& state) {
  ModeGuard guard(TraceMode::kOff);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanMetrics(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanMetrics);

void BM_SpanTrace(benchmark::State& state) {
  ModeGuard guard(TraceMode::kTrace);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanTrace);

void BM_CounterIncrement(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  Counter* counter =
      MetricRegistry::Global().GetCounter("bench.obs.counter");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  Histogram* hist =
      MetricRegistry::Global().GetHistogram("bench.obs.hist.us");
  double v = 0.5;
  for (auto _ : state) {
    hist->Observe(v);
    v += 1.375;
    if (v > 1e6) v = 0.5;
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryLookup(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  for (auto _ : state) {
    Counter* counter = MetricRegistry::Global().GetCounter(
        "bench.obs.lookup", {{"city", "PT"}});
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_RegistryLookup);

}  // namespace
}  // namespace obs
}  // namespace trmma

int main(int argc, char** argv) {
  trmma::bench::BenchRun run("micro_obs");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
