// Micro-benchmarks for the observability layer itself. The headline
// comparison is BM_SpanDisabled vs BM_SpanMetrics vs BM_SpanTrace: with
// TRMMA_TRACE unset a TRMMA_SPAN site must cost about one predicted branch
// (a relaxed atomic load and compare), which is what makes it safe to leave
// in the MMA/TRMMA hot paths.

#include <benchmark/benchmark.h>

#include <mutex>

#include "bench_common.h"
#include "obs/cpu_profiler.h"
#include "obs/flight_recorder.h"
#include "obs/hw_counters.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/quality.h"
#include "obs/trace.h"
#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {
namespace {

class ModeGuard {
 public:
  explicit ModeGuard(TraceMode mode) : prev_(CurrentTraceMode()) {
    SetTraceMode(mode);
  }
  ~ModeGuard() { SetTraceMode(prev_); }

 private:
  TraceMode prev_;
};

void BM_SpanDisabled(benchmark::State& state) {
  ModeGuard guard(TraceMode::kOff);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanMetrics(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanMetrics);

void BM_SpanTrace(benchmark::State& state) {
  ModeGuard guard(TraceMode::kTrace);
  for (auto _ : state) {
    TRMMA_SPAN("bench.obs.noop");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_SpanTrace);

void BM_CounterIncrement(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  Counter* counter =
      MetricRegistry::Global().GetCounter("bench.obs.counter");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  Histogram* hist =
      MetricRegistry::Global().GetHistogram("bench.obs.hist.us");
  double v = 0.5;
  for (auto _ : state) {
    hist->Observe(v);
    v += 1.375;
    if (v > 1e6) v = 0.5;
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_HistogramObserve);

// Restores the recorder to a known state around the flight-hook benches.
class FlightGuard {
 public:
  explicit FlightGuard(bool enabled) {
    FlightRecorderConfig config;
    config.enabled = enabled;
    config.path = "";  // retention only, no file
    FlightRecorder::Global().Configure(config);
  }
  ~FlightGuard() {
    FlightRecorder::Global().Configure(FlightRecorderConfig());
    FlightRecorder::Global().ResetForTest();
  }
};

// The acceptance contract for leaving capture hooks in mm/recovery hot
// paths: with the recorder off, ActiveRecord() is one relaxed atomic load
// plus a predicted branch — on the order of a nanosecond or two.
void BM_FlightHookDisabled(benchmark::State& state) {
  FlightGuard guard(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ActiveRecord());
  }
}
BENCHMARK(BM_FlightHookDisabled);

// Recorder enabled but no request active on this thread (the common state
// for non-request threads): still just the load plus a TLS read.
void BM_FlightHookEnabledIdle(benchmark::State& state) {
  FlightGuard guard(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ActiveRecord());
  }
}
BENCHMARK(BM_FlightHookEnabledIdle);

// Whole-scope cost when disabled: RequestScope must degrade to a couple of
// branches, since every evaluated trajectory constructs one.
void BM_FlightScopeDisabled(benchmark::State& state) {
  FlightGuard guard(false);
  for (auto _ : state) {
    RequestScope scope("bench");
    benchmark::DoNotOptimize(scope.record());
  }
}
BENCHMARK(BM_FlightScopeDisabled);

// Restores the quality log around the quality-hook benches.
class QualityGuard {
 public:
  explicit QualityGuard(bool enabled) {
    QualityLog::Global().Configure(enabled);
  }
  ~QualityGuard() {
    QualityLog::Global().Configure(false);
    QualityLog::Global().ResetForTest();
  }
};

// The acceptance contract for the drift-observation hooks in the candidate
// search: with quality telemetry off, QualityEnabled() is one relaxed
// atomic load plus a predicted branch — about a nanosecond, same budget as
// the disabled flight-recorder hook.
void BM_QualityHookDisabled(benchmark::State& state) {
  QualityGuard guard(false);
  for (auto _ : state) {
    if (QualityEnabled()) {
      QualityLog::Global().ObserveFeature(kFeatureCandidateCount, 4.0);
    }
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_QualityHookDisabled);

// Enabled-path cost: bucket arithmetic plus one relaxed fetch_add on the
// histogram cell. This runs once per point per feature when telemetry is
// on, so it must stay in the low tens of nanoseconds.
void BM_QualityObserveEnabled(benchmark::State& state) {
  QualityGuard guard(true);
  double v = 0.0;
  for (auto _ : state) {
    QualityLog::Global().ObserveFeature(kFeatureNearestCandidateM, v);
    v += 7.25;
    if (v > 300.0) v = 0.0;
  }
  benchmark::DoNotOptimize(
      QualityLog::Global().DriftCounts(kFeatureNearestCandidateM,
                                       QualityPhase::kServe));
}
BENCHMARK(BM_QualityObserveEnabled);

// Per-request ingestion cost with a representative record: bucketing, the
// calibration pairing loop, and the aggregator map updates. Runs once per
// request (not per point), so a microsecond-scale cost is acceptable.
void BM_QualityIngest(benchmark::State& state) {
  QualityGuard guard(true);
  RequestRecord record;
  record.kind = "mm";
  record.method = "MMA";
  record.city = "PT";
  record.quality = 0.9;
  record.epsilon = 60;
  record.gamma = 0.25;
  for (int i = 0; i < 16; ++i) {
    RecordGpsPoint p;
    p.lng = 0.01 * i;
    p.lat = 0.01 * i;
    p.t = 15.0 * i;
    record.input.push_back(p);
    record.truth_segments.push_back(i % 4);
    std::vector<RecordCandidate> cands;
    for (int c = 0; c < 4; ++c) {
      RecordCandidate cand;
      cand.segment = c;
      cand.distance = 10.0 + 5.0 * c;
      cands.push_back(cand);
    }
    record.candidates.push_back(cands);
    RecordMatchedPoint match;
    match.segment = i % 4;
    match.t = p.t;
    record.matched.push_back(match);
    record.scores.push_back(0.8);
  }
  for (auto _ : state) {
    QualityLog::Global().Ingest(record);
  }
  benchmark::DoNotOptimize(QualityLog::Global().HasData());
}
BENCHMARK(BM_QualityIngest);

// The acceptance contract for adopting TrackedMutex in the registry/logger/
// recorder locks: with observability off it must cost one relaxed load plus
// a predicted branch over the plain std::mutex baseline (≤ 2 ns).
void BM_PlainMutexBaseline(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(mu);
    benchmark::DoNotOptimize(&mu);
  }
}
BENCHMARK(BM_PlainMutexBaseline);

void BM_TrackedMutexDisabled(benchmark::State& state) {
  ModeGuard guard(TraceMode::kOff);
  static TrackedMutex* mu = new TrackedMutex("bench.obs.mutex");
  for (auto _ : state) {
    std::lock_guard<TrackedMutex> lock(*mu);
    benchmark::DoNotOptimize(mu);
  }
}
BENCHMARK(BM_TrackedMutexDisabled);

// Enabled, uncontended path: try_lock + two clock reads + a histogram
// observe. This is the steady-state cost while metrics are on.
void BM_TrackedMutexEnabled(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  static TrackedMutex* mu = new TrackedMutex("bench.obs.mutex.on");
  for (auto _ : state) {
    std::lock_guard<TrackedMutex> lock(*mu);
    benchmark::DoNotOptimize(mu);
  }
}
BENCHMARK(BM_TrackedMutexEnabled);

// The allocation-tag hook contract: disabled, MemAdd is one relaxed load
// plus a predicted branch (≤ 2 ns), cheap enough to leave in retention and
// build paths unconditionally.
void BM_MemHookDisabled(benchmark::State& state) {
  EnableMemStats(false);
  for (auto _ : state) {
    MemAdd(MemTag::kOther, 64);
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_MemHookDisabled);

void BM_MemHookEnabled(benchmark::State& state) {
  EnableMemStats(true);
  for (auto _ : state) {
    MemAdd(MemTag::kOther, 64);
    benchmark::DoNotOptimize(&state);
  }
  EnableMemStats(false);
  ResetMemStats();
}
BENCHMARK(BM_MemHookEnabled);

// The acceptance contract for the serving engine's per-request in-flight
// hooks: with neither crash handler nor watchdog installed (the default),
// Register is one relaxed load plus a predicted branch (≤ 2 ns), and the
// -1 "not tracked" token makes MarkExecuting/Release single-compare no-ops.
// That is what lets the engine call all three unconditionally per request.
void BM_InflightHookDisabled(benchmark::State& state) {
  InflightRegistry& reg = InflightRegistry::Global();
  reg.SetEnabled(false);
  uint64_t trace_id = 1;
  for (auto _ : state) {
    const int token = reg.Register(trace_id++, "bench", 100.0);
    reg.MarkExecuting(token);
    reg.Release(token);
    benchmark::DoNotOptimize(token);
  }
}
BENCHMARK(BM_InflightHookDisabled);

// Enabled lifecycle: slot claim (rotating-cursor CAS), tid stamp + state
// store, release store. This is the steady-state per-request cost while a
// crash handler or the stall watchdog is installed.
void BM_InflightHookEnabled(benchmark::State& state) {
  InflightRegistry& reg = InflightRegistry::Global();
  reg.ResetForTest();
  reg.SetEnabled(true);
  uint64_t trace_id = 1;
  for (auto _ : state) {
    const int token = reg.Register(trace_id++, "bench", 100.0);
    reg.MarkExecuting(token);
    reg.Release(token);
    benchmark::DoNotOptimize(token);
  }
  reg.SetEnabled(false);
  reg.ResetForTest();
}
BENCHMARK(BM_InflightHookEnabled);

void BM_RssSample(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleRss());
  }
}
BENCHMARK(BM_RssSample);

// Restores the exemplar switch around the exemplar benches.
class ExemplarSwitchGuard {
 public:
  explicit ExemplarSwitchGuard(bool enabled) : prev_(ExemplarsEnabled()) {
    SetExemplarsEnabled(enabled);
  }
  ~ExemplarSwitchGuard() { SetExemplarsEnabled(prev_); }

 private:
  bool prev_;
};

// The acceptance contract for threading trace ids through Observe on the
// serving hot path: the exemplar capture (cursor fetch_add + slot CAS +
// three relaxed stores, never a spin) must add ≤ 5 ns over the plain
// Observe baseline above.
void BM_HistogramObserveExemplar(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  ExemplarSwitchGuard exemplars(true);
  Histogram* hist =
      MetricRegistry::Global().GetHistogram("bench.obs.hist.exemplar.us");
  double v = 0.5;
  uint64_t trace_id = 1;
  for (auto _ : state) {
    hist->Observe(v, trace_id++);
    v += 1.375;
    if (v > 1e6) v = 0.5;
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_HistogramObserveExemplar);

// With exemplars switched off (TRMMA_EXEMPLARS=0) the trace-id overload
// must collapse to Observe plus one predicted branch and a relaxed load.
void BM_HistogramObserveExemplarDisabled(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  ExemplarSwitchGuard exemplars(false);
  Histogram* hist =
      MetricRegistry::Global().GetHistogram("bench.obs.hist.exemplar.off.us");
  double v = 0.5;
  uint64_t trace_id = 1;
  for (auto _ : state) {
    hist->Observe(v, trace_id++);
    v += 1.375;
    if (v > 1e6) v = 0.5;
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_HistogramObserveExemplarDisabled);

// The acceptance contract for leaving the profiler linked into every
// binary: while not running, the hot-path check callers are expected to
// make (running()) is one relaxed load — ≤ 1 ns. The sampling cost itself
// is bounded by design, not benchmarked here: the SIGPROF handler does a
// bounded frame walk (≤ 48 guarded reads) into a pre-allocated ring, no
// allocation, locking or symbolization — see DESIGN.md §12 for the
// per-sample budget.
void BM_ProfilerDisabledCheck(benchmark::State& state) {
  CpuProfiler& profiler = CpuProfiler::Global();
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.running());
  }
}
BENCHMARK(BM_ProfilerDisabledCheck);

// Synchronous capture through the signal handler's ring path: frame walk +
// slot claim + publish. This is the same work a SIGPROF costs the
// interrupted thread, so it doubles as a measured per-sample budget
// (expected: a few hundred ns, dominated by the guarded frame reads).
void BM_ProfilerSampleNow(benchmark::State& state) {
  CpuProfiler& profiler = CpuProfiler::Global();
  if (profiler.SampleNowForTest() == 0) {
    state.SkipWithError("frame walk unavailable (sanitizer build)");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.SampleNowForTest());
  }
  profiler.Reset();
}
BENCHMARK(BM_ProfilerSampleNow);

// The acceptance contract for leaving HwCounterScope in the op profiler and
// the serving execute path: with the subsystem disarmed (the default — this
// container may not even expose a PMU), the Enabled() gate is one relaxed
// load plus a predicted branch, ≤ 2 ns.
void BM_HwCounterHookDisabled(benchmark::State& state) {
  HwCounters::Global().Disable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HwCounters::Enabled());
  }
}
BENCHMARK(BM_HwCounterHookDisabled);

// Whole-scope cost when disabled: Start + End must each degrade to the gate
// check, since every profiled op constructs one.
void BM_HwCounterScopeDisabled(benchmark::State& state) {
  HwCounters::Global().Disable();
  HwCounterDelta delta;
  for (auto _ : state) {
    HwCounterScope scope(true);
    benchmark::DoNotOptimize(scope.End(&delta));
  }
}
BENCHMARK(BM_HwCounterScopeDisabled);

// Enabled path: two group read() syscalls per scope. Expected ~1 µs — the
// reason counters are opt-in per run rather than always-on. Skipped when
// the host refuses perf_event_open (paranoid kernel, no PMU, sanitizer).
void BM_HwCounterScopeEnabled(benchmark::State& state) {
  if (!HwCounters::Global().Enable().ok()) {
    state.SkipWithError(("hw counters unavailable: " +
                         HwCounters::Global().reason()).c_str());
    return;
  }
  HwCounterDelta delta;
  for (auto _ : state) {
    HwCounterScope scope(true);
    benchmark::DoNotOptimize(scope.End(&delta));
  }
  HwCounters::Global().Disable();
}
BENCHMARK(BM_HwCounterScopeEnabled);

void BM_RegistryLookup(benchmark::State& state) {
  ModeGuard guard(TraceMode::kMetrics);
  for (auto _ : state) {
    Counter* counter = MetricRegistry::Global().GetCounter(
        "bench.obs.lookup", {{"city", "PT"}});
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_RegistryLookup);

}  // namespace
}  // namespace obs
}  // namespace trmma

int main(int argc, char** argv) {
  trmma::bench::BenchRun run("micro_obs");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
