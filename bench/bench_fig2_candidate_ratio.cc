// Reproduces paper Fig. 2: the ratio of GPS points whose ground-truth
// segment is among their top-k_c nearest segments, for k_c = 1..10, on all
// four datasets. The curves should start around 0.6-0.8 at k_c=1 and
// approach 1.0 by k_c=10, motivating classification over a small candidate
// set (paper §IV-A).
#include <vector>

#include "bench/bench_common.h"
#include "mm/candidates.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::PrintBanner("Fig. 2: true segment within top-k_c candidates");
  std::vector<std::string> cols;
  for (int k = 1; k <= 10; ++k) cols.push_back("k=" + std::to_string(k));
  PrintHeader("dataset", cols, 10, 8);

  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    SegmentRTree index(*ds.network);
    std::vector<int64_t> hits(11, 0);
    int64_t total = 0;
    for (int idx : ds.train_idx) {
      const TrajectorySample& sample = ds.samples[idx];
      auto cands = ComputeCandidates(*ds.network, index, sample.sparse, 10);
      for (size_t i = 0; i < cands.size(); ++i) {
        const SegmentId truth =
            sample.truth[sample.sparse_indices[i]].segment;
        int rank = 0;  // 0 = not found within top 10
        for (size_t j = 0; j < cands[i].size(); ++j) {
          if (cands[i][j].segment == truth) {
            rank = static_cast<int>(j) + 1;
            break;
          }
        }
        if (rank > 0) {
          for (int k = rank; k <= 10; ++k) ++hits[k];
        }
        ++total;
      }
    }
    std::vector<double> row;
    for (int k = 1; k <= 10; ++k) {
      row.push_back(static_cast<double>(hits[k]) / total);
    }
    PrintRow(city, row, 10, 8, 3);
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig2_candidate_ratio");
  trmma::Run();
  return 0;
}
