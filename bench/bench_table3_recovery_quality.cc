// Reproduces paper Table III: trajectory-recovery quality (Recall /
// Precision / F1 / Accuracy in percent, MAE / RMSE in meters) of Linear,
// Nearest+linear, the seq2seq family (MTrajRec-style GRU and the
// representation-learning TrajCL+Dec stand-in) and TRMMA on the four
// datasets. Expected shape: TRMMA best on every metric; Linear a strong
// non-learned baseline; the full-network seq2seq methods far behind at
// this (scaled-down) training-data volume.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::EnableQualityTelemetry();
  bench::PrintBanner("Table III: trajectory recovery effectiveness");
  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);

    TrainMma(stack, scale.mma_epochs);
    TrainTrmma(stack, scale.trmma_epochs);
    const int s2s = bench::DeepEpochsFor(city, scale.seq2seq_epochs);
    TrainSeq2Seq(stack, *stack.mtrajrec, s2s);
    TrainSeq2Seq(stack, *stack.trajformer, s2s);

    std::printf("\n-- %s --\n", city.c_str());
    PrintHeader("method",
                {"Recall", "Prec", "F1", "Acc", "MAE", "RMSE"});
    std::vector<RecoveryMethod*> methods = {
        stack.linear.get(),     stack.nearest_linear.get(),
        stack.mtrajrec.get(),   stack.trajformer.get(),
        stack.trmma.get()};
    for (RecoveryMethod* m : methods) {
      auto ev = EvaluateRecovery(stack, *m, scale.eval_cap);
      PrintRow(m->name(),
               {100 * ev.metrics.recall, 100 * ev.metrics.precision,
                100 * ev.metrics.f1, 100 * ev.accuracy, ev.mae_m,
                ev.rmse_m},
               16, 10, 1);
    }
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("table3_recovery_quality");
  trmma::Run();
  return 0;
}
