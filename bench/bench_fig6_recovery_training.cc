// Reproduces paper Fig. 6: recovery training time per epoch (seconds).
// Expected shape: TRMMA trains faster than the full-network seq2seq
// baselines on the larger networks because its classification layer is
// route-sized, not |E|-sized.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::PrintBanner("Fig. 6: recovery training time (s / epoch)");
  PrintHeader("method", CityNames());

  std::vector<double> trmma_row;
  std::vector<double> mtraj_row;
  std::vector<double> trajcl_row;
  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);
    trmma_row.push_back(TrainTrmma(stack, 2).seconds_per_epoch);
    mtraj_row.push_back(
        TrainSeq2Seq(stack, *stack.mtrajrec, 2).seconds_per_epoch);
    trajcl_row.push_back(
        TrainSeq2Seq(stack, *stack.trajformer, 2).seconds_per_epoch);
  }
  PrintRow("TRMMA", trmma_row, 16, 10, 3);
  PrintRow("MTrajRec", mtraj_row, 16, 10, 3);
  PrintRow("TrajCL+Dec", trajcl_row, 16, 10, 3);
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig6_recovery_training");
  trmma::Run();
  return 0;
}
