// Reproduces paper Fig. 7: recovery accuracy under varied sparsity gamma
// in {0.1..0.5}. Models are trained once at gamma=0.2 and evaluated on
// re-sparsified data (deviation documented in EXPERIMENTS.md). Expected
// shape: accuracy improves with denser input (larger gamma) for every
// method and TRMMA dominates at every level.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  const std::vector<double> gammas = {0.1, 0.2, 0.3, 0.4, 0.5};
  bench::EnableQualityTelemetry();
  bench::PrintBanner("Fig. 7: recovery accuracy vs sparsity gamma");

  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    ResparsifyDataset(ds, 0.2, 555);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);
    TrainMma(stack, scale.mma_epochs);
    TrainTrmma(stack, scale.trmma_epochs);

    std::printf("\n-- %s --\n", city.c_str());
    std::vector<std::string> cols;
    for (double g : gammas) cols.push_back("g=" + std::to_string(g).substr(0, 3));
    PrintHeader("method", cols);

    std::vector<RecoveryMethod*> methods = {stack.linear.get(),
                                            stack.nearest_linear.get(),
                                            stack.trmma.get()};
    std::vector<std::vector<double>> rows(methods.size());
    for (double gamma : gammas) {
      ResparsifyDataset(ds, gamma, 555 + static_cast<uint64_t>(gamma * 100));
      for (size_t i = 0; i < methods.size(); ++i) {
        auto ev = EvaluateRecovery(stack, *methods[i],
                                   std::min(scale.eval_cap, 120));
        rows[i].push_back(100 * ev.accuracy);
      }
    }
    for (size_t i = 0; i < methods.size(); ++i) {
      PrintRow(methods[i]->name(), rows[i]);
    }
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig7_recovery_sparsity");
  trmma::Run();
  return 0;
}
