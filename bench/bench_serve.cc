// Serving-engine load benchmark (DESIGN.md §11): trains a small stack on
// one city, stands up a ServingSession, probes its closed-loop capacity,
// then drives open-loop Poisson arrivals at 0.5×/1×/2× that capacity and
// reports the latency quantiles and the success/degraded/shed/timeout mix
// per offered load. At 2× capacity the engine must shed rather than queue
// without bound — the bench asserts the no-silent-drops accounting and the
// queue-cap ceiling, and writes a "serving" section into BENCH_serve.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/json.h"
#include "serve/session.h"

namespace trmma {
namespace {

struct SweepRow {
  std::string mode;  ///< "closed" or "open"
  double load_factor = 0.0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  serve::ServeStats counts;
  double shed_rate = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

serve::ServeStats Delta(const serve::ServeStats& before,
                        const serve::ServeStats& after) {
  serve::ServeStats d;
  d.submitted = after.submitted - before.submitted;
  d.success = after.success - before.success;
  d.degraded = after.degraded - before.degraded;
  d.shed = after.shed - before.shed;
  d.timeout = after.timeout - before.timeout;
  d.retries = after.retries - before.retries;
  d.hedges_launched = after.hedges_launched - before.hedges_launched;
  d.hedge_wins = after.hedge_wins - before.hedge_wins;
  d.deadline_expired = after.deadline_expired - before.deadline_expired;
  d.peak_queue_depth = after.peak_queue_depth;
  return d;
}

double Quantile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(q * (values.size() - 1));
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

void FillQuantiles(std::vector<double>& latencies, SweepRow* row) {
  row->p50_us = Quantile(latencies, 0.50);
  row->p95_us = Quantile(latencies, 0.95);
  row->p99_us = Quantile(latencies, 0.99);
}

/// The request mix: alternate map matching on the dense trace and recovery
/// on the sparse one, cycling over the test split.
serve::ServeRequest MakeRequest(const Dataset& ds, int i) {
  const TrajectorySample& sample =
      ds.samples[ds.test_idx[i % ds.test_idx.size()]];
  serve::ServeRequest req;
  if (i % 2 == 0) {
    req.kind = serve::RequestKind::kMatch;
    req.traj = sample.raw;
  } else {
    req.kind = serve::RequestKind::kRecover;
    req.traj = sample.sparse;
    req.epsilon = ds.epsilon_s;
  }
  return req;
}

/// Closed loop: `clients` threads each issue back-to-back requests; the
/// sustained completion rate is the engine's capacity.
SweepRow RunClosedLoop(serve::ServingSession& session, const Dataset& ds,
                       int clients, int per_client) {
  const serve::ServeStats before = session.stats();
  std::vector<std::vector<double>> latencies(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int k = 0; k < per_client; ++k) {
        serve::ServeResponse resp =
            session.SubmitAndWait(MakeRequest(ds, c * per_client + k));
        if (resp.outcome == serve::Outcome::kSuccess ||
            resp.outcome == serve::Outcome::kDegraded) {
          latencies[c].push_back(resp.latency_us);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SweepRow row;
  row.mode = "closed";
  row.load_factor = 1.0;
  row.counts = Delta(before, session.stats());
  const int64_t done = row.counts.success + row.counts.degraded;
  row.achieved_qps = seconds > 0 ? done / seconds : 0.0;
  row.offered_qps = row.achieved_qps;
  row.shed_rate = row.counts.submitted > 0
                      ? static_cast<double>(row.counts.shed) /
                            row.counts.submitted
                      : 0.0;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  FillQuantiles(all, &row);
  return row;
}

/// Open loop: Poisson arrivals at `offered_qps` from a deterministic
/// stream; submissions never wait for completions, so overload shows up as
/// shed/timeout mix instead of coordinated-omission-masked latencies.
SweepRow RunOpenLoop(serve::ServingSession& session, const Dataset& ds,
                     double load_factor, double offered_qps, int requests,
                     Rng& rng) {
  const serve::ServeStats before = session.stats();
  std::vector<std::future<serve::ServeResponse>> futures;
  futures.reserve(requests);
  const auto start = std::chrono::steady_clock::now();
  auto next_arrival = start;
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    futures.push_back(session.Submit(MakeRequest(ds, i)));
    const double gap_s =
        -std::log(1.0 - rng.Uniform()) / std::max(offered_qps, 1e-9);
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
  }
  std::vector<double> latencies;
  for (auto& f : futures) {
    serve::ServeResponse resp = f.get();
    if (resp.outcome == serve::Outcome::kSuccess ||
        resp.outcome == serve::Outcome::kDegraded) {
      latencies.push_back(resp.latency_us);
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SweepRow row;
  row.mode = "open";
  row.load_factor = load_factor;
  row.offered_qps = offered_qps;
  row.counts = Delta(before, session.stats());
  const int64_t done = row.counts.success + row.counts.degraded;
  row.achieved_qps = seconds > 0 ? done / seconds : 0.0;
  row.shed_rate = row.counts.submitted > 0
                      ? static_cast<double>(row.counts.shed) /
                            row.counts.submitted
                      : 0.0;
  FillQuantiles(latencies, &row);
  return row;
}

std::string ServingSectionJson(const serve::ServeConfig& config,
                               double capacity_qps,
                               const std::vector<SweepRow>& rows) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("threads").Int(config.threads);
  w.Key("queue_cap").Int(config.queue_cap);
  w.Key("deadline_ms").Number(config.deadline_ms);
  w.Key("capacity_qps").Number(capacity_qps);
  w.Key("rows").BeginArray();
  for (const SweepRow& row : rows) {
    w.BeginObject();
    w.Key("mode").String(row.mode);
    w.Key("load_factor").Number(row.load_factor);
    w.Key("offered_qps").Number(row.offered_qps);
    w.Key("achieved_qps").Number(row.achieved_qps);
    w.Key("submitted").Int(row.counts.submitted);
    w.Key("success").Int(row.counts.success);
    w.Key("degraded").Int(row.counts.degraded);
    w.Key("shed").Int(row.counts.shed);
    w.Key("timeout").Int(row.counts.timeout);
    w.Key("retries").Int(row.counts.retries);
    w.Key("shed_rate").Number(row.shed_rate);
    w.Key("p50_us").Number(row.p50_us);
    w.Key("p95_us").Number(row.p95_us);
    w.Key("p99_us").Number(row.p99_us);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void PrintSweepRow(const SweepRow& row) {
  std::printf(
      "%-6s x%.1f  offered %8.1f  achieved %8.1f  ok %5lld deg %4lld "
      "shed %4lld to %4lld  p50 %8.0fus p99 %8.0fus\n",
      row.mode.c_str(), row.load_factor, row.offered_qps, row.achieved_qps,
      static_cast<long long>(row.counts.success),
      static_cast<long long>(row.counts.degraded),
      static_cast<long long>(row.counts.shed),
      static_cast<long long>(row.counts.timeout), row.p50_us, row.p99_us);
  std::fflush(stdout);
}

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::PrintBanner("Serving: latency/outcome mix vs offered load");

  // The serving bench always publishes a "profile" section, so it
  // self-starts the sampler when TRMMA_CPU_PROFILE didn't already (the env
  // path, handled by BenchRun, wins; "0"/"off" opts out entirely). Builds
  // where the profiler can't run (sanitizers) still get the section, with
  // zero samples — the CI gate that demands samples runs on plain builds.
  obs::CpuProfiler& profiler = obs::CpuProfiler::Global();
  {
    const char* prof_env = std::getenv("TRMMA_CPU_PROFILE");
    const bool opted_out =
        prof_env != nullptr && (std::strcmp(prof_env, "0") == 0 ||
                                std::strcmp(prof_env, "off") == 0);
    if (!profiler.running() && !opted_out) {
      const Status started = profiler.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "cpu profiler unavailable: %s\n",
                     started.ToString().c_str());
      }
    }
  }

  Dataset ds = bench::BuildBenchDataset("PT", scale);
  StackConfig config;
  ExperimentStack stack = BuildStack(ds, config);
  {
    // Serving latency does not depend on weight quality (same argument as
    // the fig9 timing bench), so training stays light at every scale.
    obs::ScopedPhase phase("serve.train");
    TrainMma(stack, std::min(scale.mma_epochs, 2));
    TrainTrmma(stack, std::min(scale.trmma_epochs, 2));
  }

  serve::SessionConfig session_config;
  session_config.serve = serve::ServeConfig::FromEnv();
  session_config.epsilon = ds.epsilon_s;
  auto session = serve::ServingSession::Create(stack, session_config);
  TRMMA_CHECK(session.ok()) << session.status().ToString();
  const serve::ServeConfig& serve_config = (*session)->config().serve;

  obs::RunReport& report = obs::RunReport::Global();
  report.SetFingerprintNumber("serve.threads", serve_config.threads);
  report.SetFingerprintNumber("serve.queue_cap", serve_config.queue_cap);
  report.SetFingerprintNumber("serve.deadline_ms", serve_config.deadline_ms);

  std::vector<SweepRow> rows;
  double capacity_qps = 0.0;
  {
    obs::ScopedPhase phase("serve.closed_loop");
    const int per_client = std::max(8, scale.eval_cap / 2);
    rows.push_back(RunClosedLoop(**session, ds, serve_config.threads,
                                 per_client));
    capacity_qps = std::max(rows.back().achieved_qps, 1.0);
    PrintSweepRow(rows.back());
  }
  {
    obs::ScopedPhase phase("serve.open_loop");
    Rng arrivals(20250808);
    for (double factor : {0.5, 1.0, 2.0}) {
      const double offered = factor * capacity_qps;
      // Sized to the queue: the 2× leg must offer clearly more work than
      // the queue can absorb, so overload shows up as sheds, not backlog.
      const int requests = std::max(
          40, static_cast<int>(factor * 2 * serve_config.queue_cap));
      rows.push_back(
          RunOpenLoop(**session, ds, factor, offered, requests, arrivals));
      PrintSweepRow(rows.back());
    }
  }

  (*session)->Stop();
  const serve::ServeStats total = (*session)->stats();
  TRMMA_CHECK(total.Consistent())
      << "accounting broke: " << total.success << "+" << total.degraded << "+"
      << total.shed << "+" << total.timeout << " != " << total.submitted;
  TRMMA_CHECK_LE(total.peak_queue_depth, serve_config.queue_cap)
      << "queue grew past its cap";

  report.SetSectionJson(
      "serving", ServingSectionJson(serve_config, capacity_qps, rows));
  // Fold pending samples before snapshotting the profile. Stop() disarms
  // the timer only; an env-requested exit dump still sees the aggregate.
  profiler.Stop();
  report.SetSectionJson("profile", profiler.ProfileSectionJson(20));
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("serve");
  trmma::Run();
  return 0;
}
