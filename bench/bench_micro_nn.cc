// Micro-benchmarks (google-benchmark) of the neural-network substrate:
// matmul kernel, transformer forward, GRU step, and a full forward+backward
// pass. Not a paper figure; used to track substrate regressions.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "common/random.h"
#include "nn/gru.h"
#include "obs/hw_counters.h"
#include "nn/ops.h"
#include "nn/transformer.h"

namespace trmma {
namespace nn {
namespace {

namespace ops = nn::ops;

Matrix RandomMatrix(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(-1, 1);
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  Matrix out;
  for (auto _ : state) {
    MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_TransformerForward(benchmark::State& state) {
  Rng rng(3);
  TransformerEncoder enc(32, 2, 64, 2, rng);
  Matrix x = RandomMatrix(static_cast<int>(state.range(0)), 32, 4);
  for (auto _ : state) {
    Tape tape;
    Tensor y = enc.Forward(ops::Input(tape, x));
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_TransformerForward)->Arg(8)->Arg(32)->Arg(64);

void BM_GruUnroll(benchmark::State& state) {
  Rng rng(5);
  GruCell gru(33, 32, rng);
  Matrix x = RandomMatrix(1, 33, 6);
  const int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Tape tape;
    Tensor h = ops::Input(tape, Matrix(1, 32));
    for (int t = 0; t < steps; ++t) {
      h = gru.Step(ops::Input(tape, x), h);
    }
    benchmark::DoNotOptimize(h.value().data());
  }
}
BENCHMARK(BM_GruUnroll)->Arg(10)->Arg(40);

void BM_ForwardBackward(benchmark::State& state) {
  Rng rng(7);
  TransformerEncoder enc(32, 2, 64, 2, rng);
  Matrix x = RandomMatrix(24, 32, 8);
  for (auto _ : state) {
    Tape tape;
    Tensor y = enc.Forward(ops::Input(tape, x));
    Tensor loss = ops::SumAll(ops::Mul(y, y));
    tape.Backward(loss);
    enc.ZeroGrad();
    benchmark::DoNotOptimize(loss.value().at(0, 0));
  }
}
BENCHMARK(BM_ForwardBackward);

/// Profiler self-check, run after the google-benchmark loops so it cannot
/// distort their timings: profiles a batch of forward+backward passes and
/// reports which fraction of their wall time the per-op table accounts for.
/// The gap is tape bookkeeping and timer overhead; the acceptance bar for
/// the profiler is >= 0.9 at this workload size.
void RunOpProfilerCoverage() {
  obs::ScopedPhase phase("op_profiler_coverage");
  const bool was_enabled = OpProfiler::Enabled();
  OpProfiler::SetEnabled(true);
  OpProfiler::Global().Reset();
  Rng rng(7);
  TransformerEncoder enc(32, 2, 64, 2, rng);
  Matrix x = RandomMatrix(24, 32, 8);
  const double t0 = obs::NowMicros();
  for (int i = 0; i < 50; ++i) {
    const double pass_t0 = obs::NowMicros();
    Tape tape;
    Tensor y = enc.Forward(ops::Input(tape, x));
    Tensor loss = ops::SumAll(ops::Mul(y, y));
    tape.Backward(loss);
    enc.ZeroGrad();
    benchmark::DoNotOptimize(loss.value().at(0, 0));
    if (obs::MetricsEnabled()) {
      obs::MetricRegistry::Global()
          .GetHistogram("micro_nn.fwd_bwd_us")
          ->Observe(obs::NowMicros() - pass_t0);
    }
  }
  const double wall_us = obs::NowMicros() - t0;
  const double accounted_us = OpProfiler::Global().TotalAccountedMicros();
  const double coverage = wall_us > 0.0 ? accounted_us / wall_us : 0.0;
  std::printf("---- op profile (50x transformer fwd+bwd) ----\n%s",
              OpProfiler::Global().DumpString().c_str());
  std::printf("profiler coverage: %.1f%% of %.3f ms wall\n", coverage * 100.0,
              wall_us / 1e3);
  obs::RunReport::Global().SetFingerprintNumber("op_profile.coverage",
                                                coverage);
  OpProfiler::SetEnabled(was_enabled);
}

/// Hardware-annotated matmul sweep, also run after the google-benchmark
/// loops: enables the counter subsystem (unless the host or TRMMA_HW_COUNTERS
/// refuses), calibrates the machine roofline, then measures scaled counter
/// deltas around MatMul at sizes 64–1024. Each point records the analytic
/// FLOP (2n^3 per multiply) and traffic (3n^2 doubles) estimates next to
/// measured cycles, giving the pinned scalar roofline baseline the SIMD
/// work will be judged against. On perf-restricted hosts the report keeps a
/// validating {"available": false, "reason": ...} section instead.
void RunHwCounterMatmulSweep() {
  obs::ScopedPhase phase("hw_matmul_sweep");
  obs::HwCounters& hw = obs::HwCounters::Global();
  if (!hw.Enable().ok()) {
    std::printf("hw counter sweep skipped: %s\n", hw.reason().c_str());
    return;
  }
  const obs::HwCalibration calib = hw.Calibrate();
  if (calib.measured) {
    std::printf("hw calibration: %.2f flop/cycle, %.2f bytes/cycle peak\n",
                calib.flop_per_cycle, calib.bytes_per_cycle);
  }
  for (const int n : {64, 128, 256, 512, 1024}) {
    Matrix a = RandomMatrix(n, n, 11);
    Matrix b = RandomMatrix(n, n, 12);
    Matrix out;
    MatMul(a, b, &out);  // warm: page in the matrices outside the scope
    // Iterate small sizes enough to swamp the two group reads (~1 µs).
    const int iters = n >= 512 ? 1 : (n >= 256 ? 4 : 16);
    obs::HwCounterScope scope(true);
    for (int i = 0; i < iters; ++i) MatMul(a, b, &out);
    obs::HwCounterDelta delta;
    if (!scope.End(&delta)) continue;
    const double flops = 2.0 * n * n * n * iters;
    const double bytes = 3.0 * n * n * sizeof(double) * iters;
    hw.RecordSweepPoint("matmul", n, delta, flops, bytes);
    std::printf("matmul n=%4d: %.3g cycles, ipc %.2f, %.3f flop/cycle\n", n,
                delta.cycles(), delta.ipc(),
                delta.cycles() > 0.0 ? flops / delta.cycles() : 0.0);
  }
}

}  // namespace
}  // namespace nn
}  // namespace trmma

int main(int argc, char** argv) {
  trmma::bench::BenchRun run("micro_nn");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  trmma::nn::RunOpProfilerCoverage();
  trmma::nn::RunHwCounterMatmulSweep();
  return 0;
}
