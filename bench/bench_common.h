#ifndef TRMMA_BENCH_BENCH_COMMON_H_
#define TRMMA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "eval/experiment.h"
#include "eval/inspect.h"
#include "nn/profiler.h"
#include "obs/cpu_profiler.h"
#include "obs/flight_recorder.h"
#include "obs/hw_counters.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/quality.h"
#include "obs/stall_watchdog.h"
#include "obs/report.h"
#include "obs/slo.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace trmma {
namespace bench {

/// Workload sizes for the reproduction benches. The defaults ("full")
/// regenerate every paper table/figure in tens of minutes on one CPU;
/// setting the environment variable TRMMA_BENCH_SCALE=quick shrinks
/// everything for a fast smoke run, and TRMMA_BENCH_SCALE=smoke shrinks
/// further still (CI-sized: seconds per bench, combined with
/// TRMMA_BENCH_CITIES to limit the city sweep).
struct BenchScale {
  int traj_main = 2400;   ///< trajectories for PT / XA / CD
  int traj_bj = 2000;     ///< Beijing (largest network, longest trips)
  int eval_cap = 150;     ///< test trajectories evaluated per method
  int mma_epochs = 8;
  int lhmm_epochs = 3;
  int deepmm_epochs = 20;
  int trmma_epochs = 6;
  int seq2seq_epochs = 12;
};

inline const char* ScaleName() {
  const char* env = std::getenv("TRMMA_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "quick") == 0) return "quick";
  if (env != nullptr && std::strcmp(env, "smoke") == 0) return "smoke";
  return "full";
}

inline BenchScale GetScale() {
  BenchScale s;
  const std::string scale = ScaleName();
  if (scale == "quick") {
    s.traj_main = 300;
    s.traj_bj = 200;
    s.eval_cap = 40;
    s.mma_epochs = 2;
    s.deepmm_epochs = 3;
    s.trmma_epochs = 2;
    s.seq2seq_epochs = 2;
  } else if (scale == "smoke") {
    s.traj_main = 80;
    s.traj_bj = 50;
    s.eval_cap = 10;
    s.mma_epochs = 1;
    s.lhmm_epochs = 1;
    s.deepmm_epochs = 1;
    s.trmma_epochs = 1;
    s.seq2seq_epochs = 1;
  }
  return s;
}

inline int TrajCountFor(const std::string& city, const BenchScale& scale) {
  return city == "BJ" ? scale.traj_bj : scale.traj_main;
}

/// Builds the dataset for one city at bench scale; aborts on failure. The
/// build is a report phase and the dataset shape goes into the run
/// fingerprint, so a BENCH_*.json pins down exactly what was measured.
inline Dataset BuildBenchDataset(const std::string& city,
                                 const BenchScale& scale) {
  obs::ScopedPhase phase("dataset." + city);
  auto ds = BuildCityDatasetByName(city, TrajCountFor(city, scale));
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset %s failed: %s\n", city.c_str(),
                 ds.status().ToString().c_str());
    std::abort();
  }
  obs::RunReport& report = obs::RunReport::Global();
  const std::string prefix = "dataset." + city + ".";
  report.SetFingerprintNumber(prefix + "samples",
                              static_cast<double>(ds->samples.size()));
  report.SetFingerprintNumber(prefix + "nodes",
                              static_cast<double>(ds->network->num_nodes()));
  report.SetFingerprintNumber(
      prefix + "segments", static_cast<double>(ds->network->num_segments()));
  report.SetFingerprintNumber(prefix + "epsilon_s", ds->epsilon_s);
  report.SetFingerprintNumber(prefix + "gamma", ds->gamma);
  return std::move(ds).value();
}

/// Beijing's deep baselines get fewer epochs (its |E|-sized output layers
/// dominate; the point of the paper's comparison is exactly that cost).
inline int DeepEpochsFor(const std::string& city, int epochs) {
  return city == "BJ" ? std::max(2, epochs / 2) : epochs;
}

inline void PrintBanner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::fflush(stdout);
}

/// Turns on the flight recorder at 1-in-`sample_every` sampling for the
/// record/replay benches (fig5 / fig9). TRMMA_FLIGHT_RECORDER in the
/// environment wins: when the user already configured the recorder this is
/// a no-op, so an operator can force sample_every=1 or a custom path. The
/// JSONL sink goes next to the BENCH json when TRMMA_OBS_DIR is set.
inline void EnableFlightRecorder(int sample_every) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  if (recorder.enabled()) return;
  obs::FlightRecorderConfig config = obs::FlightRecorderConfigFromEnv();
  config.enabled = true;
  config.sample_every = sample_every;
  const char* dir = std::getenv("TRMMA_OBS_DIR");
  if (dir != nullptr && *dir != '\0' &&
      config.path == "flight_records.jsonl") {
    config.path = std::string(dir) + "/flight_records.jsonl";
  }
  recorder.Configure(config);
}

/// Turns on quality telemetry for the accuracy benches (Tables 3/4/5,
/// Figs. 7/11): every request's accuracy is attributed to slices and the
/// report gains a "quality" section. TRMMA_QUALITY=0 in the environment
/// wins, so an operator can time a run without the capture overhead.
inline void EnableQualityTelemetry() {
  const char* env = std::getenv("TRMMA_QUALITY");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') return;
  obs::QualityLog::Global().Configure(true);
}

/// Replays every exemplar retained for `stack`'s city against the live
/// (still-trained) stack and aborts on any segment/offset divergence — the
/// bench-level record/replay determinism contract. Mismatches also land in
/// the report's flight_recorder section via AddReplayMismatches.
inline void CheckFlightReplay(ExperimentStack& stack) {
  if (!obs::FlightRecorder::Global().enabled()) return;
  const std::int64_t mismatches = ReplayRetainedRecords(stack);
  TRMMA_CHECK_EQ(mismatches, 0)
      << "flight-recorder replay diverged for city " << stack.dataset->name;
}

/// Per-bench observability bracket, constructed first thing in main():
///  - applies TRMMA_LOG_LEVEL and TRMMA_LOG_FILE,
///  - turns on metric collection (TraceMode::kMetrics) unless TRMMA_TRACE
///    already asked for more,
///  - turns on memory accounting (TRMMA_MEM_STATS=0 opts out), loads SLO
///    objectives from TRMMA_SLO_FILE, serves live telemetry when
///    TRMMA_HTTP_PORT is set, and starts the sampling CPU profiler when
///    TRMMA_CPU_PROFILE is set (see obs/cpu_profiler.h),
///  - names the global run report and stamps the scale fingerprint,
///  - on destruction stops the telemetry server, then writes
///    BENCH_<name>.json (to $TRMMA_OBS_DIR or the working directory) and,
///    under TRMMA_TRACE, dumps the span ring.
class BenchRun {
 public:
  explicit BenchRun(const std::string& name) {
    SetMinLogLevelFromEnv();
    SetLogFileFromEnv();
    if (obs::CurrentTraceMode() == obs::TraceMode::kOff) {
      obs::SetTraceMode(obs::TraceMode::kMetrics);
    }
    obs::InitMemStatsFromEnv();
    obs::SloWatchdog::Global().InstallFromEnv();
    obs::TelemetryServer::Global().StartFromEnv();
    obs::CpuProfiler::Global().StartFromEnv();
    // After the CPU profiler so that when both TRMMA_CPU_PROFILE and
    // TRMMA_HW_COUNTERS are set, the counters lose the interlock and log
    // why (arbitrary but deterministic: the profiler was asked first).
    obs::HwCounters::Global().EnableFromEnv();
    // Postmortem surface: a crash (or external kill -SEGV) during any bench
    // leaves a schema-valid report when TRMMA_POSTMORTEM_DIR is set, and
    // TRMMA_WATCHDOG_MS arms the stuck-request scanner. The install path
    // registers the calling thread so the report's thread list includes main.
    obs::InstallCrashHandlerFromEnv();
    obs::StallWatchdog::Global().StartFromEnv();
    obs::RunReport& report = obs::RunReport::Global();
    report.SetName(name);
    report.SetFingerprint("scale", ScaleName());
    const char* cities = std::getenv("TRMMA_BENCH_CITIES");
    if (cities != nullptr && *cities != '\0') {
      report.SetFingerprint("cities", cities);
    }
  }

  ~BenchRun() {
    // Stop serving before the final report snapshot: no scrape should race
    // the registry while the report is being written, and the accept thread
    // must be joined for a clean ASan/LSan exit. Smoke-scale runs can
    // finish in under a scrape round-trip, so TRMMA_HTTP_LINGER_MS holds
    // the exporter open until the scraper GETs /quitz (or the cap passes).
    obs::TelemetryServer& server = obs::TelemetryServer::Global();
    const char* linger = std::getenv("TRMMA_HTTP_LINGER_MS");
    if (server.running() && linger != nullptr && *linger != '\0') {
      server.WaitForQuit(std::atoi(linger));
    }
    server.Stop();
    // Join the watchdog scan thread too — same clean-exit reasoning.
    obs::StallWatchdog::Global().Stop();
    if (obs::CurrentTraceMode() == obs::TraceMode::kTrace) {
      std::fprintf(stderr, "---- trace ring (most recent spans) ----\n%s",
                   obs::TraceRing::Global().DumpString().c_str());
      const std::string trace_path = obs::ExportChromeTraceFromEnv();
      if (!trace_path.empty()) {
        std::printf("chrome trace: %s (load in chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    trace_path.c_str());
      }
    }
    if (nn::OpProfiler::Enabled()) {
      std::printf("---- op profile ----\n%s",
                  nn::OpProfiler::Global().DumpString().c_str());
    }
    auto path = obs::RunReport::Global().WriteFile();
    if (path.ok()) {
      std::printf("report: %s\n", path.value().c_str());
    } else {
      std::fprintf(stderr, "report write failed: %s\n",
                   path.status().ToString().c_str());
    }
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;
};

}  // namespace bench
}  // namespace trmma

#endif  // TRMMA_BENCH_BENCH_COMMON_H_
