#ifndef TRMMA_BENCH_BENCH_COMMON_H_
#define TRMMA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/experiment.h"

namespace trmma {
namespace bench {

/// Workload sizes for the reproduction benches. The defaults ("full")
/// regenerate every paper table/figure in tens of minutes on one CPU;
/// setting the environment variable TRMMA_BENCH_SCALE=quick shrinks
/// everything for a fast smoke run.
struct BenchScale {
  int traj_main = 2400;   ///< trajectories for PT / XA / CD
  int traj_bj = 2000;     ///< Beijing (largest network, longest trips)
  int eval_cap = 150;     ///< test trajectories evaluated per method
  int mma_epochs = 8;
  int lhmm_epochs = 3;
  int deepmm_epochs = 20;
  int trmma_epochs = 6;
  int seq2seq_epochs = 12;
};

inline BenchScale GetScale() {
  BenchScale s;
  const char* env = std::getenv("TRMMA_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "quick") == 0) {
    s.traj_main = 300;
    s.traj_bj = 200;
    s.eval_cap = 40;
    s.mma_epochs = 2;
    s.deepmm_epochs = 3;
    s.trmma_epochs = 2;
    s.seq2seq_epochs = 2;
  }
  return s;
}

inline int TrajCountFor(const std::string& city, const BenchScale& scale) {
  return city == "BJ" ? scale.traj_bj : scale.traj_main;
}

/// Builds the dataset for one city at bench scale; aborts on failure.
inline Dataset BuildBenchDataset(const std::string& city,
                                 const BenchScale& scale) {
  auto ds = BuildCityDatasetByName(city, TrajCountFor(city, scale));
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset %s failed: %s\n", city.c_str(),
                 ds.status().ToString().c_str());
    std::abort();
  }
  return std::move(ds).value();
}

/// Beijing's deep baselines get fewer epochs (its |E|-sized output layers
/// dominate; the point of the paper's comparison is exactly that cost).
inline int DeepEpochsFor(const std::string& city, int epochs) {
  return city == "BJ" ? std::max(2, epochs / 2) : epochs;
}

inline void PrintBanner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace trmma

#endif  // TRMMA_BENCH_BENCH_COMMON_H_
