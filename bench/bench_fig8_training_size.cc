// Reproduces paper Fig. 8: recovery accuracy when training on 1%..100% of
// the training split. Linear needs no training and serves as the flat
// benchmark line. Expected shape: learned methods improve with more data;
// TRMMA overtakes Linear after a small fraction and keeps the lead.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  const std::vector<double> fractions = {0.01, 0.03, 0.1, 0.3, 1.0};
  bench::PrintBanner("Fig. 8: recovery accuracy vs training data fraction");

  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;

    std::printf("\n-- %s --\n", city.c_str());
    std::vector<std::string> cols;
    for (double f : fractions) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%g%%", f * 100);
      cols.push_back(buf);
    }
    PrintHeader("method", cols);

    std::vector<double> linear_row;
    std::vector<double> trmma_row;
    const int cap = std::min(scale.eval_cap, 120);
    for (double fraction : fractions) {
      // Fresh stack per fraction so models start untrained.
      ExperimentStack stack = BuildStack(ds, config);
      TrainMma(stack, scale.mma_epochs, fraction);
      TrainTrmma(stack, scale.trmma_epochs, fraction);
      trmma_row.push_back(
          100 * EvaluateRecovery(stack, *stack.trmma, cap).accuracy);
      if (linear_row.empty()) {
        const double linear_acc =
            100 * EvaluateRecovery(stack, *stack.linear, cap).accuracy;
        linear_row.assign(fractions.size(), linear_acc);
      }
    }
    PrintRow("Linear", linear_row);
    PrintRow("TRMMA", trmma_row);
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig8_training_size");
  trmma::Run();
  return 0;
}
