// Reproduces paper Fig. 11: map-matching F1 under varied sparsity
// gamma in {0.1..0.5} (sparse interval = epsilon/gamma). Models are
// trained once at gamma=0.2 and evaluated on re-sparsified data (see
// EXPERIMENTS.md for this deviation). Expected shape: every method
// degrades as gamma shrinks; MMA stays on top at every level.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  const std::vector<double> gammas = {0.1, 0.2, 0.3, 0.4, 0.5};
  bench::EnableQualityTelemetry();
  bench::PrintBanner("Fig. 11: map matching F1 vs sparsity gamma");

  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    ResparsifyDataset(ds, 0.2, 1234);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);
    TrainLhmm(stack, scale.lhmm_epochs);
    TrainMma(stack, scale.mma_epochs);

    std::printf("\n-- %s --\n", city.c_str());
    std::vector<std::string> cols;
    for (double g : gammas) cols.push_back("g=" + std::to_string(g).substr(0, 3));
    PrintHeader("method", cols);

    std::vector<MapMatcher*> methods = {stack.nearest.get(), stack.fmm.get(),
                                        stack.lhmm.get(), stack.mma.get()};
    std::vector<std::vector<double>> rows(methods.size());
    for (double gamma : gammas) {
      ResparsifyDataset(ds, gamma, 1234 + static_cast<uint64_t>(gamma * 100));
      for (size_t i = 0; i < methods.size(); ++i) {
        auto ev = EvaluateMapMatching(stack, *methods[i],
                                      std::min(scale.eval_cap, 120));
        rows[i].push_back(100 * ev.metrics.f1);
      }
    }
    for (size_t i = 0; i < methods.size(); ++i) {
      PrintRow(methods[i]->name(), rows[i]);
    }
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("fig11_mm_sparsity");
  trmma::Run();
  return 0;
}
