// Reproduces paper Table V: map-matching quality (Precision / Recall / F1
// / Jaccard, in percent) of Nearest, HMM, FMM, LHMM, DeepMM and MMA on the
// four datasets. Expected shape: MMA best on every dataset, Nearest worst,
// FMM/LHMM strong classical baselines.
#include "bench/bench_common.h"

namespace trmma {
namespace {

void Run() {
  const bench::BenchScale scale = bench::GetScale();
  bench::EnableQualityTelemetry();
  bench::PrintBanner("Table V: map matching effectiveness (%)");
  for (const std::string& city : CityNames()) {
    Dataset ds = bench::BuildBenchDataset(city, scale);
    StackConfig config;
    ExperimentStack stack = BuildStack(ds, config);

    TrainLhmm(stack, scale.lhmm_epochs);
    TrainDeepMm(stack, bench::DeepEpochsFor(city, scale.deepmm_epochs));
    TrainMma(stack, scale.mma_epochs);

    std::printf("\n-- %s --\n", city.c_str());
    PrintHeader("method", {"Prec", "Recall", "F1", "Jaccard"});
    std::vector<MapMatcher*> methods = {
        stack.nearest.get(), stack.hmm.get(),    stack.fmm.get(),
        stack.lhmm.get(),    stack.deepmm.get(), stack.mma.get()};
    for (MapMatcher* m : methods) {
      auto ev = EvaluateMapMatching(stack, *m, scale.eval_cap);
      PrintRow(m->name(),
               {100 * ev.metrics.precision, 100 * ev.metrics.recall,
                100 * ev.metrics.f1, 100 * ev.metrics.jaccard});
    }
  }
}

}  // namespace
}  // namespace trmma

int main() {
  trmma::bench::BenchRun run("table5_mm_quality");
  trmma::Run();
  return 0;
}
