#!/usr/bin/env python3
"""End-to-end exercise of the trmma_inspect CLI (run from ctest).

Drives the full loop on a generated city:
  demo     -> writes a JSONL records file with sample_every=1
  summary  -> aggregate view parses and mentions every captured kind
  show     -> per-request decision trace includes the request id
  geojson  -> output is a valid FeatureCollection in (lng, lat) order
  replay   -> exits 0 and reports an exact route reproduction

plus two negative checks: a corrupted records file must be rejected, and a
tampered record must make `replay` exit nonzero with a mismatch report.

The `slo` subcommand gets the same treatment: a satisfied objective set
exits 0, a violated objective is printed as BREACH and exits 1, objectives
over absent metrics report NO DATA without failing, and malformed SLO files
are rejected.

The `postmortem` subcommand is exercised against the committed golden crash
report (must validate and print the faulting stack) plus three negatives:
a truncated file, a tampered trace id, and a report whose fatal signal has
no faulting thread. Stdlib only, so it runs inside ctest with no extra
dependencies.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run(cmd, **kwargs):
    print("+ " + " ".join(cmd), flush=True)
    return subprocess.run(cmd, capture_output=True, text=True, **kwargs)


def check(cond, what):
    if not cond:
        print(f"FAIL: {what}")
        sys.exit(1)
    print(f"OK: {what}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the trmma_inspect executable")
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--city", default="XA")
    parser.add_argument("--trajectories", default="60")
    parser.add_argument("--slo-default", default=None,
                        help="committed default SLO file to sanity-check")
    parser.add_argument("--postmortem-golden", default=None,
                        help="committed golden postmortem report")
    args = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="trmma_inspect_", dir=args.workdir or None)
    records = os.path.join(tmp, "records.jsonl")

    # demo: produce a records file.
    demo = run([args.binary, "demo", records, args.city, args.trajectories])
    check(demo.returncode == 0, f"demo exits 0 (stderr: {demo.stderr[:200]})")
    check("requests captured" in demo.stdout, "demo reports capture counts")
    check(os.path.getsize(records) > 0, "demo wrote a non-empty JSONL file")

    lines = [json.loads(l) for l in open(records) if l.strip()]
    check(len(lines) > 0, "records parse as JSON lines")
    kinds = {r["kind"] for r in lines}
    check("mm" in kinds and "recovery" in kinds,
          f"both request kinds captured (got {sorted(kinds)})")
    mm = next(r for r in lines if r["kind"] == "mm" and r.get("route"))
    rec = next(r for r in lines if r["kind"] == "recovery"
               and r.get("recovered"))

    # summary: aggregates over the whole file.
    summary = run([args.binary, "summary", records])
    check(summary.returncode == 0, "summary exits 0")
    check(f"records: {len(lines)}" in summary.stdout,
          "summary counts every record")
    check("latency" in summary.stdout, "summary reports latency percentiles")

    # show: the full decision trace of one request.
    show = run([args.binary, "show", records, mm["id"]])
    check(show.returncode == 0, "show exits 0")
    check(mm["id"] in show.stdout, "show prints the request id")
    check("route" in show.stdout, "show prints the matched route")

    # geojson: a valid FeatureCollection with (lng, lat) coordinates.
    geo = run([args.binary, "geojson", records, mm["id"]])
    check(geo.returncode == 0, "geojson exits 0")
    doc = json.loads(geo.stdout)
    check(doc.get("type") == "FeatureCollection", "geojson FeatureCollection")
    features = doc.get("features", [])
    check(len(features) > 0, "geojson has features")
    layers = {f["properties"]["layer"] for f in features}
    check("gps" in layers, f"geojson carries a gps layer (got {layers})")
    point = next(f for f in features
                 if f["geometry"]["type"] == "Point")
    lng, lat = point["geometry"]["coordinates"]
    check(abs(lng) > abs(lat), "coordinates are (lng, lat) ordered")

    # replay: both a map-matching and a recovery exemplar reproduce.
    for record in (mm, rec):
        replay = run([args.binary, "replay", records, record["id"]])
        check(replay.returncode == 0,
              f"replay {record['id']} exits 0 "
              f"(stdout: {replay.stdout[:300]})")
        check("replay OK" in replay.stdout,
              f"replay {record['id']} reports exact reproduction")

    # Negative: corrupted file is rejected loudly.
    corrupted = os.path.join(tmp, "corrupted.jsonl")
    with open(records) as src, open(corrupted, "w") as dst:
        dst.write(src.read())
        dst.write('{"id": "req-999999", "route": [1, 2\n')
    bad = run([args.binary, "summary", corrupted])
    check(bad.returncode != 0, "summary rejects a corrupted records file")

    # Negative: a tampered route must be flagged as a replay mismatch.
    tampered = os.path.join(tmp, "tampered.jsonl")
    twisted = dict(mm)
    twisted["route"] = [s + 1 for s in mm["route"]]
    with open(tampered, "w") as out:
        out.write(json.dumps(twisted) + "\n")
    mismatch = run([args.binary, "replay", tampered, twisted["id"]])
    check(mismatch.returncode != 0, "replay flags a tampered route")
    check("REPLAY MISMATCH" in mismatch.stdout,
          "replay prints the mismatch banner")

    # slo: offline objective evaluation against a BENCH-shaped report.
    report = os.path.join(tmp, "BENCH_slo_demo.json")
    with open(report, "w") as out:
        json.dump({"name": "slo_demo", "metrics": {
            "counters": [
                {"name": "errs", "labels": {}, "value": 7}],
            "gauges": [
                {"name": "rss", "labels": {}, "value": 1000.0}],
            "histograms": [
                {"name": "lat.us", "labels": {}, "count": 10, "sum": 100,
                 "min": 1, "max": 50, "mean": 10, "p50": 8, "p95": 40,
                 "p99": 49}],
        }}, out)

    slo_ok = os.path.join(tmp, "slo_ok.json")
    with open(slo_ok, "w") as out:
        json.dump({"objectives": [
            {"name": "lat_p95", "histogram": "lat.us", "stat": "p95",
             "max": 100},
            {"name": "rss_cap", "gauge": "rss", "max": 2000},
            {"name": "absent", "counter": "not.collected", "max": 0},
        ]}, out)
    ok = run([args.binary, "slo", slo_ok, report])
    check(ok.returncode == 0, "slo exits 0 when every objective holds")
    check("3 objective(s), 0 breach(es)" in ok.stdout,
          "slo prints the summary line")
    check("NO DATA" in ok.stdout,
          "slo reports an absent metric as NO DATA, not a breach")

    # Negative: a violated objective must be a loud BREACH and exit 1.
    slo_bad = os.path.join(tmp, "slo_bad.json")
    with open(slo_bad, "w") as out:
        json.dump({"objectives": [
            {"name": "lat_p95_tight", "histogram": "lat.us", "stat": "p95",
             "max": 1},
            {"name": "no_errs", "counter": "errs", "max": 0},
        ]}, out)
    breach = run([args.binary, "slo", slo_bad, report])
    check(breach.returncode == 1, "slo exits 1 on a breached objective")
    check("BREACH" in breach.stdout, "slo prints BREACH verdicts")
    check("2 breach(es)" in breach.stdout, "slo counts both breaches")

    # Negative: malformed SLO documents are rejected.
    slo_malformed = os.path.join(tmp, "slo_malformed.json")
    with open(slo_malformed, "w") as out:
        out.write('{"objectives": [{"name": "x", "max": 1}]}')
    rejected = run([args.binary, "slo", slo_malformed, report])
    check(rejected.returncode != 0, "slo rejects an objective with no source")

    if args.slo_default:
        # The committed default objectives must parse and never breach on a
        # metrics-free report (everything NO DATA).
        empty = os.path.join(tmp, "BENCH_empty.json")
        with open(empty, "w") as out:
            json.dump({"name": "empty", "metrics": {
                "counters": [], "gauges": [], "histograms": []}}, out)
        default = run([args.binary, "slo", args.slo_default, empty])
        check(default.returncode == 0,
              "committed default SLO file parses and evaluates")

    if args.postmortem_golden:
        # postmortem: the committed golden crash report validates and the
        # summary names the faulting thread's top frame.
        golden = json.load(open(args.postmortem_golden))
        ok_pm = run([args.binary, "postmortem", args.postmortem_golden])
        check(ok_pm.returncode == 0, "postmortem accepts the golden report")
        check("postmortem OK" in ok_pm.stdout,
              "postmortem prints the OK banner")
        check(golden["signal"]["name"] in ok_pm.stdout,
              "postmortem names the fatal signal")
        faulting = next(t for t in golden["threads"] if t["faulting"])
        check("(faulting)" in ok_pm.stdout,
              "postmortem marks the faulting thread")
        check(faulting["frames"][0]["symbol"] in ok_pm.stdout,
              "postmortem prints the faulting thread's top frame")

        # Negative: a truncated report is rejected.
        truncated_pm = os.path.join(tmp, "postmortem_truncated.json")
        with open(args.postmortem_golden) as src:
            text = src.read()
        with open(truncated_pm, "w") as out:
            out.write(text[: len(text) // 2])
        bad_pm = run([args.binary, "postmortem", truncated_pm])
        check(bad_pm.returncode != 0,
              "postmortem rejects a truncated report")

        # Negative: a tampered trace id is rejected.
        tampered_pm = os.path.join(tmp, "postmortem_tampered.json")
        twisted_pm = json.loads(text)
        twisted_pm["inflight_requests"][0]["trace_id"] = "not-a-trace-id"
        with open(tampered_pm, "w") as out:
            json.dump(twisted_pm, out)
        bad_pm = run([args.binary, "postmortem", tampered_pm])
        check(bad_pm.returncode != 0,
              "postmortem rejects a tampered trace id")
        check("trace_id" in bad_pm.stderr,
              "postmortem names the offending field")

        # Negative: a fatal signal with no faulting thread is rejected.
        headless_pm = os.path.join(tmp, "postmortem_headless.json")
        twisted_pm = json.loads(text)
        for thread in twisted_pm["threads"]:
            thread["faulting"] = False
        with open(headless_pm, "w") as out:
            json.dump(twisted_pm, out)
        bad_pm = run([args.binary, "postmortem", headless_pm])
        check(bad_pm.returncode != 0,
              "postmortem requires a faulting thread on a fatal signal")

    print("all trmma_inspect checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
