#!/usr/bin/env python3
"""End-to-end exercise of the trmma_inspect CLI (run from ctest).

Drives the full loop on a generated city:
  demo     -> writes a JSONL records file with sample_every=1
  summary  -> aggregate view parses and mentions every captured kind
  show     -> per-request decision trace includes the request id
  geojson  -> output is a valid FeatureCollection in (lng, lat) order
  replay   -> exits 0 and reports an exact route reproduction

plus two negative checks: a corrupted records file must be rejected, and a
tampered record must make `replay` exit nonzero with a mismatch report.
Stdlib only, so it runs inside ctest with no extra dependencies.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run(cmd, **kwargs):
    print("+ " + " ".join(cmd), flush=True)
    return subprocess.run(cmd, capture_output=True, text=True, **kwargs)


def check(cond, what):
    if not cond:
        print(f"FAIL: {what}")
        sys.exit(1)
    print(f"OK: {what}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the trmma_inspect executable")
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--city", default="XA")
    parser.add_argument("--trajectories", default="60")
    args = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="trmma_inspect_", dir=args.workdir or None)
    records = os.path.join(tmp, "records.jsonl")

    # demo: produce a records file.
    demo = run([args.binary, "demo", records, args.city, args.trajectories])
    check(demo.returncode == 0, f"demo exits 0 (stderr: {demo.stderr[:200]})")
    check("requests captured" in demo.stdout, "demo reports capture counts")
    check(os.path.getsize(records) > 0, "demo wrote a non-empty JSONL file")

    lines = [json.loads(l) for l in open(records) if l.strip()]
    check(len(lines) > 0, "records parse as JSON lines")
    kinds = {r["kind"] for r in lines}
    check("mm" in kinds and "recovery" in kinds,
          f"both request kinds captured (got {sorted(kinds)})")
    mm = next(r for r in lines if r["kind"] == "mm" and r.get("route"))
    rec = next(r for r in lines if r["kind"] == "recovery"
               and r.get("recovered"))

    # summary: aggregates over the whole file.
    summary = run([args.binary, "summary", records])
    check(summary.returncode == 0, "summary exits 0")
    check(f"records: {len(lines)}" in summary.stdout,
          "summary counts every record")
    check("latency" in summary.stdout, "summary reports latency percentiles")

    # show: the full decision trace of one request.
    show = run([args.binary, "show", records, mm["id"]])
    check(show.returncode == 0, "show exits 0")
    check(mm["id"] in show.stdout, "show prints the request id")
    check("route" in show.stdout, "show prints the matched route")

    # geojson: a valid FeatureCollection with (lng, lat) coordinates.
    geo = run([args.binary, "geojson", records, mm["id"]])
    check(geo.returncode == 0, "geojson exits 0")
    doc = json.loads(geo.stdout)
    check(doc.get("type") == "FeatureCollection", "geojson FeatureCollection")
    features = doc.get("features", [])
    check(len(features) > 0, "geojson has features")
    layers = {f["properties"]["layer"] for f in features}
    check("gps" in layers, f"geojson carries a gps layer (got {layers})")
    point = next(f for f in features
                 if f["geometry"]["type"] == "Point")
    lng, lat = point["geometry"]["coordinates"]
    check(abs(lng) > abs(lat), "coordinates are (lng, lat) ordered")

    # replay: both a map-matching and a recovery exemplar reproduce.
    for record in (mm, rec):
        replay = run([args.binary, "replay", records, record["id"]])
        check(replay.returncode == 0,
              f"replay {record['id']} exits 0 "
              f"(stdout: {replay.stdout[:300]})")
        check("replay OK" in replay.stdout,
              f"replay {record['id']} reports exact reproduction")

    # Negative: corrupted file is rejected loudly.
    corrupted = os.path.join(tmp, "corrupted.jsonl")
    with open(records) as src, open(corrupted, "w") as dst:
        dst.write(src.read())
        dst.write('{"id": "req-999999", "route": [1, 2\n')
    bad = run([args.binary, "summary", corrupted])
    check(bad.returncode != 0, "summary rejects a corrupted records file")

    # Negative: a tampered route must be flagged as a replay mismatch.
    tampered = os.path.join(tmp, "tampered.jsonl")
    twisted = dict(mm)
    twisted["route"] = [s + 1 for s in mm["route"]]
    with open(tampered, "w") as out:
        out.write(json.dumps(twisted) + "\n")
    mismatch = run([args.binary, "replay", tampered, twisted["id"]])
    check(mismatch.returncode != 0, "replay flags a tampered route")
    check("REPLAY MISMATCH" in mismatch.stdout,
          "replay prints the mismatch banner")

    print("all trmma_inspect checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
