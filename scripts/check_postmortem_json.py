#!/usr/bin/env python3
"""Schema validator for trmma postmortem reports (schema trmma.postmortem.v1).

Independent reimplementation of the checks in `trmma_inspect postmortem`, so
CI validates crash reports with a second implementation: a bug in the C++
writer and a matching bug in the C++ validator cannot cancel out. Exits 0
when the report is well-formed, 1 with a reason otherwise. Stdlib only.

Usage:
  check_postmortem_json.py report.json [--min-threads N] [--min-frames N]
                           [--require-inflight] [--expect-signal NAME]
"""

import argparse
import json
import re
import sys

HEX16 = re.compile(r"^[0-9a-f]{16}$")
PC = re.compile(r"^0x[0-9a-f]+$")
STATES = {"queued", "executing", "unknown"}


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_thread(i, thread):
    require(isinstance(thread, dict), f"threads[{i}] is not an object")
    require(isinstance(thread.get("tid"), int) and thread["tid"] > 0,
            f"threads[{i}].tid must be a positive integer")
    require(isinstance(thread.get("name"), str),
            f"threads[{i}].name must be a string")
    require(isinstance(thread.get("faulting"), bool),
            f"threads[{i}].faulting must be a bool")
    frames = thread.get("frames")
    require(isinstance(frames, list), f"threads[{i}].frames must be an array")
    for f, frame in enumerate(frames):
        require(isinstance(frame, dict), f"threads[{i}].frames[{f}] not object")
        require(PC.match(frame.get("pc", "")),
                f"threads[{i}].frames[{f}].pc is not a hex address: "
                f"{frame.get('pc')!r}")
        require(isinstance(frame.get("symbol"), str) and frame["symbol"],
                f"threads[{i}].frames[{f}].symbol must be non-empty")


def check_inflight(i, req):
    require(isinstance(req, dict), f"inflight_requests[{i}] is not an object")
    require(HEX16.match(req.get("trace_id", "")),
            f"inflight_requests[{i}].trace_id is not 16 lowercase hex chars: "
            f"{req.get('trace_id')!r}")
    require(isinstance(req.get("kind"), str),
            f"inflight_requests[{i}].kind must be a string")
    require(req.get("state") in STATES,
            f"inflight_requests[{i}].state {req.get('state')!r} "
            f"not in {sorted(STATES)}")
    require(isinstance(req.get("age_us"), (int, float)),
            f"inflight_requests[{i}].age_us must be a number")
    require(isinstance(req.get("deadline_ms"), (int, float)),
            f"inflight_requests[{i}].deadline_ms must be a number")
    require(isinstance(req.get("tid"), int),
            f"inflight_requests[{i}].tid must be an integer")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--min-threads", type=int, default=1,
                        help="minimum captured thread count")
    parser.add_argument("--min-frames", type=int, default=0,
                        help="minimum frames on the faulting thread")
    parser.add_argument("--require-inflight", action="store_true",
                        help="at least one in-flight request must be present")
    parser.add_argument("--expect-signal", default=None,
                        help="required signal name, e.g. SIGSEGV")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.report}: {e}")

    require(isinstance(doc, dict), "top level is not an object")
    require(doc.get("schema") == "trmma.postmortem.v1",
            f"schema tag is {doc.get('schema')!r}, "
            "expected 'trmma.postmortem.v1'")

    signal = doc.get("signal")
    require(isinstance(signal, dict), "signal is not an object")
    require(isinstance(signal.get("number"), int), "signal.number not an int")
    require(isinstance(signal.get("name"), str), "signal.name not a string")
    addr = signal.get("fault_addr")
    require(addr is None or (isinstance(addr, str) and PC.match(addr)),
            f"signal.fault_addr must be null or hex: {addr!r}")
    if args.expect_signal:
        require(signal["name"] == args.expect_signal,
                f"signal.name is {signal['name']}, "
                f"expected {args.expect_signal}")

    require("reason" in doc, "reason key missing")
    require(isinstance(doc.get("pid"), int) and doc["pid"] > 0,
            "pid must be a positive integer")
    require(isinstance(doc.get("uptime_us"), (int, float)),
            "uptime_us must be a number")
    require(isinstance(doc.get("wall_unix_s"), int),
            "wall_unix_s must be an integer")

    threads = doc.get("threads")
    require(isinstance(threads, list), "threads must be an array")
    require(len(threads) >= args.min_threads,
            f"{len(threads)} thread(s) captured, "
            f"need >= {args.min_threads}")
    for i, thread in enumerate(threads):
        check_thread(i, thread)
    faulting = [t for t in threads if t.get("faulting")]
    if signal["number"] != 0:
        require(len(faulting) == 1,
                f"{len(faulting)} faulting thread(s) on a fatal signal, "
                "expected exactly 1")
        require(len(faulting[0]["frames"]) >= args.min_frames,
                f"faulting thread has {len(faulting[0]['frames'])} frame(s), "
                f"need >= {args.min_frames}")
        symbolized = [f for f in faulting[0]["frames"]
                      if not f["symbol"].startswith("0x")]
        if args.min_frames > 0:
            require(symbolized,
                    "faulting thread has no symbolized frame at all")

    inflight = doc.get("inflight_requests")
    require(isinstance(inflight, list), "inflight_requests must be an array")
    for i, req in enumerate(inflight):
        check_inflight(i, req)
    if args.require_inflight:
        require(inflight, "no in-flight requests captured")

    spans = doc.get("spans", "missing")
    require(spans is None or isinstance(spans, list),
            "spans must be an array or null")
    require(isinstance(doc.get("memory"), dict), "memory must be an object")
    metrics = doc.get("metrics", "missing")
    require(metrics is None or isinstance(metrics, dict),
            "metrics must be an object or null")
    lock_order = doc.get("lock_order", "missing")
    require(lock_order is None or isinstance(lock_order, dict),
            "lock_order must be an object or null")

    distinct_stacks = len({tuple(f["pc"] for f in t["frames"])
                           for t in threads if t["frames"]})
    print(f"OK: {args.report}: signal {signal['name']}, "
          f"{len(threads)} thread(s) ({distinct_stacks} distinct stacks), "
          f"{len(inflight)} in-flight request(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
