#!/usr/bin/env python3
"""Validate BENCH_<name>.json run reports emitted by the bench binaries.

Usage:
  check_bench_json.py FILE [FILE ...]        validate existing report files
  check_bench_json.py --run BENCH_BINARY     run a bench at smoke scale on a
                                             single city, then validate the
                                             report it writes

The schema is intentionally small and hand-rolled (stdlib only) so it can run
inside ctest with no extra dependencies. It checks the structural contract
documented in DESIGN.md: top-level name/wall_seconds/fingerprint/phases/
metrics, phase entries with name+seconds+count, metric sections with the
right value fields, and that at least one histogram carries p50/p95/p99.
"""

import argparse
import json
import numbers
import os
import subprocess
import sys
import tempfile

HIST_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")


def fail(path, msg, errors):
    errors.append(f"{path}: {msg}")


def check_labels(obj, where, path, errors):
    labels = obj.get("labels")
    if not isinstance(labels, dict):
        fail(path, f"{where}: 'labels' must be an object", errors)
        return
    for k, v in labels.items():
        if not isinstance(k, str) or not isinstance(v, str):
            fail(path, f"{where}: labels must map strings to strings", errors)


def check_metric_list(metrics, section, value_check, path, errors):
    items = metrics.get(section)
    if not isinstance(items, list):
        fail(path, f"metrics.{section} missing or not a list", errors)
        return []
    for i, item in enumerate(items):
        where = f"metrics.{section}[{i}]"
        if not isinstance(item, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(item.get("name"), str) or not item.get("name"):
            fail(path, f"{where}: missing non-empty 'name'", errors)
        check_labels(item, where, path, errors)
        value_check(item, where)
    return items


def check_report(path, errors, require_activity=True):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(path, f"unreadable or invalid JSON: {e}", errors)
        return

    if not isinstance(doc, dict):
        fail(path, "top level must be an object", errors)
        return

    name = doc.get("name")
    if not isinstance(name, str) or not name:
        fail(path, "missing non-empty string 'name'", errors)
    basename = os.path.basename(path)
    if isinstance(name, str) and basename != f"BENCH_{name}.json":
        fail(path, f"file name does not match report name '{name}'", errors)

    for key in ("created_unix", "wall_seconds"):
        if not isinstance(doc.get(key), numbers.Real):
            fail(path, f"missing numeric '{key}'", errors)

    fingerprint = doc.get("fingerprint")
    if not isinstance(fingerprint, dict):
        fail(path, "missing object 'fingerprint'", errors)
        fingerprint = {}
    if require_activity and "scale" not in fingerprint:
        fail(path, "fingerprint lacks 'scale'", errors)
    for k, v in fingerprint.items():
        if not isinstance(v, (str, numbers.Real)):
            fail(path, f"fingerprint['{k}'] must be string or number", errors)

    phases = doc.get("phases")
    if not isinstance(phases, list):
        fail(path, "missing list 'phases'", errors)
        phases = []
    for i, ph in enumerate(phases):
        where = f"phases[{i}]"
        if not isinstance(ph, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(ph.get("name"), str) or not ph.get("name"):
            fail(path, f"{where}: missing non-empty 'name'", errors)
        if not isinstance(ph.get("seconds"), numbers.Real):
            fail(path, f"{where}: missing numeric 'seconds'", errors)
        if not isinstance(ph.get("count"), int) or ph.get("count") < 1:
            fail(path, f"{where}: missing positive integer 'count'", errors)

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(path, "missing object 'metrics'", errors)
        return

    def int_value(item, where):
        if not isinstance(item.get("value"), int):
            fail(path, f"{where}: counter 'value' must be an integer", errors)

    def num_value(item, where):
        if not isinstance(item.get("value"), numbers.Real):
            fail(path, f"{where}: gauge 'value' must be a number", errors)

    def hist_value(item, where):
        for field in HIST_FIELDS:
            if not isinstance(item.get(field), numbers.Real):
                fail(path, f"{where}: histogram missing numeric '{field}'",
                     errors)

    counters = check_metric_list(metrics, "counters", int_value, path, errors)
    gauges = check_metric_list(metrics, "gauges", num_value, path, errors)
    hists = check_metric_list(metrics, "histograms", hist_value, path, errors)

    if require_activity:
        total = len(counters) + len(gauges) + len(hists)
        if total < 5:
            fail(path, f"expected >= 5 named metrics, found {total}", errors)
        live_hists = [h for h in hists
                      if isinstance(h.get("count"), numbers.Real)
                      and h["count"] > 0]
        if not live_hists:
            fail(path, "no histogram with any observations "
                       "(need p50/p95/p99 from a live histogram)", errors)
        if not phases:
            fail(path, "no phases recorded", errors)


def run_bench(binary, workdir):
    obs_dir = tempfile.mkdtemp(prefix="bench_obs_", dir=workdir or None)
    env = dict(os.environ)
    env.setdefault("TRMMA_BENCH_SCALE", "smoke")
    env.setdefault("TRMMA_BENCH_CITIES", "PT")
    env["TRMMA_OBS_DIR"] = obs_dir
    print(f"running {binary} (scale={env['TRMMA_BENCH_SCALE']}, "
          f"cities={env['TRMMA_BENCH_CITIES']}, obs dir {obs_dir})",
          flush=True)
    proc = subprocess.run([binary], env=env, cwd=workdir or None)
    if proc.returncode != 0:
        print(f"FAIL: {binary} exited with {proc.returncode}")
        return None
    reports = [os.path.join(obs_dir, f) for f in sorted(os.listdir(obs_dir))
               if f.startswith("BENCH_") and f.endswith(".json")]
    if not reports:
        print(f"FAIL: {binary} wrote no BENCH_*.json into {obs_dir}")
        return None
    return reports


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="BENCH_*.json files")
    parser.add_argument("--run", metavar="BINARY",
                        help="bench binary to execute before validating")
    parser.add_argument("--workdir", default=None,
                        help="working directory for --run")
    args = parser.parse_args()

    files = list(args.files)
    if args.run:
        produced = run_bench(args.run, args.workdir)
        if produced is None:
            return 1
        files.extend(produced)
    if not files:
        parser.error("no report files given (pass FILEs or --run)")

    errors = []
    for path in files:
        check_report(path, errors)
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    for path in files:
        print(f"OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
