#!/usr/bin/env python3
"""Validate BENCH_<name>.json run reports emitted by the bench binaries.

Usage:
  check_bench_json.py FILE [FILE ...]        validate existing report files
  check_bench_json.py --run BENCH_BINARY     run a bench at smoke scale on a
                                             single city, then validate the
                                             report it writes

The schema is intentionally small and hand-rolled (stdlib only) so it can run
inside ctest with no extra dependencies. It checks the structural contract
documented in DESIGN.md: top-level name/wall_seconds/fingerprint/phases/
metrics, phase entries with name+seconds+count, metric sections with the
right value fields, and that at least one histogram carries p50/p95/p99.
The optional "op_profile", "training", "flight_recorder", "quality",
"memory", "profile" and "slo" sections (present when the matching
telemetry was enabled) are validated whenever they appear;
--require-op-profile / --require-training / --require-flight-recorder /
--require-quality / --require-memory / --require-profile make their
absence an error
(the flight_recorder check also demands replay_mismatches == 0; the
quality check validates group/slice/calibration/drift structure and that
calibration bin counts sum to the sample count; --require-profile
additionally demands that the CPU profiler actually sampled — samples > 0
with a non-empty frame table). The "hw_counters" section is validated
whenever present: available reports must carry finite non-negative
roofline numbers, unavailable ones a non-empty reason;
--require-hw-counters makes the section's absence an error while still
accepting {"available": false} from perf-restricted hosts.
--trace FILE additionally
validates a Chrome trace-event JSON file (as written under
TRMMA_TRACE_FILE); complete spans ("X"), flow arrows ("s"/"f") and
metadata events ("M") are all accepted, with span nesting checked over
the complete spans only.
"""

import argparse
import json
import math
import numbers
import os
import subprocess
import sys
import tempfile

HIST_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")


def fail(path, msg, errors):
    errors.append(f"{path}: {msg}")


def check_labels(obj, where, path, errors):
    labels = obj.get("labels")
    if not isinstance(labels, dict):
        fail(path, f"{where}: 'labels' must be an object", errors)
        return
    for k, v in labels.items():
        if not isinstance(k, str) or not isinstance(v, str):
            fail(path, f"{where}: labels must map strings to strings", errors)


def check_metric_list(metrics, section, value_check, path, errors):
    items = metrics.get(section)
    if not isinstance(items, list):
        fail(path, f"metrics.{section} missing or not a list", errors)
        return []
    for i, item in enumerate(items):
        where = f"metrics.{section}[{i}]"
        if not isinstance(item, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(item.get("name"), str) or not item.get("name"):
            fail(path, f"{where}: missing non-empty 'name'", errors)
        check_labels(item, where, path, errors)
        value_check(item, where)
    return items


FLIGHT_INT_FIELDS = ("requests", "retained", "written", "bytes",
                     "replay_mismatches", "sample_every")


def check_flight_recorder(doc, path, errors, required=False):
    fr = doc.get("flight_recorder")
    if fr is None:
        if required:
            fail(path, "missing 'flight_recorder' section "
                       "(was the flight recorder enabled?)", errors)
        return
    if not isinstance(fr, dict):
        fail(path, "'flight_recorder' must be an object", errors)
        return
    for field in FLIGHT_INT_FIELDS:
        value = fr.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"flight_recorder: missing integer '{field}'", errors)
        elif value < 0:
            fail(path, f"flight_recorder: '{field}' must be >= 0", errors)
    if isinstance(fr.get("requests"), int) and fr["requests"] > 0:
        if isinstance(fr.get("written"), int) and fr["written"] < 1:
            fail(path, "flight_recorder: captured requests but wrote "
                       "no records", errors)
    # The record/replay determinism contract: any divergence between a
    # captured exemplar and its replay fails the bench.
    if isinstance(fr.get("replay_mismatches"), int) and \
            fr["replay_mismatches"] != 0:
        fail(path, f"flight_recorder: replay_mismatches = "
                   f"{fr['replay_mismatches']}, expected 0", errors)


OP_PROFILE_INT_FIELDS = ("calls", "bytes")
OP_PROFILE_NUM_FIELDS = ("forward_us", "backward_us", "flops")
TRAINING_FIELDS = ("steps", "last_loss", "mean_loss", "max_grad_norm",
                   "anomalies")


def check_op_profile(doc, path, errors, required=False):
    ops = doc.get("op_profile")
    if ops is None:
        if required:
            fail(path, "missing 'op_profile' section "
                       "(was the op profiler enabled?)", errors)
        return
    if not isinstance(ops, list) or not ops:
        fail(path, "'op_profile' must be a non-empty list", errors)
        return
    total_us = 0.0
    for i, op in enumerate(ops):
        where = f"op_profile[{i}]"
        if not isinstance(op, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(op.get("name"), str) or not op.get("name"):
            fail(path, f"{where}: missing non-empty 'name'", errors)
        for field in OP_PROFILE_INT_FIELDS:
            if not isinstance(op.get(field), int):
                fail(path, f"{where}: missing integer '{field}'", errors)
        for field in OP_PROFILE_NUM_FIELDS:
            if not isinstance(op.get(field), numbers.Real):
                fail(path, f"{where}: missing numeric '{field}'", errors)
        if isinstance(op.get("calls"), int) and op["calls"] < 1:
            fail(path, f"{where}: 'calls' must be >= 1", errors)
        if isinstance(op.get("forward_us"), numbers.Real) and isinstance(
                op.get("backward_us"), numbers.Real):
            total_us += op["forward_us"] + op["backward_us"]
    # Entries are sorted by total time, descending.
    keyed = [op for op in ops if isinstance(op, dict)
             and isinstance(op.get("forward_us"), numbers.Real)
             and isinstance(op.get("backward_us"), numbers.Real)]
    totals = [op["forward_us"] + op["backward_us"] for op in keyed]
    if totals != sorted(totals, reverse=True):
        fail(path, "op_profile entries not sorted by total time", errors)
    if total_us <= 0.0:
        fail(path, "op_profile accounts for zero time", errors)


def check_training(doc, path, errors, required=False):
    training = doc.get("training")
    if training is None:
        if required:
            fail(path, "missing 'training' section "
                       "(did any model train with telemetry on?)", errors)
        return
    if not isinstance(training, list) or not training:
        fail(path, "'training' must be a non-empty list", errors)
        return
    for i, row in enumerate(training):
        where = f"training[{i}]"
        if not isinstance(row, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(row.get("model"), str) or not row.get("model"):
            fail(path, f"{where}: missing non-empty 'model'", errors)
        for field in TRAINING_FIELDS:
            if not isinstance(row.get(field), numbers.Real):
                fail(path, f"{where}: missing numeric '{field}'", errors)
        if isinstance(row.get("steps"), int) and row["steps"] < 1:
            fail(path, f"{where}: 'steps' must be >= 1", errors)


CALIBRATION_INT_FIELDS = ("samples", "dropped_nonfinite",
                          "dropped_out_of_range")
RANK_BUCKETS = 11  # kQualityRankBuckets + 1 overflow bucket


def check_quality(doc, path, errors, required=False):
    quality = doc.get("quality")
    if quality is None:
        if required:
            fail(path, "missing 'quality' section "
                       "(was TRMMA_QUALITY telemetry enabled?)", errors)
        return
    if not isinstance(quality, dict):
        fail(path, "'quality' must be an object", errors)
        return
    groups = quality.get("groups")
    if not isinstance(groups, list) or not groups:
        fail(path, "quality: 'groups' must be a non-empty list", errors)
        groups = []
    for i, g in enumerate(groups):
        where = f"quality.groups[{i}]"
        if not isinstance(g, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        for field in ("kind", "method", "city"):
            if not isinstance(g.get(field), str) or not g.get(field):
                fail(path, f"{where}: missing non-empty '{field}'", errors)
        for field in ("requests", "scored"):
            if not isinstance(g.get(field), int) or g.get(field, -1) < 0:
                fail(path, f"{where}: missing non-negative int '{field}'",
                     errors)
        if not isinstance(g.get("mean_quality"), numbers.Real):
            fail(path, f"{where}: missing numeric 'mean_quality'", errors)
        for j, s in enumerate(g.get("slices") or []):
            swhere = f"{where}.slices[{j}]"
            if not isinstance(s, dict):
                fail(path, f"{swhere}: not an object", errors)
                continue
            for field in ("dimension", "bucket"):
                if not isinstance(s.get(field), str) or not s.get(field):
                    fail(path, f"{swhere}: missing non-empty '{field}'",
                         errors)
            if not isinstance(s.get("mean_quality"), numbers.Real):
                fail(path, f"{swhere}: missing numeric 'mean_quality'", errors)
        cal = g.get("calibration")
        if not isinstance(cal, dict):
            fail(path, f"{where}: missing object 'calibration'", errors)
            continue
        for field in CALIBRATION_INT_FIELDS:
            if not isinstance(cal.get(field), int) or cal.get(field, -1) < 0:
                fail(path, f"{where}.calibration: missing non-negative int "
                           f"'{field}'", errors)
        for field in ("ece", "brier"):
            v = cal.get(field)
            if not isinstance(v, numbers.Real):
                fail(path, f"{where}.calibration: missing numeric '{field}'",
                     errors)
            elif not 0.0 <= v <= 1.0:
                fail(path, f"{where}.calibration: '{field}' = {v} "
                           "outside [0, 1]", errors)
        bins = cal.get("bins")
        if not isinstance(bins, list):
            fail(path, f"{where}.calibration: 'bins' must be a list", errors)
            bins = []
        bin_count = 0
        for j, b in enumerate(bins):
            bwhere = f"{where}.calibration.bins[{j}]"
            if not isinstance(b, dict):
                fail(path, f"{bwhere}: not an object", errors)
                continue
            for field in ("lo", "hi", "count", "mean_confidence", "accuracy"):
                if not isinstance(b.get(field), numbers.Real):
                    fail(path, f"{bwhere}: missing numeric '{field}'", errors)
            if isinstance(b.get("count"), int):
                bin_count += b["count"]
        if isinstance(cal.get("samples"), int) and cal["samples"] != bin_count:
            fail(path, f"{where}.calibration: bin counts sum to {bin_count} "
                       f"but samples = {cal['samples']}", errors)
        for field in ("chosen_rank", "truth_rank"):
            ranks = cal.get(field)
            if not isinstance(ranks, list) or len(ranks) != RANK_BUCKETS:
                fail(path, f"{where}.calibration: '{field}' must be a list "
                           f"of {RANK_BUCKETS} counts", errors)
    drift = quality.get("drift")
    if not isinstance(drift, list):
        fail(path, "quality: 'drift' must be a list", errors)
        drift = []
    for i, d in enumerate(drift):
        where = f"quality.drift[{i}]"
        if not isinstance(d, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(d.get("feature"), str) or not d.get("feature"):
            fail(path, f"{where}: missing non-empty 'feature'", errors)
        for field in ("train", "serve"):
            if not isinstance(d.get(field), int) or d.get(field, -1) < 0:
                fail(path, f"{where}: missing non-negative int '{field}'",
                     errors)
        if not isinstance(d.get("degenerate"), bool):
            fail(path, f"{where}: missing boolean 'degenerate'", errors)
        psi = d.get("psi")
        if not isinstance(psi, numbers.Real):
            fail(path, f"{where}: missing numeric 'psi'", errors)
        elif not d.get("degenerate") and psi < 0:
            fail(path, f"{where}: 'psi' = {psi} must be >= 0", errors)


MEM_SUBSYSTEMS = ("graph", "rtree", "ubodt", "matrix", "flight_recorder",
                  "other")


def check_memory(doc, path, errors, required=False):
    memory = doc.get("memory")
    if memory is None:
        if required:
            fail(path, "missing 'memory' section "
                       "(was TRMMA_MEM_STATS accounting enabled?)", errors)
        return
    if not isinstance(memory, dict):
        fail(path, "'memory' must be an object", errors)
        return
    for field in ("rss_bytes", "rss_peak_bytes"):
        value = memory.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"memory: missing integer '{field}'", errors)
        elif value <= 0:
            fail(path, f"memory: '{field}' = {value} must be > 0 "
                       "(a live process always has RSS)", errors)
    subsystems = memory.get("subsystems")
    if not isinstance(subsystems, list):
        fail(path, "memory: 'subsystems' must be a list", errors)
        return
    names = []
    for i, sub in enumerate(subsystems):
        where = f"memory.subsystems[{i}]"
        if not isinstance(sub, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(sub.get("name"), str) or not sub.get("name"):
            fail(path, f"{where}: missing non-empty 'name'", errors)
        else:
            names.append(sub["name"])
        for field in ("current_bytes", "peak_bytes"):
            value = sub.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(path, f"{where}: missing integer '{field}'", errors)
            elif value < 0:
                fail(path, f"{where}: '{field}' must be >= 0", errors)
        if isinstance(sub.get("current_bytes"), int) and \
                isinstance(sub.get("peak_bytes"), int) and \
                sub["current_bytes"] > sub["peak_bytes"]:
            fail(path, f"{where}: current_bytes > peak_bytes", errors)
    for name in MEM_SUBSYSTEMS:
        if name not in names:
            fail(path, f"memory: subsystem '{name}' missing", errors)


SERVING_ROW_INT_FIELDS = ("submitted", "success", "degraded", "shed",
                          "timeout", "retries")
SERVING_ROW_NUM_FIELDS = ("load_factor", "offered_qps", "achieved_qps",
                          "shed_rate", "p50_us", "p95_us", "p99_us")


def check_serving(doc, path, errors, required=False):
    serving = doc.get("serving")
    if serving is None:
        if required:
            fail(path, "missing 'serving' section "
                       "(did the bench drive the serving engine?)", errors)
        return
    if not isinstance(serving, dict):
        fail(path, "'serving' must be an object", errors)
        return
    for field in ("threads", "queue_cap"):
        value = serving.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"serving: missing integer '{field}'", errors)
        elif value < 1:
            fail(path, f"serving: '{field}' must be >= 1", errors)
    if not isinstance(serving.get("deadline_ms"), numbers.Real):
        fail(path, "serving: missing numeric 'deadline_ms'", errors)
    capacity = serving.get("capacity_qps")
    if not isinstance(capacity, numbers.Real):
        fail(path, "serving: missing numeric 'capacity_qps'", errors)
    elif capacity <= 0:
        fail(path, f"serving: 'capacity_qps' = {capacity} must be > 0",
             errors)
    rows = serving.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(path, "serving: 'rows' must be a non-empty list", errors)
        return
    for i, row in enumerate(rows):
        where = f"serving.rows[{i}]"
        if not isinstance(row, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if row.get("mode") not in ("closed", "open"):
            fail(path, f"{where}: 'mode' must be 'closed' or 'open'", errors)
        for field in SERVING_ROW_INT_FIELDS:
            value = row.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(path, f"{where}: missing integer '{field}'", errors)
            elif value < 0:
                fail(path, f"{where}: '{field}' must be >= 0", errors)
        for field in SERVING_ROW_NUM_FIELDS:
            if not isinstance(row.get(field), numbers.Real):
                fail(path, f"{where}: missing numeric '{field}'", errors)
        # The engine's no-silent-drops invariant, re-checked on the wire
        # format: every submitted request has exactly one outcome.
        if all(isinstance(row.get(f), int) for f in SERVING_ROW_INT_FIELDS):
            accounted = (row["success"] + row["degraded"] + row["shed"]
                         + row["timeout"])
            if accounted != row["submitted"]:
                fail(path, f"{where}: outcomes sum to {accounted} but "
                           f"submitted = {row['submitted']}", errors)
        shed_rate = row.get("shed_rate")
        if isinstance(shed_rate, numbers.Real) and \
                not 0.0 <= shed_rate <= 1.0:
            fail(path, f"{where}: 'shed_rate' = {shed_rate} outside [0, 1]",
                 errors)
        quantiles = [row.get(f) for f in ("p50_us", "p95_us", "p99_us")]
        if all(isinstance(q, numbers.Real) for q in quantiles) and \
                not quantiles[0] <= quantiles[1] <= quantiles[2]:
            fail(path, f"{where}: latency quantiles not ordered "
                       f"(p50 <= p95 <= p99)", errors)


PROFILE_INT_FIELDS = ("hz", "samples", "dropped", "truncated")


def check_profile(doc, path, errors, required=False):
    profile = doc.get("profile")
    if profile is None:
        if required:
            fail(path, "missing 'profile' section "
                       "(was the CPU profiler able to start?)", errors)
        return
    if not isinstance(profile, dict):
        fail(path, "'profile' must be an object", errors)
        return
    for field in PROFILE_INT_FIELDS:
        value = profile.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"profile: missing integer '{field}'", errors)
        elif value < 0:
            fail(path, f"profile: '{field}' must be >= 0", errors)
    frames = profile.get("frames")
    if not isinstance(frames, list):
        fail(path, "profile: 'frames' must be a list", errors)
        frames = []
    selfs = []
    for i, frame in enumerate(frames):
        where = f"profile.frames[{i}]"
        if not isinstance(frame, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(frame.get("symbol"), str) or not frame.get("symbol"):
            fail(path, f"{where}: missing non-empty 'symbol'", errors)
        for field in ("self", "total"):
            value = frame.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(path, f"{where}: missing integer '{field}'", errors)
            elif value < 0:
                fail(path, f"{where}: '{field}' must be >= 0", errors)
        if isinstance(frame.get("self"), int) and \
                isinstance(frame.get("total"), int) and \
                frame["self"] > frame["total"]:
            fail(path, f"{where}: self > total", errors)
        if isinstance(frame.get("self"), int):
            selfs.append(frame["self"])
    if selfs != sorted(selfs, reverse=True):
        fail(path, "profile: frames not sorted by self time", errors)
    samples = profile.get("samples")
    if isinstance(samples, int) and samples > 0:
        if isinstance(profile.get("hz"), int) and profile["hz"] < 1:
            fail(path, "profile: sampled but 'hz' < 1", errors)
        if not frames:
            fail(path, "profile: sampled but frame table is empty", errors)
    if required:
        # The CI gate: the profiler must have run for real, not merely have
        # emitted an empty section (e.g. a sanitizer build refusing to start).
        if not isinstance(samples, int) or samples < 1:
            fail(path, "profile: --require-profile demands samples >= 1",
                 errors)


HW_CALIBRATION_NUM_FIELDS = ("flop_per_cycle", "bytes_per_cycle",
                             "calibration_cycles")
HW_OP_NUM_FIELDS = ("calls", "hw_samples", "cycles", "instructions", "ipc",
                    "flop_per_cycle", "bytes_per_cycle",
                    "arithmetic_intensity")
HW_SWEEP_NUM_FIELDS = ("n", "cycles", "instructions", "ipc", "flops", "bytes",
                       "flop_per_cycle", "bytes_per_cycle",
                       "arithmetic_intensity", "running_frac")


def check_hw_finite(obj, fields, where, path, errors, optional=()):
    """Every listed field must be a finite, non-negative number.

    NaN/inf would silently poison roofline math downstream (comparisons with
    NaN are all false), so the gate is isfinite, not merely isinstance.
    """
    for field in fields:
        value = obj.get(field)
        if value is None and field in optional:
            continue
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            fail(path, f"{where}: missing numeric '{field}'", errors)
        elif not math.isfinite(value):
            fail(path, f"{where}: '{field}' = {value} is not finite", errors)
        elif value < 0:
            fail(path, f"{where}: '{field}' = {value} must be >= 0", errors)


def check_hw_counters(doc, path, errors, required=False):
    hw = doc.get("hw_counters")
    if hw is None:
        if required:
            fail(path, "missing 'hw_counters' section (reports always carry "
                       "one — even {\"available\": false} on restricted "
                       "hosts)", errors)
        return
    if not isinstance(hw, dict):
        fail(path, "'hw_counters' must be an object", errors)
        return
    available = hw.get("available")
    if not isinstance(available, bool):
        fail(path, "hw_counters: missing boolean 'available'", errors)
        return
    if not available:
        # Graceful degradation still has a contract: the section must say
        # WHY counters are off (perf lockdown, sanitizer, env, no PMU).
        reason = hw.get("reason")
        if not isinstance(reason, str) or not reason:
            fail(path, "hw_counters: unavailable without a non-empty "
                       "'reason'", errors)
        return
    if not isinstance(hw.get("counter_set"), str) or not hw.get("counter_set"):
        fail(path, "hw_counters: missing non-empty 'counter_set'", errors)
    counters = hw.get("counters")
    if not isinstance(counters, list) or not counters or \
            not all(isinstance(c, str) and c for c in counters):
        fail(path, "hw_counters: 'counters' must be a non-empty list of "
                   "names when available", errors)
    cal = hw.get("calibration")
    if not isinstance(cal, dict):
        fail(path, "hw_counters: missing object 'calibration'", errors)
    else:
        if not isinstance(cal.get("measured"), bool):
            fail(path, "hw_counters.calibration: missing boolean 'measured'",
                 errors)
        if cal.get("measured") is True:
            check_hw_finite(cal, HW_CALIBRATION_NUM_FIELDS,
                            "hw_counters.calibration", path, errors)
            for field in ("flop_per_cycle", "bytes_per_cycle"):
                v = cal.get(field)
                if isinstance(v, numbers.Real) and math.isfinite(v) and \
                        v <= 0:
                    fail(path, f"hw_counters.calibration: '{field}' = {v} "
                               "must be > 0 when measured", errors)
    for section, fields in (("ops", HW_OP_NUM_FIELDS),
                            ("sweep", HW_SWEEP_NUM_FIELDS)):
        items = hw.get(section)
        if not isinstance(items, list):
            fail(path, f"hw_counters: '{section}' must be a list", errors)
            continue
        for i, item in enumerate(items):
            where = f"hw_counters.{section}[{i}]"
            if not isinstance(item, dict):
                fail(path, f"{where}: not an object", errors)
                continue
            name_field = "name" if section == "ops" else "label"
            if not isinstance(item.get(name_field), str) or \
                    not item.get(name_field):
                fail(path, f"{where}: missing non-empty '{name_field}'",
                     errors)
            check_hw_finite(item, fields, where, path, errors)
            # Per-kinst miss rates and the stall fraction only appear when
            # the counter set includes them; when present they must be sane.
            check_hw_finite(item, ("l1d_miss_per_kinst", "llc_miss_per_kinst",
                                   "branch_miss_per_kinst", "stalled_frac"),
                            where, path, errors,
                            optional=("l1d_miss_per_kinst",
                                      "llc_miss_per_kinst",
                                      "branch_miss_per_kinst",
                                      "stalled_frac"))


def check_slo(doc, path, errors):
    slo = doc.get("slo")
    if slo is None:
        return
    if not isinstance(slo, list):
        fail(path, "'slo' must be a list of objective results", errors)
        return
    for i, r in enumerate(slo):
        where = f"slo[{i}]"
        if not isinstance(r, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        for field in ("name", "metric"):
            if not isinstance(r.get(field), str) or not r.get(field):
                fail(path, f"{where}: missing non-empty '{field}'", errors)
        for field in ("value", "max"):
            if not isinstance(r.get(field), numbers.Real):
                fail(path, f"{where}: missing numeric '{field}'", errors)
        for field in ("has_data", "ok"):
            if not isinstance(r.get(field), bool):
                fail(path, f"{where}: missing boolean '{field}'", errors)
        # The watchdog's own contract: a no-data objective is never a breach.
        if r.get("has_data") is False and r.get("ok") is False:
            fail(path, f"{where}: no-data objective reported as breach",
                 errors)


def check_chrome_trace(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(path, f"unreadable or invalid JSON: {e}", errors)
        return
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list) or not events:
        fail(path, "'traceEvents' must be a non-empty list", errors)
        return
    spans = []
    flows = {}  # flow id -> set of phases seen ("s"/"f")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        ph = ev.get("ph")
        if ph not in ("X", "s", "f", "M"):
            fail(path, f"{where}: unexpected event ph={ph!r} "
                       "(want X, s, f, or M)", errors)
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            fail(path, f"{where}: missing non-empty 'name'", errors)
        if ph == "M":
            if not isinstance(ev.get("pid"), int):
                fail(path, f"{where}: metadata missing integer 'pid'", errors)
            continue
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                fail(path, f"{where}: missing integer '{field}'", errors)
        if not isinstance(ev.get("ts"), numbers.Real):
            fail(path, f"{where}: missing numeric 'ts'", errors)
        if ph in ("s", "f"):
            if not isinstance(ev.get("id"), int):
                fail(path, f"{where}: flow event missing integer 'id'",
                     errors)
            else:
                flows.setdefault(ev["id"], set()).add(ph)
            continue
        if not isinstance(ev.get("dur"), numbers.Real):
            fail(path, f"{where}: missing numeric 'dur'", errors)
        args = ev.get("args")
        if not isinstance(args, dict) or not isinstance(
                args.get("seq"), int) or not isinstance(
                args.get("parent_seq"), int):
            fail(path, f"{where}: args must carry integer "
                       "seq/parent_seq", errors)
            continue
        spans.append(ev)
    # Every flow arrow needs both ends, or the viewer draws nothing.
    for flow_id, phases in sorted(flows.items()):
        if phases != {"s", "f"}:
            fail(path, f"flow id={flow_id} has phases {sorted(phases)}, "
                       "want both 's' and 'f'", errors)
    # Complete spans are emitted in seq (start) order and nest strictly, so
    # a child's [ts, ts+dur] interval lies inside its parent's.
    by_seq = {}
    for ev in spans:
        by_seq[ev["args"]["seq"]] = ev
    for ev in by_seq.values():
        parent = by_seq.get(ev["args"].get("parent_seq"))
        if parent is None:
            continue
        slack = 1e-3  # clock granularity
        if ev["ts"] < parent["ts"] - slack or \
                ev["ts"] + ev["dur"] > parent["ts"] + parent["dur"] + slack:
            fail(path, f"span seq={ev['args']['seq']} not nested inside "
                       f"parent seq={ev['args']['parent_seq']}", errors)


def check_report(path, errors, require_activity=True,
                 require_op_profile=False, require_training=False,
                 require_flight_recorder=False, require_quality=False,
                 require_memory=False, require_serving=False,
                 require_profile=False, require_hw_counters=False):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(path, f"unreadable or invalid JSON: {e}", errors)
        return

    if not isinstance(doc, dict):
        fail(path, "top level must be an object", errors)
        return

    name = doc.get("name")
    if not isinstance(name, str) or not name:
        fail(path, "missing non-empty string 'name'", errors)
    basename = os.path.basename(path)
    if isinstance(name, str) and basename != f"BENCH_{name}.json":
        fail(path, f"file name does not match report name '{name}'", errors)

    for key in ("created_unix", "wall_seconds"):
        if not isinstance(doc.get(key), numbers.Real):
            fail(path, f"missing numeric '{key}'", errors)

    fingerprint = doc.get("fingerprint")
    if not isinstance(fingerprint, dict):
        fail(path, "missing object 'fingerprint'", errors)
        fingerprint = {}
    if require_activity and "scale" not in fingerprint:
        fail(path, "fingerprint lacks 'scale'", errors)
    for k, v in fingerprint.items():
        if not isinstance(v, (str, numbers.Real)):
            fail(path, f"fingerprint['{k}'] must be string or number", errors)

    phases = doc.get("phases")
    if not isinstance(phases, list):
        fail(path, "missing list 'phases'", errors)
        phases = []
    for i, ph in enumerate(phases):
        where = f"phases[{i}]"
        if not isinstance(ph, dict):
            fail(path, f"{where}: not an object", errors)
            continue
        if not isinstance(ph.get("name"), str) or not ph.get("name"):
            fail(path, f"{where}: missing non-empty 'name'", errors)
        if not isinstance(ph.get("seconds"), numbers.Real):
            fail(path, f"{where}: missing numeric 'seconds'", errors)
        if not isinstance(ph.get("count"), int) or ph.get("count") < 1:
            fail(path, f"{where}: missing positive integer 'count'", errors)

    check_op_profile(doc, path, errors, required=require_op_profile)
    check_training(doc, path, errors, required=require_training)
    check_flight_recorder(doc, path, errors,
                          required=require_flight_recorder)
    check_quality(doc, path, errors, required=require_quality)
    check_memory(doc, path, errors, required=require_memory)
    check_serving(doc, path, errors, required=require_serving)
    check_profile(doc, path, errors, required=require_profile)
    check_hw_counters(doc, path, errors, required=require_hw_counters)
    check_slo(doc, path, errors)

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(path, "missing object 'metrics'", errors)
        return

    def int_value(item, where):
        if not isinstance(item.get("value"), int):
            fail(path, f"{where}: counter 'value' must be an integer", errors)

    def num_value(item, where):
        if not isinstance(item.get("value"), numbers.Real):
            fail(path, f"{where}: gauge 'value' must be a number", errors)

    def hist_value(item, where):
        for field in HIST_FIELDS:
            if not isinstance(item.get(field), numbers.Real):
                fail(path, f"{where}: histogram missing numeric '{field}'",
                     errors)

    counters = check_metric_list(metrics, "counters", int_value, path, errors)
    gauges = check_metric_list(metrics, "gauges", num_value, path, errors)
    hists = check_metric_list(metrics, "histograms", hist_value, path, errors)

    if require_activity:
        total = len(counters) + len(gauges) + len(hists)
        if total < 5:
            fail(path, f"expected >= 5 named metrics, found {total}", errors)
        live_hists = [h for h in hists
                      if isinstance(h.get("count"), numbers.Real)
                      and h["count"] > 0]
        if not live_hists:
            fail(path, "no histogram with any observations "
                       "(need p50/p95/p99 from a live histogram)", errors)
        if not phases:
            fail(path, "no phases recorded", errors)


def run_bench(binary, workdir, with_trace=False):
    obs_dir = tempfile.mkdtemp(prefix="bench_obs_", dir=workdir or None)
    env = dict(os.environ)
    env.setdefault("TRMMA_BENCH_SCALE", "smoke")
    env.setdefault("TRMMA_BENCH_CITIES", "PT")
    env["TRMMA_OBS_DIR"] = obs_dir
    trace_file = None
    if with_trace:
        trace_file = os.path.join(obs_dir, "trace.json")
        env["TRMMA_TRACE_FILE"] = trace_file
    print(f"running {binary} (scale={env['TRMMA_BENCH_SCALE']}, "
          f"cities={env['TRMMA_BENCH_CITIES']}, obs dir {obs_dir})",
          flush=True)
    proc = subprocess.run([binary], env=env, cwd=workdir or None)
    if proc.returncode != 0:
        print(f"FAIL: {binary} exited with {proc.returncode}")
        return None
    reports = [os.path.join(obs_dir, f) for f in sorted(os.listdir(obs_dir))
               if f.startswith("BENCH_") and f.endswith(".json")]
    if not reports:
        print(f"FAIL: {binary} wrote no BENCH_*.json into {obs_dir}")
        return None
    if with_trace and not os.path.exists(trace_file):
        print(f"FAIL: {binary} wrote no trace file at {trace_file}")
        return None
    return reports, trace_file


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="BENCH_*.json files")
    parser.add_argument("--run", metavar="BINARY",
                        help="bench binary to execute before validating")
    parser.add_argument("--workdir", default=None,
                        help="working directory for --run")
    parser.add_argument("--trace", action="append", default=[],
                        metavar="FILE",
                        help="Chrome trace-event JSON file to validate")
    parser.add_argument("--run-trace", action="store_true",
                        help="with --run: enable TRMMA_TRACE_FILE and "
                             "validate the resulting trace")
    parser.add_argument("--require-op-profile", action="store_true",
                        help="fail if reports lack an 'op_profile' section")
    parser.add_argument("--require-training", action="store_true",
                        help="fail if reports lack a 'training' section")
    parser.add_argument("--require-flight-recorder", action="store_true",
                        help="fail if reports lack a 'flight_recorder' "
                             "section or show replay mismatches")
    parser.add_argument("--require-quality", action="store_true",
                        help="fail if reports lack a 'quality' section")
    parser.add_argument("--require-memory", action="store_true",
                        help="fail if reports lack a 'memory' section")
    parser.add_argument("--require-serving", action="store_true",
                        help="fail if reports lack a 'serving' section")
    parser.add_argument("--require-profile", action="store_true",
                        help="fail if reports lack a 'profile' section with "
                             "at least one CPU sample")
    parser.add_argument("--require-hw-counters", action="store_true",
                        help="fail if reports lack a 'hw_counters' section; "
                             "a validating {\"available\": false, \"reason\": "
                             "...} from a perf-restricted host passes")
    args = parser.parse_args()

    files = list(args.files)
    traces = list(args.trace)
    if args.run:
        produced = run_bench(args.run, args.workdir,
                             with_trace=args.run_trace)
        if produced is None:
            return 1
        reports, trace_file = produced
        files.extend(reports)
        if trace_file:
            traces.append(trace_file)
    if not files and not traces:
        parser.error("no report files given (pass FILEs, --trace, or --run)")

    errors = []
    for path in files:
        check_report(path, errors,
                     require_op_profile=args.require_op_profile,
                     require_training=args.require_training,
                     require_flight_recorder=args.require_flight_recorder,
                     require_quality=args.require_quality,
                     require_memory=args.require_memory,
                     require_serving=args.require_serving,
                     require_profile=args.require_profile,
                     require_hw_counters=args.require_hw_counters)
    for path in traces:
        check_chrome_trace(path, errors)
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    for path in files + traces:
        print(f"OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
