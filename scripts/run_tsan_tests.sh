#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer (-DTRMMA_TSAN=ON) in a dedicated
# build directory and runs the concurrency-sensitive tests under it. Any
# data-race report fails the run.
#
# Usage: scripts/run_tsan_tests.sh [ctest args...]
#   With no args, runs the serving + chaos suites (the threaded surface);
#   pass your own ctest filter to widen or narrow the selection,
#   e.g. scripts/run_tsan_tests.sh -R telemetry
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${TRMMA_TSAN_BUILD_DIR:-${repo_root}/build-tsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTRMMA_TSAN=ON
cmake --build "${build_dir}" -j "${jobs}"

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

# Anchored suite names: a bare 'serve|chaos' would substring-match
# unrelated tests ("...Preserves...", "...Observed...") and miss the
# capitalized Serve/Chaos suites entirely. StackWalk/Postmortem/
# StallWatchdog/LockOrder are the postmortem-observability surface: signal
# rendezvous, lock-free in-flight registry, watchdog thread, and the
# lock-order detector's hook paths all cross threads.
if [ "$#" -eq 0 ]; then
  set -- -R '^(Serve|Chaos|Deadline|CircuitBreaker|MixSeed|FaultInjector|StackWalk|Postmortem|InflightRegistry|StallWatchdog|LockOrder)'
fi

ctest --test-dir "${build_dir}" -j "${jobs}" --output-on-failure "$@"
