#!/usr/bin/env python3
"""End-to-end smoke test for the live telemetry service.

Launches a bench binary with TRMMA_HTTP_PORT=0 (ephemeral port) plus the
usual smoke-scale environment, discovers the bound port from the bench's
"telemetry: serving on 127.0.0.1:<port>" stdout line, and while the bench is
still running:

  - GETs /healthz and expects HTTP 200 "ok",
  - GETs /metrics and validates the body as Prometheus text exposition
    0.0.4: every line is a comment or a `name{labels} value` sample, HELP/
    TYPE headers appear exactly once per family, and the scrape carries the
    memory (mem_rss_bytes) and lock (lock_acquisitions) gauges,
  - when an SLO file is passed (--slo), expects slo_ok gauges in the scrape,
  - GETs /debug/stacks and expects a symbolized dump that includes the
    registered telemetry thread,
  - GETs /perf and validates the hardware-counter JSON: boolean "available",
    and when false (perf-restricted host, sanitizer build) a non-empty
    "reason" string explaining why,
  - GETs an unknown path and expects a 404 that lists the real endpoints.

Smoke-scale benches finish in milliseconds — faster than the first scrape
round-trip — so the bench is launched with TRMMA_HTTP_LINGER_MS set: at exit
it holds the exporter open until this harness GETs /quitz (always sent, even
when a scrape fails, so the bench never waits out the full linger).

After the bench exits it validates the BENCH_*.json it wrote via
check_bench_json with --require-memory, so the report-side memory section is
exercised by the same run. Stdlib only, like the other script harnesses.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request

PORT_RE = re.compile(r"telemetry: serving on 127\.0\.0\.1:(\d+)")
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [^ ]+$")
# OpenMetrics exemplar suffix on a sample line:  ... value # {labels} value
EXEMPLAR_RE = re.compile(r" # \{[^}]*\} [^ ]+$")
HEADER_RE = re.compile(
    r"^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram))$")


def http_get(port, path, timeout=10):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
            resp.read().decode("utf-8", errors="replace")


def validate_exposition(body, errors, expect_slo=False):
    if not body.endswith("\n"):
        errors.append("/metrics body does not end with a newline")
    seen_help = set()
    seen_type = set()
    families = set()
    for lineno, line in enumerate(body.splitlines(), 1):
        if not line:
            errors.append(f"/metrics line {lineno}: empty line")
            continue
        if line.startswith("#"):
            m = HEADER_RE.match(line)
            if not m:
                errors.append(f"/metrics line {lineno}: bad comment: {line!r}")
                continue
            kind, name = line.split()[1], line.split()[2]
            seen = seen_help if kind == "HELP" else seen_type
            if name in seen:
                errors.append(f"/metrics line {lineno}: duplicate # {kind} "
                              f"for family '{name}'")
            seen.add(name)
            continue
        # p99 lines may carry an OpenMetrics exemplar (trace id of the worst
        # recent observation); validate then strip it before the sample check.
        exemplar = EXEMPLAR_RE.search(line)
        if exemplar:
            exemplar_value = exemplar.group(0).rsplit(" ", 1)[1]
            try:
                float(exemplar_value)
            except ValueError:
                errors.append(f"/metrics line {lineno}: non-numeric exemplar "
                              f"value {exemplar_value!r}")
            if 'trace_id="' not in exemplar.group(0):
                errors.append(f"/metrics line {lineno}: exemplar lacks a "
                              f"trace_id label: {line!r}")
            line = line[:exemplar.start()]
        if not SAMPLE_RE.match(line):
            errors.append(f"/metrics line {lineno}: bad sample: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        families.add(name)
        value = line.rsplit(" ", 1)[1]
        try:
            float(value)
        except ValueError:
            errors.append(f"/metrics line {lineno}: non-numeric value "
                          f"{value!r}")
    for must in ("mem_rss_bytes", "mem_rss_peak_bytes", "lock_acquisitions"):
        if must not in families:
            errors.append(f"/metrics: expected family '{must}' in scrape")
    if expect_slo and not any(f.startswith("slo_ok") for f in families):
        errors.append("/metrics: TRMMA_SLO_FILE was set but no slo_ok gauge "
                      "appeared")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="bench binary to launch")
    parser.add_argument("--slo", default=None,
                        help="SLO objectives JSON to install via "
                             "TRMMA_SLO_FILE")
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--checker", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "check_bench_json.py"))
    args = parser.parse_args()

    obs_dir = tempfile.mkdtemp(prefix="telemetry_smoke_",
                               dir=args.workdir or None)
    env = dict(os.environ)
    env.setdefault("TRMMA_BENCH_SCALE", "smoke")
    env.setdefault("TRMMA_BENCH_CITIES", "PT")
    env["TRMMA_OBS_DIR"] = obs_dir
    env["TRMMA_HTTP_PORT"] = "0"
    # Smoke-scale benches can finish before the first scrape lands; the
    # linger holds the exporter open until we GET /quitz below.
    env["TRMMA_HTTP_LINGER_MS"] = "60000"
    env.pop("TRMMA_MEM_STATS", None)  # default-on memory accounting
    if args.slo:
        env["TRMMA_SLO_FILE"] = os.path.abspath(args.slo)

    binary = os.path.abspath(args.binary)
    print(f"launching {binary} with TRMMA_HTTP_PORT=0", flush=True)
    proc = subprocess.Popen([binary], env=env, cwd=args.workdir or None,
                            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                            text=True)
    errors = []
    port = None
    try:
        # The telemetry line is printed (and flushed) by BenchRun's
        # constructor, i.e. before any dataset work — the scrape window is
        # the whole bench run.
        for line in proc.stdout:
            sys.stdout.write(line)
            m = PORT_RE.search(line)
            if m:
                port = int(m.group(1))
                break
        if port is None:
            errors.append("bench never printed the telemetry port line")
        else:
            print(f"scraping 127.0.0.1:{port}", flush=True)
            try:
                status, _, body = http_get(port, "/healthz")
                if status != 200 or "ok" not in body:
                    errors.append(f"/healthz: status={status} body={body!r}")
                status, ctype, body = http_get(port, "/metrics")
                if status != 200:
                    errors.append(f"/metrics: status={status}")
                if "version=0.0.4" not in ctype:
                    errors.append(
                        f"/metrics: unexpected content type {ctype!r}")
                validate_exposition(body, errors, expect_slo=bool(args.slo))
                status, _, body = http_get(port, "/statusz")
                if status != 200 or '"memory":' not in body:
                    errors.append(f"/statusz: status={status} or missing "
                                  "memory section")
                status, _, body = http_get(port, "/debug/stacks")
                if status != 200 or "thread " not in body:
                    errors.append(f"/debug/stacks: status={status} "
                                  f"body={body[:120]!r}")
                if "telemetry.http" not in body:
                    errors.append("/debug/stacks: serving thread not in dump")
                status, ctype, body = http_get(port, "/perf")
                if status != 200:
                    errors.append(f"/perf: status={status}")
                elif "application/json" not in ctype:
                    errors.append(f"/perf: unexpected content type {ctype!r}")
                else:
                    try:
                        perf = json.loads(body)
                    except ValueError as e:
                        perf = None
                        errors.append(f"/perf: invalid JSON: {e}")
                    if perf is not None:
                        available = perf.get("available")
                        if not isinstance(available, bool):
                            errors.append("/perf: 'available' must be a "
                                          f"boolean, got {available!r}")
                        elif not available and not perf.get("reason"):
                            errors.append("/perf: counters unavailable but "
                                          "no 'reason' given")
                try:
                    status, _, body = http_get(port, "/no/such/endpoint")
                    errors.append(f"unknown path returned {status}, not 404")
                except urllib.error.HTTPError as e:
                    body = e.read().decode("utf-8", errors="replace")
                    if e.code != 404:
                        errors.append(f"unknown path: status={e.code}")
                    if "/debug/stacks" not in body or "/metrics" not in body:
                        errors.append("404 body does not list the available "
                                      f"endpoints: {body[:200]!r}")
            except OSError as e:
                errors.append(f"scrape failed: {e}")
            finally:
                # Release the linger so the bench can exit.
                try:
                    status, _, _ = http_get(port, "/quitz")
                    if status != 200:
                        errors.append(f"/quitz: status={status}")
                except OSError as e:
                    errors.append(f"/quitz failed: {e}")
    finally:
        # Drain the rest of stdout so the bench never blocks on the pipe.
        for line in proc.stdout:
            sys.stdout.write(line)
        proc.wait()

    if proc.returncode != 0:
        errors.append(f"bench exited with {proc.returncode}")

    reports = [os.path.join(obs_dir, f) for f in sorted(os.listdir(obs_dir))
               if f.startswith("BENCH_") and f.endswith(".json")]
    if not reports:
        errors.append(f"bench wrote no BENCH_*.json into {obs_dir}")
    else:
        check = subprocess.run(
            [sys.executable, args.checker, "--require-memory"] + reports)
        if check.returncode != 0:
            errors.append("check_bench_json --require-memory failed")

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print("OK: telemetry smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
