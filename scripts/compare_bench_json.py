#!/usr/bin/env python3
"""Diff a fresh BENCH_<name>.json run report against a committed baseline.

Usage:
  compare_bench_json.py --baseline BASE.json --candidate NEW.json
  compare_bench_json.py --baseline BASE.json --run BENCH_BINARY
  compare_bench_json.py --baseline BASE.json --candidate NEW.json --self-test

What is compared (stdlib only, runs inside ctest):

  structure   phase names, fingerprint keys, counter/gauge/histogram names —
              the candidate must contain everything the baseline has (new
              entries are allowed; removals fail).
  fingerprint string fingerprint entries must match exactly; numeric ones
              within --fingerprint-tolerance (default exact). These are
              dataset shapes and config knobs, so drift means the bench no
              longer measures the same thing.
  counters    counter values within --counter-tolerance relative difference
              (default 0: the repo's benches are seeded and deterministic).
  phases      phase counts must match; phase/wall *times* are NOT compared
              by default because they vary across machines. Opt in with
              --time-tolerance to check wall_seconds and phase seconds.

  quality     when the baseline carries a "quality" section, the candidate
              must too, and per (kind, method, city) group each gated metric
              may not degrade by more than an ABSOLUTE tolerance:
              mean_quality may not drop, ece/brier may not rise. Defaults
              are 0.02 each; override per metric with
              --quality-tolerance NAME=VALUE (repeatable).

  hw          when BOTH reports carry measured hardware-counter points
              (hw_counters.available with ipc > 0), matched op/sweep points
              gate on IPC: candidate below baseline * (1 - --ipc-tolerance,
              default 0.3) fails. Missing sections/points never fail — the
              candidate may run on a perf-restricted host.

--self-test perturbs a copy of the candidate (bumps the first counter,
drops a phase, inflates baseline quality so the candidate reads as a
degraded-accuracy report, and inflates baseline IPC so the hw gate must
fire) and verifies the comparison fails on it — proving the guard can
actually detect regressions — then compares the unmodified candidate.
"""

import argparse
import copy
import json
import numbers
import os
import subprocess
import sys
import tempfile


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def metric_map(doc, section):
    out = {}
    for item in doc.get("metrics", {}).get(section, []):
        labels = tuple(sorted(item.get("labels", {}).items()))
        out[(item.get("name"), labels)] = item
    return out


def phase_map(doc):
    return {p.get("name"): p for p in doc.get("phases", [])}


def rel_diff(a, b):
    denom = max(abs(a), abs(b))
    return abs(a - b) / denom if denom > 0 else 0.0


def key_str(key):
    name, labels = key
    if not labels:
        return str(name)
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


# Gated quality metrics: name -> (higher_is_better, default absolute-drop
# tolerance). Degradation beyond the tolerance fails the comparison;
# improvement never does.
QUALITY_METRICS = {
    "mean_quality": (True, 0.02),
    "ece": (False, 0.02),
    "brier": (False, 0.02),
}


def quality_group_map(doc):
    """(kind, method, city) -> gated metric values, None when unmeasured."""
    quality = doc.get("quality")
    if not isinstance(quality, dict):
        return {}
    out = {}
    for g in quality.get("groups", []):
        key = (g.get("kind"), g.get("method"), g.get("city"))
        cal = g.get("calibration", {})
        calibrated = isinstance(cal, dict) and cal.get("samples", 0) > 0
        mean_quality = g.get("mean_quality")
        out[key] = {
            "mean_quality": mean_quality if isinstance(
                mean_quality, numbers.Real) and mean_quality >= 0 else None,
            "ece": cal.get("ece") if calibrated else None,
            "brier": cal.get("brier") if calibrated else None,
        }
    return out


def quality_key_str(key):
    return "/".join(str(k) for k in key)


def compare_quality(baseline, candidate, tolerances):
    diffs = []
    base_groups = quality_group_map(baseline)
    cand_groups = quality_group_map(candidate)
    if base_groups and not cand_groups:
        diffs.append("quality section missing from candidate")
        return diffs
    for key, base_metrics in base_groups.items():
        cand_metrics = cand_groups.get(key)
        if cand_metrics is None:
            diffs.append(f"quality group {quality_key_str(key)} missing "
                         "from candidate")
            continue
        for name, (higher_better, _) in QUALITY_METRICS.items():
            bv = base_metrics.get(name)
            if bv is None:
                continue
            cv = cand_metrics.get(name)
            if cv is None:
                diffs.append(f"quality {quality_key_str(key)} '{name}': "
                             "measured in baseline but not in candidate")
                continue
            tol = tolerances[name]
            degradation = (bv - cv) if higher_better else (cv - bv)
            if degradation > tol:
                direction = "dropped" if higher_better else "rose"
                diffs.append(f"quality {quality_key_str(key)} '{name}' "
                             f"{direction}: baseline {bv:.4f} vs candidate "
                             f"{cv:.4f} (absolute tolerance {tol})")
    return diffs


def serving_row_map(doc):
    """(mode, load_factor) -> row, for the "serving" section."""
    serving = doc.get("serving")
    if not isinstance(serving, dict):
        return {}
    out = {}
    for row in serving.get("rows", []):
        if isinstance(row, dict):
            out[(row.get("mode"), row.get("load_factor"))] = row
    return out


def compare_serving(baseline, candidate, p99_tol, shed_tol):
    """Serving gates: per matched (mode, load_factor) row, the candidate's
    p99 latency may not blow past baseline * (1 + p99_tol) — a RATIO, not a
    rel_diff, because rel_diff saturates at 1.0 and cannot express "4x
    slower" — and its shed rate may not exceed baseline + shed_tol
    (absolute: sheds are load-dependent, structurally bounded)."""
    diffs = []
    base_rows = serving_row_map(baseline)
    cand_rows = serving_row_map(candidate)
    if base_rows and not cand_rows:
        diffs.append("serving section missing from candidate")
        return diffs
    for key, base_row in base_rows.items():
        cand_row = cand_rows.get(key)
        mode, factor = key
        where = f"serving {mode}@x{factor}"
        if cand_row is None:
            diffs.append(f"{where}: row missing from candidate")
            continue
        bp, cp = base_row.get("p99_us"), cand_row.get("p99_us")
        if isinstance(bp, numbers.Real) and isinstance(cp, numbers.Real) \
                and bp > 0 and cp > bp * (1.0 + p99_tol):
            diffs.append(f"{where} p99_us regressed: baseline {bp:.0f} vs "
                         f"candidate {cp:.0f} (ratio tolerance {p99_tol})")
        bs, cs = base_row.get("shed_rate"), cand_row.get("shed_rate")
        if isinstance(bs, numbers.Real) and isinstance(cs, numbers.Real) \
                and cs > bs + shed_tol:
            diffs.append(f"{where} shed_rate rose: baseline {bs:.3f} vs "
                         f"candidate {cs:.3f} (absolute tolerance "
                         f"{shed_tol})")
    return diffs


def hw_point_map(doc):
    """Matchable hardware-counter points with a measured IPC.

    Keys: ("op", name) for profiled ops, ("sweep", label, n) for sweep
    points. Points from an unavailable section (perf-restricted host) or
    with ipc == 0 (counter never scheduled) are excluded — the IPC gate
    only ever compares measurements against measurements.
    """
    hw = doc.get("hw_counters")
    if not isinstance(hw, dict) or hw.get("available") is not True:
        return {}
    out = {}
    for op in hw.get("ops") or []:
        if isinstance(op, dict) and isinstance(op.get("ipc"), numbers.Real) \
                and op["ipc"] > 0:
            out[("op", op.get("name"))] = op
    for pt in hw.get("sweep") or []:
        if isinstance(pt, dict) and isinstance(pt.get("ipc"), numbers.Real) \
                and pt["ipc"] > 0:
            out[("sweep", pt.get("label"), pt.get("n"))] = pt
    return out


def hw_key_str(key):
    if key[0] == "op":
        return f"op '{key[1]}'"
    return f"sweep '{key[1]}' n={key[2]}"


def compare_hw(baseline, candidate, ipc_tol):
    """IPC-regression gate: per matched point measured on BOTH sides, the
    candidate's instructions-per-cycle may not fall below
    baseline * (1 - ipc_tol). IPC is the most machine-portable of the
    counter ratios (absolute cycle counts shift with clocks and load; the
    instruction mix does not), so it is the one that gates. A point or the
    whole section missing from the candidate is NOT a failure — the
    candidate may run on a perf-restricted host where the baseline did not.
    """
    diffs = []
    base_points = hw_point_map(baseline)
    cand_points = hw_point_map(candidate)
    for key, base_pt in base_points.items():
        cand_pt = cand_points.get(key)
        if cand_pt is None:
            continue
        bv, cv = base_pt["ipc"], cand_pt["ipc"]
        if cv < bv * (1.0 - ipc_tol):
            diffs.append(f"hw {hw_key_str(key)} ipc regressed: baseline "
                         f"{bv:.3f} vs candidate {cv:.3f} "
                         f"(tolerance {ipc_tol})")
    return diffs


def compare(baseline, candidate, counter_tol, fingerprint_tol, time_tol,
            quality_tol=None, serving_p99_tol=3.0, serving_shed_tol=0.25,
            ipc_tol=0.3):
    """Returns a list of human-readable difference strings (empty = pass)."""
    diffs = []

    base_fp = baseline.get("fingerprint", {})
    cand_fp = candidate.get("fingerprint", {})
    for key, base_val in base_fp.items():
        if key not in cand_fp:
            diffs.append(f"fingerprint '{key}' missing from candidate")
            continue
        cand_val = cand_fp[key]
        if isinstance(base_val, str) or isinstance(cand_val, str):
            if base_val != cand_val:
                diffs.append(f"fingerprint '{key}': baseline {base_val!r} "
                             f"vs candidate {cand_val!r}")
        elif rel_diff(float(base_val), float(cand_val)) > fingerprint_tol:
            diffs.append(f"fingerprint '{key}': baseline {base_val} vs "
                         f"candidate {cand_val} "
                         f"(tolerance {fingerprint_tol})")

    base_phases = phase_map(baseline)
    cand_phases = phase_map(candidate)
    for name, base_ph in base_phases.items():
        cand_ph = cand_phases.get(name)
        if cand_ph is None:
            diffs.append(f"phase '{name}' missing from candidate")
            continue
        if base_ph.get("count") != cand_ph.get("count"):
            diffs.append(f"phase '{name}' count: baseline "
                         f"{base_ph.get('count')} vs candidate "
                         f"{cand_ph.get('count')}")
        if time_tol is not None and isinstance(
                base_ph.get("seconds"), numbers.Real) and isinstance(
                cand_ph.get("seconds"), numbers.Real):
            if rel_diff(base_ph["seconds"], cand_ph["seconds"]) > time_tol:
                diffs.append(f"phase '{name}' seconds: baseline "
                             f"{base_ph['seconds']:.4f} vs candidate "
                             f"{cand_ph['seconds']:.4f} "
                             f"(tolerance {time_tol})")

    if time_tol is not None:
        bw = baseline.get("wall_seconds")
        cw = candidate.get("wall_seconds")
        if isinstance(bw, numbers.Real) and isinstance(cw, numbers.Real):
            if rel_diff(bw, cw) > time_tol:
                diffs.append(f"wall_seconds: baseline {bw:.4f} vs candidate "
                             f"{cw:.4f} (tolerance {time_tol})")

    base_counters = metric_map(baseline, "counters")
    cand_counters = metric_map(candidate, "counters")
    for key, base_item in base_counters.items():
        cand_item = cand_counters.get(key)
        if cand_item is None:
            diffs.append(f"counter {key_str(key)} missing from candidate")
            continue
        bv, cv = base_item.get("value", 0), cand_item.get("value", 0)
        if rel_diff(float(bv), float(cv)) > counter_tol:
            diffs.append(f"counter {key_str(key)}: baseline {bv} vs "
                         f"candidate {cv} (tolerance {counter_tol})")

    for section in ("gauges", "histograms"):
        base_named = metric_map(baseline, section)
        cand_named = metric_map(candidate, section)
        for key in base_named:
            if key not in cand_named:
                diffs.append(f"{section[:-1]} {key_str(key)} missing "
                             "from candidate")

    tolerances = {name: default for name, (_, default)
                  in QUALITY_METRICS.items()}
    tolerances.update(quality_tol or {})
    diffs.extend(compare_quality(baseline, candidate, tolerances))
    diffs.extend(compare_serving(baseline, candidate, serving_p99_tol,
                                 serving_shed_tol))
    diffs.extend(compare_hw(baseline, candidate, ipc_tol))

    return diffs


def perturb(candidate):
    """Deliberately corrupted copy used by --self-test."""
    bad = copy.deepcopy(candidate)
    counters = bad.get("metrics", {}).get("counters", [])
    if counters:
        counters[0]["value"] = counters[0].get("value", 0) * 3 + 1000
    if bad.get("phases"):
        bad["phases"] = bad["phases"][1:]
    if not counters and not bad.get("phases"):
        bad["fingerprint"] = dict(bad.get("fingerprint", {}),
                                  scale="perturbed")
    # The perturbed copy is used as the BASELINE, so inflating its accuracy
    # (and deflating its calibration error) makes the real candidate read as
    # a degraded-accuracy report — which the quality gate must reject.
    if isinstance(bad.get("quality"), dict):
        for g in bad["quality"].get("groups", []):
            if isinstance(g.get("mean_quality"), numbers.Real) and \
                    g["mean_quality"] >= 0:
                g["mean_quality"] = min(g["mean_quality"] + 0.5, 1.0)
            cal = g.get("calibration")
            if isinstance(cal, dict) and cal.get("samples", 0) > 0:
                cal["ece"] = 0.0
                cal["brier"] = 0.0
    # Same trick for serving: a near-zero baseline p99 and an impossible
    # shed rate make any real candidate read as a regression, proving the
    # serving gates can fire.
    if isinstance(bad.get("serving"), dict):
        for row in bad["serving"].get("rows", []):
            if isinstance(row, dict):
                row["p99_us"] = 1e-9
                row["shed_rate"] = -1.0
    # And for hardware counters: an impossibly high baseline IPC makes any
    # real candidate read as an IPC regression, proving that gate can fire.
    if isinstance(bad.get("hw_counters"), dict):
        for section in ("ops", "sweep"):
            for pt in bad["hw_counters"].get(section) or []:
                if isinstance(pt, dict) and \
                        isinstance(pt.get("ipc"), numbers.Real):
                    pt["ipc"] = pt["ipc"] * 100.0 + 100.0
    return bad


def run_bench(binary, workdir):
    # The subprocess runs with cwd=workdir, so a relative binary path given
    # on the command line must be resolved against the caller's cwd first.
    binary = os.path.abspath(binary)
    obs_dir = tempfile.mkdtemp(prefix="bench_regress_", dir=workdir or None)
    env = dict(os.environ)
    env.setdefault("TRMMA_BENCH_SCALE", "smoke")
    env.setdefault("TRMMA_BENCH_CITIES", "PT")
    env["TRMMA_OBS_DIR"] = obs_dir
    print(f"running {binary} (scale={env['TRMMA_BENCH_SCALE']}, "
          f"cities={env['TRMMA_BENCH_CITIES']})", flush=True)
    proc = subprocess.run([binary], env=env, cwd=workdir or None)
    if proc.returncode != 0:
        print(f"FAIL: {binary} exited with {proc.returncode}")
        return None
    reports = [os.path.join(obs_dir, f) for f in sorted(os.listdir(obs_dir))
               if f.startswith("BENCH_") and f.endswith(".json")]
    if len(reports) != 1:
        print(f"FAIL: expected exactly one BENCH_*.json in {obs_dir}, "
              f"found {len(reports)}")
        return None
    return reports[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--candidate", help="fresh BENCH_*.json to compare")
    parser.add_argument("--run", metavar="BINARY",
                        help="bench binary producing the candidate report")
    parser.add_argument("--workdir", default=None,
                        help="working directory for --run")
    parser.add_argument("--counter-tolerance", type=float, default=0.0,
                        help="max relative counter difference (default 0)")
    parser.add_argument("--fingerprint-tolerance", type=float, default=0.0,
                        help="max relative numeric-fingerprint difference")
    parser.add_argument("--time-tolerance", type=float, default=None,
                        help="if set, also compare wall/phase seconds "
                             "within this relative tolerance")
    parser.add_argument("--quality-tolerance", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="absolute degradation tolerance for a gated "
                             "quality metric (mean_quality, ece, brier); "
                             "repeatable, e.g. --quality-tolerance "
                             "mean_quality=0.05")
    parser.add_argument("--serving-p99-tolerance", type=float, default=3.0,
                        help="serving p99 ratio tolerance: flag when "
                             "candidate p99 > baseline * (1 + tol) at a "
                             "matched load point (default 3.0)")
    parser.add_argument("--serving-shed-tolerance", type=float, default=0.25,
                        help="serving shed-rate absolute tolerance at a "
                             "matched load point (default 0.25)")
    parser.add_argument("--ipc-tolerance", type=float, default=0.3,
                        help="hw-counter IPC gate: flag when a matched "
                             "op/sweep point's candidate IPC falls below "
                             "baseline * (1 - tol) (default 0.3); only "
                             "points measured on both sides compare")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the comparison fails on a perturbed "
                             "candidate before the real comparison")
    args = parser.parse_args()

    if bool(args.candidate) == bool(args.run):
        parser.error("pass exactly one of --candidate or --run")

    quality_tol = {}
    for spec in args.quality_tolerance:
        name, eq, value = spec.partition("=")
        if not eq or name not in QUALITY_METRICS:
            parser.error(f"bad --quality-tolerance {spec!r}: expected "
                         f"NAME=VALUE with NAME one of "
                         f"{sorted(QUALITY_METRICS)}")
        try:
            quality_tol[name] = float(value)
        except ValueError:
            parser.error(f"bad --quality-tolerance value in {spec!r}")

    candidate_path = args.candidate
    if args.run:
        candidate_path = run_bench(args.run, args.workdir)
        if candidate_path is None:
            return 1

    baseline = load(args.baseline)
    candidate = load(candidate_path)

    if args.self_test:
        bad_diffs = compare(perturb(candidate), candidate,
                            args.counter_tolerance,
                            args.fingerprint_tolerance, args.time_tolerance,
                            quality_tol, args.serving_p99_tolerance,
                            args.serving_shed_tolerance, args.ipc_tolerance)
        if quality_group_map(candidate) and not any(
                d.startswith("quality ") for d in bad_diffs):
            print("FAIL: self-test — quality gate did not flag a "
                  "degraded-accuracy report")
            return 1
        if serving_row_map(candidate) and not any(
                d.startswith("serving ") for d in bad_diffs):
            print("FAIL: self-test — serving gate did not flag a "
                  "degraded-latency report")
            return 1
        if hw_point_map(candidate) and not any(
                d.startswith("hw ") for d in bad_diffs):
            print("FAIL: self-test — hw-counter gate did not flag an "
                  "IPC regression")
            return 1
        if not bad_diffs:
            print("FAIL: self-test — comparison did not flag a "
                  "deliberately perturbed baseline")
            return 1
        print(f"self-test OK: perturbation detected "
              f"({len(bad_diffs)} differences)")

    diffs = compare(baseline, candidate, args.counter_tolerance,
                    args.fingerprint_tolerance, args.time_tolerance,
                    quality_tol, args.serving_p99_tolerance,
                    args.serving_shed_tolerance, args.ipc_tolerance)
    if diffs:
        print(f"REGRESSION: {candidate_path} vs {args.baseline}")
        for d in diffs:
            print(f"  {d}")
        return 1
    print(f"OK: {candidate_path} matches {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
