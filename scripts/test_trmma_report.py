#!/usr/bin/env python3
"""End-to-end exercise of the trmma_report CLI (run from ctest).

Renders the HTML quality dashboard from the committed BENCH baselines
(>= 2 reports, two of which carry a "quality" section) and checks:
  --payload  -> valid JSON, runs sorted oldest-first, quality preserved
  render     -> self-contained HTML embedding that exact payload, with the
                dashboard's structural landmarks present
plus negative checks: an empty directory and a malformed report are
rejected. Stdlib only, so it runs inside ctest with no extra dependencies.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run(cmd, **kwargs):
    print("+ " + " ".join(cmd), flush=True)
    return subprocess.run(cmd, capture_output=True, text=True, **kwargs)


def check(cond, what):
    if not cond:
        print(f"FAIL: {what}")
        sys.exit(1)
    print(f"OK: {what}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the trmma_report executable")
    parser.add_argument("--bench-dir", required=True,
                        help="directory of BENCH_*.json reports")
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="trmma_report_", dir=args.workdir or None)

    # --payload: the embedded data model, as JSON on stdout.
    pay = run([args.binary, "--payload", args.bench_dir])
    check(pay.returncode == 0, f"--payload exits 0 (stderr: {pay.stderr[:200]})")
    payload = json.loads(pay.stdout)
    runs = payload["runs"]
    check(len(runs) >= 2, f"payload carries >= 2 runs (got {len(runs)})")
    stamps = [r["created_unix"] for r in runs]
    check(stamps == sorted(stamps), "runs are sorted oldest-first")
    with_quality = [r for r in runs if r.get("quality")]
    check(len(with_quality) >= 2,
          f"at least two runs carry a quality section (got {len(with_quality)})")
    for r in with_quality:
        q = r["quality"]
        check(q["groups"] and isinstance(q["drift"], list),
              f"{r['file']}: quality section has groups and drift")
        g = q["groups"][0]
        for key in ("kind", "method", "city", "requests", "scored",
                    "mean_quality", "slices", "calibration"):
            check(key in g, f"{r['file']}: group carries '{key}'")
        cal = g["calibration"]
        for key in ("samples", "ece", "brier", "bins",
                    "dropped_nonfinite", "dropped_out_of_range"):
            check(key in cal, f"{r['file']}: calibration carries '{key}'")

    # render: a self-contained HTML file embedding the same payload.
    out_html = os.path.join(tmp, "dashboard.html")
    render = run([args.binary, args.bench_dir, out_html])
    check(render.returncode == 0,
          f"render exits 0 (stderr: {render.stderr[:200]})")
    html = open(out_html, encoding="utf-8").read()
    check(html.startswith("<!DOCTYPE html>"), "output is an HTML document")
    check(html.rstrip().endswith("</html>"), "HTML document is complete")
    stripped = html.replace("http://www.w3.org/2000/svg", "")  # namespace URI
    check("http://" not in stripped and "https://" not in stripped,
          "dashboard is self-contained (no external resources)")
    embedded = html.split('<script type="application/json" id="payload">')[1]
    embedded = embedded.split("</script>")[0].strip()
    check(json.loads(embedded.replace("<\\/", "</")) == payload,
          "embedded payload matches --payload output")
    for landmark in ('id="benchsel"', 'id="kpis"', 'id="epscharts"',
                     'id="relgrid"', 'id="slicetables"', 'id="drifttable"',
                     'id="memtable"', "prefers-color-scheme"):
        check(landmark in html, f"dashboard contains {landmark}")

    # Negative: an empty directory has no reports to aggregate.
    empty = os.path.join(tmp, "empty")
    os.mkdir(empty)
    miss = run([args.binary, empty, os.path.join(tmp, "none.html")])
    check(miss.returncode != 0, "empty directory is rejected")

    # Negative: a malformed report fails the whole load, loudly.
    bad = os.path.join(tmp, "bad")
    os.mkdir(bad)
    with open(os.path.join(bad, "BENCH_broken.json"), "w") as f:
        f.write("{this is not json")
    broke = run([args.binary, bad, os.path.join(tmp, "none.html")])
    check(broke.returncode != 0, "malformed report is rejected")
    check("BENCH_broken.json" in broke.stderr, "error names the bad file")

    print("ALL OK")


if __name__ == "__main__":
    main()
