#!/usr/bin/env python3
"""Crash drill for the postmortem pipeline (run from ctest and CI).

Three scenarios against the crash_demo binary:

  clean  -> the demo itself is healthy: starts, serves, exits 0
  crash  -> a worker faults via the serve.worker.crash fault point; the
            process must die of SIGSEGV AND leave a postmortem report that
            passes check_postmortem_json.py with a symbolized faulting
            stack, >= 2 captured threads, and in-flight requests
  kill   -> an externally delivered `kill -SEGV` (the black-box case: no
            cooperation from the faulting code) produces the same report

Each report is validated twice — by check_postmortem_json.py (this repo's
Python reimplementation) and by `trmma_inspect postmortem` when --inspect
is given. Stdlib only.
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time


def check(cond, what):
    if not cond:
        print(f"FAIL: {what}")
        sys.exit(1)
    print(f"OK: {what}")


def wait_ready(proc, timeout_s=20):
    """Reads the demo's 'ready pid=... postmortem=...' line."""
    line = proc.stdout.readline()
    check(line.startswith("ready "), f"demo printed ready line (got {line!r})")
    fields = dict(kv.split("=", 1) for kv in line.split()[1:])
    return int(fields["pid"]), fields["postmortem"]


def validate(checker, report, inspect, scenario):
    check(os.path.isfile(report), f"{scenario}: postmortem file exists")
    result = subprocess.run(
        [sys.executable, checker, report, "--min-threads", "2",
         "--min-frames", "1", "--require-inflight",
         "--expect-signal", "SIGSEGV"],
        capture_output=True, text=True)
    print(result.stdout.strip())
    check(result.returncode == 0,
          f"{scenario}: check_postmortem_json accepts the report "
          f"({result.stdout.strip()})")
    if inspect:
        cli = subprocess.run([inspect, "postmortem", report],
                             capture_output=True, text=True)
        check(cli.returncode == 0 and "postmortem OK" in cli.stdout,
              f"{scenario}: trmma_inspect postmortem accepts the report")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, help="crash_demo path")
    parser.add_argument("--checker", required=True,
                        help="path to check_postmortem_json.py")
    parser.add_argument("--inspect", default=None,
                        help="optional trmma_inspect path for CLI validation")
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--keep-report", default=None,
                        help="copy the crash-scenario report here (CI artifact)")
    args = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="crash_smoke_", dir=args.workdir or None)

    # Scenario 1: the demo is healthy when nothing faults.
    clean_dir = os.path.join(tmp, "clean")
    os.makedirs(clean_dir)
    clean = subprocess.run([args.binary, clean_dir, "clean"],
                           capture_output=True, text=True, timeout=120)
    check(clean.returncode == 0,
          f"clean: demo exits 0 (stderr: {clean.stderr[:200]})")
    check(not os.listdir(clean_dir), "clean: no postmortem written")

    # Scenario 2: a worker faults mid-request (fault-point injection).
    crash_dir = os.path.join(tmp, "crash")
    os.makedirs(crash_dir)
    proc = subprocess.Popen([args.binary, crash_dir, "crash"],
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    _, report = wait_ready(proc)
    proc.wait(timeout=120)
    check(proc.returncode == -signal.SIGSEGV,
          f"crash: process died of SIGSEGV (returncode {proc.returncode})")
    validate(args.checker, report, args.inspect, "crash")
    if args.keep_report:
        with open(report) as src, open(args.keep_report, "w") as dst:
            dst.write(src.read())
        print(f"OK: crash report copied to {args.keep_report}")

    # Scenario 3: an external kill -SEGV, no cooperation from the code.
    kill_dir = os.path.join(tmp, "kill")
    os.makedirs(kill_dir)
    proc = subprocess.Popen([args.binary, kill_dir, "wait"],
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    pid, report = wait_ready(proc)
    time.sleep(0.5)  # let the sleepy requests reach the executing state
    os.kill(pid, signal.SIGSEGV)
    proc.wait(timeout=120)
    check(proc.returncode == -signal.SIGSEGV,
          f"kill: process died of SIGSEGV (returncode {proc.returncode})")
    validate(args.checker, report, args.inspect, "kill")

    print("all crash smoke checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
