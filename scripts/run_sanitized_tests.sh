#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (-DTRMMA_SANITIZE=ON) in a dedicated build directory and runs the full
# test suite under it. Any sanitizer report fails the run
# (-fno-sanitize-recover=all aborts on the first UB hit).
#
# Usage: scripts/run_sanitized_tests.sh [ctest args...]
#   e.g. scripts/run_sanitized_tests.sh -R 'robust|chaos'
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${TRMMA_SANITIZE_BUILD_DIR:-${repo_root}/build-sanitize}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTRMMA_SANITIZE=ON
cmake --build "${build_dir}" -j "${jobs}"

# halt_on_error keeps ctest failures crisp; detect_leaks stays on by
# default where LeakSanitizer is supported.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "${build_dir}" -j "${jobs}" --output-on-failure "$@"
