#ifndef TRMMA_NODE2VEC_NODE2VEC_H_
#define TRMMA_NODE2VEC_NODE2VEC_H_

#include "common/random.h"
#include "graph/road_network.h"
#include "nn/matrix.h"

namespace trmma {

/// Node2Vec hyperparameters (Grover & Leskovec [43]). The walk graph is
/// the segment line-graph: two segments are neighbors when one can follow
/// the other on a route (in either direction), which captures road-network
/// connectivity for the pre-trained table W_G of paper Eq. 1.
struct Node2VecConfig {
  int dim = 32;
  int walks_per_node = 6;
  int walk_length = 16;
  int window = 4;
  int negatives = 4;
  double p = 1.0;  ///< return parameter
  double q = 2.0;  ///< in-out parameter (>1 keeps walks local)
  int epochs = 2;
  double lr = 0.025;
};

/// Trains Node2Vec embeddings for every road segment; returns an
/// (num_segments x dim) matrix, one row per segment id.
nn::Matrix TrainNode2Vec(const RoadNetwork& network,
                         const Node2VecConfig& config, Rng& rng);

}  // namespace trmma

#endif  // TRMMA_NODE2VEC_NODE2VEC_H_
