#include "node2vec/node2vec.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/train_log.h"

namespace trmma {
namespace {

double SigmoidScalar(double x) {
  if (x >= 0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Line-graph adjacency: segments reachable one hop before or after `e`.
std::vector<std::vector<int>> BuildLineGraph(const RoadNetwork& g) {
  std::vector<std::vector<int>> nbrs(g.num_segments());
  for (SegmentId e = 0; e < g.num_segments(); ++e) {
    for (SegmentId s : g.OutSegments(g.segment(e).to)) {
      if (s != e) nbrs[e].push_back(s);
    }
    for (SegmentId s : g.InSegments(g.segment(e).from)) {
      if (s != e) nbrs[e].push_back(s);
    }
    std::sort(nbrs[e].begin(), nbrs[e].end());
    nbrs[e].erase(std::unique(nbrs[e].begin(), nbrs[e].end()), nbrs[e].end());
  }
  return nbrs;
}

bool Contains(const std::vector<int>& sorted, int x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

}  // namespace

nn::Matrix TrainNode2Vec(const RoadNetwork& network,
                         const Node2VecConfig& config, Rng& rng) {
  const int n = network.num_segments();
  const int d = config.dim;
  const auto nbrs = BuildLineGraph(network);

  // Two tables: center ("in") and context ("out") vectors, word2vec-style.
  nn::Matrix center(n, d);
  nn::Matrix context(n, d);
  const double init = 0.5 / d;
  for (int i = 0; i < center.size(); ++i) {
    center.data()[i] = rng.Uniform(-init, init);
  }

  // One biased random walk starting at `start` (2nd-order p/q bias).
  std::vector<int> walk;
  std::vector<double> weights;
  auto random_walk = [&](int start) {
    walk.clear();
    walk.push_back(start);
    while (static_cast<int>(walk.size()) < config.walk_length) {
      const int cur = walk.back();
      const auto& cands = nbrs[cur];
      if (cands.empty()) break;
      if (walk.size() == 1) {
        walk.push_back(cands[rng.UniformInt(cands.size())]);
        continue;
      }
      const int prev = walk[walk.size() - 2];
      weights.resize(cands.size());
      for (size_t i = 0; i < cands.size(); ++i) {
        const int x = cands[i];
        if (x == prev) {
          weights[i] = 1.0 / config.p;
        } else if (Contains(nbrs[prev], x)) {
          weights[i] = 1.0;
        } else {
          weights[i] = 1.0 / config.q;
        }
      }
      walk.push_back(cands[rng.Categorical(weights)]);
    }
  };

  // Skip-gram with negative sampling over all walks. Loss bookkeeping is
  // gated on telemetry being on: the log() per pair is measurable at this
  // loop's grain.
  const bool log_training = obs::TrainLogger::Global().Enabled();
  double epoch_loss = 0.0;
  int64_t epoch_pairs = 0;
  std::vector<double> grad_center(d);
  auto train_pair = [&](int c, int o, double lr) {
    std::fill(grad_center.begin(), grad_center.end(), 0.0);
    double* vc = center.row(c);
    for (int k = 0; k <= config.negatives; ++k) {
      const int target = k == 0 ? o : static_cast<int>(rng.UniformInt(n));
      const double label = k == 0 ? 1.0 : 0.0;
      if (k > 0 && target == o) continue;
      double* uo = context.row(target);
      double dot = 0.0;
      for (int j = 0; j < d; ++j) dot += vc[j] * uo[j];
      const double sig = SigmoidScalar(dot);
      const double err = sig - label;
      if (log_training) {
        const double p = label > 0.5 ? sig : 1.0 - sig;
        epoch_loss += -std::log(std::max(p, 1e-12));
      }
      for (int j = 0; j < d; ++j) {
        grad_center[j] += err * uo[j];
        uo[j] -= lr * err * vc[j];
      }
    }
    for (int j = 0; j < d; ++j) vc[j] -= lr * grad_center[j];
    ++epoch_pairs;
  };

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  const int64_t total_steps = static_cast<int64_t>(config.epochs) *
                              config.walks_per_node * n;
  int64_t step = 0;
  Stopwatch epoch_watch;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    epoch_loss = 0.0;
    epoch_pairs = 0;
    for (int w = 0; w < config.walks_per_node; ++w) {
      rng.Shuffle(order);
      for (int start : order) {
        const double progress = static_cast<double>(step++) / total_steps;
        const double lr = config.lr * std::max(1.0 - progress, 0.05);
        random_walk(start);
        const int len = static_cast<int>(walk.size());
        for (int i = 0; i < len; ++i) {
          const int lo = std::max(0, i - config.window);
          const int hi = std::min(len - 1, i + config.window);
          for (int j = lo; j <= hi; ++j) {
            if (j != i) train_pair(walk[i], walk[j], lr);
          }
        }
        // `step` counts walks; ensure the loop above ran at least once per
        // node even for isolated segments (walk of length 1 trains nothing,
        // leaving the random init, which is acceptable for dead ends).
      }
    }
    if (log_training) {
      // SGD without an optimizer object: one telemetry row per epoch, with
      // the fields an Adam step would fill left at zero.
      const double seconds = epoch_watch.LapMillis() / 1e3;
      obs::TrainStepRow row;
      row.model = "node2vec";
      row.step = epoch + 1;
      row.epoch = epoch;
      row.loss = epoch_pairs > 0
                     ? epoch_loss / static_cast<double>(epoch_pairs)
                     : 0.0;
      row.examples = epoch_pairs;
      row.examples_per_sec =
          seconds > 0.0 ? static_cast<double>(epoch_pairs) / seconds : 0.0;
      obs::TrainLogger::Global().LogStep(row);
    }
  }
  return center;
}

}  // namespace trmma
