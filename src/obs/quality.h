#ifndef TRMMA_OBS_QUALITY_H_
#define TRMMA_OBS_QUALITY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/request_record.h"

namespace trmma {
namespace obs {

/// Quality observability (DESIGN.md §9): the accuracy-side counterpart of
/// the latency/FLOP telemetry. Per-request quality is attributed to slices
/// where it varies (sampling interval, gap length, candidate-set size,
/// degradation path, road density), the matcher's confidence scores are
/// reduced to a calibration summary (reliability bins, ECE, Brier), and
/// train-vs-serve input-feature drift is tracked as PSI. Everything is fed
/// from the same RequestRecord capture path as the flight recorder, so
/// recorded production traffic and bench runs share one code path.

// ---------------------------------------------------------------------------
// Calibration primitives (pure functions, unit-testable in isolation).
// ---------------------------------------------------------------------------

/// One (confidence, was-the-prediction-correct) observation.
struct ConfidenceSample {
  double confidence = 0.0;
  bool correct = false;
};

/// One reliability bin over [lo, hi): observation count, summed confidence
/// and summed correctness (so mean confidence / empirical accuracy are
/// recoverable without a second pass).
struct CalibrationBin {
  double lo = 0.0;
  double hi = 0.0;
  std::int64_t count = 0;
  double confidence_sum = 0.0;
  double correct_sum = 0.0;

  double mean_confidence() const {
    return count > 0 ? confidence_sum / count : 0.0;
  }
  double accuracy() const { return count > 0 ? correct_sum / count : 0.0; }
};

/// Reliability diagram + scalar calibration metrics for one score source.
struct CalibrationSummary {
  std::vector<CalibrationBin> bins;
  std::int64_t samples = 0;             ///< observations that landed in a bin
  std::int64_t dropped_nonfinite = 0;   ///< NaN/Inf confidences (counted, not binned)
  std::int64_t dropped_out_of_range = 0;  ///< finite but outside [0,1]
  double ece = 0.0;    ///< expected calibration error, Σ (n_b/N)·|acc_b−conf_b|
  double brier = 0.0;  ///< mean squared error of confidence vs correctness
};

/// Bins `samples` into `num_bins` equal-width reliability bins over [0,1]
/// and computes ECE + Brier. Non-finite confidences are dropped and
/// counted; finite confidences outside [0,1] likewise (HMM emission
/// log-probs are confidences but not probabilities — they must not poison a
/// probability-calibration summary). Empty input yields zeroed bins with
/// samples == 0.
CalibrationSummary ComputeCalibration(
    const std::vector<ConfidenceSample>& samples, int num_bins = 10);

/// Population Stability Index between two binned distributions given as raw
/// per-bin counts (same bin layout on both sides). Counts are normalized
/// and smoothed, so constant (single-bin) distributions are well-defined.
/// Degenerate inputs — either side empty, or mismatched bin counts — return
/// 0 and set *degenerate when provided. Rule of thumb: <0.1 stable, 0.1–0.25
/// moderate shift, >0.25 drifted.
double PopulationStabilityIndex(const std::vector<double>& expected_counts,
                                const std::vector<double>& observed_counts,
                                bool* degenerate = nullptr);

// ---------------------------------------------------------------------------
// Slice taxonomy (DESIGN.md §9.1).
// ---------------------------------------------------------------------------

/// Number of candidate ranks tracked individually in the rank-confusion
/// tallies; rank >= kQualityRankBuckets (or "not in the candidate set")
/// lands in the final overflow bucket.
constexpr int kQualityRankBuckets = 10;

/// Bucket labels are stable strings — they are report schema, compared by
/// the bench regression gate.
std::string EpsilonBucket(double effective_interval_s);
std::string GapBucket(double max_gap_s);
std::string CandidateCountBucket(double mean_candidates);
std::string DensityBucket(double mean_kth_distance_m);
std::string OutcomeBucket(const std::string& outcome);

/// One request reduced to its quality-attribution view: group identity,
/// slice buckets, per-point confidence/correctness pairs and candidate-rank
/// observations. Derived deterministically from a RequestRecord (live
/// capture and offline JSONL take the same path).
struct QualitySample {
  std::string kind;
  std::string method;
  std::string city;
  double quality = -1.0;  ///< f1 / accuracy; -1 = unknown

  std::string epsilon_bucket;
  std::string gap_bucket;
  std::string candidate_bucket;
  std::string density_bucket;
  std::string outcome_bucket;

  std::vector<ConfidenceSample> confidences;  ///< points with known truth
  std::int64_t confidence_nonfinite = 0;      ///< NaN scores seen pre-pairing
  std::vector<int> chosen_rank;  ///< rank of the chosen candidate per point
  std::vector<int> truth_rank;   ///< rank of the true segment per point
};

QualitySample QualitySampleFromRecord(const RequestRecord& record);

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

/// Accumulates QualitySamples into per-(kind, method, city) groups with
/// slice tables, calibration inputs and rank confusions, and renders the
/// "quality" report section. Plain object — the QualityLog singleton owns
/// one for live capture, and trmma_inspect builds a local one per JSONL.
class QualityAggregator {
 public:
  void Add(const QualitySample& sample);
  void AddRecord(const RequestRecord& record) {
    Add(QualitySampleFromRecord(record));
  }

  bool HasData() const;
  std::int64_t requests() const;

  /// The "groups" JSON array (see DESIGN.md §9.3 for the schema).
  std::string GroupsJson(int reliability_bins = 10) const;

  void Reset();

 private:
  struct SliceAgg {
    std::int64_t requests = 0;
    std::int64_t scored = 0;     ///< requests with a known quality
    double quality_sum = 0.0;
  };

  struct GroupAgg {
    std::int64_t requests = 0;
    std::int64_t scored = 0;
    double quality_sum = 0.0;
    double quality_min = 0.0;
    double quality_max = 0.0;
    /// dimension -> bucket -> aggregate (std::map: deterministic order).
    std::map<std::string, std::map<std::string, SliceAgg>> slices;
    std::vector<ConfidenceSample> confidences;
    std::int64_t confidence_nonfinite = 0;
    std::int64_t chosen_rank[kQualityRankBuckets + 1] = {};
    std::int64_t truth_rank[kQualityRankBuckets + 1] = {};
  };

  std::map<std::string, GroupAgg> groups_;  ///< key: kind|method|city
};

// ---------------------------------------------------------------------------
// Feature drift tracking.
// ---------------------------------------------------------------------------

/// Input features of the MMA/TRMMA matching path whose train-vs-serve
/// distributions are tracked for drift. Observed inside ComputeCandidates,
/// the shared entry point of training and inference.
enum QualityFeature : int {
  kFeatureNearestCandidateM = 0,  ///< distance to the nearest candidate
  kFeatureKthCandidateM,          ///< distance to the k-th (density proxy)
  kFeatureCandidateCount,         ///< candidate-set size per point
  kFeatureGapSeconds,             ///< consecutive-point time gap
  kFeatureTrajPoints,             ///< input trajectory length
  kNumQualityFeatures,
};

const char* QualityFeatureName(int feature);

/// Which side of the train/serve divide observations land on. Training
/// loops run inside a QualityPhaseScope(kTrain); everything else is serve.
enum class QualityPhase : int { kServe = 0, kTrain = 1 };

namespace internal_obs {
extern std::atomic<bool> g_quality_enabled;
extern std::atomic<int> g_quality_phase;
}  // namespace internal_obs

/// The per-hook fast gate, mirroring ActiveRecord(): one relaxed atomic
/// load and a branch when quality telemetry is off.
inline bool QualityEnabled() {
  return internal_obs::g_quality_enabled.load(std::memory_order_relaxed);
}

/// RAII train-phase marker (process-wide; the repo's training loops are
/// single-threaded, and a mislabeled overlap only blurs the drift signal).
class QualityPhaseScope {
 public:
  explicit QualityPhaseScope(QualityPhase phase)
      : prev_(internal_obs::g_quality_phase.exchange(
            static_cast<int>(phase), std::memory_order_relaxed)) {}
  ~QualityPhaseScope() {
    internal_obs::g_quality_phase.store(prev_, std::memory_order_relaxed);
  }
  QualityPhaseScope(const QualityPhaseScope&) = delete;
  QualityPhaseScope& operator=(const QualityPhaseScope&) = delete;

 private:
  int prev_;
};

/// Process-wide quality telemetry: a QualityAggregator fed by RequestScope
/// teardown plus fixed-bin feature histograms (train and serve) for PSI.
/// Disabled by default; enabled via Configure or TRMMA_QUALITY=1.
class QualityLog {
 public:
  static constexpr int kDriftBins = 16;

  static QualityLog& Global();

  /// Enables/disables quality capture and refreshes the shared capture
  /// gate, so RequestScope activates even when flight-recorder retention
  /// is off.
  void Configure(bool enabled);
  /// Applies TRMMA_QUALITY (any value but "0"/"" enables).
  void ConfigureFromEnv();

  /// Called by RequestScope teardown for every completed request.
  void Ingest(const RequestRecord& record);

  /// Hot-path feature observation; call sites gate on QualityEnabled().
  void ObserveFeature(int feature, double value);

  bool HasData() const;

  /// The full "quality" report section: {"groups":[...],"drift":[...]}.
  std::string SummaryJson() const;

  /// Copies of the raw drift histograms (test hook).
  std::vector<double> DriftCounts(int feature, QualityPhase phase) const;

  void ResetForTest();

 private:
  QualityLog() = default;

  mutable std::mutex mu_;
  QualityAggregator aggregator_;
  /// [feature][phase][bin] relaxed counters; bounds are per-feature
  /// compile-time constants (see quality.cc).
  std::atomic<std::int64_t>
      drift_[kNumQualityFeatures][2][kDriftBins] = {};
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_QUALITY_H_
