#ifndef TRMMA_OBS_TELEMETRY_SERVER_H_
#define TRMMA_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {

/// Dependency-free HTTP/1.0 exporter on a background thread, bound to
/// 127.0.0.1 only (observability endpoint, not a public surface):
///
///   /metrics  Prometheus text exposition (refreshes memory/lock/SLO gauges
///             on every scrape, then MetricRegistry::WriteText)
///   /healthz  "ok" liveness probe
///   /statusz  build info, uptime, trace mode, lock stats, memory, SLO state
///   /tracez   recent spans grouped by trace id, newest first, with a
///             per-request duration breakdown (requires TRMMA_TRACE=1);
///             capped at 50 traces per response
///   /slo      last SLO evaluation
///   /pprof    live folded-stack CPU profile (404 until the profiler has
///             run); /pprof/flame renders it as a self-contained flamegraph
///             HTML and /pprof/json as the bench "profile" section
///   /debug/stacks      symbolized stack dump of every registered thread
///                      (SIGUSR2 rendezvous, obs/stack_walk.h)
///   /debug/postmortem  live postmortem JSON — what a crash report would
///                      contain if the process died now (obs/postmortem.h)
///   /quitz    scrape-complete handshake: marks quit_requested() so a
///             short-lived process lingering via WaitForQuit can exit
///
/// Unknown paths get a 404 listing the available endpoints.
/// The accept loop polls with a short timeout and re-checks a stop flag, so
/// Stop() (idempotent, also installed via atexit by StartFromEnv) joins the
/// thread and closes every fd — clean under ASan/LSan. One request per
/// connection, Connection: close; enough for curl and Prometheus scrapes.
class TelemetryServer {
 public:
  static TelemetryServer& Global();

  TelemetryServer() = default;
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`port` and starts serving. Port 0 picks an ephemeral
  /// port (see port()). Fails if already running or the bind fails.
  Status Start(int port);
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (resolves port 0), 0 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }
  std::int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// True once a client has hit /quitz since the last Start().
  bool quit_requested() const {
    return quit_.load(std::memory_order_acquire);
  }
  /// Blocks until /quitz is hit or `timeout_ms` elapses; returns
  /// quit_requested(). Short-lived processes (benches at smoke scale) call
  /// this before Stop() when TRMMA_HTTP_LINGER_MS is set, so a scraper
  /// racing process exit can finish its reads and then release the server.
  bool WaitForQuit(int timeout_ms);

  /// Starts from TRMMA_HTTP_PORT when set; prints the bound address to
  /// stdout ("telemetry: serving on 127.0.0.1:<port>") so harnesses can
  /// discover an ephemeral port, and installs an atexit Stop. Returns true
  /// when the server is running.
  bool StartFromEnv();

 private:
  void Serve();
  void HandleConnection(int fd);

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> quit_{false};
  std::atomic<int> port_{0};
  std::atomic<std::int64_t> requests_{0};
  int listen_fd_ = -1;
  double start_us_ = 0.0;
  QueueDepth inflight_{"telemetry.inflight"};
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_TELEMETRY_SERVER_H_
