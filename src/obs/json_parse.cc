#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace trmma {
namespace obs {

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNullValue;
  const auto it = object_.find(key);
  return it == object_.end() ? kNullValue : it->second;
}

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    Status st = ParseValue(&v, 0);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          out->type_ = JsonValue::Type::kBool;
          out->bool_ = true;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          out->type_ = JsonValue::Type::kBool;
          out->bool_ = false;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->type_ = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      // The writer never emits duplicate keys, so one here means a corrupt
      // or hand-edited document; silently keeping either value would hide
      // the corruption.
      if (!out->object_.emplace(std::move(key), std::move(value)).second) {
        return Error("duplicate object key");
      }
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->array_.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            pos_ += 4;
            // The writer only escapes control bytes; decode BMP code points
            // to UTF-8 so round trips are lossless.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("invalid escape sequence");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace obs
}  // namespace trmma
