#ifndef TRMMA_OBS_STACK_WALK_H_
#define TRMMA_OBS_STACK_WALK_H_

#include <string>

namespace trmma {
namespace obs {

/// Frames kept per captured stack; deeper stacks are truncated. Shared by
/// the CPU profiler's sample buffers and the postmortem thread dumps.
constexpr int kStackMaxFrames = 48;

/// True when frame-pointer walking is usable in this build: a supported
/// architecture (x86_64 / aarch64 Linux) and no ASan/TSan instrumentation
/// (their shadow-memory stack layouts do not tolerate raw frame walks).
/// When false every Capture* function returns 0 frames; callers must treat
/// an empty stack as "unavailable", not as an error.
bool StackWalkSupported();

/// Captures the interrupted context's stack by frame-pointer walk. Every
/// operation is async-signal-safe: register reads from the ucontext
/// (`ucontext_or_null`, a ucontext_t* as handed to an SA_SIGINFO handler),
/// then a bounded loop of guarded loads (process_vm_readv on our own pid, so
/// a garbage frame pointer yields EFAULT instead of a fault) with the
/// standard validity heuristics (alignment, strictly increasing frame
/// pointers, < 1 MB stride). Passing nullptr walks the caller's own stack
/// starting from this frame. Returns the captured depth (0 when
/// unsupported). Requires -fno-omit-frame-pointer (set globally in CMake).
int CaptureStack(void* ucontext_or_null, void** out, int max_depth);

/// Synchronous self-capture: CaptureStack(nullptr, ...) minus this frame.
int CaptureCallerStack(void** out, int max_depth);

/// The calling thread's kernel thread id (gettid). Async-signal-safe.
int CurrentThreadId();

/// Best-effort symbol name for a walked PC: dladdr + __cxa_demangle,
/// resolving pc-1 (sample PCs are return addresses), falling back to the
/// object basename and finally "0x<addr>". ';' and '\n' are sanitized (they
/// are folded-stack separators). Not async-signal-safe (allocates); callers
/// in crash context accept that as a documented best-effort relaxation.
std::string SymbolizePc(void* pc);

/// One captured thread stack (fixed layout so broadcast capture can fill it
/// from a signal handler without allocation).
struct ThreadStack {
  int tid = 0;            ///< kernel thread id (gettid)
  char name[24] = {0};    ///< registration name, NUL-terminated
  bool faulting = false;  ///< set by the crash handler on the faulting thread
  int depth = 0;          ///< 0 = capture unavailable or timed out
  void* frames[kStackMaxFrames];
};

/// Registry of instrumented threads for on-demand all-thread stack capture.
/// Threads register on entry (ScopedThreadRegistration); a requester then
/// broadcasts SIGUSR2 and each registered thread's handler walks its own
/// stack into a preallocated per-thread slot — no allocation, no locks, so
/// the whole rendezvous is usable from a crash handler. Fixed capacity
/// (kMaxThreads slots); registration beyond that is silently dropped.
class ThreadRegistry {
 public:
  static constexpr int kMaxThreads = 64;

  static ThreadRegistry& Global();

  /// Registers the calling thread under `name` (truncated to 23 chars) and
  /// installs the SIGUSR2 capture handler on first use. Idempotent per
  /// thread (re-registering renames). Returns the slot index, or -1 when
  /// the registry is full.
  int RegisterCurrentThread(const char* name);
  /// Frees the calling thread's slot (no-op when not registered).
  void UnregisterCurrentThread();

  /// Number of currently registered threads.
  int registered_count() const;

  /// Captures the stacks of every registered thread: the caller's own stack
  /// synchronously, every other registered thread via SIGUSR2 with a
  /// bounded rendezvous wait (~100 ms total). Threads that miss the window
  /// appear with depth 0. Async-signal-safe (atomics, tgkill, nanosleep,
  /// guarded reads only). Returns the number of entries written to `out`
  /// (the caller's thread first, even when unregistered).
  int CaptureAllStacks(ThreadStack* out, int max_out);

  /// Targeted capture of one registered thread (the watchdog's stuck-worker
  /// dump). Returns true and fills `out` when `tid` is registered and
  /// responded within the rendezvous window.
  bool CaptureThreadStack(int tid, ThreadStack* out);

 private:
  ThreadRegistry() = default;
};

/// RAII registration: Register on construction, Unregister on destruction.
class ScopedThreadRegistration {
 public:
  explicit ScopedThreadRegistration(const char* name) {
    ThreadRegistry::Global().RegisterCurrentThread(name);
  }
  ~ScopedThreadRegistration() {
    ThreadRegistry::Global().UnregisterCurrentThread();
  }
  ScopedThreadRegistration(const ScopedThreadRegistration&) = delete;
  ScopedThreadRegistration& operator=(const ScopedThreadRegistration&) =
      delete;
};

/// Symbolized human-readable rendering of captured stacks, one block per
/// thread ("thread 1234 [serve.worker]" then one indented frame per line).
std::string FormatThreadStacks(const ThreadStack* stacks, int count);

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_STACK_WALK_H_
