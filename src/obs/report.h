#ifndef TRMMA_OBS_REPORT_H_
#define TRMMA_OBS_REPORT_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"

namespace trmma {
namespace obs {

/// Machine-readable record of one benchmark/experiment run: named wall-time
/// phases (accumulated across repeats), a dataset/config fingerprint, and —
/// at write time — a snapshot of the global metric registry. Serialized as
/// BENCH_<name>.json so successive runs can be diffed (the repo's persisted
/// perf trajectory; schema in DESIGN.md §Observability).
class RunReport {
 public:
  RunReport() = default;
  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  /// Report the bench mains and the experiment harness write into.
  static RunReport& Global();

  void SetName(const std::string& name);
  std::string name() const;

  /// Accumulates `seconds` under phase `name` (repeat calls sum and count).
  void AddPhaseSeconds(const std::string& name, double seconds);

  /// Fingerprint entries identify what ran: dataset shapes, config knobs,
  /// seeds. Later writes to the same key overwrite.
  void SetFingerprint(const std::string& key, const std::string& value);
  void SetFingerprintNumber(const std::string& key, double value);

  /// Attaches a bench-authored top-level section (e.g. "serving") whose
  /// value is pre-serialized JSON; spliced into ToJson() after the standard
  /// sections. Later writes to the same name overwrite. The caller is
  /// responsible for `json` being valid JSON.
  void SetSectionJson(const std::string& name, const std::string& json);

  /// Full report JSON including the metrics snapshot.
  std::string ToJson() const;

  /// Writes BENCH_<name>.json into `dir` (default: $TRMMA_OBS_DIR or the
  /// working directory). Returns the path written on success.
  StatusOr<std::string> WriteFile(const std::string& dir = "") const;

  /// Clears phases and fingerprint and restarts the wall clock (test hook).
  void Reset();

 private:
  struct Phase {
    double seconds = 0.0;
    int64_t count = 0;
  };

  mutable std::mutex mu_;
  std::string name_ = "run";
  Stopwatch wall_;
  std::vector<std::string> phase_order_;
  std::map<std::string, Phase> phases_;
  std::vector<std::string> fingerprint_order_;
  std::map<std::string, std::pair<bool, std::string>>
      fingerprint_;  ///< value: (is_number, text)
  std::vector<std::string> section_order_;
  std::map<std::string, std::string> sections_;  ///< pre-serialized JSON
};

/// RAII phase timer: adds the scope's wall time to RunReport::Global().
/// Phases are coarse (dataset build, one training run, one eval sweep), so
/// they are recorded regardless of TraceMode.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string name) : name_(std::move(name)) {}
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  std::string name_;
  Stopwatch watch_;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_REPORT_H_
