#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <algorithm>
#include <map>

#include "obs/cpu_profiler.h"
#include "obs/hw_counters.h"
#include "obs/json.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/slo.h"
#include "obs/stack_walk.h"
#include "obs/trace.h"
#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {
namespace {

struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    default:
      return "Error";
  }
}

std::string StatuszJson(double uptime_us, std::int64_t requests) {
  JsonWriter w;
  w.BeginObject();
  w.Key("build_compiler").String(__VERSION__);
#ifdef NDEBUG
  w.Key("build_type").String("release");
#else
  w.Key("build_type").String("debug");
#endif
  w.Key("pid").Int(static_cast<long long>(::getpid()));
  w.Key("uptime_us").Number(uptime_us);
  w.Key("trace_mode").Int(static_cast<int>(CurrentTraceMode()));
  w.Key("requests_served").Int(requests);
  w.Key("active_spans")
      .Int(static_cast<long long>(TraceRing::Global().Snapshot().size()));
  w.EndObject();
  std::string out = w.TakeString();
  // Splice the pre-rendered sub-documents (same idiom as report.cc).
  out.pop_back();
  out += ",\"locks\":" + LockStatsJson();
  out += ",\"memory\":" + MemoryJson();
  out += ",\"slo\":" + SloWatchdog::Global().StatusJson() + "}";
  return out;
}

/// /tracez: the span ring grouped by trace id — one entry per request with
/// its end-to-end duration and a per-span-name time breakdown — instead of
/// the raw ring dump (which interleaved every thread's spans and grew
/// unbounded with the ring). Newest traces first; the response is capped at
/// kTracezMaxTraces entries and untraced spans are summarized as a count.
std::string TracezJson() {
  constexpr size_t kTracezMaxTraces = 50;
  const std::vector<SpanRecord> spans = TraceRing::Global().Snapshot();

  struct TraceGroup {
    double start_us = 0.0;
    double end_us = 0.0;
    double root_duration_us = -1.0;  ///< serve.request span when present
    int span_count = 0;
    std::map<std::string, std::pair<int, double>> breakdown;  // count, us
  };
  std::map<uint64_t, TraceGroup> traces;
  int64_t untraced = 0;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == 0) {
      ++untraced;
      continue;
    }
    TraceGroup& group = traces[span.trace_id];
    const double end = span.start_us + span.duration_us;
    if (group.span_count == 0 || span.start_us < group.start_us) {
      group.start_us = span.start_us;
    }
    group.end_us = std::max(group.end_us, end);
    ++group.span_count;
    const std::string name = span.name != nullptr ? span.name : "?";
    if (span.parent_seq < 0 && span.lane > 0) {
      group.root_duration_us =
          std::max(group.root_duration_us, span.duration_us);
    }
    auto& slot = group.breakdown[name];
    ++slot.first;
    slot.second += span.duration_us;
  }

  // Newest first: order by trace start descending.
  std::vector<std::pair<uint64_t, const TraceGroup*>> ordered;
  ordered.reserve(traces.size());
  for (const auto& [id, group] : traces) ordered.emplace_back(id, &group);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->start_us > b.second->start_us;
                   });
  const bool truncated = ordered.size() > kTracezMaxTraces;
  if (truncated) ordered.resize(kTracezMaxTraces);

  JsonWriter w;
  w.BeginObject();
  w.Key("span_count").Int(static_cast<long long>(spans.size()));
  w.Key("trace_count").Int(static_cast<long long>(traces.size()));
  w.Key("untraced_spans").Int(untraced);
  w.Key("truncated").Bool(truncated);
  w.Key("traces").BeginArray();
  for (const auto& [id, group] : ordered) {
    w.BeginObject();
    w.Key("trace_id").String(TraceIdHex(id));
    w.Key("spans").Int(group->span_count);
    w.Key("start_us").Number(group->start_us);
    w.Key("duration_us")
        .Number(group->root_duration_us >= 0.0
                    ? group->root_duration_us
                    : group->end_us - group->start_us);
    w.Key("breakdown").BeginArray();
    for (const auto& [name, slot] : group->breakdown) {
      w.BeginObject();
      w.Key("name").String(name);
      w.Key("count").Int(slot.first);
      w.Key("total_us").Number(slot.second);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

HttpResponse Dispatch(const std::string& path, double uptime_us,
                      std::int64_t requests) {
  HttpResponse resp;
  if (path == "/metrics") {
    // Refresh the derived telemetry before the scrape so gauges and SLO
    // breach counters reflect this instant, not the last report write.
    MetricRegistry& registry = MetricRegistry::Global();
    PublishMemoryMetrics(&registry);
    PublishLockMetrics(&registry);
    if (SloWatchdog::Global().active()) {
      SloWatchdog::Global().Evaluate(&registry);
    }
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = registry.WriteText();
    return resp;
  }
  if (path == "/healthz") {
    resp.body = "ok\n";
    return resp;
  }
  if (path == "/statusz") {
    resp.content_type = "application/json";
    resp.body = StatuszJson(uptime_us, requests) + "\n";
    return resp;
  }
  if (path == "/tracez") {
    resp.content_type = "application/json";
    resp.body = TracezJson() + "\n";
    return resp;
  }
  if (path == "/slo") {
    resp.content_type = "application/json";
    resp.body = SloWatchdog::Global().StatusJson() + "\n";
    return resp;
  }
  if (path == "/perf") {
    // Hardware-counter state: availability (with the refusal reason on
    // perf-restricted hosts), calibration peaks, and per-op roofline
    // coordinates. Always answers 200 — degraded hosts report
    // {"available": false, ...} rather than an error.
    resp.content_type = "application/json";
    resp.body = HwCounters::Global().SectionJson() + "\n";
    return resp;
  }
  if (path == "/pprof") {
    // Live folded-stack profile (drains the sampler's pending epoch).
    CpuProfiler& profiler = CpuProfiler::Global();
    if (!profiler.running() && profiler.stats().samples == 0) {
      resp.code = 404;
      resp.body =
          "cpu profiler not running (set TRMMA_CPU_PROFILE=1 or call "
          "CpuProfiler::Start)\n";
      return resp;
    }
    resp.body = profiler.FoldedStacks();
    return resp;
  }
  if (path == "/pprof/flame") {
    resp.content_type = "text/html; charset=utf-8";
    resp.body = CpuProfiler::Global().FlamegraphHtml();
    return resp;
  }
  if (path == "/pprof/json") {
    resp.content_type = "application/json";
    resp.body = CpuProfiler::Global().ProfileSectionJson(20) + "\n";
    return resp;
  }
  if (path == "/debug/stacks") {
    // All-thread stack dump via the SIGUSR2 rendezvous (obs/stack_walk.h).
    ThreadStack stacks[ThreadRegistry::kMaxThreads];
    const int count = ThreadRegistry::Global().CaptureAllStacks(
        stacks, ThreadRegistry::kMaxThreads);
    resp.body = "registered threads: " +
                std::to_string(ThreadRegistry::Global().registered_count()) +
                "\n" + FormatThreadStacks(stacks, count);
    return resp;
  }
  if (path == "/debug/postmortem") {
    // A live postmortem document (signal 0): exactly what a crash report
    // would contain if the process died right now.
    resp.content_type = "application/json";
    resp.body = BuildPostmortemJson(PostmortemContext{}) + "\n";
    return resp;
  }
  resp.code = 404;
  resp.body = "not found: " + path + "\navailable endpoints:\n";
  static const char* const kEndpoints[] = {
      "/metrics",     "/healthz",      "/statusz",
      "/tracez",      "/slo",          "/perf",
      "/pprof",       "/pprof/flame",  "/pprof/json",
      "/debug/stacks",                 "/debug/postmortem",
      "/quitz",
  };
  for (const char* endpoint : kEndpoints) {
    resp.body += "  ";
    resp.body += endpoint;
    resp.body += '\n';
  }
  return resp;
}

}  // namespace

TelemetryServer& TelemetryServer::Global() {
  static TelemetryServer* server = new TelemetryServer();
  return *server;
}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(int port) {
  if (running()) return Status::FailedPrecondition("telemetry already running");
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad telemetry port");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("telemetry: socket() failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return Status::IOError("telemetry: bind 127.0.0.1:" +
                           std::to_string(port) +
                           " failed: " + std::strerror(saved_errno));
  }
  if (::listen(fd, 16) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return Status::IOError(std::string("telemetry: listen() failed: ") +
                           std::strerror(saved_errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return Status::IOError(std::string("telemetry: getsockname() failed: ") +
                           std::strerror(saved_errno));
  }
  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  start_us_ = NowMicros();
  stop_.store(false, std::memory_order_release);
  quit_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void TelemetryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_release);
}

void TelemetryServer::Serve() {
  ScopedThreadRegistration registration("telemetry.http");
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // Short timeout so Stop() is observed within ~200 ms.
    const int n = ::poll(&pfd, 1, 200);
    if (n <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    QueueDepth::Scope scope(inflight_);
    HandleConnection(conn);
    ::close(conn);
  }
}

void TelemetryServer::HandleConnection(int fd) {
  // Bound both the request size and the wait for it.
  timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  char buf[4096];
  size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + got, sizeof(buf) - 1 - got, 0);
    if (n <= 0) break;
    got += static_cast<size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[got] = '\0';
  std::string path = "/";
  if (std::strncmp(buf, "GET ", 4) == 0) {
    const char* start = buf + 4;
    const char* end = start;
    while (*end != '\0' && *end != ' ' && *end != '\r' && *end != '\n') ++end;
    path.assign(start, end);
    // Queries are ignored: every endpoint is parameterless.
    const size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);
  }
  const std::int64_t requests =
      requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  HttpResponse resp;
  if (path == "/quitz") {
    // Handled here, not in Dispatch: the handshake flips server state.
    quit_.store(true, std::memory_order_release);
    resp.body = "bye\n";
  } else {
    resp = Dispatch(path, NowMicros() - start_us_, requests);
  }
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                resp.code, ReasonPhrase(resp.code), resp.content_type.c_str(),
                resp.body.size());
  std::string out = header;
  out += resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

bool TelemetryServer::WaitForQuit(int timeout_ms) {
  if (!running()) return true;
  const double deadline_us = NowMicros() + 1000.0 * timeout_ms;
  while (!quit_.load(std::memory_order_acquire) &&
         NowMicros() < deadline_us) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return quit_.load(std::memory_order_acquire);
}

bool TelemetryServer::StartFromEnv() {
  const char* env = std::getenv("TRMMA_HTTP_PORT");
  if (env == nullptr || *env == '\0') return false;
  const int port = std::atoi(env);
  const Status status = Start(port);
  if (!status.ok()) {
    std::fprintf(stderr, "trmma: TRMMA_HTTP_PORT ignored: %s\n",
                 status.ToString().c_str());
    return false;
  }
  // Printed (and flushed) so harnesses can discover an ephemeral port.
  std::printf("telemetry: serving on 127.0.0.1:%d\n", this->port());
  std::fflush(stdout);
  std::atexit([] { TelemetryServer::Global().Stop(); });
  return true;
}

}  // namespace obs
}  // namespace trmma
