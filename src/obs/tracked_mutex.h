#ifndef TRMMA_OBS_TRACKED_MUTEX_H_
#define TRMMA_OBS_TRACKED_MUTEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace trmma {
namespace obs {

class Histogram;
class MetricRegistry;

namespace internal_obs {
// Defined in metrics.cc (the TraceMode gate). Redeclared here instead of
// including metrics.h so metrics.h can make its own registry lock a
// TrackedMutex without a header cycle.
extern std::atomic<int> g_trace_mode;

/// Combined lock-instrumentation gate, defined in tracked_mutex.cc:
/// bit 0 = trace mode is on (stats/histograms), bit 1 = lock-order cycle
/// detection is on. Recomputed by RefreshLockGate() whenever either input
/// changes (SetTraceMode, SetLockOrderTracking), so the hot path stays one
/// relaxed load + branch.
extern std::atomic<int> g_lock_gate;
void RefreshLockGate();

/// Fast gate for lock instrumentation: one relaxed load + compare, shared
/// with TRMMA_SPAN semantics (TraceMode::kOff disables stats) but also
/// raised by TRMMA_LOCK_ORDER so inversion detection works with metrics off.
inline bool LockTrackingEnabled() {
  return g_lock_gate.load(std::memory_order_relaxed) != 0;
}

/// Lock-order hooks, called from the tracked slow paths with the gate up.
/// `id` is the mutex instance, `name` its static-storage family name.
void LockOrderOnAcquire(const void* id, const char* name);
void LockOrderOnRelease(const void* id);
}  // namespace internal_obs

/// Opt-in lock-order cycle detection (DESIGN.md §13). When enabled — via
/// TRMMA_LOCK_ORDER=1 in the environment or SetLockOrderTracking(true) —
/// every tracked acquisition records "B acquired while A held" edges into a
/// process-wide lock-order graph keyed by lock family name, with the
/// acquisition stack captured at each edge's first observation. An edge
/// that closes a cycle (the classic ABBA inversion) is reported once per
/// ordered pair: logged at Error level with both acquisition stacks, kept
/// in LockOrderInversions(), and counted in LockOrderJson(). Detection adds
/// a held-lock-set update per tracked acquisition, so it is a debugging
/// mode, not a production default.
void SetLockOrderTracking(bool enabled);
bool LockOrderTrackingEnabled();

/// One detected inversion: `second` was acquired while `first` was held,
/// yet the graph already proves an order from `second` back to `first`.
struct LockOrderInversion {
  std::string first;
  std::string second;
  /// Symbolized acquisition stack of the inverting edge (second-under-first)
  /// and of the pre-existing reverse path's first edge. Empty when frame
  /// walking is unavailable (sanitizer builds).
  std::string forward_stack;
  std::string reverse_stack;
};

/// Inversions detected since the last reset, in detection order.
std::vector<LockOrderInversion> LockOrderInversions();
/// {"enabled":...,"edges":N,"inversions":[{"first","second",...}]} for
/// /debug/postmortem and the postmortem report.
std::string LockOrderJson();
/// Non-blocking LockOrderJson for the crash path: false (out untouched)
/// when the detector's state lock is held.
bool TryLockOrderJson(std::string* out);
/// Drops the edge graph, held-lock sets stay (test hook).
void ResetLockOrderForTest();

/// Drop-in std::mutex replacement (Lockable: lock/try_lock/unlock) that
/// records acquisition count, contended acquisitions, wait time under
/// contention and hold time. All state lives inside the mutex itself —
/// never in the metric registry — so the registry's own lock can be a
/// TrackedMutex without recursion; PublishLockMetrics() snapshots every
/// live instance into registry gauges on demand (report write, /metrics
/// scrape).
///
/// With TraceMode::kOff the fast path is one relaxed load + branch on top
/// of the underlying std::mutex (the ≤2 ns contract measured by
/// bench_micro_obs). `name` must point to static-storage text; instances
/// sharing a name (e.g. per-shard locks) are merged into one family when
/// published.
class TrackedMutex {
 public:
  explicit TrackedMutex(const char* name);
  ~TrackedMutex();

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() {
    if (!internal_obs::LockTrackingEnabled()) {
      mu_.lock();
      return;
    }
    LockSlow();
  }

  bool try_lock() {
    if (!internal_obs::LockTrackingEnabled()) return mu_.try_lock();
    return TryLockSlow();
  }

  void unlock() {
    // hold_timed_ is only written while the mutex is held, so reading it
    // here (still holding) is race-free; it records whether the matching
    // lock() ran with tracking enabled.
    if (hold_timed_) {
      UnlockSlow();
      return;
    }
    mu_.unlock();
  }

  const char* name() const { return name_; }

  struct Stats {
    std::int64_t acquisitions = 0;  ///< tracked acquisitions only
    std::int64_t contended = 0;     ///< acquisitions that had to wait
  };
  Stats stats() const;

  /// Wait-time (contended acquisitions) and hold-time histograms in
  /// microseconds. Valid for the mutex's lifetime.
  const Histogram& wait_histogram() const { return *wait_us_; }
  const Histogram& hold_histogram() const { return *hold_us_; }

 private:
  void LockSlow();
  bool TryLockSlow();
  void UnlockSlow();

  const char* name_;
  std::mutex mu_;
  std::atomic<std::int64_t> acquisitions_{0};
  std::atomic<std::int64_t> contended_{0};
  std::unique_ptr<Histogram> wait_us_;
  std::unique_ptr<Histogram> hold_us_;
  // Guarded by mu_ (written between lock and unlock only).
  bool hold_timed_ = false;
  double hold_start_us_ = 0.0;
};

/// Instrumented depth counter for queues/pools/in-flight work: RAII Enter/
/// Exit around each unit, current and peak depth published as gauges next
/// to the lock metrics. Same ≤2 ns disabled contract as TrackedMutex.
class QueueDepth {
 public:
  explicit QueueDepth(const char* name);
  ~QueueDepth();

  QueueDepth(const QueueDepth&) = delete;
  QueueDepth& operator=(const QueueDepth&) = delete;

  void Enter() {
    if (!internal_obs::LockTrackingEnabled()) return;
    const std::int64_t depth =
        current_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t peak = peak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_.compare_exchange_weak(peak, depth,
                                        std::memory_order_relaxed)) {
    }
  }
  void Exit() {
    if (!internal_obs::LockTrackingEnabled()) return;
    // If tracking flipped on mid-flight the counter can transiently dip
    // below zero; clamp on read instead of paying for a CAS loop here.
    current_.fetch_sub(1, std::memory_order_relaxed);
  }

  const char* name() const { return name_; }
  std::int64_t current() const {
    const std::int64_t c = current_.load(std::memory_order_relaxed);
    return c > 0 ? c : 0;
  }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// RAII guard: Enter on construction, Exit on destruction.
  class Scope {
   public:
    explicit Scope(QueueDepth& depth) : depth_(depth) { depth_.Enter(); }
    ~Scope() { depth_.Exit(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    QueueDepth& depth_;
  };

 private:
  const char* name_;
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Publishes a snapshot of every live TrackedMutex and QueueDepth into
/// `registry` as gauges: lock.acquisitions / lock.contended /
/// lock.wait_us.{p50,p95,max} / lock.hold_us.{p50,p95,max} labeled
/// {lock=<name>}, and queue.depth / queue.depth.peak labeled
/// {queue=<name>}. Instances sharing a name are merged (histograms via
/// Histogram::Merge). Idempotent set-semantics: safe to call per scrape.
void PublishLockMetrics(MetricRegistry* registry);

/// One-line JSON array of per-lock stats for /statusz:
/// [{"name":...,"acquisitions":...,"contended":...,"wait_p95_us":...,
///   "hold_p95_us":...},...] sorted by name.
std::string LockStatsJson();

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_TRACKED_MUTEX_H_
