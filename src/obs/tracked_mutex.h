#ifndef TRMMA_OBS_TRACKED_MUTEX_H_
#define TRMMA_OBS_TRACKED_MUTEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace trmma {
namespace obs {

class Histogram;
class MetricRegistry;

namespace internal_obs {
// Defined in metrics.cc (the TraceMode gate). Redeclared here instead of
// including metrics.h so metrics.h can make its own registry lock a
// TrackedMutex without a header cycle.
extern std::atomic<int> g_trace_mode;

/// Fast gate for lock instrumentation: one relaxed load + compare, shared
/// with TRMMA_SPAN (TraceMode::kOff disables both).
inline bool LockTrackingEnabled() {
  return g_trace_mode.load(std::memory_order_relaxed) != 0;
}
}  // namespace internal_obs

/// Drop-in std::mutex replacement (Lockable: lock/try_lock/unlock) that
/// records acquisition count, contended acquisitions, wait time under
/// contention and hold time. All state lives inside the mutex itself —
/// never in the metric registry — so the registry's own lock can be a
/// TrackedMutex without recursion; PublishLockMetrics() snapshots every
/// live instance into registry gauges on demand (report write, /metrics
/// scrape).
///
/// With TraceMode::kOff the fast path is one relaxed load + branch on top
/// of the underlying std::mutex (the ≤2 ns contract measured by
/// bench_micro_obs). `name` must point to static-storage text; instances
/// sharing a name (e.g. per-shard locks) are merged into one family when
/// published.
class TrackedMutex {
 public:
  explicit TrackedMutex(const char* name);
  ~TrackedMutex();

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() {
    if (!internal_obs::LockTrackingEnabled()) {
      mu_.lock();
      return;
    }
    LockSlow();
  }

  bool try_lock() {
    if (!internal_obs::LockTrackingEnabled()) return mu_.try_lock();
    return TryLockSlow();
  }

  void unlock() {
    // hold_timed_ is only written while the mutex is held, so reading it
    // here (still holding) is race-free; it records whether the matching
    // lock() ran with tracking enabled.
    if (hold_timed_) {
      UnlockSlow();
      return;
    }
    mu_.unlock();
  }

  const char* name() const { return name_; }

  struct Stats {
    std::int64_t acquisitions = 0;  ///< tracked acquisitions only
    std::int64_t contended = 0;     ///< acquisitions that had to wait
  };
  Stats stats() const;

  /// Wait-time (contended acquisitions) and hold-time histograms in
  /// microseconds. Valid for the mutex's lifetime.
  const Histogram& wait_histogram() const { return *wait_us_; }
  const Histogram& hold_histogram() const { return *hold_us_; }

 private:
  void LockSlow();
  bool TryLockSlow();
  void UnlockSlow();

  const char* name_;
  std::mutex mu_;
  std::atomic<std::int64_t> acquisitions_{0};
  std::atomic<std::int64_t> contended_{0};
  std::unique_ptr<Histogram> wait_us_;
  std::unique_ptr<Histogram> hold_us_;
  // Guarded by mu_ (written between lock and unlock only).
  bool hold_timed_ = false;
  double hold_start_us_ = 0.0;
};

/// Instrumented depth counter for queues/pools/in-flight work: RAII Enter/
/// Exit around each unit, current and peak depth published as gauges next
/// to the lock metrics. Same ≤2 ns disabled contract as TrackedMutex.
class QueueDepth {
 public:
  explicit QueueDepth(const char* name);
  ~QueueDepth();

  QueueDepth(const QueueDepth&) = delete;
  QueueDepth& operator=(const QueueDepth&) = delete;

  void Enter() {
    if (!internal_obs::LockTrackingEnabled()) return;
    const std::int64_t depth =
        current_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t peak = peak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_.compare_exchange_weak(peak, depth,
                                        std::memory_order_relaxed)) {
    }
  }
  void Exit() {
    if (!internal_obs::LockTrackingEnabled()) return;
    // If tracking flipped on mid-flight the counter can transiently dip
    // below zero; clamp on read instead of paying for a CAS loop here.
    current_.fetch_sub(1, std::memory_order_relaxed);
  }

  const char* name() const { return name_; }
  std::int64_t current() const {
    const std::int64_t c = current_.load(std::memory_order_relaxed);
    return c > 0 ? c : 0;
  }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// RAII guard: Enter on construction, Exit on destruction.
  class Scope {
   public:
    explicit Scope(QueueDepth& depth) : depth_(depth) { depth_.Enter(); }
    ~Scope() { depth_.Exit(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    QueueDepth& depth_;
  };

 private:
  const char* name_;
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Publishes a snapshot of every live TrackedMutex and QueueDepth into
/// `registry` as gauges: lock.acquisitions / lock.contended /
/// lock.wait_us.{p50,p95,max} / lock.hold_us.{p50,p95,max} labeled
/// {lock=<name>}, and queue.depth / queue.depth.peak labeled
/// {queue=<name>}. Instances sharing a name are merged (histograms via
/// Histogram::Merge). Idempotent set-semantics: safe to call per scrape.
void PublishLockMetrics(MetricRegistry* registry);

/// One-line JSON array of per-lock stats for /statusz:
/// [{"name":...,"acquisitions":...,"contended":...,"wait_p95_us":...,
///   "hold_p95_us":...},...] sorted by name.
std::string LockStatsJson();

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_TRACKED_MUTEX_H_
