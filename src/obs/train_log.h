#ifndef TRMMA_OBS_TRAIN_LOG_H_
#define TRMMA_OBS_TRAIN_LOG_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace trmma {
namespace obs {

/// One optimizer-step observation from a training loop.
struct TrainStepRow {
  const char* model = "";  ///< static-storage model tag ("mma", "trmma", ...)
  int64_t step = 0;        ///< optimizer step index within this run
  int64_t epoch = -1;      ///< -1 when the loop has no epoch notion
  double loss = 0.0;       ///< mean loss over the examples in this step
  double grad_norm = 0.0;  ///< global grad L2 norm before clipping
  double param_norm = 0.0; ///< global parameter L2 norm after the update
  double update_ratio = 0.0;  ///< |update| / |params| (0 if params empty)
  int64_t examples = 0;    ///< examples consumed by this step
  double examples_per_sec = 0.0;
  int64_t peak_bytes = 0;  ///< peak matrix bytes since the previous step
};

/// Per-step training telemetry sink. When enabled it appends one JSON line
/// per LogStep to the configured file, mirrors the latest values onto
/// gauges in the global MetricRegistry, bumps anomaly counters for
/// non-finite losses and exploding gradients, and keeps per-model
/// aggregates for the run report's "training" section.
///
/// Enabled when a file is set (constructor reads $TRMMA_TRAIN_LOG, or call
/// SetFile) or when MetricsEnabled() — without a file, rows still feed the
/// registry and aggregates. Callers should gate the (mildly expensive)
/// norm computations on Enabled().
class TrainLogger {
 public:
  static TrainLogger& Global();

  bool Enabled() const;

  /// Redirects the JSONL stream; "" closes it. Thread-safe.
  void SetFile(const std::string& path);
  std::string FilePath() const;

  void LogStep(const TrainStepRow& row);

  /// Per-model aggregates since the last ResetSummary, as a JSON array:
  /// [{"model","steps","last_loss","mean_loss","max_grad_norm",
  ///   "anomalies"},...]. Empty array when nothing was logged.
  std::string SummaryJson() const;
  bool HasRows() const;
  void ResetSummary();

 private:
  TrainLogger();

  struct ModelAgg {
    int64_t steps = 0;
    double last_loss = 0.0;
    double loss_sum = 0.0;
    double max_grad_norm = 0.0;
    int64_t anomalies = 0;
  };

  mutable std::mutex mu_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<std::string, ModelAgg> aggregates_;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_TRAIN_LOG_H_
