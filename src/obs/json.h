#ifndef TRMMA_OBS_JSON_H_
#define TRMMA_OBS_JSON_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace trmma {
namespace obs {

/// Minimal append-only JSON writer: tracks nesting and inserts commas so
/// callers just emit keys and values. Non-finite numbers are written as 0
/// (JSON has no NaN/Inf and downstream tooling should never choke on a
/// report). Output is deterministic — no whitespace except a newline per
/// top-level key, so golden-file tests can compare exact strings.
class JsonWriter {
 public:
  std::string TakeString() { return std::move(out_); }
  const std::string& str() const { return out_; }

  JsonWriter& BeginObject() {
    Comma();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    stack_.pop_back();
    MarkValue();
    return *this;
  }
  JsonWriter& BeginArray() {
    Comma();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    stack_.pop_back();
    MarkValue();
    return *this;
  }
  JsonWriter& Key(const std::string& k) {
    Comma();
    AppendString(k);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }
  JsonWriter& String(const std::string& v) {
    Comma();
    AppendString(v);
    MarkValue();
    return *this;
  }
  JsonWriter& Number(double v) {
    Comma();
    if (!std::isfinite(v)) v = 0.0;
    char buf[32];
    // %.17g round-trips doubles but writes 0.1 as 0.1, not 0.1000...01.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Normalize shortest form: try %g first and keep it if it round-trips.
    char shortbuf[32];
    std::snprintf(shortbuf, sizeof(shortbuf), "%g", v);
    double back = 0.0;
    std::sscanf(shortbuf, "%lf", &back);
    out_ += (back == v) ? shortbuf : buf;
    MarkValue();
    return *this;
  }
  JsonWriter& Int(long long v) {
    Comma();
    out_ += std::to_string(v);
    MarkValue();
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
    MarkValue();
    return *this;
  }
  JsonWriter& Null() {
    Comma();
    out_ += "null";
    MarkValue();
    return *this;
  }
  /// Splices a pre-rendered JSON value verbatim (the caller guarantees it is
  /// valid JSON) — used to embed sub-documents like MemoryJson() without
  /// re-parsing them.
  JsonWriter& Raw(const std::string& json) {
    Comma();
    out_ += json;
    MarkValue();
    return *this;
  }

 private:
  void Comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty() && stack_.back()) out_ += ',';
  }
  void MarkValue() {
    if (!stack_.empty()) stack_.back() = true;
  }
  void AppendString(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  ///< per level: "a value was already emitted"
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_JSON_H_
