#ifndef TRMMA_OBS_CPU_PROFILER_H_
#define TRMMA_OBS_CPU_PROFILER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {

struct CpuProfilerConfig {
  /// Sampling frequency in CPU-time Hz (ITIMER_PROF fires per CPU-second
  /// consumed across all threads). Prime by default so the sampler never
  /// locks step with 10 ms-periodic work. Clamped to [1, 1000].
  int hz = 97;
  /// Frames kept per sample; deeper stacks are truncated (counted in
  /// stats().truncated). Clamped to the compiled-in frame cap (48).
  int max_depth = 48;
};

struct CpuProfilerStats {
  int64_t samples = 0;    ///< folded into the aggregate profile
  int64_t dropped = 0;    ///< signal fired while the epoch buffer was full
  int64_t truncated = 0;  ///< stacks cut at max_depth
};

/// Continuous sampling CPU profiler: a SIGPROF handler captures the
/// interrupted thread's stack by frame-pointer walk into a lock-free epoch
/// buffer; readers flip the epoch and fold the drained samples into an
/// aggregate, symbolized (dladdr + demangle) only at output time. The
/// signal handler performs no allocation, locking, or symbolization — see
/// DESIGN.md §12 for the signal-safety rules and the per-sample budget.
///
/// Output formats: folded stacks ("frame;frame;frame count" lines, leaf
/// last), a self-contained flamegraph HTML, and a JSON "profile" section
/// (top-N frames by self time) for bench reports. Served live at /pprof on
/// the telemetry server; dumped at exit when TRMMA_CPU_PROFILE names a path.
///
/// The profiler is process-wide (one ITIMER_PROF per process); use
/// Global(). Disabled under ASan/TSan builds, whose shadow-memory stack
/// instrumentation does not tolerate raw frame walks — Start then returns
/// FailedPrecondition and callers fall back to no profile.
class CpuProfiler {
 public:
  static CpuProfiler& Global();

  CpuProfiler() = default;
  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Installs the SIGPROF handler and arms the interval timer. Fails if
  /// already running, under sanitizers, or on an unsupported architecture.
  Status Start(const CpuProfilerConfig& config = {});
  /// Disarms the timer (the handler stays installed — a straggling signal
  /// is then a cheap no-op) and folds any pending samples. Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }
  int hz() const { return hz_; }

  /// Starts when TRMMA_CPU_PROFILE is set (and not "0"/"off"). Any other
  /// value is an output path prefix: at exit `<path>` receives the folded
  /// stacks and `<path>.html` the flamegraph ("1"/"on" sample without a
  /// dump — live /pprof only). TRMMA_CPU_PROFILE_HZ overrides the rate.
  bool StartFromEnv();

  /// Drains pending samples, then reports totals since the last Reset.
  CpuProfilerStats stats();

  /// Aggregated folded stacks, one "a;b;c N" line per distinct stack,
  /// root-first. Empty string when nothing was sampled.
  std::string FoldedStacks();
  /// Dependency-free flamegraph over FoldedStacks(), self-contained HTML.
  std::string FlamegraphHtml();
  /// Bench-report "profile" section: {"hz","samples","dropped","truncated",
  /// "frames":[{"symbol","self","total"}...]} with the top `top_n` frames
  /// by self count.
  std::string ProfileSectionJson(int top_n);

  /// Synchronously captures the calling thread's stack through the same
  /// ring path the signal handler uses (deterministic test hook — no timer
  /// required). Returns the captured depth, 0 when unsupported.
  int SampleNowForTest();
  /// Stops if running and discards every sample, symbol and counter.
  void Reset();

 private:
  /// Flips the active epoch buffer and folds the drained samples into the
  /// aggregate. Caller holds mu_.
  void DrainLocked();

  mutable TrackedMutex mu_{"cpu.profiler"};
  std::atomic<bool> running_{false};
  int hz_ = 0;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_CPU_PROFILER_H_
