#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {

std::string ChromeTraceJson(const std::vector<SpanRecord>& records) {
  // Emit in start order so the file reads top-down like the call tree.
  std::vector<SpanRecord> sorted = records;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.seq < b.seq;
                   });
  // Ring wraparound can evict a parent while its children survive; map the
  // retained seqs so dangling parent/link references are dropped instead of
  // exported as broken nesting (viewers mis-stack X events whose claimed
  // parent interval is gone).
  std::unordered_map<int64_t, size_t> by_seq;
  by_seq.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) by_seq.emplace(sorted[i].seq, i);

  const auto pid_of = [](const SpanRecord& rec) { return rec.lane > 0 ? 2 : 1; };
  const auto tid_of = [](const SpanRecord& rec) {
    return rec.lane > 0 ? rec.lane : rec.tid;
  };

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  bool request_lane_seen = false;
  for (const SpanRecord& rec : sorted) {
    request_lane_seen = request_lane_seen || rec.lane > 0;
    const auto parent_it = by_seq.find(rec.parent_seq);
    const int64_t parent_seq =
        rec.parent_seq >= 0 && parent_it != by_seq.end() ? rec.parent_seq : -1;
    w.BeginObject();
    w.Key("name").String(rec.name != nullptr ? rec.name : "?");
    w.Key("cat").String("span");
    w.Key("ph").String("X");
    w.Key("ts").Number(rec.start_us);
    w.Key("dur").Number(rec.duration_us);
    w.Key("pid").Int(pid_of(rec));
    w.Key("tid").Int(tid_of(rec));
    w.Key("args").BeginObject();
    w.Key("seq").Int(rec.seq);
    w.Key("parent_seq").Int(parent_seq);
    w.Key("depth").Int(rec.depth);
    if (rec.trace_id != 0) w.Key("trace_id").String(TraceIdHex(rec.trace_id));
    w.EndObject();
    w.EndObject();

    // Cross-lane causality as a Chrome flow arrow: start ("s") inside the
    // link source span (the request root), finish ("f") at this span's
    // start. A link whose source was evicted is dropped like a dangling
    // parent. The flow id is the destination seq — unique per edge.
    const auto link_it = by_seq.find(rec.link_seq);
    if (rec.link_seq >= 0 && link_it != by_seq.end()) {
      const SpanRecord& src = sorted[link_it->second];
      w.BeginObject();
      w.Key("name").String("request");
      w.Key("cat").String("flow");
      w.Key("ph").String("s");
      w.Key("id").Int(rec.seq);
      w.Key("ts").Number(src.start_us);
      w.Key("pid").Int(pid_of(src));
      w.Key("tid").Int(tid_of(src));
      w.EndObject();
      w.BeginObject();
      w.Key("name").String("request");
      w.Key("cat").String("flow");
      w.Key("ph").String("f");
      w.Key("bp").String("e");
      w.Key("id").Int(rec.seq);
      w.Key("ts").Number(rec.start_us);
      w.Key("pid").Int(pid_of(rec));
      w.Key("tid").Int(tid_of(rec));
      w.EndObject();
    }
  }
  // Name the synthetic request-lane process so viewers label the lanes.
  if (request_lane_seen) {
    w.BeginObject();
    w.Key("name").String("process_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(2);
    w.Key("args").BeginObject().Key("name").String("requests").EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.TakeString();
}

std::string ChromeTraceJson(const TraceRing& ring) {
  return ChromeTraceJson(ring.Snapshot());
}

bool WriteChromeTrace(const TraceRing& ring, const std::string& path) {
  const std::string json = ChromeTraceJson(ring);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TRMMA_LOG(Error) << "cannot open trace file " << path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    TRMMA_LOG(Error) << "short write to trace file " << path;
    return false;
  }
  return true;
}

std::string ExportChromeTraceFromEnv() {
  const char* path = std::getenv("TRMMA_TRACE_FILE");
  if (path == nullptr || *path == '\0') return "";
  if (TraceRing::Global().Snapshot().empty()) return "";
  if (!WriteChromeTrace(TraceRing::Global(), path)) return "";
  return path;
}

void InstallChromeTraceAtExit() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::atexit([] {
      const std::string path = ExportChromeTraceFromEnv();
      if (!path.empty()) {
        std::fprintf(stderr, "[trmma] chrome trace written to %s\n",
                     path.c_str());
      }
    });
  });
}

}  // namespace obs
}  // namespace trmma
