#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "obs/json.h"

namespace trmma {
namespace obs {

std::string ChromeTraceJson(const std::vector<SpanRecord>& records) {
  // Emit in start order so the file reads top-down like the call tree.
  std::vector<SpanRecord> sorted = records;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.seq < b.seq;
                   });
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& rec : sorted) {
    w.BeginObject();
    w.Key("name").String(rec.name != nullptr ? rec.name : "?");
    w.Key("cat").String("span");
    w.Key("ph").String("X");
    w.Key("ts").Number(rec.start_us);
    w.Key("dur").Number(rec.duration_us);
    w.Key("pid").Int(1);
    w.Key("tid").Int(rec.tid);
    w.Key("args").BeginObject();
    w.Key("seq").Int(rec.seq);
    w.Key("parent_seq").Int(rec.parent_seq);
    w.Key("depth").Int(rec.depth);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.TakeString();
}

std::string ChromeTraceJson(const TraceRing& ring) {
  return ChromeTraceJson(ring.Snapshot());
}

bool WriteChromeTrace(const TraceRing& ring, const std::string& path) {
  const std::string json = ChromeTraceJson(ring);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TRMMA_LOG(Error) << "cannot open trace file " << path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    TRMMA_LOG(Error) << "short write to trace file " << path;
    return false;
  }
  return true;
}

std::string ExportChromeTraceFromEnv() {
  const char* path = std::getenv("TRMMA_TRACE_FILE");
  if (path == nullptr || *path == '\0') return "";
  if (TraceRing::Global().Snapshot().empty()) return "";
  if (!WriteChromeTrace(TraceRing::Global(), path)) return "";
  return path;
}

void InstallChromeTraceAtExit() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::atexit([] {
      const std::string path = ExportChromeTraceFromEnv();
      if (!path.empty()) {
        std::fprintf(stderr, "[trmma] chrome trace written to %s\n",
                     path.c_str());
      }
    });
  });
}

}  // namespace obs
}  // namespace trmma
