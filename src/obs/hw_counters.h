#ifndef TRMMA_OBS_HW_COUNTERS_H_
#define TRMMA_OBS_HW_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace trmma {
namespace obs {

/// Counters a hardware group can carry, in fixed slot order. The group
/// leader is always kHwCycles; every other counter is optional (a PMU that
/// cannot count stalled cycles simply leaves that slot unmeasured).
enum HwCounterKind : int {
  kHwCycles = 0,
  kHwInstructions,
  kHwL1dMisses,
  kHwLlcMisses,
  kHwBranchMisses,
  kHwStalledCycles,
  kHwCounterKinds,
};

/// Stable JSON/report name for one counter slot ("cycles", "instructions",
/// "l1d_misses", "llc_misses", "branch_misses", "stalled_cycles").
const char* HwCounterName(int kind);

/// Multiplexing-aware scaling: the kernel time-shares PMU slots between
/// groups, so a counter runs for time_running out of time_enabled and the
/// raw value must be extrapolated by time_enabled / time_running. A counter
/// that never ran (time_running == 0) scales to 0; a counter that ran the
/// whole window (time_running >= time_enabled) is returned untouched.
/// Pure function — the unit tests drive it with synthetic values.
double ScaleMultiplexed(std::uint64_t raw_delta,
                        std::uint64_t time_enabled_delta,
                        std::uint64_t time_running_delta);

/// One delimited read: multiplex-scaled counter deltas between the Start()
/// and End() of an HwCounterScope. Slots whose counter was not opened (or
/// whose group was unavailable) have measured[i] == false and value 0.
struct HwCounterDelta {
  double value[kHwCounterKinds] = {};
  bool measured[kHwCounterKinds] = {};
  /// Group scheduling window for the scope, nanoseconds. running <
  /// enabled means the kernel multiplexed this group and values were
  /// extrapolated.
  double time_enabled_ns = 0.0;
  double time_running_ns = 0.0;

  double cycles() const { return value[kHwCycles]; }
  double instructions() const { return value[kHwInstructions]; }
  /// Instructions per cycle; 0 when either counter is unmeasured or zero.
  double ipc() const {
    return measured[kHwCycles] && measured[kHwInstructions] &&
                   value[kHwCycles] > 0.0
               ? value[kHwInstructions] / value[kHwCycles]
               : 0.0;
  }
  void Accumulate(const HwCounterDelta& other);
};

/// Measured machine roofline from the calibration microbenchmark: peak
/// scalar FLOP/cycle from a dependency-free multiply-add loop and peak
/// bytes/cycle from a cache-spilling streaming read. These are the roof
/// lines the per-op scatter in trmma_report is drawn against.
struct HwCalibration {
  bool measured = false;
  double flop_per_cycle = 0.0;
  double bytes_per_cycle = 0.0;
  double calibration_cycles = 0.0;  ///< total cycles spent calibrating
};

/// Process-wide perf_event_open counter subsystem. Dependency-free: the
/// syscall is invoked directly, and everything degrades to a disabled stub
/// that still answers SectionJson() with {"available": false, "reason":...}
/// when the kernel refuses (perf_event_paranoid), the build is sanitized,
/// the platform is not Linux, TRMMA_HW_COUNTERS=off forces it, or the CPU
/// profiler's ITIMER/SIGPROF sampling is armed (the two subsystems refuse
/// to run concurrently rather than corrupt each other's measurements).
///
/// Counter groups are per-thread (opened lazily on first HwCounterScope on
/// a thread, closed at thread exit) so scopes never cross-talk between
/// worker threads. The group read format carries time_enabled/time_running
/// and every reported value is multiplex-scaled. See DESIGN.md §14.
class HwCounters {
 public:
  static HwCounters& Global();

  /// The hot-path gate: one relaxed atomic load. When false, HwCounterScope
  /// Start/End are a predicted branch each (≤ 2 ns — enforced by
  /// bench_micro_obs).
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Arms the subsystem: checks the refusal ladder (env force-off,
  /// sanitizer build, non-Linux, CPU-profiler interlock), probes the kernel
  /// by opening a cycles counter on the calling thread, and on success
  /// flips Enabled(). Idempotent while enabled. On refusal the reason is
  /// retained for SectionJson()/reason() and logged once.
  Status Enable();

  /// Disarms: new scopes become stubs immediately; per-thread groups close
  /// lazily as their threads touch the subsystem again or exit.
  void Disable();

  /// Enable() when TRMMA_HW_COUNTERS is set truthy ("1"/"on"); records the
  /// forced-off reason when "0"/"off"; leaves the subsystem alone when the
  /// variable is unset. Returns Enabled() afterwards.
  bool EnableFromEnv();

  /// True when Enable() succeeded and the subsystem is currently armed.
  bool available() const;
  /// Why the subsystem is unavailable (empty while available). Defaults to
  /// "not requested" before any Enable() attempt.
  std::string reason() const;
  /// Active counter set name ("full", "cache", "ipc") — from
  /// TRMMA_HW_COUNTER_SET, defaulting to "full".
  std::string counter_set() const;
  /// Whether a counter slot is part of the active set and opened
  /// successfully during the probe (a PMU may veto individual counters).
  bool counter_open(int kind) const;

  /// Runs the calibration microbenchmark (once; the result is cached) and
  /// returns the measured peaks. Unmeasured (all-zero) when unavailable.
  HwCalibration Calibrate();
  /// Last calibration result without re-running (measured == false when
  /// Calibrate() has not run).
  HwCalibration calibration() const;

  /// Adds one labelled sweep point (e.g. the bench_micro_nn matmul sweep)
  /// carrying a measured delta plus the caller's FLOP/bytes estimates, for
  /// the report section's "sweep" array.
  void RecordSweepPoint(const std::string& label, int n,
                        const HwCounterDelta& delta, double flops,
                        double bytes);

  /// The "hw_counters" report section (also served at /perf):
  /// {"available","reason","counter_set","counters":[...],
  ///  "calibration":{...},"ops":[roofline coordinates per profiled op],
  ///  "sweep":[...]} — ops come from the op profiler's aggregated cells.
  std::string SectionJson() const;

  /// Drops availability state, calibration and sweep points, and closes the
  /// calling thread's group (tests only; other threads' groups close on
  /// their next touch).
  void ResetForTest();

 private:
  HwCounters() = default;

  static std::atomic<bool> enabled_;

  friend class HwCounterScope;
};

/// RAII-style delimited read. Default-constructed scopes are inert; Start()
/// snapshots the calling thread's group (opening it on first use) and
/// End() fills `out` with the multiplex-scaled deltas. When the subsystem
/// is disabled both calls are one relaxed load + predicted branch. Scopes
/// nest freely: each keeps its own raw snapshot and the counters are
/// free-running, so inner and outer scopes read independent deltas.
class HwCounterScope {
 public:
  HwCounterScope() = default;
  /// Convenience: `HwCounterScope scope(true)` starts immediately.
  explicit HwCounterScope(bool start) {
    if (start) Start();
  }
  ~HwCounterScope() = default;

  HwCounterScope(const HwCounterScope&) = delete;
  HwCounterScope& operator=(const HwCounterScope&) = delete;

  /// Snapshots the thread's counter group. No-op (and active() stays
  /// false) when the subsystem is disabled or the thread's group failed to
  /// open.
  void Start();

  /// Reads the group again and writes scaled deltas into `out` (may be
  /// null to just deactivate). Returns false — and leaves `out` untouched —
  /// when the scope never activated or the end read failed. The scope
  /// deactivates either way; a second End() returns false.
  bool End(HwCounterDelta* out);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  std::uint64_t start_raw_[kHwCounterKinds] = {};
  std::uint64_t start_enabled_ = 0;
  std::uint64_t start_running_ = 0;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_HW_COUNTERS_H_
