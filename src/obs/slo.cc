#include "obs/slo.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {
namespace {

const char* KindField(SloObjective::Kind kind) {
  switch (kind) {
    case SloObjective::Kind::kHistogram:
      return "histogram";
    case SloObjective::Kind::kGauge:
      return "gauge";
    case SloObjective::Kind::kCounter:
      return "counter";
  }
  return "?";
}

bool ValidStat(const std::string& stat) {
  return stat == "p50" || stat == "p95" || stat == "p99" || stat == "max" ||
         stat == "mean" || stat == "count";
}

/// Snaps a numeric quantile to the nearest of the three the repo reports.
std::string QuantileToStat(double q) {
  if (q <= 0.725) return "p50";   // midpoint of 0.5 and 0.95
  if (q <= 0.97) return "p95";    // midpoint of 0.95 and 0.99
  return "p99";
}

double StatFromHistogramStats(const HistogramStats& stats,
                              const std::string& stat) {
  if (stat == "p50") return stats.p50;
  if (stat == "p95") return stats.p95;
  if (stat == "p99") return stats.p99;
  if (stat == "max") return stats.max;
  if (stat == "mean") return stats.mean;
  if (stat == "count") return static_cast<double>(stats.count);
  return 0.0;
}

SloResult MakeResult(const SloObjective& objective, bool has_data,
                     double value) {
  SloResult result;
  result.name = objective.name;
  result.metric = objective.metric;
  result.stat =
      objective.kind == SloObjective::Kind::kHistogram ? objective.stat : "";
  result.max = objective.max;
  result.has_data = has_data;
  result.value = has_data ? value : 0.0;
  result.ok = !has_data || value <= objective.max;
  return result;
}

}  // namespace

StatusOr<std::vector<SloObjective>> ParseSloObjectives(const JsonValue& doc) {
  if (!doc.is_object() || !doc.Get("objectives").is_array()) {
    return Status::InvalidArgument(
        "SLO file must be {\"objectives\": [...]}");
  }
  std::vector<SloObjective> out;
  for (const JsonValue& entry : doc.Get("objectives").AsArray()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("SLO objective must be an object");
    }
    SloObjective objective;
    if (!entry.Get("name").is_string() || entry.Get("name").AsString().empty()) {
      return Status::InvalidArgument("SLO objective missing \"name\"");
    }
    objective.name = entry.Get("name").AsString();
    int sources = 0;
    if (entry.Get("histogram").is_string()) {
      objective.kind = SloObjective::Kind::kHistogram;
      objective.metric = entry.Get("histogram").AsString();
      ++sources;
    }
    if (entry.Get("gauge").is_string()) {
      objective.kind = SloObjective::Kind::kGauge;
      objective.metric = entry.Get("gauge").AsString();
      ++sources;
    }
    if (entry.Get("counter").is_string()) {
      objective.kind = SloObjective::Kind::kCounter;
      objective.metric = entry.Get("counter").AsString();
      ++sources;
    }
    if (sources != 1) {
      return Status::InvalidArgument(
          "SLO objective \"" + objective.name +
          "\" needs exactly one of histogram/gauge/counter");
    }
    if (entry.Get("stat").is_string()) {
      objective.stat = entry.Get("stat").AsString();
      if (!ValidStat(objective.stat)) {
        return Status::InvalidArgument(
            "SLO objective \"" + objective.name + "\": bad stat \"" +
            objective.stat + "\" (want p50/p95/p99/max/mean/count)");
      }
    } else if (entry.Get("quantile").is_number()) {
      const double q = entry.Get("quantile").AsNumber();
      if (!(q >= 0.0 && q <= 1.0)) {
        return Status::InvalidArgument("SLO objective \"" + objective.name +
                                       "\": quantile out of [0,1]");
      }
      objective.stat = QuantileToStat(q);
    }
    if (!entry.Get("max").is_number() ||
        !std::isfinite(entry.Get("max").AsNumber())) {
      return Status::InvalidArgument("SLO objective \"" + objective.name +
                                     "\" missing finite \"max\"");
    }
    objective.max = entry.Get("max").AsNumber();
    out.push_back(std::move(objective));
  }
  return out;
}

std::vector<SloResult> EvaluateSloAgainstReport(
    const std::vector<SloObjective>& objectives, const JsonValue& report) {
  // The BENCH report embeds JsonDump() under "metrics"; a bare metrics
  // document (already {"counters":...}) also works.
  const JsonValue& metrics =
      report.Has("metrics") ? report.Get("metrics") : report;
  std::vector<SloResult> out;
  out.reserve(objectives.size());
  for (const SloObjective& objective : objectives) {
    bool has_data = false;
    double value = 0.0;
    const char* section = KindField(objective.kind);
    const JsonValue& entries = metrics.Get(std::string(section) + "s");
    for (const JsonValue& entry : entries.AsArray()) {
      if (entry.Get("name").AsString() != objective.metric) continue;
      double v = 0.0;
      if (objective.kind == SloObjective::Kind::kHistogram) {
        v = StatFromHistogramStats(
            HistogramStats{
                static_cast<int64_t>(entry.Get("count").AsNumber()), 0,
                entry.Get("sum").AsNumber(), entry.Get("min").AsNumber(),
                entry.Get("max").AsNumber(), entry.Get("mean").AsNumber(),
                entry.Get("p50").AsNumber(), entry.Get("p95").AsNumber(),
                entry.Get("p99").AsNumber()},
            objective.stat);
      } else {
        v = entry.Get("value").AsNumber();
      }
      if (!has_data) {
        value = v;
      } else if (objective.kind == SloObjective::Kind::kCounter ||
                 (objective.kind == SloObjective::Kind::kHistogram &&
                  objective.stat == "count")) {
        value += v;  // counts sum across label sets
      } else {
        value = std::max(value, v);  // conservative reading otherwise
      }
      has_data = true;
    }
    out.push_back(MakeResult(objective, has_data, value));
  }
  return out;
}

std::string SloResultsJson(const std::vector<SloResult>& results) {
  JsonWriter w;
  w.BeginArray();
  for (const SloResult& r : results) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("metric").String(r.metric);
    if (!r.stat.empty()) w.Key("stat").String(r.stat);
    w.Key("value").Number(r.value);
    w.Key("max").Number(r.max);
    w.Key("has_data").Bool(r.has_data);
    w.Key("ok").Bool(r.ok);
    if (!r.exemplar_trace_id.empty()) {
      w.Key("exemplar_trace_id").String(r.exemplar_trace_id);
    }
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

SloWatchdog& SloWatchdog::Global() {
  static SloWatchdog* watchdog = new SloWatchdog();
  return *watchdog;
}

Status SloWatchdog::LoadFromJsonText(const std::string& text) {
  StatusOr<JsonValue> doc = ParseJson(text);
  if (!doc.ok()) return doc.status();
  StatusOr<std::vector<SloObjective>> objectives = ParseSloObjectives(*doc);
  if (!objectives.ok()) return objectives.status();
  std::lock_guard<TrackedMutex> lock(mu_);
  objectives_ = std::move(*objectives);
  last_results_.clear();
  return Status::OK();
}

Status SloWatchdog::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open SLO file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  Status status = LoadFromJsonText(text.str());
  if (!status.ok()) {
    return Status(status.code(), path + ": " + status.message());
  }
  return status;
}

bool SloWatchdog::InstallFromEnv() {
  const char* path = std::getenv("TRMMA_SLO_FILE");
  if (path == nullptr || *path == '\0') return false;
  const Status status = LoadFromFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "trmma: TRMMA_SLO_FILE ignored: %s\n",
                 status.ToString().c_str());
    return false;
  }
  return active();
}

void SloWatchdog::Clear() {
  std::lock_guard<TrackedMutex> lock(mu_);
  objectives_.clear();
  last_results_.clear();
}

bool SloWatchdog::active() const {
  std::lock_guard<TrackedMutex> lock(mu_);
  return !objectives_.empty();
}

std::vector<SloObjective> SloWatchdog::objectives() const {
  std::lock_guard<TrackedMutex> lock(mu_);
  return objectives_;
}

std::vector<SloResult> SloWatchdog::Evaluate(MetricRegistry* registry) {
  const std::vector<SloObjective> objectives = this->objectives();
  std::vector<SloResult> results;
  results.reserve(objectives.size());
  for (const SloObjective& objective : objectives) {
    bool has_data = false;
    double value = 0.0;
    std::string exemplar_trace_id;
    switch (objective.kind) {
      case SloObjective::Kind::kHistogram: {
        HistogramStats stats;
        if (registry->HistogramStatsByName(objective.metric, &stats)) {
          has_data = stats.count > 0;
          value = StatFromHistogramStats(stats, objective.stat);
        }
        HistogramExemplar exemplar;
        if (registry->WorstExemplarByName(objective.metric, &exemplar)) {
          exemplar_trace_id = TraceIdHex(exemplar.trace_id);
        }
        break;
      }
      case SloObjective::Kind::kGauge: {
        double v = 0.0;
        if (registry->MaxGaugeByName(objective.metric, &v)) {
          has_data = true;
          value = v;
        }
        break;
      }
      case SloObjective::Kind::kCounter: {
        int64_t v = 0;
        if (registry->SumCountersByName(objective.metric, &v)) {
          has_data = true;
          value = static_cast<double>(v);
        }
        break;
      }
    }
    SloResult result = MakeResult(objective, has_data, value);
    result.exemplar_trace_id = std::move(exemplar_trace_id);
    const Labels labels = {{"objective", objective.name}};
    if (!result.ok) {
      registry->GetCounter("slo.breach.total", labels)->Increment();
    }
    registry->GetGauge("slo.ok", labels)->Set(result.ok ? 1.0 : 0.0);
    results.push_back(std::move(result));
  }
  std::lock_guard<TrackedMutex> lock(mu_);
  last_results_ = results;
  return results;
}

std::string SloWatchdog::StatusJson() const {
  std::lock_guard<TrackedMutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("active").Bool(!objectives_.empty());
  w.Key("objectives").Int(static_cast<int64_t>(objectives_.size()));
  w.EndObject();
  std::string head = w.TakeString();
  // Splice the pre-rendered results array in before the closing brace, the
  // same string-surgery idiom report.cc uses for optional sections.
  head.pop_back();
  head += ",\"results\":" + SloResultsJson(last_results_) + "}";
  return head;
}

}  // namespace obs
}  // namespace trmma
