#ifndef TRMMA_OBS_REQUEST_RECORD_H_
#define TRMMA_OBS_REQUEST_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace trmma {
namespace obs {

/// The flight-recorder schema is intentionally self-contained: plain structs
/// mirroring the traj/graph types rather than including them, so obs/ stays a
/// leaf layer and the record format is the single source of truth for what
/// leaves the process. Anything not representable here is redacted by
/// construction — serialization walks these fields and nothing else.

struct RecordGpsPoint {
  double lat = 0.0;
  double lng = 0.0;
  double t = 0.0;  ///< seconds since trajectory start
};

struct RecordCandidate {
  std::int64_t segment = -1;
  double distance = 0.0;  ///< meters from the GPS point to the segment
  double ratio = 0.0;     ///< projected offset along the segment in [0,1]
};

struct RecordMatchedPoint {
  std::int64_t segment = -1;
  double ratio = 0.0;
  double t = 0.0;
};

struct RecordStage {
  std::string name;
  std::int64_t us = 0;
};

/// One captured request: the full decision trace of a single trajectory
/// through a matcher, a recovery method, or the robust pipeline.
struct RequestRecord {
  // --- identity & reproduction context -------------------------------------
  std::string id;              ///< "req-000042", unique within a run
  /// Hex trace id of the serving request this record was captured under
  /// (see obs/trace.h TraceContext); "" when captured outside a traced
  /// request. Joins flight records to /tracez groups and metric exemplars.
  std::string trace_id;
  std::string kind;            ///< "mm" | "recovery" | "pipeline"
  std::string method;          ///< e.g. "MMA", "TRMMA", "FMM"
  std::string city;            ///< generator preset name ("XA", ...)
  std::int64_t seed = 0;       ///< stack RNG seed the run was built with
  std::int64_t epsilon = 0;    ///< sparsity interval (recovery requests)
  double gamma = 0.0;          ///< sparsification keep-rate γ; 0 = unknown
  std::int64_t dataset_trajectories = 0;  ///< dataset size used to build stack
  /// Ordered training calls applied to the stack, "key:epochs:fraction" each;
  /// replaying them against a freshly built stack reproduces the weights.
  std::vector<std::string> train_state;

  // --- inputs --------------------------------------------------------------
  std::vector<RecordGpsPoint> input;
  /// Per input point: the ground-truth segment when the harness knows it
  /// (-1 = unknown). Feeds quality attribution and confidence calibration.
  std::vector<std::int64_t> truth_segments;

  // --- decision trace ------------------------------------------------------
  /// Per input point: the candidate set considered (first matcher invocation
  /// of the request wins, so nested calls don't overwrite it).
  std::vector<std::vector<RecordCandidate>> candidates;
  /// Per input point: the matcher's confidence in the chosen candidate
  /// (HMM emission log-prob, MMA sigmoid probability, -distance for nearest).
  std::vector<double> scores;
  std::vector<RecordMatchedPoint> matched;  ///< chosen segment/offset per point
  std::vector<std::int64_t> route;          ///< stitched route segment IDs
  std::vector<RecordMatchedPoint> recovered;  ///< recovered ε-trajectory

  // --- outcome -------------------------------------------------------------
  std::string outcome;  ///< "" (n/a) or ok|repaired|degraded|failed
  std::int64_t route_sections = 0;
  std::int64_t degraded_points = 0;
  /// Degradation-ladder / diagnostic events in occurrence order, capped.
  std::vector<std::string> events;
  std::string error;  ///< failure detail when outcome == "failed"

  // --- timing & quality ----------------------------------------------------
  std::int64_t wall_us = 0;
  std::vector<RecordStage> stages;
  double quality = -1.0;  ///< f1 (mm) / accuracy (recovery) vs truth; -1 = n/a
  std::string reason;     ///< why retention kept it: sampled|slow|worst|outcome

  /// Serializes as a single JSONL line (no interior newlines, deterministic
  /// field order). The inverse of FromJsonLine.
  std::string ToJsonLine() const;
};

/// Parses a record previously written by ToJsonLine. Unknown keys are
/// ignored; missing keys keep their defaults, but a record without an "id"
/// or with malformed JSON is an error.
StatusOr<RequestRecord> RequestRecordFromJsonLine(const std::string& line);

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_REQUEST_RECORD_H_
