#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.h"
#include "obs/mem_stats.h"
#include "obs/quality.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {

namespace internal_obs {
std::atomic<bool> g_flight_enabled{false};
std::atomic<bool> g_flight_retention{false};
thread_local RequestRecord* t_flight_current = nullptr;

void RefreshCaptureGate() {
  g_flight_enabled.store(
      g_flight_retention.load(std::memory_order_relaxed) ||
          g_quality_enabled.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}
}  // namespace internal_obs

FlightRecorderConfig FlightRecorderConfigFromEnv() {
  FlightRecorderConfig config;
  const char* sample = std::getenv("TRMMA_FLIGHT_RECORDER");
  if (sample != nullptr && sample[0] != '\0') {
    const long n = std::strtol(sample, nullptr, 10);
    if (n >= 1) {
      config.enabled = true;
      config.sample_every = static_cast<int>(n);
    }
  }
  const char* path = std::getenv("TRMMA_FLIGHT_RECORDER_FILE");
  if (path != nullptr) config.path = path;
  return config;
}

void RecordEvent(const std::string& event) {
  RequestRecord* r = ActiveRecord();
  if (r == nullptr) return;
  const std::size_t cap = static_cast<std::size_t>(
      FlightRecorder::Global().config().max_events);
  if (r->events.size() < cap) {
    r->events.push_back(event);
  } else if (r->events.size() == cap) {
    r->events.push_back("events_truncated");
  }
}

namespace {

/// Heap estimate for one retained record: struct plus the dynamic payloads
/// that dominate it (points, candidate sets, strings). An estimate, not an
/// audit — it feeds the flight_recorder MemTag so retention growth is
/// visible next to the build-once subsystems.
std::int64_t ApproxRecordBytes(const RequestRecord& r) {
  std::int64_t bytes = static_cast<std::int64_t>(sizeof(RequestRecord));
  bytes += static_cast<std::int64_t>(r.input.capacity() *
                                     sizeof(RecordGpsPoint));
  bytes += static_cast<std::int64_t>(r.truth_segments.capacity() *
                                     sizeof(std::int64_t));
  for (const auto& cands : r.candidates) {
    bytes += static_cast<std::int64_t>(sizeof(cands) +
                                       cands.capacity() *
                                           sizeof(RecordCandidate));
  }
  bytes += static_cast<std::int64_t>(r.scores.capacity() * sizeof(double));
  bytes += static_cast<std::int64_t>(r.matched.capacity() *
                                     sizeof(RecordMatchedPoint));
  bytes += static_cast<std::int64_t>(r.route.capacity() *
                                     sizeof(std::int64_t));
  bytes += static_cast<std::int64_t>(r.recovered.capacity() *
                                     sizeof(RecordMatchedPoint));
  for (const std::string& s : r.train_state) {
    bytes += static_cast<std::int64_t>(sizeof(s) + s.capacity());
  }
  for (const std::string& s : r.events) {
    bytes += static_cast<std::int64_t>(sizeof(s) + s.capacity());
  }
  for (const RecordStage& stage : r.stages) {
    bytes += static_cast<std::int64_t>(sizeof(stage) + stage.name.capacity());
  }
  bytes += static_cast<std::int64_t>(r.id.capacity() + r.kind.capacity() +
                                     r.method.capacity() + r.city.capacity() +
                                     r.outcome.capacity() +
                                     r.error.capacity() +
                                     r.reason.capacity());
  return bytes;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Configure(const FlightRecorderConfig& config) {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  config_ = config;
  if (config_.sample_every < 1) config_.sample_every = 1;
  internal_obs::g_flight_retention.store(config_.enabled,
                                         std::memory_order_relaxed);
  internal_obs::RefreshCaptureGate();
}

FlightRecorderConfig FlightRecorder::config() const {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  return config_;
}

std::string FlightRecorder::NextRequestId(std::int64_t* index) {
  const std::int64_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
  if (index != nullptr) *index = i;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "req-%06lld", static_cast<long long>(i));
  return buf;
}

void FlightRecorder::DropReasonLocked(const std::string& id,
                                      const std::string& reason) {
  const auto it = retained_.find(id);
  if (it == retained_.end()) return;
  it->second.reasons.erase(reason);
  if (it->second.reasons.empty()) {
    retained_bytes_ -= it->second.approx_bytes;
    MemSet(MemTag::kFlightRecorder, retained_bytes_);
    retained_.erase(it);
  }
}

void FlightRecorder::End(RequestRecord&& record, std::int64_t index) {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  ++requests_;
  std::set<std::string> reasons;

  if ((record.outcome == "failed" || record.outcome == "degraded") &&
      outcome_retained_ < config_.max_outcome_records) {
    reasons.insert("outcome");
    ++outcome_retained_;
  }
  if (index % config_.sample_every == 0) reasons.insert("sampled");
  if (config_.top_slow > 0) {
    if (static_cast<int>(slow_.size()) < config_.top_slow) {
      slow_.emplace_back(record.wall_us, record.id);
      reasons.insert("slow");
    } else {
      auto min_it = std::min_element(slow_.begin(), slow_.end());
      if (record.wall_us > min_it->first) {
        DropReasonLocked(min_it->second, "slow");
        *min_it = {record.wall_us, record.id};
        reasons.insert("slow");
      }
    }
  }
  if (config_.top_worst > 0 && record.quality >= 0.0) {
    if (static_cast<int>(worst_.size()) < config_.top_worst) {
      worst_.emplace_back(record.quality, record.id);
      reasons.insert("worst");
    } else {
      auto max_it = std::max_element(worst_.begin(), worst_.end());
      if (record.quality < max_it->first) {
        DropReasonLocked(max_it->second, "worst");
        *max_it = {record.quality, record.id};
        reasons.insert("worst");
      }
    }
  }

  if (reasons.empty()) return;
  // Primary reason, by diagnostic value: a failed/degraded outcome beats
  // being slow, which beats poor quality, which beats the uniform sample.
  for (const char* primary : {"outcome", "slow", "worst", "sampled"}) {
    if (reasons.count(primary) != 0) {
      record.reason = primary;
      break;
    }
  }
  const std::string id = record.id;
  const std::int64_t approx = ApproxRecordBytes(record);
  retained_[id] = Retained{std::move(record), std::move(reasons), approx};
  retained_bytes_ += approx;
  MemSet(MemTag::kFlightRecorder, retained_bytes_);
}

std::int64_t FlightRecorder::Flush() {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  return FlushLocked();
}

bool FlightRecorder::TryFlush(std::int64_t* written) {
  std::unique_lock<obs::TrackedMutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  *written = FlushLocked();
  return true;
}

std::int64_t FlightRecorder::FlushLocked() {
  if (config_.path.empty()) return 0;
  std::ofstream out(config_.path, std::ios::trunc);
  if (!out) return 0;
  std::int64_t bytes = 0;
  for (const auto& [id, retained] : retained_) {
    const std::string line = retained.record.ToJsonLine();
    out << line << '\n';
    bytes += static_cast<std::int64_t>(line.size()) + 1;
  }
  written_ = static_cast<std::int64_t>(retained_.size());
  bytes_ = bytes;
  return written_;
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  std::vector<RequestRecord> out;
  out.reserve(retained_.size());
  for (const auto& [id, retained] : retained_) out.push_back(retained.record);
  return out;
}

void FlightRecorder::AddReplayMismatches(std::int64_t n) {
  replay_mismatches_.fetch_add(n, std::memory_order_relaxed);
}

FlightRecorder::Stats FlightRecorder::stats() const {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  Stats s;
  s.requests = requests_;
  s.retained = static_cast<std::int64_t>(retained_.size());
  s.written = written_;
  s.bytes = bytes_;
  s.replay_mismatches = replay_mismatches_.load(std::memory_order_relaxed);
  return s;
}

std::string FlightRecorder::StatsJson() const {
  const Stats s = stats();
  const FlightRecorderConfig c = config();
  JsonWriter w;
  w.BeginObject();
  w.Key("requests").Int(s.requests);
  w.Key("retained").Int(s.retained);
  w.Key("written").Int(s.written);
  w.Key("bytes").Int(s.bytes);
  w.Key("replay_mismatches").Int(s.replay_mismatches);
  w.Key("sample_every").Int(c.sample_every);
  w.EndObject();
  return w.TakeString();
}

void FlightRecorder::ResetForTest() {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  next_index_.store(0, std::memory_order_relaxed);
  requests_ = 0;
  outcome_retained_ = 0;
  written_ = 0;
  bytes_ = 0;
  replay_mismatches_.store(0, std::memory_order_relaxed);
  retained_.clear();
  retained_bytes_ = 0;
  MemSet(MemTag::kFlightRecorder, 0);
  slow_.clear();
  worst_.clear();
}

RequestScope::RequestScope(const char* kind) {
  // The combined gate: capture runs when either the recorder's retention or
  // quality telemetry wants the record.
  if (!internal_obs::g_flight_enabled.load(std::memory_order_relaxed) ||
      internal_obs::t_flight_current != nullptr) {
    return;
  }
  active_ = true;
  record_.kind = kind;
  record_.id = FlightRecorder::Global().NextRequestId(&index_);
  // Join key to /tracez and metric exemplars: the serving engine installs a
  // TraceContext on the worker thread before invoking us.
  const TraceContext ctx = CurrentTraceContext();
  if (ctx.trace_id != 0) record_.trace_id = TraceIdHex(ctx.trace_id);
  internal_obs::t_flight_current = &record_;
  start_ = std::chrono::steady_clock::now();
}

RequestScope::~RequestScope() {
  if (!active_) return;
  internal_obs::t_flight_current = nullptr;
  record_.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  if (QualityEnabled()) {
    QualityLog::Global().Ingest(record_);
  }
  if (FlightRecorder::Global().enabled()) {
    FlightRecorder::Global().End(std::move(record_), index_);
  }
}

}  // namespace obs
}  // namespace trmma
