#ifndef TRMMA_OBS_JSON_PARSE_H_
#define TRMMA_OBS_JSON_PARSE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace trmma {
namespace obs {

/// Minimal immutable JSON document, the reading counterpart of JsonWriter.
/// Only what the flight-recorder record format and the inspect tooling
/// need: objects, arrays, strings, numbers, booleans and null. Numbers are
/// held as double (the writer emits round-trippable %.17g, so every double
/// the recorder writes survives a parse bit-exactly).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }

  /// Object member by key, or null-typed sentinel when absent (so chained
  /// lookups on partial documents never dereference missing members).
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const {
    return object_.find(key) != object_.end();
  }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document from `text` (trailing whitespace
/// allowed, trailing garbage is an error). Depth-limited recursive descent
/// (64 levels), so nesting bombs fail with a loud error instead of blowing
/// the stack; unterminated strings, malformed \u escapes and duplicate
/// object keys are errors too. Intended for repo-generated files (records,
/// reports, traces), but safe to point at hostile input — see
/// tests/json_parse_test.cc.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_JSON_PARSE_H_
