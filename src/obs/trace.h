#ifndef TRMMA_OBS_TRACE_H_
#define TRMMA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace trmma {
namespace obs {

/// One completed span in the trace ring buffer. `name` must point to
/// static-storage text (TRMMA_SPAN passes string literals). `seq` is a
/// process-wide start order; `parent_seq` is the seq of the enclosing span
/// on the same lane (-1 for roots), so a dump can reconstruct nesting.
/// `trace_id` groups every span belonging to one request across threads;
/// `link_seq` is the seq of a causal parent on a *different* lane (the
/// request root span), exported as a Chrome flow arrow rather than nesting.
struct SpanRecord {
  const char* name = nullptr;
  int64_t seq = -1;
  int64_t parent_seq = -1;
  int depth = 0;
  int tid = 0;  ///< small per-process thread id (see ThreadTraceId)
  double start_us = 0.0;  ///< since process start
  double duration_us = 0.0;
  uint64_t trace_id = 0;  ///< request trace this span belongs to (0 = none)
  int64_t link_seq = -1;  ///< causal parent span on another lane (-1 = none)
  int lane = 0;  ///< 0 = worker-thread lane; >0 = synthetic request lane
};

/// Thread-local request identity: which trace the calling thread is
/// currently working for, and which span on the request lane caused that
/// work. Captured at admission in the serving engine and re-installed on
/// whichever worker/timer thread picks the request up, so spans opened
/// there join the request's trace instead of floating free.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = no request context installed
  int64_t link_seq = -1;  ///< request root span to draw the flow arrow from
};

/// The calling thread's installed context ({0, -1} when none).
TraceContext CurrentTraceContext();

/// Process-unique nonzero trace id (cheap atomic counter; allocated per
/// request even in kMetrics mode so exemplars work without full tracing).
uint64_t NewTraceId();

/// Canonical 16-hex-digit rendering used everywhere a trace id becomes
/// text (exemplars, flight records, /tracez, trace export args).
std::string TraceIdHex(uint64_t trace_id);

/// RAII install/restore of the thread's TraceContext. Nestable: the
/// destructor restores whatever was installed before.
class ScopedTraceContext {
 public:
  ScopedTraceContext(uint64_t trace_id, int64_t link_seq);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Fixed-capacity ring of recently completed spans, written only in
/// TraceMode::kTrace. Completion order means children precede their parents;
/// DumpString() re-sorts by start order and indents by depth.
class TraceRing {
 public:
  static TraceRing& Global();

  explicit TraceRing(size_t capacity = 4096);

  /// Pushes a span begin onto the calling thread's stack. The span inherits
  /// `trace_id` from the enclosing open span, or — when the stack is empty —
  /// from the thread's installed TraceContext (which also supplies
  /// `link_seq`, the cross-lane causal parent). Returns the assigned seq.
  int64_t BeginSpan(const char* name, double start_us);
  /// Pops the innermost span and appends the completed record.
  void EndSpan(double end_us);

  /// Reserves a seq without opening a span, for records assembled by hand
  /// (the serving engine's request-lane root spans claim their seq at
  /// admission so attempt spans can link to it before the root completes).
  int64_t AllocSeq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  void Record(const SpanRecord& rec);

  /// Oldest-to-newest snapshot of the retained records.
  std::vector<SpanRecord> Snapshot() const;
  /// Non-blocking snapshot for the crash path: false (out untouched) when
  /// the ring lock is held — a crash mid-Record must not deadlock.
  bool TrySnapshot(std::vector<SpanRecord>* out) const;
  /// Human-readable dump, one line per span, indented two spaces per depth.
  std::string DumpString() const;
  void Clear();
  /// Drops retained records and re-sizes the ring (test hook).
  void SetCapacity(size_t capacity);
  size_t capacity() const { return capacity_; }

 private:
  std::vector<SpanRecord> SnapshotLocked() const;

  mutable TrackedMutex mu_{"trace.ring"};
  size_t capacity_;
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;      ///< ring write cursor
  size_t stored_ = 0;    ///< min(#records, capacity)
  std::atomic<int64_t> seq_{0};
};

/// Microseconds on the steady clock since process start.
double NowMicros();

/// Small dense id for the calling thread (0 for the first thread to ask,
/// then 1, 2, ...). Chrome trace viewers nest complete events by time
/// containment per thread lane, so spans carry this instead of the opaque
/// native thread id.
int ThreadTraceId();

/// Per-call-site state for TRMMA_SPAN: caches the span's histogram so the
/// enabled path does one atomic pointer load instead of a registry lookup.
class SpanSite {
 public:
  explicit constexpr SpanSite(const char* name) : name_(name) {}
  const char* name() const { return name_; }
  Histogram* histogram();

 private:
  const char* name_;
  std::atomic<Histogram*> hist_{nullptr};
};

/// RAII span timer. With TraceMode::kOff the constructor and destructor are
/// each a relaxed load + branch — no clock read, no allocation. kMetrics
/// times the span into the histogram `<name>.us`; kTrace additionally
/// records it (with nesting) into the global TraceRing.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) : mode_(CurrentTraceMode()) {
    if (mode_ == TraceMode::kOff) return;
    site_ = &site;
    start_ = NowMicros();
    if (mode_ == TraceMode::kTrace) {
      TraceRing::Global().BeginSpan(site.name(), start_);
    }
  }
  ~ScopedSpan() {
    if (mode_ == TraceMode::kOff) return;
    const double end = NowMicros();
    // Inside a request context the observation carries the trace id, so the
    // span histogram's exemplar can name an offending request.
    site_->histogram()->Observe(end - start_, CurrentTraceContext().trace_id);
    if (mode_ == TraceMode::kTrace) TraceRing::Global().EndSpan(end);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceMode mode_;
  SpanSite* site_ = nullptr;
  double start_ = 0.0;
};

}  // namespace obs
}  // namespace trmma

#define TRMMA_SPAN_CONCAT_INNER(a, b) a##b
#define TRMMA_SPAN_CONCAT(a, b) TRMMA_SPAN_CONCAT_INNER(a, b)

/// Times the enclosing scope as span `name` (a string literal). Feeds the
/// histogram `<name>.us` under TraceMode::kMetrics and the trace ring under
/// kTrace; a no-op branch when observability is off.
#define TRMMA_SPAN(name)                                            \
  static ::trmma::obs::SpanSite TRMMA_SPAN_CONCAT(trmma_span_site_, \
                                                  __LINE__){name};  \
  ::trmma::obs::ScopedSpan TRMMA_SPAN_CONCAT(trmma_span_, __LINE__)(\
      TRMMA_SPAN_CONCAT(trmma_span_site_, __LINE__))

#endif  // TRMMA_OBS_TRACE_H_
