#ifndef TRMMA_OBS_SLO_H_
#define TRMMA_OBS_SLO_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json_parse.h"
#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {

class MetricRegistry;

/// One declarative objective, parsed from an SLO JSON file:
///
///   {"objectives": [
///     {"name": "match_p95", "histogram": "mm.candidates.us",
///      "stat": "p95", "max": 200000},
///     {"name": "peak_rss", "gauge": "mem.rss_peak.bytes", "max": 2e9},
///     {"name": "no_faults", "counter": "robust.faults_injected", "max": 0}
///   ]}
///
/// Exactly one of histogram/gauge/counter names the source metric (all label
/// sets aggregated: histograms merged, counters summed, gauges max'd).
/// `stat` applies to histograms only — one of p50/p95/p99/max/mean/count
/// (default p95); `quantile: 0.95` is accepted as an alias and snaps to the
/// nearest reported quantile. `max` is the inclusive upper bound.
struct SloObjective {
  enum class Kind { kHistogram, kGauge, kCounter };

  std::string name;
  std::string metric;
  Kind kind = Kind::kHistogram;
  std::string stat = "p95";
  double max = 0.0;
};

/// Outcome of evaluating one objective. A missing metric is reported as
/// no-data (ok stays true) rather than a breach: benches legitimately run
/// subsets of the instrumented surface.
struct SloResult {
  std::string name;
  std::string metric;
  std::string stat;
  double value = 0.0;
  double max = 0.0;
  bool has_data = false;
  bool ok = true;
  /// Worst recent exemplar of the source histogram (hex trace id), attached
  /// on live evaluation so a breach names a request to chase — resolve with
  /// `trmma_inspect show <flight.jsonl> <trace_id>`. Empty when the metric
  /// is not a histogram or no exemplar was captured.
  std::string exemplar_trace_id;
};

/// Parses the objectives document above (already-parsed JSON).
StatusOr<std::vector<SloObjective>> ParseSloObjectives(const JsonValue& doc);

/// Offline evaluation against a BENCH_*.json report's `metrics` section
/// (the JsonDump shape) — what `trmma_inspect slo` runs.
std::vector<SloResult> EvaluateSloAgainstReport(
    const std::vector<SloObjective>& objectives, const JsonValue& report);

/// Renders results as a one-line JSON array (for /slo and the BENCH report).
std::string SloResultsJson(const std::vector<SloResult>& results);

/// Live watchdog: holds loaded objectives, evaluates them against a registry
/// on demand (report write, /metrics scrape) and maintains breach telemetry:
/// counter slo.breach.total{objective=name} increments per breached
/// evaluation, gauge slo.ok{objective=name} holds 1/0.
class SloWatchdog {
 public:
  static SloWatchdog& Global();

  SloWatchdog() = default;
  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  Status LoadFromJsonText(const std::string& text);
  Status LoadFromFile(const std::string& path);
  /// Loads TRMMA_SLO_FILE if set; returns true when objectives are active.
  /// A load failure is loud (stderr) but non-fatal.
  bool InstallFromEnv();
  void Clear();

  bool active() const;
  std::vector<SloObjective> objectives() const;

  /// Evaluates every objective against `registry`, updates breach counters /
  /// ok gauges in the same registry, and retains the results for
  /// StatusJson().
  std::vector<SloResult> Evaluate(MetricRegistry* registry);

  /// {"active":bool,"objectives":N,"results":[...]} from the last Evaluate.
  std::string StatusJson() const;

 private:
  mutable TrackedMutex mu_{"slo.watchdog"};
  std::vector<SloObjective> objectives_;
  std::vector<SloResult> last_results_;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_SLO_H_
