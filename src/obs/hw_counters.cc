#include "obs/hw_counters.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "nn/profiler.h"
#include "obs/cpu_profiler.h"
#include "obs/json.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

// Same sanitizer detection as obs/stack_walk.cc: under ASan/TSan the
// subsystem refuses to arm — the sanitizer runtimes intercept syscalls and
// wrap signal delivery, and a perf fd group adds fd-based sampling state
// they do not model. The stub path still validates (available:false).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TRMMA_HW_COUNTERS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TRMMA_HW_COUNTERS_SANITIZED 1
#endif
#endif

namespace trmma {
namespace obs {

namespace {

const char* const kCounterNames[kHwCounterKinds] = {
    "cycles",        "instructions",  "l1d_misses",
    "llc_misses",    "branch_misses", "stalled_cycles",
};

/// Process-wide armed/disarmed epoch. Bumped by Enable/Disable; each
/// thread's group caches the epoch it was opened under and reopens (or
/// closes) lazily when it observes a mismatch — no cross-thread teardown.
std::atomic<std::uint64_t> g_epoch{0};

struct SweepPoint {
  std::string label;
  int n = 0;
  HwCounterDelta delta;
  double flops = 0.0;
  double bytes = 0.0;
};

struct GlobalState {
  std::mutex mu;
  bool available = false;
  std::string reason = "not requested";
  std::string counter_set = "full";
  bool counter_open[kHwCounterKinds] = {};
  HwCalibration calibration;
  std::vector<SweepPoint> sweep;
};

GlobalState& State() {
  static GlobalState* state = new GlobalState();
  return *state;
}

/// Truthiness of TRMMA_CPU_PROFILE, mirroring CpuProfiler::StartFromEnv:
/// the interlock must refuse even when the profiler has been requested but
/// not yet started, or the two would race on who arms first.
bool CpuProfileArmedInEnv() {
  const char* env = std::getenv("TRMMA_CPU_PROFILE");
  if (env == nullptr || *env == '\0') return false;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
}

#if defined(__linux__) && !defined(TRMMA_HW_COUNTERS_SANITIZED)
#define TRMMA_HW_COUNTERS_IMPL 1

struct CounterSpec {
  int kind;
  std::uint32_t type;
  std::uint64_t config;
};

constexpr CounterSpec kCounterSpecs[kHwCounterKinds] = {
    {kHwCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {kHwInstructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {kHwL1dMisses, PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {kHwLlcMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {kHwBranchMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {kHwStalledCycles, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

/// Which counter slots the active set asks for, cycles always first (it is
/// the group leader).
int SetKinds(const std::string& set, int* out) {
  int n = 0;
  out[n++] = kHwCycles;
  out[n++] = kHwInstructions;
  if (set == "ipc") return n;
  out[n++] = kHwL1dMisses;
  out[n++] = kHwLlcMisses;
  if (set == "cache") return n;
  out[n++] = kHwBranchMisses;
  out[n++] = kHwStalledCycles;
  return n;
}

int OpenCounter(const CounterSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      ::syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0));
}

/// Per-thread counter group. Counters are free-running from open; scopes
/// measure deltas between two group reads, so no enable/disable ioctls sit
/// on the hot path. The destructor closes the fds at thread exit.
struct ThreadGroup {
  int leader = -1;
  int fds[kHwCounterKinds];
  int nr = 0;                          ///< members in group read order
  int slot_kind[kHwCounterKinds] = {};  ///< read position -> HwCounterKind
  std::uint64_t epoch = 0;

  ThreadGroup() {
    for (int& fd : fds) fd = -1;
  }
  ~ThreadGroup() { Close(); }

  void Close() {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    leader = -1;
    nr = 0;
  }

  /// Opens the active set's counters as one group (leader = cycles).
  /// Optional members that the PMU vetoes are skipped; a leader failure
  /// leaves the group closed. Returns errno from the leader open (0 on
  /// success).
  int Open(const std::string& set) {
    Close();
    int kinds[kHwCounterKinds];
    const int want = SetKinds(set, kinds);
    for (int i = 0; i < want; ++i) {
      const CounterSpec& spec = kCounterSpecs[kinds[i]];
      const int fd = OpenCounter(spec, leader);
      if (fd < 0) {
        if (spec.kind == kHwCycles) {
          const int err = errno;
          Close();
          return err != 0 ? err : EINVAL;
        }
        continue;  // optional counter unsupported on this PMU
      }
      if (spec.kind == kHwCycles) leader = fd;
      fds[spec.kind] = fd;
      slot_kind[nr++] = spec.kind;
    }
    return 0;
  }

  /// Group read: {nr, time_enabled, time_running, value[nr]}.
  bool Read(std::uint64_t* buf, int buf_len) const {
    if (leader < 0) return false;
    const ssize_t want =
        static_cast<ssize_t>(sizeof(std::uint64_t) * (3 + nr));
    if (want > static_cast<ssize_t>(sizeof(std::uint64_t)) * buf_len) {
      return false;
    }
    return ::read(leader, buf, static_cast<size_t>(want)) == want &&
           static_cast<int>(buf[0]) == nr;
  }
};

thread_local ThreadGroup t_group;

/// The calling thread's group for the current epoch, opening it lazily.
/// Returns nullptr when disabled or the open failed (this thread then runs
/// stub scopes until the next epoch).
ThreadGroup* EnsureThreadGroup() {
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (t_group.epoch != epoch) {
    t_group.Close();
    t_group.epoch = epoch;
    if (HwCounters::Enabled()) {
      GlobalState& state = State();
      std::string set;
      {
        std::lock_guard<std::mutex> lock(state.mu);
        set = state.counter_set;
      }
      t_group.Open(set);
    }
  }
  return t_group.leader >= 0 ? &t_group : nullptr;
}

const char* OpenErrorReason(int err) {
  switch (err) {
    case EACCES:
    case EPERM:
      return "perf_event_open refused: kernel.perf_event_paranoid restricts "
             "unprivileged hardware counters";
    case ENOENT:
    case ENODEV:
    case EOPNOTSUPP:
      return "perf_event_open unsupported: no hardware PMU exposed to this "
             "host (common in VMs and containers)";
    case ENOSYS:
      return "perf_event_open not implemented by this kernel";
    default:
      return "perf_event_open failed";
  }
}

// ---- calibration microbenchmarks ------------------------------------------

/// Peak scalar FLOP/cycle: eight independent multiply-add chains, long
/// enough (~16M flops) to swamp the two group reads. The result is whatever
/// this build's codegen sustains — that is exactly the roof the profiled
/// scalar ops should be judged against.
double MeasureFlopPeak(double* out_cycles) {
  constexpr int kIters = 1 << 20;
  double acc[8] = {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7};
  const double m = 1.0000001, c = 1e-9;
  HwCounterScope scope(true);
  for (int i = 0; i < kIters; ++i) {
    for (int j = 0; j < 8; ++j) acc[j] = acc[j] * m + c;
  }
  HwCounterDelta delta;
  const bool ok = scope.End(&delta);
  volatile double sink = 0.0;
  for (double a : acc) sink += a;
  (void)sink;
  if (!ok || !delta.measured[kHwCycles] || delta.cycles() <= 0.0) return 0.0;
  *out_cycles += delta.cycles();
  return 2.0 * 8.0 * kIters / delta.cycles();
}

/// Peak bytes/cycle: stream-sum a buffer larger than typical LLC slices so
/// the reads mostly miss, twice (the first pass also pays page faults; both
/// count — this is the sustainable streaming rate, not a best case).
double MeasureBytesPeak(double* out_cycles) {
  constexpr size_t kDoubles = (16u << 20) / sizeof(double);  // 16 MiB
  std::vector<double> buf(kDoubles, 1.0);
  double sum = 0.0;
  HwCounterScope scope(true);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < kDoubles; ++i) sum += buf[i];
  }
  HwCounterDelta delta;
  const bool ok = scope.End(&delta);
  volatile double sink = sum;
  (void)sink;
  if (!ok || !delta.measured[kHwCycles] || delta.cycles() <= 0.0) return 0.0;
  *out_cycles += delta.cycles();
  return 2.0 * static_cast<double>(kDoubles * sizeof(double)) /
         delta.cycles();
}

#endif  // TRMMA_HW_COUNTERS_IMPL

std::string CounterSetFromEnv() {
  const char* env = std::getenv("TRMMA_HW_COUNTER_SET");
  if (env == nullptr || *env == '\0') return "full";
  const std::string set = env;
  if (set == "full" || set == "cache" || set == "ipc") return set;
  TRMMA_LOG(Warning) << "TRMMA_HW_COUNTER_SET: unknown set '" << set
                     << "', using 'full' (known: full, cache, ipc)";
  return "full";
}

/// Miss rate per thousand instructions; negative = unmeasured (omitted from
/// JSON).
double PerKiloInstructions(double misses, double instructions) {
  return instructions > 0.0 ? 1000.0 * misses / instructions : 0.0;
}

}  // namespace

const char* HwCounterName(int kind) {
  return kind >= 0 && kind < kHwCounterKinds ? kCounterNames[kind] : "?";
}

double ScaleMultiplexed(std::uint64_t raw_delta,
                        std::uint64_t time_enabled_delta,
                        std::uint64_t time_running_delta) {
  if (time_running_delta == 0) return 0.0;
  if (time_running_delta >= time_enabled_delta) {
    return static_cast<double>(raw_delta);
  }
  return static_cast<double>(raw_delta) *
         (static_cast<double>(time_enabled_delta) /
          static_cast<double>(time_running_delta));
}

void HwCounterDelta::Accumulate(const HwCounterDelta& other) {
  for (int i = 0; i < kHwCounterKinds; ++i) {
    if (!other.measured[i]) continue;
    value[i] += other.value[i];
    measured[i] = true;
  }
  time_enabled_ns += other.time_enabled_ns;
  time_running_ns += other.time_running_ns;
}

std::atomic<bool> HwCounters::enabled_{false};

HwCounters& HwCounters::Global() {
  static HwCounters* counters = new HwCounters();
  return *counters;
}

Status HwCounters::Enable() {
  if (Enabled()) return Status::OK();
  GlobalState& state = State();
  const auto refuse = [&state](const std::string& reason) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      state.available = false;
      state.reason = reason;
    }
    TRMMA_LOG(Warning) << "hw counters unavailable: " << reason;
    return Status::FailedPrecondition("hw counters: " + reason);
  };

  const char* env = std::getenv("TRMMA_HW_COUNTERS");
  if (env != nullptr && (std::strcmp(env, "0") == 0 ||
                         std::strcmp(env, "off") == 0)) {
    return refuse("disabled by TRMMA_HW_COUNTERS=off");
  }
#if !defined(__linux__)
  return refuse("perf_event_open requires Linux");
#elif defined(TRMMA_HW_COUNTERS_SANITIZED)
  return refuse(
      "disabled under ASan/TSan: sanitizer runtimes do not model perf fd "
      "groups");
#else
  // The interlock with the sampling CPU profiler: both subsystems schedule
  // hardware-assisted measurement (ITIMER_PROF signals vs a multiplexed
  // perf group), and running them concurrently skews both — SIGPROF
  // delivery perturbs counter scheduling windows mid-scope. Refuse with a
  // logged reason instead of silently measuring garbage.
  if (CpuProfiler::Global().running() || CpuProfileArmedInEnv()) {
    return refuse(
        "cpu profiler armed (TRMMA_CPU_PROFILE): refusing to run counter "
        "groups while ITIMER_PROF sampling is live");
  }
  const std::string set = CounterSetFromEnv();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.counter_set = set;
  }
  // Probe by opening this thread's group for the next epoch; the probe
  // result doubles as the calling thread's live group.
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  enabled_.store(true, std::memory_order_relaxed);
  ThreadGroup* group = EnsureThreadGroup();
  if (group == nullptr) {
    enabled_.store(false, std::memory_order_relaxed);
    const int err = t_group.Open(set);  // reproduce the leader errno
    t_group.Close();
    return refuse(OpenErrorReason(err));
  }
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.available = true;
    state.reason.clear();
    for (bool& open : state.counter_open) open = false;
    for (int i = 0; i < group->nr; ++i) {
      state.counter_open[group->slot_kind[i]] = true;
    }
  }
  TRMMA_LOG(Info) << "hw counters enabled (set=" << set << ", "
                  << group->nr << " counters in group)";
  return Status::OK();
#endif
}

void HwCounters::Disable() {
  if (!Enabled()) return;
  enabled_.store(false, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.available = false;
  state.reason = "disabled";
}

bool HwCounters::EnableFromEnv() {
  const char* env = std::getenv("TRMMA_HW_COUNTERS");
  if (env == nullptr || *env == '\0') return Enabled();
  // Refusal reasons land in reason()/SectionJson(); the Status adds nothing.
  (void)Enable();
  return Enabled();
}

bool HwCounters::available() const {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.available && Enabled();
}

std::string HwCounters::reason() const {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.available && Enabled() ? std::string() : state.reason;
}

std::string HwCounters::counter_set() const {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.counter_set;
}

bool HwCounters::counter_open(int kind) const {
  if (kind < 0 || kind >= kHwCounterKinds) return false;
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.counter_open[kind];
}

HwCalibration HwCounters::Calibrate() {
  GlobalState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.calibration.measured) return state.calibration;
  }
  HwCalibration result;
#if defined(TRMMA_HW_COUNTERS_IMPL)
  if (Enabled()) {
    result.flop_per_cycle = MeasureFlopPeak(&result.calibration_cycles);
    result.bytes_per_cycle = MeasureBytesPeak(&result.calibration_cycles);
    result.measured =
        result.flop_per_cycle > 0.0 && result.bytes_per_cycle > 0.0;
  }
#endif
  if (result.measured) {
    std::lock_guard<std::mutex> lock(state.mu);
    state.calibration = result;
  }
  return result;
}

HwCalibration HwCounters::calibration() const {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.calibration;
}

void HwCounters::RecordSweepPoint(const std::string& label, int n,
                                  const HwCounterDelta& delta, double flops,
                                  double bytes) {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sweep.push_back(SweepPoint{label, n, delta, flops, bytes});
}

std::string HwCounters::SectionJson() const {
  // Snapshots are taken before our lock where they have their own locking
  // (the op profiler), and under it for our own state.
  const std::vector<nn::OpProfileEntry> ops =
      nn::OpProfiler::Global().SortedEntries();
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const bool available = state.available && Enabled();

  JsonWriter w;
  w.BeginObject();
  w.Key("available").Bool(available);
  if (!available) {
    w.Key("reason").String(state.reason);
  }
  w.Key("counter_set").String(state.counter_set);
  w.Key("counters").BeginArray();
  for (int kind = 0; kind < kHwCounterKinds; ++kind) {
    if (state.counter_open[kind]) w.String(kCounterNames[kind]);
  }
  w.EndArray();
  w.Key("calibration").BeginObject();
  w.Key("measured").Bool(state.calibration.measured);
  if (state.calibration.measured) {
    w.Key("flop_per_cycle").Number(state.calibration.flop_per_cycle);
    w.Key("bytes_per_cycle").Number(state.calibration.bytes_per_cycle);
    w.Key("calibration_cycles").Number(state.calibration.calibration_cycles);
  }
  w.EndObject();

  // Roofline coordinates per profiled op: the op profiler's FLOP/bytes
  // estimates divided by measured cycles. Ops keep the profiler's ordering
  // (total time descending); entries without a single measured forward
  // scope are skipped rather than emitted as zeros.
  w.Key("ops").BeginArray();
  for (const nn::OpProfileEntry& e : ops) {
    if (e.hw_samples <= 0 || e.hw.cycles() <= 0.0) continue;
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("calls").Int(e.calls);
    w.Key("hw_samples").Int(e.hw_samples);
    w.Key("cycles").Number(e.hw.cycles());
    w.Key("instructions").Number(e.hw.instructions());
    w.Key("ipc").Number(e.hw.ipc());
    w.Key("flop_per_cycle").Number(e.flops / e.hw.cycles());
    w.Key("bytes_per_cycle")
        .Number(static_cast<double>(e.bytes) / e.hw.cycles());
    if (e.bytes > 0) {
      w.Key("arithmetic_intensity")
          .Number(e.flops / static_cast<double>(e.bytes));
    }
    if (e.hw.measured[kHwL1dMisses]) {
      w.Key("l1d_miss_per_kinst")
          .Number(PerKiloInstructions(e.hw.value[kHwL1dMisses],
                                      e.hw.instructions()));
    }
    if (e.hw.measured[kHwLlcMisses]) {
      w.Key("llc_miss_per_kinst")
          .Number(PerKiloInstructions(e.hw.value[kHwLlcMisses],
                                      e.hw.instructions()));
    }
    if (e.hw.measured[kHwBranchMisses]) {
      w.Key("branch_miss_per_kinst")
          .Number(PerKiloInstructions(e.hw.value[kHwBranchMisses],
                                      e.hw.instructions()));
    }
    if (e.hw.measured[kHwStalledCycles]) {
      w.Key("stalled_frac")
          .Number(e.hw.value[kHwStalledCycles] / e.hw.cycles());
    }
    w.EndObject();
  }
  w.EndArray();

  w.Key("sweep").BeginArray();
  for (const SweepPoint& p : state.sweep) {
    w.BeginObject();
    w.Key("label").String(p.label);
    w.Key("n").Int(p.n);
    w.Key("cycles").Number(p.delta.cycles());
    w.Key("instructions").Number(p.delta.instructions());
    w.Key("ipc").Number(p.delta.ipc());
    w.Key("flops").Number(p.flops);
    w.Key("bytes").Number(p.bytes);
    if (p.delta.cycles() > 0.0) {
      w.Key("flop_per_cycle").Number(p.flops / p.delta.cycles());
      w.Key("bytes_per_cycle").Number(p.bytes / p.delta.cycles());
    }
    if (p.bytes > 0.0) {
      w.Key("arithmetic_intensity").Number(p.flops / p.bytes);
    }
    if (p.delta.measured[kHwLlcMisses]) {
      w.Key("llc_miss_per_kinst")
          .Number(PerKiloInstructions(p.delta.value[kHwLlcMisses],
                                      p.delta.instructions()));
    }
    if (p.delta.time_enabled_ns > 0.0) {
      w.Key("running_frac")
          .Number(p.delta.time_running_ns / p.delta.time_enabled_ns);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void HwCounters::ResetForTest() {
  enabled_.store(false, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
#if defined(TRMMA_HW_COUNTERS_IMPL)
  t_group.Close();
#endif
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.available = false;
  state.reason = "not requested";
  state.counter_set = "full";
  for (bool& open : state.counter_open) open = false;
  state.calibration = HwCalibration();
  state.sweep.clear();
}

void HwCounterScope::Start() {
  if (!HwCounters::Enabled()) return;
#if defined(TRMMA_HW_COUNTERS_IMPL)
  ThreadGroup* group = EnsureThreadGroup();
  if (group == nullptr) return;
  std::uint64_t buf[3 + kHwCounterKinds];
  if (!group->Read(buf, 3 + kHwCounterKinds)) return;
  start_enabled_ = buf[1];
  start_running_ = buf[2];
  for (int i = 0; i < group->nr; ++i) {
    start_raw_[group->slot_kind[i]] = buf[3 + i];
  }
  active_ = true;
#endif
}

bool HwCounterScope::End(HwCounterDelta* out) {
  if (!active_) return false;
  active_ = false;
#if defined(TRMMA_HW_COUNTERS_IMPL)
  if (!HwCounters::Enabled()) return false;
  // Same-thread, same-epoch contract: a scope must End on the thread that
  // started it, with the group it snapshotted still open.
  if (t_group.leader < 0 ||
      t_group.epoch != g_epoch.load(std::memory_order_acquire)) {
    return false;
  }
  std::uint64_t buf[3 + kHwCounterKinds];
  if (!t_group.Read(buf, 3 + kHwCounterKinds)) return false;
  if (out == nullptr) return true;
  const std::uint64_t enabled_delta =
      buf[1] >= start_enabled_ ? buf[1] - start_enabled_ : 0;
  const std::uint64_t running_delta =
      buf[2] >= start_running_ ? buf[2] - start_running_ : 0;
  *out = HwCounterDelta();
  out->time_enabled_ns = static_cast<double>(enabled_delta);
  out->time_running_ns = static_cast<double>(running_delta);
  for (int i = 0; i < t_group.nr; ++i) {
    const int kind = t_group.slot_kind[i];
    const std::uint64_t raw = buf[3 + i] >= start_raw_[kind]
                                  ? buf[3 + i] - start_raw_[kind]
                                  : 0;
    out->value[kind] = ScaleMultiplexed(raw, enabled_delta, running_delta);
    out->measured[kind] = true;
  }
  return true;
#else
  return false;
#endif
}

}  // namespace obs
}  // namespace trmma
