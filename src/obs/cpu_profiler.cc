#include "obs/cpu_profiler.h"

#include <signal.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "obs/hw_counters.h"
#include "obs/json.h"
#include "obs/stack_walk.h"

namespace trmma {
namespace obs {
namespace {

constexpr int kMaxFrames = kStackMaxFrames;
constexpr int kEpochCapacity = 4096;  ///< samples per epoch buffer

/// One epoch of raw samples, written lock-free by the signal handler:
/// a slot is claimed with one fetch_add on `head`, its frames are filled,
/// then `ready[slot]` publishes the depth (release) — the reader only
/// trusts slots whose ready flag is nonzero. Overflow is counted, never
/// blocked on: the handler must stay wait-free.
struct EpochBuffer {
  std::atomic<int64_t> head{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<int> ready[kEpochCapacity];
  void* frames[kEpochCapacity][kMaxFrames];
};

/// Static storage (BSS, ~3.2 MB): the handler may fire before any
/// constructor and must never allocate.
EpochBuffer g_epochs[2];
std::atomic<int> g_active_epoch{0};
std::atomic<int> g_max_depth{kMaxFrames};
std::atomic<int64_t> g_truncated{0};

/// Claims a slot in the active epoch and publishes one sample. Shared by
/// the signal handler and the synchronous test hook. The walk itself is the
/// shared async-signal-safe frame-pointer walker (obs/stack_walk.h).
int RecordSample(void* ucv) {
  EpochBuffer& buf =
      g_epochs[g_active_epoch.load(std::memory_order_relaxed) & 1];
  const int64_t slot = buf.head.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kEpochCapacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  const int max_depth = g_max_depth.load(std::memory_order_relaxed);
  const int depth = CaptureStack(ucv, buf.frames[slot], max_depth);
  if (depth == max_depth) {
    g_truncated.fetch_add(1, std::memory_order_relaxed);
  }
  buf.ready[slot].store(depth, std::memory_order_release);
  return depth;
}

void ProfileSignalHandler(int, siginfo_t*, void* ucv) {
  // Everything below is wait-free and allocation-free. The guarded frame
  // reads are syscalls and may set errno, which must be invisible to the
  // interrupted code. Budget: two atomic RMWs plus one process_vm_readv
  // per walked frame (≤ max_depth).
  const int saved_errno = errno;
  RecordSample(ucv);
  errno = saved_errno;
}

/// Aggregate profile state, touched only under the profiler mutex and never
/// from the signal handler.
std::map<std::vector<void*>, int64_t> g_aggregate;  // leaf-first stacks
std::unordered_map<void*, std::string> g_symbols;
int64_t g_samples = 0;
int64_t g_dropped = 0;
std::string g_dump_path;

const std::string& SymbolFor(void* pc) {
  auto it = g_symbols.find(pc);
  if (it != g_symbols.end()) return it->second;
  return g_symbols.emplace(pc, SymbolizePc(pc)).first->second;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

Status CpuProfiler::Start(const CpuProfilerConfig& config) {
  if (!StackWalkSupported()) {
    (void)config;
    return Status::FailedPrecondition(
        "cpu profiler disabled: frame walk unavailable (sanitizer build or "
        "unsupported architecture)");
  }
  // Other half of the hw-counter interlock (see HwCounters::Enable):
  // SIGPROF delivery perturbs the kernel's counter-group scheduling windows
  // mid-scope, so exactly one of the two subsystems may be armed.
  if (HwCounters::Enabled()) {
    return Status::FailedPrecondition(
        "cpu profiler refused: hardware counters are armed "
        "(TRMMA_HW_COUNTERS) — disable them before SIGPROF sampling");
  }
  std::lock_guard<TrackedMutex> lock(mu_);
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("cpu profiler already running");
  }
  hz_ = std::clamp(config.hz, 1, 1000);
  g_max_depth.store(std::clamp(config.max_depth, 4, kMaxFrames),
                    std::memory_order_relaxed);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &ProfileSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) {
    return Status::Internal(std::string("sigaction(SIGPROF) failed: ") +
                            std::strerror(errno));
  }
  itimerval timer;
  const long interval_us = std::max(1000000L / hz_, 1L);
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    return Status::Internal(std::string("setitimer(ITIMER_PROF) failed: ") +
                            std::strerror(errno));
  }
  running_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void CpuProfiler::Stop() {
  std::lock_guard<TrackedMutex> lock(mu_);
  if (!running_.load(std::memory_order_relaxed)) return;
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  running_.store(false, std::memory_order_relaxed);
  // The handler stays installed: a signal already in flight lands in the
  // (inactive but valid) epoch buffer instead of killing the process.
  DrainLocked();
}

bool CpuProfiler::StartFromEnv() {
  const char* env = std::getenv("TRMMA_CPU_PROFILE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "off") == 0) {
    return false;
  }
  CpuProfilerConfig config;
  const char* hz = std::getenv("TRMMA_CPU_PROFILE_HZ");
  if (hz != nullptr && *hz != '\0') {
    const int v = std::atoi(hz);
    if (v > 0) config.hz = v;
  }
  const Status start = Start(config);
  if (!start.ok()) {
    TRMMA_LOG(Warning) << "TRMMA_CPU_PROFILE ignored: " << start.message();
    return false;
  }
  if (std::strcmp(env, "1") != 0 && std::strcmp(env, "on") != 0) {
    bool install = false;
    {
      std::lock_guard<TrackedMutex> lock(mu_);
      install = g_dump_path.empty();
      g_dump_path = env;
    }
    if (install) {
      std::atexit([] {
        CpuProfiler& p = CpuProfiler::Global();
        p.Stop();
        std::string path;
        {
          std::lock_guard<TrackedMutex> lock(p.mu_);
          path = g_dump_path;
        }
        if (path.empty()) return;
        const std::string folded = p.FoldedStacks();
        if (std::FILE* f = std::fopen(path.c_str(), "w")) {
          std::fwrite(folded.data(), 1, folded.size(), f);
          std::fclose(f);
          std::fprintf(stderr, "[trmma] cpu profile written to %s\n",
                       path.c_str());
        }
        const std::string html = p.FlamegraphHtml();
        const std::string html_path = path + ".html";
        if (std::FILE* f = std::fopen(html_path.c_str(), "w")) {
          std::fwrite(html.data(), 1, html.size(), f);
          std::fclose(f);
        }
      });
    }
  }
  return true;
}

void CpuProfiler::DrainLocked() {
  const int old = g_active_epoch.load(std::memory_order_relaxed);
  g_active_epoch.store(old ^ 1, std::memory_order_relaxed);
  // Let in-flight handlers that already picked the old epoch finish
  // publishing; their ready flags are release-stored, ours acquire-loaded.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EpochBuffer& buf = g_epochs[old & 1];
  const int64_t n =
      std::min<int64_t>(buf.head.load(std::memory_order_relaxed),
                        kEpochCapacity);
  std::vector<void*> stack;
  for (int64_t i = 0; i < n; ++i) {
    const int depth = buf.ready[i].load(std::memory_order_acquire);
    if (depth <= 0) continue;  // unpublished or failed capture
    stack.assign(buf.frames[i], buf.frames[i] + depth);
    ++g_aggregate[stack];
    ++g_samples;
  }
  g_dropped += buf.dropped.exchange(0, std::memory_order_relaxed);
  for (int64_t i = 0; i < n; ++i) {
    buf.ready[i].store(0, std::memory_order_relaxed);
  }
  buf.head.store(0, std::memory_order_relaxed);
}

CpuProfilerStats CpuProfiler::stats() {
  std::lock_guard<TrackedMutex> lock(mu_);
  DrainLocked();
  CpuProfilerStats out;
  out.samples = g_samples;
  out.dropped = g_dropped;
  out.truncated = g_truncated.load(std::memory_order_relaxed);
  return out;
}

std::string CpuProfiler::FoldedStacks() {
  std::lock_guard<TrackedMutex> lock(mu_);
  DrainLocked();
  std::string out;
  for (const auto& [stack, count] : g_aggregate) {
    // Stored leaf-first (walk order); folded format wants root-first.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it != stack.rbegin()) out += ';';
      out += SymbolFor(*it);
    }
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string CpuProfiler::ProfileSectionJson(int top_n) {
  std::lock_guard<TrackedMutex> lock(mu_);
  DrainLocked();
  // Per-symbol self (leaf) and total (anywhere on the stack, counted once
  // per sample) counts.
  std::map<std::string, std::pair<int64_t, int64_t>> frames;  // self,total
  std::vector<const std::string*> seen;
  for (const auto& [stack, count] : g_aggregate) {
    if (stack.empty()) continue;
    frames[SymbolFor(stack.front())].first += count;
    seen.clear();
    for (void* pc : stack) {
      const std::string& sym = SymbolFor(pc);
      bool dup = false;
      for (const std::string* s : seen) dup = dup || *s == sym;
      if (dup) continue;
      seen.push_back(&sym);
      frames[sym].second += count;
    }
  }
  std::vector<std::pair<std::string, std::pair<int64_t, int64_t>>> ranked(
      frames.begin(), frames.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.first != b.second.first) {
                       return a.second.first > b.second.first;
                     }
                     return a.second.second > b.second.second;
                   });
  if (top_n > 0 && static_cast<size_t>(top_n) < ranked.size()) {
    ranked.resize(static_cast<size_t>(top_n));
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("hz").Int(hz_);
  w.Key("samples").Int(g_samples);
  w.Key("dropped").Int(g_dropped);
  w.Key("truncated").Int(g_truncated.load(std::memory_order_relaxed));
  w.Key("frames").BeginArray();
  for (const auto& [symbol, counts] : ranked) {
    w.BeginObject();
    w.Key("symbol").String(symbol);
    w.Key("self").Int(counts.first);
    w.Key("total").Int(counts.second);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string CpuProfiler::FlamegraphHtml() {
  const std::string folded = FoldedStacks();
  // Self-contained: the folded text rides along in a template literal and
  // a small script builds the flame boxes. No external assets.
  std::string escaped;
  escaped.reserve(folded.size());
  for (char c : folded) {
    if (c == '\\' || c == '`' || c == '$') escaped += '\\';
    escaped += c;
  }
  std::string html;
  html += "<!doctype html><html><head><meta charset=\"utf-8\">";
  html += "<title>trmma cpu profile</title><style>\n";
  html += "body{font:12px monospace;margin:12px;background:#fff}\n";
  html += "#flame{position:relative;width:100%;}\n";
  html += ".f{position:absolute;height:16px;overflow:hidden;";
  html += "white-space:nowrap;border:1px solid #fff;box-sizing:border-box;";
  html += "cursor:default;font-size:11px;line-height:14px;padding-left:2px}\n";
  html += ".f:hover{border-color:#000}\n";
  html += "</style></head><body>\n";
  html += "<h3>trmma cpu profile (flamegraph)</h3><div id=\"meta\"></div>\n";
  html += "<div id=\"flame\"></div>\n";
  html += "<script>\nconst folded=`";
  html += escaped;
  html += "`;\n";
  html +=
      "const root={name:'all',self:0,total:0,kids:new Map()};\n"
      "let total=0;\n"
      "for(const line of folded.split('\\n')){\n"
      "  if(!line)continue;\n"
      "  const sp=line.lastIndexOf(' ');\n"
      "  const count=parseInt(line.slice(sp+1),10)||0;\n"
      "  const frames=line.slice(0,sp).split(';');\n"
      "  total+=count;let node=root;node.total+=count;\n"
      "  for(const f of frames){\n"
      "    if(!node.kids.has(f))node.kids.set(f,{name:f,self:0,total:0,"
      "kids:new Map()});\n"
      "    node=node.kids.get(f);node.total+=count;\n"
      "  }\n"
      "  node.self+=count;\n"
      "}\n"
      "document.getElementById('meta').textContent=total+' samples';\n"
      "const el=document.getElementById('flame');\n"
      "const W=el.clientWidth||1000;\n"
      "const colors=['#e66','#e96','#ec6','#cc5','#9c6'];\n"
      "let maxDepth=0;\n"
      "function layout(node,x,depth){\n"
      "  maxDepth=Math.max(maxDepth,depth);\n"
      "  let cx=x;\n"
      "  for(const kid of node.kids.values()){\n"
      "    const w=total>0?kid.total/total*W:0;\n"
      "    if(w>=1){\n"
      "      const d=document.createElement('div');\n"
      "      d.className='f';\n"
      "      d.style.left=cx+'px';d.style.top=(depth*17)+'px';\n"
      "      d.style.width=w+'px';\n"
      "      d.style.background=colors[depth%colors.length];\n"
      "      const pct=(100*kid.total/total).toFixed(1);\n"
      "      d.textContent=kid.name;\n"
      "      d.title=kid.name+' — '+kid.total+' samples ('+pct+'%), "
      "self '+kid.self;\n"
      "      el.appendChild(d);\n"
      "      layout(kid,cx,depth+1);\n"
      "    }\n"
      "    cx+=w;\n"
      "  }\n"
      "}\n"
      "layout(root,0,0);\n"
      "el.style.height=((maxDepth+1)*17)+'px';\n"
      "</script></body></html>\n";
  return html;
}

int CpuProfiler::SampleNowForTest() {
  if (!StackWalkSupported()) return 0;
  return RecordSample(nullptr);
}

void CpuProfiler::Reset() {
  Stop();
  std::lock_guard<TrackedMutex> lock(mu_);
  for (EpochBuffer& buf : g_epochs) {
    const int64_t n =
        std::min<int64_t>(buf.head.load(std::memory_order_relaxed),
                          kEpochCapacity);
    for (int64_t i = 0; i < n; ++i) {
      buf.ready[i].store(0, std::memory_order_relaxed);
    }
    buf.head.store(0, std::memory_order_relaxed);
    buf.dropped.store(0, std::memory_order_relaxed);
  }
  g_aggregate.clear();
  g_samples = 0;
  g_dropped = 0;
  g_truncated.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace trmma
