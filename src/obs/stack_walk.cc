#include "obs/stack_walk.h"

#include <dlfcn.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cxxabi.h>

namespace trmma {
namespace obs {
namespace {

// Frame walking is disabled under ASan/TSan: their shadow-memory stack
// instrumentation (fake frames, redzones) does not tolerate raw
// frame-pointer walks. The ThreadRegistry rendezvous still works — captured
// stacks just come back empty (depth 0).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TRMMA_STACK_WALK_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TRMMA_STACK_WALK_SANITIZED 1
#endif
#endif

int CurrentTid() { return static_cast<int>(::syscall(SYS_gettid)); }

/// Guarded 2-word load of a stack frame ([saved fp, return address]).
/// A signal can interrupt frameless code (leaf functions, libc built
/// without frame pointers), leaving garbage in the frame-pointer register —
/// dereferencing it raw would turn a profile tick into a SIGSEGV. Reading
/// through process_vm_readv on our own pid makes the load fallible instead:
/// the kernel returns EFAULT (or a short count at a mapping boundary) where
/// a direct load would fault. One cheap syscall per frame, and a syscall is
/// async-signal-safe by construction.
bool SafeReadFrame(uintptr_t addr, uintptr_t out[2]) {
  iovec local;
  local.iov_base = out;
  local.iov_len = 2 * sizeof(uintptr_t);
  iovec remote;
  remote.iov_base = reinterpret_cast<void*>(addr);
  remote.iov_len = 2 * sizeof(uintptr_t);
  return process_vm_readv(getpid(), &local, 1, &remote, 1, 0) ==
         static_cast<ssize_t>(2 * sizeof(uintptr_t));
}

/// Per-thread capture slot, all BSS statics: the SIGUSR2 handler may fire
/// on any registered thread at any time and must never allocate. A capture
/// request stores `req_gen`, signals the thread, and waits for the handler
/// to publish the same generation through `done_gen` (release) after
/// filling `frames`/`depth`.
struct ThreadSlot {
  std::atomic<int> tid{0};
  char name[24];
  std::atomic<uint32_t> req_gen{0};
  std::atomic<uint32_t> done_gen{0};
  std::atomic<int> depth{0};
  void* frames[kStackMaxFrames];
};

ThreadSlot g_slots[ThreadRegistry::kMaxThreads];
std::atomic<uint32_t> g_capture_gen{0};
std::atomic<bool> g_handler_installed{false};
/// Serializes concurrent broadcasts (watchdog vs /debug/stacks vs crash
/// handler) so one rendezvous's done_gen stores can't satisfy another's
/// wait. Plain atomic flag: must stay usable from a signal handler.
std::atomic<bool> g_capture_busy{false};

thread_local int t_slot_index = -1;

void StackSignalHandler(int, siginfo_t*, void* ucv) {
  const int saved_errno = errno;
  const int tid = CurrentTid();
  for (ThreadSlot& slot : g_slots) {
    if (slot.tid.load(std::memory_order_relaxed) != tid) continue;
    const uint32_t gen = slot.req_gen.load(std::memory_order_acquire);
    if (gen != slot.done_gen.load(std::memory_order_relaxed)) {
      slot.depth.store(CaptureStack(ucv, slot.frames, kStackMaxFrames),
                       std::memory_order_relaxed);
      slot.done_gen.store(gen, std::memory_order_release);
    }
    break;
  }
  errno = saved_errno;
}

void InstallHandlerOnce() {
  if (g_handler_installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &StackSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGUSR2, &sa, nullptr);
}

void SleepMillis(int ms) {
  timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = static_cast<long>(ms) * 1000000L;
  nanosleep(&ts, nullptr);
}

/// Copies a slot's published capture into a ThreadStack.
void CopySlot(const ThreadSlot& slot, int depth, ThreadStack* out) {
  out->tid = slot.tid.load(std::memory_order_relaxed);
  std::memcpy(out->name, slot.name, sizeof(out->name));
  out->name[sizeof(out->name) - 1] = '\0';
  out->faulting = false;
  out->depth = depth;
  if (depth > 0) {
    std::memcpy(out->frames, slot.frames,
                static_cast<size_t>(depth) * sizeof(void*));
  }
}

}  // namespace

bool StackWalkSupported() {
#if defined(TRMMA_STACK_WALK_SANITIZED)
  return false;
#elif (defined(__x86_64__) || defined(__aarch64__)) && defined(__linux__)
  return true;
#else
  return false;
#endif
}

int CaptureStack(void* ucontext_or_null, void** out, int max_depth) {
#if !defined(TRMMA_STACK_WALK_SANITIZED) && \
    (defined(__x86_64__) || defined(__aarch64__)) && defined(__linux__)
  uintptr_t pc = 0;
  uintptr_t fp = 0;
  if (ucontext_or_null != nullptr) {
    const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_or_null);
#if defined(__x86_64__)
    pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
    fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#else
    pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
    fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#endif
  } else {
    // Synchronous capture: start from our own frame.
    fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  }
  int depth = 0;
  if (pc != 0 && depth < max_depth) {
    out[depth++] = reinterpret_cast<void*>(pc);
  }
  while (depth < max_depth) {
    if (fp == 0 || (fp & (sizeof(void*) - 1)) != 0) break;
    uintptr_t frame[2];  // [saved fp, return address]
    if (!SafeReadFrame(fp, frame)) break;  // unmapped: garbage fp register
    const uintptr_t next = frame[0];
    const uintptr_t ret = frame[1];
    if (ret < 4096) break;  // not a code address
    out[depth++] = reinterpret_cast<void*>(ret);
    if (next <= fp || next - fp > (1u << 20)) break;  // broken chain
    fp = next;
  }
  return depth;
#else
  (void)ucontext_or_null;
  (void)out;
  (void)max_depth;
  return 0;
#endif
}

int CaptureCallerStack(void** out, int max_depth) {
  return CaptureStack(nullptr, out, max_depth);
}

int CurrentThreadId() { return CurrentTid(); }

std::string SymbolizePc(void* pc) {
  std::string name;
  Dl_info info;
  // dladdr leaves `info` untouched on failure (a walked "return address"
  // can pass the frame heuristics yet point into no loaded object), so the
  // fields are only meaningful behind a successful lookup.
  std::memset(&info, 0, sizeof(info));
  // Sample PCs are return addresses (except the leaf): resolve pc-1 so a
  // call that ends a function does not symbolize as its successor.
  if (dladdr(reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(pc) - 1),
             &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = 0;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      if (status == 0 && demangled != nullptr) {
        name = demangled;
      } else {
        name = info.dli_sname;
      }
      std::free(demangled);
    } else if (info.dli_fname != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      name = base != nullptr ? base + 1 : info.dli_fname;
    }
  }
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<uintptr_t>(pc));
    name = buf;
  }
  // Folded-stack separators must not appear inside a frame name.
  for (char& c : name) {
    if (c == ';' || c == '\n') c = '_';
  }
  return name;
}

ThreadRegistry& ThreadRegistry::Global() {
  static ThreadRegistry* registry = new ThreadRegistry();
  return *registry;
}

int ThreadRegistry::RegisterCurrentThread(const char* name) {
  InstallHandlerOnce();
  const int tid = CurrentTid();
  if (t_slot_index >= 0 &&
      g_slots[t_slot_index].tid.load(std::memory_order_relaxed) == tid) {
    // Re-registration renames in place.
    std::strncpy(g_slots[t_slot_index].name, name != nullptr ? name : "",
                 sizeof(g_slots[t_slot_index].name) - 1);
    return t_slot_index;
  }
  for (int i = 0; i < kMaxThreads; ++i) {
    int expected = 0;
    if (g_slots[i].tid.compare_exchange_strong(expected, tid,
                                               std::memory_order_acq_rel)) {
      std::memset(g_slots[i].name, 0, sizeof(g_slots[i].name));
      std::strncpy(g_slots[i].name, name != nullptr ? name : "",
                   sizeof(g_slots[i].name) - 1);
      g_slots[i].done_gen.store(g_slots[i].req_gen.load(
                                    std::memory_order_relaxed),
                                std::memory_order_relaxed);
      t_slot_index = i;
      return i;
    }
  }
  return -1;  // registry full: this thread just won't appear in dumps
}

void ThreadRegistry::UnregisterCurrentThread() {
  const int tid = CurrentTid();
  if (t_slot_index >= 0 &&
      g_slots[t_slot_index].tid.load(std::memory_order_relaxed) == tid) {
    g_slots[t_slot_index].tid.store(0, std::memory_order_release);
    t_slot_index = -1;
  }
}

int ThreadRegistry::registered_count() const {
  int n = 0;
  for (const ThreadSlot& slot : g_slots) {
    if (slot.tid.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

int ThreadRegistry::CaptureAllStacks(ThreadStack* out, int max_out) {
  if (max_out <= 0) return 0;
  const int self = CurrentTid();
  int count = 0;

  // The caller's own stack first, walked synchronously (a thread cannot
  // service its own rendezvous signal while spinning in the wait loop).
  ThreadStack& mine = out[count++];
  mine = ThreadStack{};
  mine.tid = self;
  std::strncpy(mine.name, "caller", sizeof(mine.name) - 1);
  if (t_slot_index >= 0 &&
      g_slots[t_slot_index].tid.load(std::memory_order_relaxed) == self) {
    std::memcpy(mine.name, g_slots[t_slot_index].name, sizeof(mine.name));
    mine.name[sizeof(mine.name) - 1] = '\0';
  }
  mine.depth = CaptureCallerStack(mine.frames, kStackMaxFrames);

  // One broadcast at a time; a stuck peer rendezvous is abandoned after
  // ~200 ms so a crash handler can't hang behind a wedged watchdog dump.
  bool expected = false;
  int spins = 0;
  while (!g_capture_busy.compare_exchange_weak(expected, true,
                                               std::memory_order_acq_rel)) {
    expected = false;
    if (++spins > 200) return count;  // self stack only
    SleepMillis(1);
  }

  const uint32_t gen =
      g_capture_gen.fetch_add(1, std::memory_order_relaxed) + 1;
  const int pid = static_cast<int>(getpid());
  int pending[kMaxThreads];
  int npending = 0;
  for (int i = 0; i < kMaxThreads && count + npending < max_out; ++i) {
    const int tid = g_slots[i].tid.load(std::memory_order_acquire);
    if (tid == 0 || tid == self) continue;
    g_slots[i].req_gen.store(gen, std::memory_order_release);
    if (::syscall(SYS_tgkill, pid, tid, SIGUSR2) != 0) continue;  // gone
    pending[npending++] = i;
  }
  // Rendezvous wait: poll done_gen with a bounded budget. Late responders
  // are reported with depth 0 rather than blocking the dump.
  for (int waited = 0; waited < 100; ++waited) {
    bool all_done = true;
    for (int p = 0; p < npending; ++p) {
      if (g_slots[pending[p]].done_gen.load(std::memory_order_acquire) !=
          gen) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    SleepMillis(1);
  }
  for (int p = 0; p < npending && count < max_out; ++p) {
    ThreadSlot& slot = g_slots[pending[p]];
    const bool done =
        slot.done_gen.load(std::memory_order_acquire) == gen;
    CopySlot(slot, done ? slot.depth.load(std::memory_order_relaxed) : 0,
             &out[count]);
    ++count;
  }
  g_capture_busy.store(false, std::memory_order_release);
  return count;
}

bool ThreadRegistry::CaptureThreadStack(int tid, ThreadStack* out) {
  if (out == nullptr || tid == 0) return false;
  if (tid == CurrentTid()) {
    *out = ThreadStack{};
    out->tid = tid;
    out->depth = CaptureCallerStack(out->frames, kStackMaxFrames);
    return true;
  }
  ThreadSlot* slot = nullptr;
  for (ThreadSlot& s : g_slots) {
    if (s.tid.load(std::memory_order_acquire) == tid) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) return false;

  bool expected = false;
  int spins = 0;
  while (!g_capture_busy.compare_exchange_weak(expected, true,
                                               std::memory_order_acq_rel)) {
    expected = false;
    if (++spins > 200) return false;
    SleepMillis(1);
  }
  const uint32_t gen =
      g_capture_gen.fetch_add(1, std::memory_order_relaxed) + 1;
  slot->req_gen.store(gen, std::memory_order_release);
  bool ok = ::syscall(SYS_tgkill, getpid(), tid, SIGUSR2) == 0;
  if (ok) {
    ok = false;
    for (int waited = 0; waited < 100; ++waited) {
      if (slot->done_gen.load(std::memory_order_acquire) == gen) {
        ok = true;
        break;
      }
      SleepMillis(1);
    }
  }
  if (ok) {
    CopySlot(*slot, slot->depth.load(std::memory_order_relaxed), out);
  }
  g_capture_busy.store(false, std::memory_order_release);
  return ok;
}

std::string FormatThreadStacks(const ThreadStack* stacks, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    const ThreadStack& ts = stacks[i];
    out += "thread " + std::to_string(ts.tid);
    if (ts.name[0] != '\0') {
      out += " [";
      out += ts.name;
      out += ']';
    }
    if (ts.faulting) out += " (faulting)";
    out += '\n';
    if (ts.depth == 0) {
      out += "  <stack unavailable>\n";
      continue;
    }
    for (int f = 0; f < ts.depth; ++f) {
      char addr[32];
      std::snprintf(addr, sizeof(addr), "  #%-2d 0x%zx ", f,
                    reinterpret_cast<uintptr_t>(ts.frames[f]));
      out += addr;
      out += SymbolizePc(ts.frames[f]);
      out += '\n';
    }
  }
  return out;
}

}  // namespace obs
}  // namespace trmma
