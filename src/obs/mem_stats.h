#ifndef TRMMA_OBS_MEM_STATS_H_
#define TRMMA_OBS_MEM_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace trmma {
namespace obs {

class MetricRegistry;

/// Subsystems with tagged heap attribution. kMatrix is bridged from the
/// nn::Matrix allocation counters at snapshot time (no extra hot-path hook);
/// the others are fed by MemAdd/MemSub/MemSet at build or retention sites.
enum class MemTag {
  kGraph = 0,           ///< road network adjacency + geometry
  kRtree,               ///< spatial index nodes and entries
  kUbodt,               ///< upper-bounded origin-destination table
  kMatrix,              ///< nn dense matrices (bridged, see above)
  kFlightRecorder,      ///< retained request records
  kOther,               ///< anything explicitly tagged but unclassified
};
constexpr int kMemTagCount = static_cast<int>(MemTag::kOther) + 1;

/// Stable lowercase name used in labels / JSON ("graph", "rtree", ...).
const char* MemTagName(MemTag tag);

namespace internal_obs {
extern std::atomic<bool> g_mem_stats_enabled;

struct MemTagCell {
  std::atomic<std::int64_t> current{0};
  std::atomic<std::int64_t> peak{0};
  std::atomic<std::int64_t> events{0};
};
extern MemTagCell g_mem_cells[kMemTagCount];

void MemRecordSlow(MemTag tag, std::int64_t delta, bool set);
}  // namespace internal_obs

/// Fast gate, same shape as MetricsEnabled(): one relaxed load + branch when
/// disabled (the ≤2 ns contract measured by bench_micro_obs).
inline bool MemStatsEnabled() {
  return internal_obs::g_mem_stats_enabled.load(std::memory_order_relaxed);
}

/// Tagged allocation hooks. Add/Sub track incremental retention (flight
/// recorder); Set replaces the tag's current value outright — the natural
/// call for build-once structures reporting ApproxBytes() after Finalize.
inline void MemAdd(MemTag tag, std::int64_t bytes) {
  if (!MemStatsEnabled()) return;
  internal_obs::MemRecordSlow(tag, bytes, /*set=*/false);
}
inline void MemSub(MemTag tag, std::int64_t bytes) {
  if (!MemStatsEnabled()) return;
  internal_obs::MemRecordSlow(tag, -bytes, /*set=*/false);
}
inline void MemSet(MemTag tag, std::int64_t bytes) {
  if (!MemStatsEnabled()) return;
  internal_obs::MemRecordSlow(tag, bytes, /*set=*/true);
}

/// Per-tag snapshot (kMatrix already bridged).
struct MemTagStats {
  std::int64_t current_bytes = 0;
  std::int64_t peak_bytes = 0;
  std::int64_t events = 0;
};
MemTagStats GetMemTagStats(MemTag tag);

/// Process RSS from /proc/self/status (VmRSS / VmHWM); falls back to
/// getrusage ru_maxrss for the peak when /proc is unavailable. Fields are 0
/// when a source is missing.
struct RssSample {
  std::int64_t rss_bytes = 0;
  std::int64_t rss_peak_bytes = 0;
};
RssSample SampleRss();

/// One-line JSON for the BENCH report's `memory` section and /statusz:
/// {"rss_bytes":..,"rss_peak_bytes":..,"subsystems":[{"name":..,
///  "current_bytes":..,"peak_bytes":..},..]}.
std::string MemoryJson();

/// Publishes gauges mem.rss.bytes, mem.rss_peak.bytes and per-tag
/// mem.subsystem.bytes / mem.subsystem.peak.bytes{subsystem=..}.
/// Set-semantics; safe to call per scrape.
void PublishMemoryMetrics(MetricRegistry* registry);

/// Programmatic switch (benches enable by default) and env hook:
/// TRMMA_MEM_STATS=0 disables, anything else (or unset, for benches)
/// enables.
void EnableMemStats(bool enabled);
bool InitMemStatsFromEnv();

/// Zeroes all tag cells (tests).
void ResetMemStats();

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_MEM_STATS_H_
