#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "nn/profiler.h"
#include "obs/flight_recorder.h"
#include "obs/hw_counters.h"
#include "obs/json.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/slo.h"
#include "obs/train_log.h"

namespace trmma {
namespace obs {

RunReport& RunReport::Global() {
  static RunReport* report = new RunReport();
  return *report;
}

void RunReport::SetName(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  name_ = name;
}

std::string RunReport::name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return name_;
}

void RunReport::AddPhaseSeconds(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    phase_order_.push_back(name);
    it = phases_.emplace(name, Phase{}).first;
  }
  it->second.seconds += seconds;
  it->second.count += 1;
}

void RunReport::SetFingerprint(const std::string& key,
                               const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fingerprint_.find(key) == fingerprint_.end()) {
    fingerprint_order_.push_back(key);
  }
  fingerprint_[key] = {false, value};
}

void RunReport::SetFingerprintNumber(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fingerprint_.find(key) == fingerprint_.end()) {
    fingerprint_order_.push_back(key);
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  fingerprint_[key] = {true, buf};
}

void RunReport::SetSectionJson(const std::string& name,
                               const std::string& json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sections_.find(name) == sections_.end()) {
    section_order_.push_back(name);
  }
  sections_[name] = json;
}

std::string RunReport::ToJson() const {
  // Refresh the derived telemetry (memory/lock gauges, SLO breach counters)
  // before snapshotting, so the report's metrics section carries the final
  // state of this run — the same refresh the /metrics endpoint does per
  // scrape.
  PublishMemoryMetrics(&MetricRegistry::Global());
  PublishLockMetrics(&MetricRegistry::Global());
  std::string slo_json;
  if (SloWatchdog::Global().active()) {
    slo_json =
        SloResultsJson(SloWatchdog::Global().Evaluate(&MetricRegistry::Global()));
  }
  const std::string memory_json = MemStatsEnabled() ? MemoryJson() : "";
  // Subsystem snapshots are taken outside our lock (separate subsystems).
  const std::string metrics_json = MetricRegistry::Global().JsonDump();
  const std::string op_profile_json = nn::OpProfiler::Global().ToJson();
  // Always present — on perf-restricted hosts this carries
  // {"available": false, "reason": ...} so report consumers can tell
  // "counters were off" from "section was never emitted".
  const std::string hw_counters_json = HwCounters::Global().SectionJson();
  const std::string training_json = TrainLogger::Global().HasRows()
                                        ? TrainLogger::Global().SummaryJson()
                                        : std::string();
  // Flight-recorder stats appear only when the recorder was on, and a final
  // Flush first makes sure the stats describe what is actually on disk.
  std::string flight_json;
  if (FlightRecorder::Global().enabled()) {
    FlightRecorder::Global().Flush();
    flight_json = FlightRecorder::Global().StatsJson();
  }
  const std::string quality_json = QualityLog::Global().HasData()
                                       ? QualityLog::Global().SummaryJson()
                                       : std::string();

  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String(name_);
  w.Key("created_unix").Int(static_cast<long long>(std::time(nullptr)));
  w.Key("wall_seconds").Number(wall_.ElapsedSeconds());
  w.Key("fingerprint").BeginObject();
  for (const std::string& key : fingerprint_order_) {
    const auto& [is_number, text] = fingerprint_.at(key);
    w.Key(key);
    if (is_number) {
      double v = 0.0;
      std::sscanf(text.c_str(), "%lf", &v);
      w.Number(v);
    } else {
      w.String(text);
    }
  }
  w.EndObject();
  w.Key("phases").BeginArray();
  for (const std::string& key : phase_order_) {
    const Phase& phase = phases_.at(key);
    w.BeginObject();
    w.Key("name").String(key);
    w.Key("seconds").Number(phase.seconds);
    w.Key("count").Int(phase.count);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string out = w.TakeString();
  // Splice the registry snapshot in as the "metrics" member: drop our
  // closing '}' and append. The op-profile and training sections come from
  // their own subsystems the same way, and only when they have data, so
  // unprofiled runs keep the original schema.
  out.pop_back();
  out += ",\"metrics\":";
  out += metrics_json;
  if (op_profile_json != "[]") {
    out += ",\"op_profile\":";
    out += op_profile_json;
  }
  out += ",\"hw_counters\":";
  out += hw_counters_json;
  if (!training_json.empty()) {
    out += ",\"training\":";
    out += training_json;
  }
  if (!flight_json.empty()) {
    out += ",\"flight_recorder\":";
    out += flight_json;
  }
  if (!quality_json.empty()) {
    out += ",\"quality\":";
    out += quality_json;
  }
  if (!memory_json.empty()) {
    out += ",\"memory\":";
    out += memory_json;
  }
  if (!slo_json.empty()) {
    out += ",\"slo\":";
    out += slo_json;
  }
  for (const std::string& section : section_order_) {
    out += ",\"" + section + "\":";
    out += sections_.at(section);
  }
  out += '}';
  return out;
}

StatusOr<std::string> RunReport::WriteFile(const std::string& dir) const {
  std::string out_dir = dir;
  if (out_dir.empty()) {
    const char* env = std::getenv("TRMMA_OBS_DIR");
    out_dir = env != nullptr && *env != '\0' ? env : ".";
  }
  const std::string path = out_dir + "/BENCH_" + name() + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != json.size() || !flushed) {
    return Status::IOError("short write to " + path);
  }
  return path;
}

void RunReport::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  phase_order_.clear();
  phases_.clear();
  fingerprint_order_.clear();
  fingerprint_.clear();
  section_order_.clear();
  sections_.clear();
  wall_.Restart();
}

ScopedPhase::~ScopedPhase() {
  RunReport::Global().AddPhaseSeconds(name_, watch_.ElapsedSeconds());
}

}  // namespace obs
}  // namespace trmma
