#ifndef TRMMA_OBS_POSTMORTEM_H_
#define TRMMA_OBS_POSTMORTEM_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/stack_walk.h"

namespace trmma {
namespace obs {

/// Read-only view of one in-flight serve request, as captured by
/// InflightRegistry::Snapshot for postmortems and the stall watchdog.
struct InflightRequest {
  uint64_t trace_id = 0;
  const char* kind = nullptr;  ///< static-storage request-kind label
  double deadline_ms = 0.0;    ///< <= 0 means unbounded
  int64_t start_us = 0;        ///< NowMicros() at admission
  int tid = 0;                 ///< executing kernel tid (0 while queued)
  int state = 0;               ///< 1 = queued, 2 = executing
};

/// Fixed-capacity, lock-free registry of requests currently inside the
/// serving engine. Every field is an atomic in a preallocated slot array, so
/// Snapshot() is async-signal-safe: the crash handler can enumerate what the
/// process was serving at the instant of the fault, and the stall watchdog
/// can scan for requests stuck past their deadline.
///
/// Disabled (the default) the hooks are one relaxed load + branch — the
/// ≤2 ns contract measured by bench_micro_obs. Enabled automatically by
/// InstallCrashHandler and StallWatchdog::Start.
class InflightRegistry {
 public:
  static constexpr int kMaxSlots = 256;

  static InflightRegistry& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Claims a slot for a newly admitted request. Returns a token for
  /// MarkExecuting/Release, or -1 when disabled or all slots are busy
  /// (callers treat -1 as "not tracked" — never an error).
  int Register(uint64_t trace_id, const char* kind, double deadline_ms);
  /// Stamps the calling thread's kernel tid on the slot (worker pickup).
  void MarkExecuting(int token);
  void Release(int token);

  /// Copies every occupied slot into `out` (up to `max_out`); returns the
  /// count. Async-signal-safe: atomics only, no locks, no allocation.
  int Snapshot(InflightRequest* out, int max_out) const;

  /// {"inflight":[{"trace_id":"00..","kind":"match",...},...]} for
  /// /debug/postmortem and the crash report.
  std::string Json() const;

  void ResetForTest();

 private:
  InflightRegistry() = default;

  struct Slot {
    std::atomic<int> state{0};  ///< 0 free, 1 queued, 2 executing
    std::atomic<uint64_t> trace_id{0};
    std::atomic<const char*> kind{nullptr};
    std::atomic<double> deadline_ms{0.0};
    std::atomic<int64_t> start_us{0};
    std::atomic<int> tid{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> cursor_{0};  ///< rotating claim hint
  Slot slots_[kMaxSlots];
};

/// Inputs for one postmortem report. `signo` 0 means "live dump" (the
/// /debug/postmortem endpoint); `stacks` non-null supplies pre-captured
/// thread stacks (the crash handler walks the faulting thread from its
/// ucontext first), otherwise BuildPostmortemJson captures all registered
/// threads itself.
struct PostmortemContext {
  int signo = 0;
  /// `fault_addr` is only meaningful when `has_fault_addr` is set — a null
  /// pointer dereference faults at address 0, which must still be reported.
  bool has_fault_addr = false;
  const void* fault_addr = nullptr;
  const char* reason = nullptr;  ///< watchdog abort reason etc.
  const ThreadStack* stacks = nullptr;
  int stack_count = 0;
};

/// Assembles the schema "trmma.postmortem.v1" JSON document: signal info,
/// per-thread symbolized stacks, in-flight requests, the tail of the span
/// ring, memory and metrics snapshots, and lock-order findings. Uses
/// try-lock accessors throughout so a crash while a lock is held degrades
/// the matching section to null instead of deadlocking. Allocates — see
/// DESIGN.md §13 for why that relaxation is acceptable in the crash path.
std::string BuildPostmortemJson(const PostmortemContext& ctx);

/// Installs the fatal-signal handlers (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL,
/// on an alternate stack). On a fault the handler writes
/// `<dir>/postmortem.<pid>.json`, flushes the flight recorder, and re-raises
/// with default disposition so the exit status still reflects the signal.
/// Also enables the InflightRegistry. Idempotent; `dir` must exist.
Status InstallCrashHandler(const std::string& dir);
bool CrashHandlerInstalled();

/// Installs iff TRMMA_POSTMORTEM_DIR is set and non-empty; failures are
/// logged, not fatal (observability must not break the host).
void InstallCrashHandlerFromEnv();

/// Directory configured at install time ("" when not installed).
std::string PostmortemDir();
/// Path the next/last report is written to ("" when not installed).
std::string PostmortemPath();

/// Writes a live postmortem (signo 0) plus `reason`, then aborts. The
/// SIGABRT handler sees the in-progress marker and does not write a second
/// report. Used by the stall watchdog's abort-after-grace escalation.
[[noreturn]] void AbortWithPostmortem(const char* reason);

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_POSTMORTEM_H_
