#include "obs/train_log.h"

#include <cmath>
#include <cstdlib>

#include "obs/json.h"
#include "obs/metrics.h"

namespace trmma {
namespace obs {
namespace {

/// A finite gradient above this is counted as exploding: with the default
/// clip at 5.0 the trained models here stay well under 1e2, so 1e3 flags
/// genuine blow-ups without tripping on warm-up spikes.
constexpr double kExplodingGradNorm = 1e3;

}  // namespace

TrainLogger& TrainLogger::Global() {
  static TrainLogger* logger = new TrainLogger();
  return *logger;
}

TrainLogger::TrainLogger() {
  const char* env = std::getenv("TRMMA_TRAIN_LOG");
  if (env != nullptr && *env != '\0') SetFile(env);
}

bool TrainLogger::Enabled() const {
  if (MetricsEnabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

void TrainLogger::SetFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_ = path;
  if (!path.empty()) file_ = std::fopen(path.c_str(), "w");
}

std::string TrainLogger::FilePath() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

void TrainLogger::LogStep(const TrainStepRow& row) {
  const bool nonfinite = !std::isfinite(row.loss) ||
                         !std::isfinite(row.grad_norm);
  const bool exploding = !nonfinite && row.grad_norm > kExplodingGradNorm;
  if (nonfinite) {
    static Counter* const bad = MetricRegistry::Global().GetCounter(
        "train.anomaly.nonfinite_loss");
    bad->Increment();
  }
  if (exploding) {
    static Counter* const bad = MetricRegistry::Global().GetCounter(
        "train.anomaly.exploding_grad");
    bad->Increment();
  }
  if (MetricsEnabled()) {
    const Labels labels{{"model", row.model}};
    MetricRegistry& reg = MetricRegistry::Global();
    reg.GetGauge("train.step.loss", labels)->Set(row.loss);
    reg.GetGauge("train.step.grad_norm", labels)->Set(row.grad_norm);
    reg.GetGauge("train.step.update_ratio", labels)->Set(row.update_ratio);
    reg.GetGauge("train.step.examples_per_sec", labels)
        ->Set(row.examples_per_sec);
  }

  std::lock_guard<std::mutex> lock(mu_);
  ModelAgg& agg = aggregates_[row.model];
  agg.steps += 1;
  agg.last_loss = row.loss;
  if (std::isfinite(row.loss)) agg.loss_sum += row.loss;
  if (std::isfinite(row.grad_norm) && row.grad_norm > agg.max_grad_norm) {
    agg.max_grad_norm = row.grad_norm;
  }
  if (nonfinite || exploding) agg.anomalies += 1;

  if (file_ == nullptr) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("model").String(row.model);
  w.Key("step").Int(row.step);
  w.Key("epoch").Int(row.epoch);
  w.Key("loss").Number(row.loss);
  w.Key("grad_norm").Number(row.grad_norm);
  w.Key("param_norm").Number(row.param_norm);
  w.Key("update_ratio").Number(row.update_ratio);
  w.Key("examples").Int(row.examples);
  w.Key("examples_per_sec").Number(row.examples_per_sec);
  w.Key("peak_bytes").Int(row.peak_bytes);
  w.EndObject();
  const std::string line = w.TakeString();
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

std::string TrainLogger::SummaryJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginArray();
  for (const auto& [model, agg] : aggregates_) {
    w.BeginObject();
    w.Key("model").String(model);
    w.Key("steps").Int(agg.steps);
    w.Key("last_loss").Number(agg.last_loss);
    w.Key("mean_loss")
        .Number(agg.steps > 0 ? agg.loss_sum / static_cast<double>(agg.steps)
                              : 0.0);
    w.Key("max_grad_norm").Number(agg.max_grad_norm);
    w.Key("anomalies").Int(agg.anomalies);
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

bool TrainLogger::HasRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !aggregates_.empty();
}

void TrainLogger::ResetSummary() {
  std::lock_guard<std::mutex> lock(mu_);
  aggregates_.clear();
}

}  // namespace obs
}  // namespace trmma
