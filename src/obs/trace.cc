#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/trace_export.h"

namespace trmma {
namespace obs {
namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point ProcessStart() {
  static const SteadyClock::time_point start = SteadyClock::now();
  return start;
}

/// Per-thread stack of open spans (RAII guarantees strict nesting).
struct OpenSpan {
  const char* name;
  int64_t seq;
  int64_t parent_seq;
  int depth;
  double start_us;
  uint64_t trace_id;
  int64_t link_seq;
};

thread_local std::vector<OpenSpan> t_open_spans;

thread_local TraceContext t_trace_ctx;

}  // namespace

TraceContext CurrentTraceContext() { return t_trace_ctx; }

uint64_t NewTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

ScopedTraceContext::ScopedTraceContext(uint64_t trace_id, int64_t link_seq)
    : saved_(t_trace_ctx) {
  t_trace_ctx.trace_id = trace_id;
  t_trace_ctx.link_seq = link_seq;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_ctx = saved_; }

double NowMicros() {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() -
                                                   ProcessStart())
      .count();
}

int ThreadTraceId() {
  static std::atomic<int> next_tid{0};
  thread_local const int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = [] {
    // Any binary that traces gets a $TRMMA_TRACE_FILE export on exit.
    InstallChromeTraceAtExit();
    return new TraceRing();
  }();
  return *ring;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)), ring_(capacity_) {}

int64_t TraceRing::BeginSpan(const char* name, double start_us) {
  const int64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  // A nested span stays inside its parent's trace; a thread-root span joins
  // the installed request context (if any) and carries the cross-lane link
  // so the exporter can draw the flow arrow from the request root.
  uint64_t trace_id = 0;
  int64_t link_seq = -1;
  int64_t parent = -1;
  if (!t_open_spans.empty()) {
    parent = t_open_spans.back().seq;
    trace_id = t_open_spans.back().trace_id;
  } else {
    trace_id = t_trace_ctx.trace_id;
    link_seq = t_trace_ctx.link_seq;
  }
  t_open_spans.push_back(OpenSpan{name, seq, parent,
                                  static_cast<int>(t_open_spans.size()),
                                  start_us, trace_id, link_seq});
  return seq;
}

void TraceRing::EndSpan(double end_us) {
  if (t_open_spans.empty()) return;  // mode flipped mid-span; drop
  const OpenSpan open = t_open_spans.back();
  t_open_spans.pop_back();
  SpanRecord rec;
  rec.name = open.name;
  rec.seq = open.seq;
  rec.parent_seq = open.parent_seq;
  rec.depth = open.depth;
  rec.tid = ThreadTraceId();
  rec.start_us = open.start_us;
  rec.duration_us = end_us - open.start_us;
  rec.trace_id = open.trace_id;
  rec.link_seq = open.link_seq;
  Record(rec);
}

void TraceRing::Record(const SpanRecord& rec) {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  ring_[next_] = rec;
  next_ = (next_ + 1) % capacity_;
  stored_ = std::min(stored_ + 1, capacity_);
}

std::vector<SpanRecord> TraceRing::SnapshotLocked() const {
  std::vector<SpanRecord> out;
  out.reserve(stored_);
  const size_t begin = (next_ + capacity_ - stored_) % capacity_;
  for (size_t i = 0; i < stored_; ++i) {
    out.push_back(ring_[(begin + i) % capacity_]);
  }
  return out;
}

std::vector<SpanRecord> TraceRing::Snapshot() const {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  return SnapshotLocked();
}

bool TraceRing::TrySnapshot(std::vector<SpanRecord>* out) const {
  std::unique_lock<obs::TrackedMutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  *out = SnapshotLocked();
  return true;
}

std::string TraceRing::DumpString() const {
  std::vector<SpanRecord> records = Snapshot();
  // Spans complete child-first; start order (seq) reads as a call tree.
  std::stable_sort(records.begin(), records.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.seq < b.seq;
                   });
  std::string out;
  char buf[192];
  for (const SpanRecord& rec : records) {
    std::snprintf(buf, sizeof(buf), "%*s%s seq=%lld start=%.1fus dur=%.1fus\n",
                  rec.depth * 2, "", rec.name != nullptr ? rec.name : "?",
                  static_cast<long long>(rec.seq), rec.start_us,
                  rec.duration_us);
    out += buf;
  }
  return out;
}

void TraceRing::Clear() {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  next_ = 0;
  stored_ = 0;
}

void TraceRing::SetCapacity(size_t capacity) {
  std::lock_guard<obs::TrackedMutex> lock(mu_);
  capacity_ = std::max<size_t>(capacity, 1);
  ring_.assign(capacity_, SpanRecord{});
  next_ = 0;
  stored_ = 0;
}

Histogram* SpanSite::histogram() {
  Histogram* h = hist_.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = MetricRegistry::Global().GetHistogram(std::string(name_) + ".us");
    hist_.store(h, std::memory_order_release);
  }
  return h;
}

}  // namespace obs
}  // namespace trmma
