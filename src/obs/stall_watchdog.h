#ifndef TRMMA_OBS_STALL_WATCHDOG_H_
#define TRMMA_OBS_STALL_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/status.h"

namespace trmma {
namespace obs {

/// Background thread that scans the InflightRegistry for serve requests
/// stuck in execution past a multiple of their deadline (DESIGN.md §13).
/// Each newly stuck request is reported once: the executing worker's stack
/// is captured via the ThreadRegistry rendezvous and logged at Error level,
/// and the serve.stuck_requests counter is incremented. With
/// `abort_after_ms` set, a request that stays stuck past that additional
/// grace escalates to AbortWithPostmortem, so a wedged worker leaves a
/// debuggable report instead of a silent hang.
///
/// False-positive safety: only *executing* requests with a bounded deadline
/// are considered — queued requests are the engine's timeout path, and
/// unbounded-deadline requests can legitimately run for minutes.
class StallWatchdog {
 public:
  struct Config {
    double poll_ms = 100.0;       ///< registry scan interval
    double stall_factor = 2.0;    ///< stuck when age > factor × deadline
    double abort_after_ms = 0.0;  ///< > 0: abort-with-postmortem grace
  };

  static StallWatchdog& Global();

  /// Launches the scan thread (idempotent) and enables the
  /// InflightRegistry so there is something to scan.
  Status Start(const Config& config);

  /// Starts iff TRMMA_WATCHDOG_MS is a positive integer (the poll interval).
  /// TRMMA_WATCHDOG_FACTOR and TRMMA_WATCHDOG_ABORT_MS tune the config.
  void StartFromEnv();

  /// Stops and joins the scan thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Total stuck requests ever reported (mirrors serve.stuck_requests).
  std::int64_t stuck_detected() const {
    return stuck_detected_.load(std::memory_order_relaxed);
  }

  /// Runs one scan on the calling thread (test hook; also used by the scan
  /// loop). Returns the number of *newly* stuck requests this scan.
  int ScanOnce();

  /// Clears the reported/first-stuck bookkeeping (test hook).
  void ResetForTest();

 private:
  StallWatchdog() = default;

  void Loop();

  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> stuck_detected_{0};
  Config config_;

  std::mutex mu_;  ///< guards stop_/thread_ handoff and the dedup maps
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
  /// Dedup + escalation state, pruned to the live in-flight set each scan.
  std::set<std::uint64_t> reported_;
  std::map<std::uint64_t, double> first_stuck_us_;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_STALL_WATCHDOG_H_
