#include "obs/stall_watchdog.h"

#include <chrono>
#include <cstdlib>
#include <iterator>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/stack_walk.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {

namespace {

double EnvDoubleOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    TRMMA_LOG(Warning) << name << "=\"" << value
                       << "\" is not a number; using " << fallback;
    return fallback;
  }
  return parsed;
}

}  // namespace

StallWatchdog& StallWatchdog::Global() {
  static StallWatchdog* watchdog = new StallWatchdog();
  return *watchdog;
}

Status StallWatchdog::Start(const Config& config) {
  if (config.poll_ms <= 0) {
    return Status::InvalidArgument("watchdog poll_ms must be > 0");
  }
  if (config.stall_factor <= 0) {
    return Status::InvalidArgument("watchdog stall_factor must be > 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_relaxed)) return Status::OK();
  config_ = config;
  stop_ = false;
  InflightRegistry::Global().SetEnabled(true);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread(&StallWatchdog::Loop, this);
  return Status::OK();
}

void StallWatchdog::StartFromEnv() {
  const double poll_ms = EnvDoubleOr("TRMMA_WATCHDOG_MS", 0.0);
  if (poll_ms <= 0) return;
  Config config;
  config.poll_ms = poll_ms;
  config.stall_factor = EnvDoubleOr("TRMMA_WATCHDOG_FACTOR", 2.0);
  config.abort_after_ms = EnvDoubleOr("TRMMA_WATCHDOG_ABORT_MS", 0.0);
  const Status status = Start(config);
  if (!status.ok()) {
    TRMMA_LOG(Warning) << "TRMMA_WATCHDOG_MS: watchdog not started: "
                       << status.ToString();
  }
}

void StallWatchdog::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stop_ = true;
    cv_.notify_all();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
  running_.store(false, std::memory_order_relaxed);
}

void StallWatchdog::Loop() {
  ScopedThreadRegistration registration("watchdog");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           config_.poll_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    ScanOnce();
    lock.lock();
  }
}

int StallWatchdog::ScanOnce() {
  InflightRequest reqs[InflightRegistry::kMaxSlots];
  const int count = InflightRegistry::Global().Snapshot(
      reqs, InflightRegistry::kMaxSlots);
  const double now_us = NowMicros();
  int newly_stuck = 0;
  std::set<std::uint64_t> live;

  for (int i = 0; i < count; ++i) {
    const InflightRequest& req = reqs[i];
    live.insert(req.trace_id);
    // Only executing requests with a bounded deadline can be "stuck":
    // queued ones are the engine's timeout path, unbounded ones may
    // legitimately run long (false-positive safety).
    if (req.state != 2 || req.deadline_ms <= 0) continue;
    const double age_us = now_us - static_cast<double>(req.start_us);
    const double limit_us = config_.stall_factor * req.deadline_ms * 1000.0;
    if (age_us <= limit_us) continue;

    bool first_report = false;
    double first_stuck_us = now_us;
    {
      std::lock_guard<std::mutex> lock(mu_);
      first_report = reported_.insert(req.trace_id).second;
      if (first_report) first_stuck_us_[req.trace_id] = now_us;
      const auto it = first_stuck_us_.find(req.trace_id);
      if (it != first_stuck_us_.end()) first_stuck_us = it->second;
    }

    if (first_report) {
      ++newly_stuck;
      stuck_detected_.fetch_add(1, std::memory_order_relaxed);
      MetricRegistry::Global().GetCounter("serve.stuck_requests")->Increment();
      ThreadStack stack;
      std::string rendered = "  <stack unavailable>\n";
      if (ThreadRegistry::Global().CaptureThreadStack(req.tid, &stack)) {
        rendered = FormatThreadStacks(&stack, 1);
      }
      TRMMA_LOG(Error) << "stall watchdog: request " << TraceIdHex(req.trace_id)
                       << " (" << (req.kind != nullptr ? req.kind : "?")
                       << ") executing for " << age_us / 1000.0
                       << " ms against a " << req.deadline_ms
                       << " ms deadline (limit " << limit_us / 1000.0
                       << " ms) on tid " << req.tid << "\n" << rendered;
    }

    if (config_.abort_after_ms > 0 &&
        now_us - first_stuck_us > config_.abort_after_ms * 1000.0) {
      AbortWithPostmortem("stall watchdog: request stuck past abort grace");
    }
  }

  // Requests that finished (or were never stuck) free their dedup entries.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = reported_.begin(); it != reported_.end();) {
      it = live.count(*it) != 0 ? std::next(it) : reported_.erase(it);
    }
    for (auto it = first_stuck_us_.begin(); it != first_stuck_us_.end();) {
      it = live.count(it->first) != 0 ? std::next(it)
                                      : first_stuck_us_.erase(it);
    }
  }
  return newly_stuck;
}

void StallWatchdog::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  reported_.clear();
  first_stuck_us_.clear();
  stuck_detected_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace trmma
