#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"

namespace trmma {
namespace obs {
namespace internal_obs {
namespace {

int ModeFromEnv() {
  const char* env = std::getenv("TRMMA_TRACE");
  if (env == nullptr || *env == '\0') {
    // Asking for a trace file is asking for tracing.
    const char* file = std::getenv("TRMMA_TRACE_FILE");
    if (file != nullptr && *file != '\0') {
      return static_cast<int>(TraceMode::kTrace);
    }
    return static_cast<int>(TraceMode::kOff);
  }
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
    return static_cast<int>(TraceMode::kOff);
  }
  if (std::strcmp(env, "metrics") == 0) {
    return static_cast<int>(TraceMode::kMetrics);
  }
  // "1", "on", "full", or anything else truthy: full tracing.
  return static_cast<int>(TraceMode::kTrace);
}

}  // namespace

std::atomic<int> g_trace_mode{ModeFromEnv()};

namespace {
/// The lock gate folds the trace mode together with the lock-order opt-in
/// (tracked_mutex.cc); recompute it once this TU's env init has run. Both
/// TUs' initializers refresh, so cross-TU init order doesn't matter.
const bool g_lock_gate_refreshed = [] {
  RefreshLockGate();
  return true;
}();
}  // namespace

}  // namespace internal_obs

void SetTraceMode(TraceMode mode) {
  internal_obs::g_trace_mode.store(static_cast<int>(mode),
                                   std::memory_order_relaxed);
  internal_obs::RefreshLockGate();
}

namespace {

int ExemplarsFromEnv() {
  const char* env = std::getenv("TRMMA_EXEMPLARS");
  if (env != nullptr &&
      (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
    return 0;
  }
  return 1;  // default on: capture is wait-free and a few ns
}

std::atomic<int> g_exemplars_enabled{ExemplarsFromEnv()};

}  // namespace

bool ExemplarsEnabled() {
  return g_exemplars_enabled.load(std::memory_order_relaxed) != 0;
}

void SetExemplarsEnabled(bool enabled) {
  g_exemplars_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace {

/// Relaxed add for atomic<double> via CAS (fetch_add on double is C++20 but
/// not guaranteed lock-free everywhere; the CAS loop is portable and the
/// contention profile here is low).
void AtomicAdd(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

constexpr double kEmptyMin = 1e300;
constexpr double kEmptyMax = -1e300;

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBounds() : std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(kEmptyMax, std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  if (!std::isfinite(v)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

void Histogram::CaptureExemplar(double v, uint64_t trace_id) {
  if (!std::isfinite(v) || !ExemplarsEnabled()) return;
  // Rotate through the slots so the ring always holds the most *recent*
  // exemplar-carrying observations; the worst of them is picked at read
  // time. On writer/writer contention for one slot the loser drops its
  // exemplar — never spins — because this runs inside Observe on hot paths.
  const uint64_t idx =
      exemplar_cursor_.fetch_add(1, std::memory_order_relaxed) %
      kExemplarSlots;
  ExemplarSlot& slot = exemplars_[idx];
  uint64_t ver = slot.ver.load(std::memory_order_relaxed);
  if (ver & 1) return;  // another writer owns the slot
  if (!slot.ver.compare_exchange_strong(ver, ver + 1,
                                        std::memory_order_acq_rel)) {
    return;
  }
  slot.value.store(v, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.ver.store(ver + 2, std::memory_order_release);
}

bool Histogram::WorstExemplar(HistogramExemplar* out) const {
  HistogramExemplar best;
  bool found = false;
  for (const ExemplarSlot& slot : exemplars_) {
    const uint64_t v1 = slot.ver.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1)) continue;  // never written / mid-write
    const double value = slot.value.load(std::memory_order_relaxed);
    const uint64_t trace_id = slot.trace_id.load(std::memory_order_relaxed);
    if (slot.ver.load(std::memory_order_acquire) != v1) continue;  // torn
    if (trace_id == 0) continue;
    if (!found || value > best.value) {
      best.value = value;
      best.trace_id = trace_id;
      found = true;
    }
  }
  if (found && out != nullptr) *out = best;
  return found;
}

double Histogram::Min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return m == kEmptyMin ? 0.0 : m;
}

double Histogram::Max() const {
  const double m = max_.load(std::memory_order_relaxed);
  return m == kEmptyMax ? 0.0 : m;
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Quantile(double q) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Snapshot min/max once. A Reset() racing this read can leave the
  // sentinels in place while bucket counts are nonzero; treating that as
  // empty beats interpolating against 1e300.
  const double min_snap = min_.load(std::memory_order_relaxed);
  const double max_snap = max_.load(std::memory_order_relaxed);
  if (min_snap > max_snap) return 0.0;
  // NaN slips through std::clamp (both comparisons are false) and would
  // make every `next >= target` test fail, silently returning max.
  if (std::isnan(q)) return Min();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t next = cum + counts[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket i. Bucket range: (lower, upper], with the
      // observed min/max tightening the outermost buckets.
      double lower = i == 0 ? min_snap : bounds_[i - 1];
      double upper = i < bounds_.size() ? bounds_[i] : max_snap;
      lower = std::max(lower, min_snap);
      upper = std::min(upper, max_snap);
      if (upper < lower) upper = lower;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return max_snap;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  // Clear min/max to the empty sentinels first: Quantile treats the
  // inverted pair as "empty" and bails, so a reader racing this reset gets
  // 0 instead of an interpolation against stale extremes.
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(kEmptyMax, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  // Drop retained exemplars: ver back to "never written" keeps readers from
  // resurrecting pre-reset trace ids. A capture racing this reset may land
  // after the clear, which is indistinguishable from landing after Reset.
  for (ExemplarSlot& slot : exemplars_) {
    slot.trace_id.store(0, std::memory_order_relaxed);
    slot.value.store(0.0, std::memory_order_relaxed);
    slot.ver.store(0, std::memory_order_release);
  }
}

bool Histogram::Merge(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  // Snapshot the source buckets first and derive the merged count from that
  // snapshot: if `other` is being observed concurrently, count_ stays
  // consistent with what actually landed in our buckets (and self-merge
  // doubles cleanly instead of reading its own half-updated state).
  const std::vector<int64_t> counts = other.BucketCounts();
  int64_t n = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0) {
      buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
      n += counts[i];
    }
  }
  count_.fetch_add(n, std::memory_order_relaxed);
  dropped_.fetch_add(other.dropped_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  const double sum = other.sum_.load(std::memory_order_relaxed);
  if (std::isfinite(sum)) AtomicAdd(sum_, sum);
  // Raw loads keep the empty sentinels visible: an empty source has
  // min > max and must not widen our extremes.
  const double mn = other.min_.load(std::memory_order_relaxed);
  const double mx = other.max_.load(std::memory_order_relaxed);
  if (mn <= mx) {
    AtomicMin(min_, mn);
    AtomicMax(max_, mx);
  }
  return true;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  std::vector<double> out;
  out.reserve(count);
  double b = start;
  for (int i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double> bounds = ExponentialBounds(1.0, 2.0, 27);
  return bounds;
}

namespace {

void InstallMetricsFileAtExit() {
  const char* path = std::getenv("TRMMA_METRICS_FILE");
  if (path == nullptr || *path == '\0') return;
  std::atexit([] {
    const char* p = std::getenv("TRMMA_METRICS_FILE");
    if (p == nullptr || *p == '\0') return;
    const std::string text = MetricRegistry::Global().WriteText();
    std::FILE* f = std::fopen(p, "w");
    if (f == nullptr) return;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  });
}

}  // namespace

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = [] {
    InstallMetricsFileAtExit();
    return new MetricRegistry();
  }();
  return *registry;
}

std::string MetricRegistry::MakeKey(const std::string& name,
                                    const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first + "=" + sorted[i].second;
  }
  key += '}';
  return key;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const Labels& labels) {
  const std::string key = MakeKey(name, labels);
  std::lock_guard<TrackedMutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it = counters_
             .emplace(key, std::make_pair(Entry{name, std::move(sorted)},
                                          std::make_unique<Counter>()))
             .first;
  }
  return it->second.second.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name, const Labels& labels) {
  const std::string key = MakeKey(name, labels);
  std::lock_guard<TrackedMutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it = gauges_
             .emplace(key, std::make_pair(Entry{name, std::move(sorted)},
                                          std::make_unique<Gauge>()))
             .first;
  }
  return it->second.second.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const Labels& labels,
                                        std::vector<double> bounds) {
  const std::string key = MakeKey(name, labels);
  std::lock_guard<TrackedMutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it = histograms_
             .emplace(key,
                      std::make_pair(
                          Entry{name, std::move(sorted)},
                          std::make_unique<Histogram>(std::move(bounds))))
             .first;
  }
  return it->second.second.get();
}

void MetricRegistry::Reset() {
  std::lock_guard<TrackedMutex> lock(mu_);
  for (auto& [key, entry] : counters_) entry.second->Reset();
  for (auto& [key, entry] : gauges_) entry.second->Reset();
  for (auto& [key, entry] : histograms_) entry.second->Reset();
}

std::string MetricRegistry::TextDump() const {
  std::lock_guard<TrackedMutex> lock(mu_);
  std::string out;
  char buf[160];
  for (const auto& [key, entry] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter %s %lld\n", key.c_str(),
                  static_cast<long long>(entry.second->Value()));
    out += buf;
  }
  for (const auto& [key, entry] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge %s %g\n", key.c_str(),
                  entry.second->Value());
    out += buf;
  }
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = *entry.second;
    std::snprintf(buf, sizeof(buf),
                  "histogram %s count=%lld mean=%g p50=%g p95=%g p99=%g "
                  "max=%g\n",
                  key.c_str(), static_cast<long long>(h.Count()), h.Mean(),
                  h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99),
                  h.Max());
    out += buf;
  }
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; this repo's
/// dotted names ("mm.candidates.total") map dots and other bytes to '_'.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// Label-value escaping per the exposition format: backslash, double quote
/// and newline must be escaped (in that order of precedence).
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += PromName(k) + "=\"" + EscapeLabelValue(v) + '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// HELP text is free-form but must escape backslash and newline.
std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Emits `# HELP` + `# TYPE` when `prom_name` starts a new family. The maps
/// are keyed `name{labels...}`, so all label sets of one family are
/// contiguous and one previous-name string suffices.
void FamilyHeader(const std::string& prom_name, const std::string& raw_name,
                  const char* type, std::string* prev, std::string* out) {
  if (prom_name == *prev) return;
  *prev = prom_name;
  *out += "# HELP " + prom_name + " TRMMA metric " + EscapeHelp(raw_name) +
          "\n# TYPE " + prom_name + ' ' + type + '\n';
}

}  // namespace

std::string MetricRegistry::WriteText() const {
  std::lock_guard<TrackedMutex> lock(mu_);
  std::string out;
  char buf[192];
  std::string prev;
  for (const auto& [key, entry] : counters_) {
    const std::string name = PromName(entry.first.name);
    FamilyHeader(name, entry.first.name, "counter", &prev, &out);
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(entry.second->Value()));
    out += name + PromLabels(entry.first.labels) + buf;
  }
  prev.clear();
  for (const auto& [key, entry] : gauges_) {
    const std::string name = PromName(entry.first.name);
    FamilyHeader(name, entry.first.name, "gauge", &prev, &out);
    std::snprintf(buf, sizeof(buf), " %.17g\n", entry.second->Value());
    out += name + PromLabels(entry.first.labels) + buf;
  }
  prev.clear();
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = *entry.second;
    const std::string name = PromName(entry.first.name);
    FamilyHeader(name, entry.first.name, "summary", &prev, &out);
    static constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
    // OpenMetrics exemplar on the p99 line: ` # {trace_id="..."} value`
    // links the tail quantile to the worst recent request's trace.
    HistogramExemplar exemplar;
    const bool has_exemplar =
        ExemplarsEnabled() && h.WorstExemplar(&exemplar);
    for (double q : kQuantiles) {
      char qlabel[48];
      std::snprintf(qlabel, sizeof(qlabel), "quantile=\"%g\"", q);
      std::snprintf(buf, sizeof(buf), " %.17g", h.Quantile(q));
      out += name + PromLabels(entry.first.labels, qlabel) + buf;
      if (has_exemplar && q == 0.99) {
        char ex[96];
        std::snprintf(ex, sizeof(ex), " # {trace_id=\"%016llx\"} %.17g",
                      static_cast<unsigned long long>(exemplar.trace_id),
                      exemplar.value);
        out += ex;
      }
      out += '\n';
    }
    std::snprintf(buf, sizeof(buf), " %.17g\n", h.Sum());
    out += name + "_sum" + PromLabels(entry.first.labels) + buf;
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(h.Count()));
    out += name + "_count" + PromLabels(entry.first.labels) + buf;
  }
  return out;
}

bool MetricRegistry::SumCountersByName(const std::string& name,
                                       int64_t* out) const {
  std::lock_guard<TrackedMutex> lock(mu_);
  int64_t sum = 0;
  bool found = false;
  for (const auto& [key, entry] : counters_) {
    if (entry.first.name != name) continue;
    sum += entry.second->Value();
    found = true;
  }
  if (found) *out = sum;
  return found;
}

bool MetricRegistry::MaxGaugeByName(const std::string& name,
                                    double* out) const {
  std::lock_guard<TrackedMutex> lock(mu_);
  double best = 0.0;
  bool found = false;
  for (const auto& [key, entry] : gauges_) {
    if (entry.first.name != name) continue;
    const double v = entry.second->Value();
    if (!found || v > best) best = v;
    found = true;
  }
  if (found) *out = best;
  return found;
}

bool MetricRegistry::WorstExemplarByName(const std::string& name,
                                         HistogramExemplar* out) const {
  std::lock_guard<TrackedMutex> lock(mu_);
  HistogramExemplar best;
  bool found = false;
  for (const auto& [key, entry] : histograms_) {
    if (entry.first.name != name) continue;
    HistogramExemplar e;
    if (!entry.second->WorstExemplar(&e)) continue;
    if (!found || e.value > best.value) {
      best = e;
      found = true;
    }
  }
  if (found && out != nullptr) *out = best;
  return found;
}

bool MetricRegistry::HistogramStatsByName(const std::string& name,
                                          HistogramStats* out) const {
  std::lock_guard<TrackedMutex> lock(mu_);
  std::unique_ptr<Histogram> merged;
  for (const auto& [key, entry] : histograms_) {
    if (entry.first.name != name) continue;
    if (merged == nullptr) {
      merged = std::make_unique<Histogram>(entry.second->bounds());
    }
    merged->Merge(*entry.second);  // bounds mismatch -> label set skipped
  }
  if (merged == nullptr) return false;
  out->count = merged->Count();
  out->dropped = merged->DroppedCount();
  out->sum = merged->Sum();
  out->min = merged->Min();
  out->max = merged->Max();
  out->mean = merged->Mean();
  out->p50 = merged->Quantile(0.5);
  out->p95 = merged->Quantile(0.95);
  out->p99 = merged->Quantile(0.99);
  return true;
}

namespace {

void WriteLabels(JsonWriter& w, const Labels& labels) {
  w.Key("labels").BeginObject();
  for (const auto& [k, v] : labels) w.Key(k).String(v);
  w.EndObject();
}

}  // namespace

std::string MetricRegistry::JsonDump() const {
  std::lock_guard<TrackedMutex> lock(mu_);
  return JsonDumpLocked();
}

bool MetricRegistry::TryJsonDump(std::string* out) const {
  std::unique_lock<TrackedMutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  *out = JsonDumpLocked();
  return true;
}

std::string MetricRegistry::JsonDumpLocked() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginArray();
  for (const auto& [key, entry] : counters_) {
    w.BeginObject().Key("name").String(entry.first.name);
    WriteLabels(w, entry.first.labels);
    w.Key("value").Int(entry.second->Value()).EndObject();
  }
  w.EndArray();
  w.Key("gauges").BeginArray();
  for (const auto& [key, entry] : gauges_) {
    w.BeginObject().Key("name").String(entry.first.name);
    WriteLabels(w, entry.first.labels);
    w.Key("value").Number(entry.second->Value()).EndObject();
  }
  w.EndArray();
  w.Key("histograms").BeginArray();
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = *entry.second;
    w.BeginObject().Key("name").String(entry.first.name);
    WriteLabels(w, entry.first.labels);
    w.Key("count").Int(h.Count());
    w.Key("sum").Number(h.Sum());
    w.Key("min").Number(h.Min());
    w.Key("max").Number(h.Max());
    w.Key("mean").Number(h.Mean());
    w.Key("p50").Number(h.Quantile(0.5));
    w.Key("p95").Number(h.Quantile(0.95));
    w.Key("p99").Number(h.Quantile(0.99));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace obs
}  // namespace trmma
