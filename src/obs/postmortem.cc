#include "obs/postmortem.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {

namespace {

const char* SignalName(int signo) {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case 0: return "NONE";  // live dump (/debug/postmortem)
    default: return "UNKNOWN";
  }
}

const char* InflightStateName(int state) {
  switch (state) {
    case 1: return "queued";
    case 2: return "executing";
    default: return "unknown";
  }
}

/// All crash-path state is static so the handler touches no heap before the
/// (documented, best-effort) JSON assembly. SIGSTKSZ stopped being a
/// compile-time constant in glibc 2.34, hence the fixed 64 KiB.
char g_dir[256] = {0};
char g_path[320] = {0};
char g_altstack[64 * 1024];
std::atomic<bool> g_installed{false};
/// 0 = no crash; 1 = a handler (or AbortWithPostmortem) owns the report.
std::atomic<int> g_crash_in_progress{0};
/// tid of the thread writing the report. Its own second fault (or its
/// deliberate re-raise / abort()) must fall straight through to the default
/// disposition; every other faulting thread parks while the report lands.
std::atomic<int> g_crash_owner_tid{0};
ThreadStack g_crash_stacks[ThreadRegistry::kMaxThreads];

void SleepMillisSignalSafe(int ms) {
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  nanosleep(&ts, nullptr);
}

void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;
    data += n;
    len -= static_cast<size_t>(n);
  }
}

/// Builds the report, writes it to g_path, flushes the flight recorder, and
/// leaves a breadcrumb on stderr. Shared by the signal handler and
/// AbortWithPostmortem.
void WriteReport(const PostmortemContext& ctx) {
  const std::string json = BuildPostmortemJson(ctx);
  const int fd = ::open(g_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd >= 0) {
    WriteAll(fd, json.data(), json.size());
    WriteAll(fd, "\n", 1);
    ::fsync(fd);
    ::close(fd);
  }
  std::int64_t written = 0;
  FlightRecorder::Global().TryFlush(&written);
  char msg[400];
  const int n = std::snprintf(msg, sizeof(msg),
                              "trmma: %s — postmortem written to %s\n",
                              SignalName(ctx.signo), g_path);
  if (n > 0) WriteAll(2, msg, static_cast<size_t>(n));
}

void CrashSignalHandler(int signo, siginfo_t* info, void* ucv) {
  const int self = CurrentThreadId();
  int expected = 0;
  if (!g_crash_in_progress.compare_exchange_strong(expected, 1)) {
    if (g_crash_owner_tid.load(std::memory_order_acquire) == self) {
      // A fault inside our own report path (or AbortWithPostmortem's
      // abort() after it wrote the report): nothing left to try.
      signal(signo, SIG_DFL);
      raise(signo);
      return;
    }
    // Another thread faulted while the report is being written — several
    // workers tripping over the same corruption at once is the common case.
    // Park so the winner's fsync'd report survives; it terminates the
    // process when done. The bound keeps a wedged winner from hanging us.
    for (int i = 0; i < 10000; ++i) SleepMillisSignalSafe(1);
    signal(signo, SIG_DFL);
    raise(signo);
    return;
  }
  g_crash_owner_tid.store(self, std::memory_order_release);
  // All registered threads first; entry 0 is always the calling thread, so
  // overwrite it with the ucontext walk — the report should show the
  // faulting frame, not this handler.
  int count = ThreadRegistry::Global().CaptureAllStacks(
      g_crash_stacks, ThreadRegistry::kMaxThreads);
  if (count > 0) {
    g_crash_stacks[0].faulting = true;
    g_crash_stacks[0].depth =
        CaptureStack(ucv, g_crash_stacks[0].frames, kStackMaxFrames);
  }
  PostmortemContext ctx;
  ctx.signo = signo;
  // si_addr is only meaningful for memory/instruction faults; a SIGABRT's
  // (or a kill(2)-delivered signal's) would be noise.
  if (info != nullptr &&
      (signo == SIGSEGV || signo == SIGBUS || signo == SIGILL ||
       signo == SIGFPE)) {
    ctx.has_fault_addr = true;
    ctx.fault_addr = info->si_addr;
  }
  ctx.stacks = g_crash_stacks;
  ctx.stack_count = count;
  WriteReport(ctx);
  // Restore the default disposition and re-raise: pending until this
  // handler returns, then terminates with the true signal exit status.
  signal(signo, SIG_DFL);
  raise(signo);
}

}  // namespace

InflightRegistry& InflightRegistry::Global() {
  static InflightRegistry* registry = new InflightRegistry();
  return *registry;
}

int InflightRegistry::Register(uint64_t trace_id, const char* kind,
                               double deadline_ms) {
  if (!enabled()) return -1;
  const uint32_t start = cursor_.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < kMaxSlots; ++i) {
    const int index = static_cast<int>((start + static_cast<uint32_t>(i)) %
                                       kMaxSlots);
    Slot& slot = slots_[index];
    int expected = 0;
    // Claim into a transient "initializing" state (3) so Snapshot never
    // reads a half-filled slot, then publish as queued with release.
    if (!slot.state.compare_exchange_strong(expected, 3,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.kind.store(kind, std::memory_order_relaxed);
    slot.deadline_ms.store(deadline_ms, std::memory_order_relaxed);
    slot.start_us.store(static_cast<int64_t>(NowMicros()),
                        std::memory_order_relaxed);
    slot.tid.store(0, std::memory_order_relaxed);
    slot.state.store(1, std::memory_order_release);
    return index;
  }
  return -1;  // all slots busy: the request just isn't tracked
}

void InflightRegistry::MarkExecuting(int token) {
  if (token < 0 || token >= kMaxSlots) return;
  Slot& slot = slots_[token];
  slot.tid.store(CurrentThreadId(), std::memory_order_relaxed);
  slot.state.store(2, std::memory_order_release);
}

void InflightRegistry::Release(int token) {
  if (token < 0 || token >= kMaxSlots) return;
  slots_[token].state.store(0, std::memory_order_release);
}

int InflightRegistry::Snapshot(InflightRequest* out, int max_out) const {
  int n = 0;
  for (int i = 0; i < kMaxSlots && n < max_out; ++i) {
    const Slot& slot = slots_[i];
    const int state = slot.state.load(std::memory_order_acquire);
    if (state != 1 && state != 2) continue;
    out[n].trace_id = slot.trace_id.load(std::memory_order_relaxed);
    out[n].kind = slot.kind.load(std::memory_order_relaxed);
    out[n].deadline_ms = slot.deadline_ms.load(std::memory_order_relaxed);
    out[n].start_us = slot.start_us.load(std::memory_order_relaxed);
    out[n].tid = slot.tid.load(std::memory_order_relaxed);
    out[n].state = state;
    ++n;
  }
  return n;
}

namespace {

void WriteInflightArray(JsonWriter& w, const InflightRequest* reqs, int count,
                        double now_us) {
  w.BeginArray();
  for (int i = 0; i < count; ++i) {
    const InflightRequest& req = reqs[i];
    w.BeginObject();
    w.Key("trace_id").String(TraceIdHex(req.trace_id));
    w.Key("kind").String(req.kind != nullptr ? req.kind : "");
    w.Key("state").String(InflightStateName(req.state));
    w.Key("age_us").Number(now_us - static_cast<double>(req.start_us));
    w.Key("deadline_ms").Number(req.deadline_ms);
    w.Key("tid").Int(req.tid);
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

std::string InflightRegistry::Json() const {
  InflightRequest reqs[kMaxSlots];
  const int count = Snapshot(reqs, kMaxSlots);
  JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(enabled());
  w.Key("inflight");
  WriteInflightArray(w, reqs, count, NowMicros());
  w.EndObject();
  return w.TakeString();
}

void InflightRegistry::ResetForTest() {
  for (Slot& slot : slots_) {
    slot.state.store(0, std::memory_order_relaxed);
    slot.trace_id.store(0, std::memory_order_relaxed);
    slot.kind.store(nullptr, std::memory_order_relaxed);
    slot.tid.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_relaxed);
}

std::string BuildPostmortemJson(const PostmortemContext& ctx) {
  std::vector<ThreadStack> captured;
  const ThreadStack* stacks = ctx.stacks;
  int stack_count = ctx.stack_count;
  if (stacks == nullptr) {
    captured.resize(ThreadRegistry::kMaxThreads);
    stack_count = ThreadRegistry::Global().CaptureAllStacks(
        captured.data(), static_cast<int>(captured.size()));
    stacks = captured.data();
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("trmma.postmortem.v1");
  w.Key("signal").BeginObject();
  w.Key("number").Int(ctx.signo);
  w.Key("name").String(SignalName(ctx.signo));
  if (ctx.has_fault_addr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  reinterpret_cast<uintptr_t>(ctx.fault_addr));
    w.Key("fault_addr").String(buf);
  } else {
    w.Key("fault_addr").Null();
  }
  w.EndObject();
  if (ctx.reason != nullptr) {
    w.Key("reason").String(ctx.reason);
  } else {
    w.Key("reason").Null();
  }
  w.Key("pid").Int(static_cast<long long>(::getpid()));
  w.Key("uptime_us").Number(NowMicros());
  w.Key("wall_unix_s").Int(static_cast<long long>(::time(nullptr)));

  w.Key("threads").BeginArray();
  for (int i = 0; i < stack_count; ++i) {
    const ThreadStack& ts = stacks[i];
    w.BeginObject();
    w.Key("tid").Int(ts.tid);
    w.Key("name").String(ts.name);
    w.Key("faulting").Bool(ts.faulting);
    w.Key("frames").BeginArray();
    for (int f = 0; f < ts.depth; ++f) {
      char pc[32];
      std::snprintf(pc, sizeof(pc), "0x%zx",
                    reinterpret_cast<uintptr_t>(ts.frames[f]));
      w.BeginObject();
      w.Key("pc").String(pc);
      w.Key("symbol").String(SymbolizePc(ts.frames[f]));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  InflightRequest reqs[InflightRegistry::kMaxSlots];
  const int nreq =
      InflightRegistry::Global().Snapshot(reqs, InflightRegistry::kMaxSlots);
  w.Key("inflight_requests");
  WriteInflightArray(w, reqs, nreq, NowMicros());

  // Tail of the span ring — the most recent work the process completed.
  std::vector<SpanRecord> spans;
  if (TraceRing::Global().TrySnapshot(&spans)) {
    constexpr size_t kSpanTail = 64;
    const size_t begin = spans.size() > kSpanTail ? spans.size() - kSpanTail : 0;
    w.Key("spans").BeginArray();
    for (size_t i = begin; i < spans.size(); ++i) {
      const SpanRecord& rec = spans[i];
      w.BeginObject();
      w.Key("name").String(rec.name != nullptr ? rec.name : "?");
      w.Key("trace_id").String(TraceIdHex(rec.trace_id));
      w.Key("start_us").Number(rec.start_us);
      w.Key("duration_us").Number(rec.duration_us);
      w.Key("tid").Int(rec.tid);
      w.EndObject();
    }
    w.EndArray();
  } else {
    w.Key("spans").Null();
  }

  w.Key("memory").Raw(MemoryJson());

  std::string metrics;
  if (MetricRegistry::Global().TryJsonDump(&metrics)) {
    w.Key("metrics").Raw(metrics);
  } else {
    w.Key("metrics").Null();
  }

  std::string lock_order;
  if (TryLockOrderJson(&lock_order)) {
    w.Key("lock_order").Raw(lock_order);
  } else {
    w.Key("lock_order").Null();
  }

  w.EndObject();
  return w.TakeString();
}

Status InstallCrashHandler(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("postmortem dir must be non-empty");
  }
  if (dir.size() >= sizeof(g_dir) - 32) {
    return Status::InvalidArgument("postmortem dir path too long: " + dir);
  }
  std::snprintf(g_dir, sizeof(g_dir), "%s", dir.c_str());
  std::snprintf(g_path, sizeof(g_path), "%s/postmortem.%d.json", g_dir,
                static_cast<int>(::getpid()));
  if (g_installed.load(std::memory_order_acquire)) {
    return Status::OK();  // idempotent: later calls just retarget the path
  }

  // The report should always include the installing (usually main) thread.
  ThreadRegistry::Global().RegisterCurrentThread("main");

  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = g_altstack;
  ss.ss_size = sizeof(g_altstack);
  if (sigaltstack(&ss, nullptr) != 0) {
    return Status::Internal(std::string("sigaltstack failed: ") +
                            std::strerror(errno));
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &CrashSignalHandler;
  // No SA_RESETHAND: concurrent faults on other threads must reach the
  // handler (to park) rather than the default disposition, or they'd kill
  // the process mid-report. SA_ONSTACK: a stack-overflow SIGSEGV needs the
  // altstack. The handler restores SIG_DFL itself before re-raising.
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
  for (const int signo : signals) {
    if (sigaction(signo, &sa, nullptr) != 0) {
      return Status::Internal(std::string("sigaction(") + SignalName(signo) +
                              ") failed: " + std::strerror(errno));
    }
  }
  g_installed.store(true, std::memory_order_release);
  InflightRegistry::Global().SetEnabled(true);
  return Status::OK();
}

bool CrashHandlerInstalled() {
  return g_installed.load(std::memory_order_acquire);
}

void InstallCrashHandlerFromEnv() {
  const char* dir = std::getenv("TRMMA_POSTMORTEM_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const Status status = InstallCrashHandler(dir);
  if (!status.ok()) {
    TRMMA_LOG(Warning) << "TRMMA_POSTMORTEM_DIR: crash handler not installed: "
                       << status.ToString();
  }
}

std::string PostmortemDir() { return g_dir; }

std::string PostmortemPath() { return g_path; }

void AbortWithPostmortem(const char* reason) {
  int expected = 0;
  if (g_crash_in_progress.compare_exchange_strong(expected, 1) &&
      g_installed.load(std::memory_order_acquire)) {
    g_crash_owner_tid.store(CurrentThreadId(), std::memory_order_release);
    int count = ThreadRegistry::Global().CaptureAllStacks(
        g_crash_stacks, ThreadRegistry::kMaxThreads);
    if (count > 0) g_crash_stacks[0].faulting = true;
    PostmortemContext ctx;
    ctx.signo = SIGABRT;
    ctx.reason = reason;
    ctx.stacks = g_crash_stacks;
    ctx.stack_count = count;
    WriteReport(ctx);
  }
  TRMMA_LOG(Error) << "aborting with postmortem: "
                   << (reason != nullptr ? reason : "(no reason)");
  // The SIGABRT handler sees this thread already owns the crash and goes
  // straight to the default disposition — no second report, no parking.
  std::abort();
}

}  // namespace obs
}  // namespace trmma
