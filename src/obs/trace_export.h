#ifndef TRMMA_OBS_TRACE_EXPORT_H_
#define TRMMA_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace trmma {
namespace obs {

/// Renders span records as Chrome trace-event JSON — the format consumed by
/// chrome://tracing and https://ui.perfetto.dev. Each span becomes one
/// complete ("ph":"X") event; viewers reconstruct nesting from time
/// containment within a (pid, tid) lane, which holds because spans are
/// strictly nested per thread. The span's seq/parent_seq survive in "args"
/// so exact parentage is recoverable even for equal timestamps.
std::string ChromeTraceJson(const std::vector<SpanRecord>& records);

/// Snapshot of `ring` rendered with ChromeTraceJson.
std::string ChromeTraceJson(const TraceRing& ring);

/// Writes the ring snapshot to `path`. Returns false (and logs) on I/O
/// failure.
bool WriteChromeTrace(const TraceRing& ring, const std::string& path);

/// Writes the global ring to $TRMMA_TRACE_FILE if that is set and the ring
/// holds at least one span. Returns the path written, or "" if disabled or
/// empty. Safe to call multiple times; each call rewrites the file.
std::string ExportChromeTraceFromEnv();

/// Registers a process-exit hook (once) that calls ExportChromeTraceFromEnv,
/// so any binary that traces gets a trace file without bench plumbing.
void InstallChromeTraceAtExit();

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_TRACE_EXPORT_H_
