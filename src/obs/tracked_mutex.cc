#include "obs/tracked_mutex.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stack_walk.h"

namespace trmma {
namespace obs {
namespace {

double SteadyMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Enumerates every live TrackedMutex / QueueDepth so PublishLockMetrics can
/// snapshot them. Leaked singleton with a plain std::mutex: instrumented
/// mutexes only touch it at construction/destruction, never on lock/unlock,
/// and the plain lock keeps registration itself un-instrumented (no
/// recursion when a TrackedMutex is created while publishing).
class LockRegistry {
 public:
  static LockRegistry& Global() {
    static LockRegistry* registry = new LockRegistry();
    return *registry;
  }

  void Register(TrackedMutex* m) {
    std::lock_guard<std::mutex> lock(mu_);
    mutexes_.push_back(m);
  }
  void Unregister(TrackedMutex* m) {
    std::lock_guard<std::mutex> lock(mu_);
    mutexes_.erase(std::remove(mutexes_.begin(), mutexes_.end(), m),
                   mutexes_.end());
  }
  void Register(QueueDepth* q) {
    std::lock_guard<std::mutex> lock(mu_);
    queues_.push_back(q);
  }
  void Unregister(QueueDepth* q) {
    std::lock_guard<std::mutex> lock(mu_);
    queues_.erase(std::remove(queues_.begin(), queues_.end(), q),
                  queues_.end());
  }

  /// Same-named instances merged into one family, sorted by name.
  struct LockAgg {
    std::int64_t acquisitions = 0;
    std::int64_t contended = 0;
    std::unique_ptr<Histogram> wait_us;
    std::unique_ptr<Histogram> hold_us;
  };
  std::map<std::string, LockAgg> SnapshotLocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, LockAgg> out;
    for (const TrackedMutex* m : mutexes_) {
      LockAgg& agg = out[m->name()];
      const TrackedMutex::Stats stats = m->stats();
      agg.acquisitions += stats.acquisitions;
      agg.contended += stats.contended;
      if (agg.wait_us == nullptr) {
        agg.wait_us = std::make_unique<Histogram>(m->wait_histogram().bounds());
        agg.hold_us = std::make_unique<Histogram>(m->hold_histogram().bounds());
      }
      agg.wait_us->Merge(m->wait_histogram());
      agg.hold_us->Merge(m->hold_histogram());
    }
    return out;
  }

  struct QueueAgg {
    std::int64_t current = 0;
    std::int64_t peak = 0;
  };
  std::map<std::string, QueueAgg> SnapshotQueues() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, QueueAgg> out;
    for (const QueueDepth* q : queues_) {
      QueueAgg& agg = out[q->name()];
      agg.current += q->current();
      agg.peak = std::max(agg.peak, q->peak());
    }
    return out;
  }

 private:
  LockRegistry() = default;
  mutable std::mutex mu_;
  std::vector<TrackedMutex*> mutexes_;
  std::vector<QueueDepth*> queues_;
};

/// Lock-order detector state. The graph is keyed by lock family name (same
/// merge rule as metric publication: per-shard instances of one family are
/// one node), edges carry the symbolized stack captured at their first
/// observation, and a plain std::mutex guards everything — the detector runs
/// inside TrackedMutex slow paths, so it must never itself take a tracked
/// lock (and never touches the MetricRegistry while holding state: a
/// detected inversion *on the registry lock* would recurse into it).
struct LockOrderState {
  std::mutex mu;
  /// first-name -> second-name -> acquisition stack of the first sighting.
  std::map<std::string, std::map<std::string, std::string>> edges;
  std::set<std::pair<std::string, std::string>> reported;
  std::vector<LockOrderInversion> inversions;
  int64_t edge_count = 0;
};

LockOrderState& OrderState() {
  static LockOrderState* state = new LockOrderState();
  return *state;
}

std::atomic<bool> g_lock_order{false};

/// Per-thread held-lock stack (instance + family name), maintained only
/// while lock-order tracking is on. Plain vector: slow-path only.
struct HeldLock {
  const void* id;
  const char* name;
};
thread_local std::vector<HeldLock>* t_held = nullptr;

std::vector<HeldLock>& HeldLocks() {
  // Leaked per-thread vector: thread_local with a dynamic destructor would
  // run before late unlocks in other statics' teardown.
  if (t_held == nullptr) t_held = new std::vector<HeldLock>();
  return *t_held;
}

std::string CaptureAcquisitionStack() {
  if (!StackWalkSupported()) return std::string();
  void* frames[kStackMaxFrames];
  const int depth = CaptureCallerStack(frames, kStackMaxFrames);
  std::string out;
  for (int i = 0; i < depth; ++i) {
    out += "  #" + std::to_string(i) + ' ' + SymbolizePc(frames[i]) + '\n';
  }
  return out;
}

/// DFS over the edge map: is `to` reachable from `from`?
bool ReachableLocked(const LockOrderState& state, const std::string& from,
                     const std::string& to, std::set<std::string>* seen) {
  if (from == to) return true;
  if (!seen->insert(from).second) return false;
  const auto it = state.edges.find(from);
  if (it == state.edges.end()) return false;
  for (const auto& [next, stack] : it->second) {
    if (ReachableLocked(state, next, to, seen)) return true;
  }
  return false;
}

bool LockOrderEnvOptIn() {
  const char* env = std::getenv("TRMMA_LOCK_ORDER");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "off") != 0;
}

/// Dynamic-init hook: applies TRMMA_LOCK_ORDER and (re)computes the gate.
/// metrics.cc refreshes the gate after g_trace_mode's own env init, so
/// whichever TU initializes last still sees both inputs (they are atomics
/// set before each refresh).
const bool g_lock_order_env_applied = [] {
  if (LockOrderEnvOptIn()) g_lock_order.store(true, std::memory_order_relaxed);
  internal_obs::RefreshLockGate();
  return true;
}();

}  // namespace

namespace internal_obs {

std::atomic<int> g_lock_gate{0};

void RefreshLockGate() {
  const int gate =
      (g_trace_mode.load(std::memory_order_relaxed) != 0 ? 1 : 0) |
      (g_lock_order.load(std::memory_order_relaxed) ? 2 : 0);
  g_lock_gate.store(gate, std::memory_order_relaxed);
}

void LockOrderOnAcquire(const void* id, const char* name) {
  std::vector<HeldLock>& held = HeldLocks();
  // Record edges (held -> new) before pushing, skipping same-family pairs
  // (per-shard siblings of one family may legitimately nest).
  LockOrderInversion found;
  bool have_inversion = false;
  if (!held.empty()) {
    std::lock_guard<std::mutex> lock(OrderState().mu);
    LockOrderState& state = OrderState();
    for (const HeldLock& h : held) {
      if (std::strcmp(h.name, name) == 0) continue;
      // An edge's stack is set (at least to the unavailable marker) the
      // first time it is seen, so emptiness means "freshly inserted".
      auto& stack = state.edges[h.name][name];
      if (stack.empty()) {
        stack = CaptureAcquisitionStack();
        if (stack.empty()) stack = "  <stack unavailable>\n";
        ++state.edge_count;
        // A new edge h.name -> name inverts iff the existing graph already
        // orders name before h.name.
        std::set<std::string> seen;
        if (ReachableLocked(state, name, h.name, &seen) &&
            state.reported
                .insert(std::make_pair(std::string(h.name),
                                       std::string(name)))
                .second) {
          LockOrderInversion inv;
          inv.first = h.name;
          inv.second = name;
          inv.forward_stack = stack;
          const auto rev_it = state.edges.find(name);
          if (rev_it != state.edges.end()) {
            const auto rev_edge = rev_it->second.find(h.name);
            if (rev_edge != rev_it->second.end()) {
              inv.reverse_stack = rev_edge->second;
            }
          }
          state.inversions.push_back(inv);
          found = inv;
          have_inversion = true;
        }
      }
    }
  }
  held.push_back(HeldLock{id, name});
  if (have_inversion) {
    // Logged outside the detector lock: the log sink may itself allocate or
    // take (tracked) locks.
    TRMMA_LOG(Error) << "lock-order inversion: " << found.second
                     << " acquired while holding " << found.first
                     << " but the reverse order exists\n"
                     << "  " << found.first << " -> " << found.second
                     << " acquired at:\n"
                     << found.forward_stack << "  " << found.second << " -> "
                     << found.first << " acquired at:\n"
                     << found.reverse_stack;
  }
}

void LockOrderOnRelease(const void* id) {
  if (t_held == nullptr) return;
  std::vector<HeldLock>& held = *t_held;
  // Locks release mostly LIFO; scan from the back and tolerate misses
  // (tracking toggled mid-flight).
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].id == id) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

}  // namespace internal_obs

void SetLockOrderTracking(bool enabled) {
  g_lock_order.store(enabled, std::memory_order_relaxed);
  internal_obs::RefreshLockGate();
}

bool LockOrderTrackingEnabled() {
  return g_lock_order.load(std::memory_order_relaxed);
}

std::vector<LockOrderInversion> LockOrderInversions() {
  std::lock_guard<std::mutex> lock(OrderState().mu);
  return OrderState().inversions;
}

namespace {

std::string LockOrderJsonFrom(const std::vector<LockOrderInversion>& inversions,
                              int64_t edges) {
  JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(LockOrderTrackingEnabled());
  w.Key("edges").Int(edges);
  w.Key("inversions").BeginArray();
  for (const LockOrderInversion& inv : inversions) {
    w.BeginObject();
    w.Key("first").String(inv.first);
    w.Key("second").String(inv.second);
    w.Key("forward_stack").String(inv.forward_stack);
    w.Key("reverse_stack").String(inv.reverse_stack);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace

std::string LockOrderJson() {
  std::vector<LockOrderInversion> inversions;
  int64_t edges = 0;
  {
    std::lock_guard<std::mutex> lock(OrderState().mu);
    inversions = OrderState().inversions;
    edges = OrderState().edge_count;
  }
  return LockOrderJsonFrom(inversions, edges);
}

bool TryLockOrderJson(std::string* out) {
  std::vector<LockOrderInversion> inversions;
  int64_t edges = 0;
  {
    std::unique_lock<std::mutex> lock(OrderState().mu, std::try_to_lock);
    if (!lock.owns_lock()) return false;
    inversions = OrderState().inversions;
    edges = OrderState().edge_count;
  }
  *out = LockOrderJsonFrom(inversions, edges);
  return true;
}

void ResetLockOrderForTest() {
  std::lock_guard<std::mutex> lock(OrderState().mu);
  OrderState().edges.clear();
  OrderState().reported.clear();
  OrderState().inversions.clear();
  OrderState().edge_count = 0;
}

TrackedMutex::TrackedMutex(const char* name)
    : name_(name),
      wait_us_(std::make_unique<Histogram>()),
      hold_us_(std::make_unique<Histogram>()) {
  LockRegistry::Global().Register(this);
}

TrackedMutex::~TrackedMutex() { LockRegistry::Global().Unregister(this); }

void TrackedMutex::LockSlow() {
  if (mu_.try_lock()) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    contended_.fetch_add(1, std::memory_order_relaxed);
    const double start = SteadyMicros();
    mu_.lock();
    wait_us_->Observe(SteadyMicros() - start);
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (LockOrderTrackingEnabled()) {
    internal_obs::LockOrderOnAcquire(this, name_);
  }
  hold_timed_ = true;
  hold_start_us_ = SteadyMicros();
}

bool TrackedMutex::TryLockSlow() {
  if (!mu_.try_lock()) return false;
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (LockOrderTrackingEnabled()) {
    internal_obs::LockOrderOnAcquire(this, name_);
  }
  hold_timed_ = true;
  hold_start_us_ = SteadyMicros();
  return true;
}

void TrackedMutex::UnlockSlow() {
  const double held = SteadyMicros() - hold_start_us_;
  hold_timed_ = false;
  if (LockOrderTrackingEnabled()) {
    internal_obs::LockOrderOnRelease(this);
  }
  mu_.unlock();
  // Observe after release: the histogram update (atomic CAS on sum_) should
  // not extend the critical section it measures.
  hold_us_->Observe(held);
}

TrackedMutex::Stats TrackedMutex::stats() const {
  Stats s;
  s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  s.contended = contended_.load(std::memory_order_relaxed);
  return s;
}

QueueDepth::QueueDepth(const char* name) : name_(name) {
  LockRegistry::Global().Register(this);
}

QueueDepth::~QueueDepth() { LockRegistry::Global().Unregister(this); }

void PublishLockMetrics(MetricRegistry* registry) {
  // Snapshot first, publish after: GetGauge takes the registry's own
  // TrackedMutex, which must not happen while holding the LockRegistry lock
  // (a racing TrackedMutex constructor would deadlock against it).
  const auto locks = LockRegistry::Global().SnapshotLocks();
  const auto queues = LockRegistry::Global().SnapshotQueues();
  for (const auto& [name, agg] : locks) {
    const Labels labels = {{"lock", name}};
    registry->GetGauge("lock.acquisitions", labels)
        ->Set(static_cast<double>(agg.acquisitions));
    registry->GetGauge("lock.contended", labels)
        ->Set(static_cast<double>(agg.contended));
    registry->GetGauge("lock.wait_us.p50", labels)
        ->Set(agg.wait_us->Quantile(0.5));
    registry->GetGauge("lock.wait_us.p95", labels)
        ->Set(agg.wait_us->Quantile(0.95));
    registry->GetGauge("lock.wait_us.max", labels)->Set(agg.wait_us->Max());
    registry->GetGauge("lock.hold_us.p50", labels)
        ->Set(agg.hold_us->Quantile(0.5));
    registry->GetGauge("lock.hold_us.p95", labels)
        ->Set(agg.hold_us->Quantile(0.95));
    registry->GetGauge("lock.hold_us.max", labels)->Set(agg.hold_us->Max());
  }
  for (const auto& [name, agg] : queues) {
    const Labels labels = {{"queue", name}};
    registry->GetGauge("queue.depth", labels)
        ->Set(static_cast<double>(agg.current));
    registry->GetGauge("queue.depth.peak", labels)
        ->Set(static_cast<double>(agg.peak));
  }
  if (LockOrderTrackingEnabled()) {
    // Published here (a scrape path) rather than from the detector itself:
    // registering a metric takes the registry's tracked lock, which must
    // never happen inside LockOrderOnAcquire.
    registry->GetGauge("lock.order.inversions")
        ->Set(static_cast<double>(LockOrderInversions().size()));
  }
}

std::string LockStatsJson() {
  const auto locks = LockRegistry::Global().SnapshotLocks();
  const auto queues = LockRegistry::Global().SnapshotQueues();
  JsonWriter w;
  w.BeginObject();
  w.Key("locks").BeginArray();
  for (const auto& [name, agg] : locks) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("acquisitions").Int(agg.acquisitions);
    w.Key("contended").Int(agg.contended);
    w.Key("wait_p95_us").Number(agg.wait_us->Quantile(0.95));
    w.Key("wait_max_us").Number(agg.wait_us->Max());
    w.Key("hold_p95_us").Number(agg.hold_us->Quantile(0.95));
    w.Key("hold_max_us").Number(agg.hold_us->Max());
    w.EndObject();
  }
  w.EndArray();
  w.Key("queues").BeginArray();
  for (const auto& [name, agg] : queues) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("depth").Int(agg.current);
    w.Key("peak").Int(agg.peak);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace obs
}  // namespace trmma
