#include "obs/tracked_mutex.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace trmma {
namespace obs {
namespace {

double SteadyMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Enumerates every live TrackedMutex / QueueDepth so PublishLockMetrics can
/// snapshot them. Leaked singleton with a plain std::mutex: instrumented
/// mutexes only touch it at construction/destruction, never on lock/unlock,
/// and the plain lock keeps registration itself un-instrumented (no
/// recursion when a TrackedMutex is created while publishing).
class LockRegistry {
 public:
  static LockRegistry& Global() {
    static LockRegistry* registry = new LockRegistry();
    return *registry;
  }

  void Register(TrackedMutex* m) {
    std::lock_guard<std::mutex> lock(mu_);
    mutexes_.push_back(m);
  }
  void Unregister(TrackedMutex* m) {
    std::lock_guard<std::mutex> lock(mu_);
    mutexes_.erase(std::remove(mutexes_.begin(), mutexes_.end(), m),
                   mutexes_.end());
  }
  void Register(QueueDepth* q) {
    std::lock_guard<std::mutex> lock(mu_);
    queues_.push_back(q);
  }
  void Unregister(QueueDepth* q) {
    std::lock_guard<std::mutex> lock(mu_);
    queues_.erase(std::remove(queues_.begin(), queues_.end(), q),
                  queues_.end());
  }

  /// Same-named instances merged into one family, sorted by name.
  struct LockAgg {
    std::int64_t acquisitions = 0;
    std::int64_t contended = 0;
    std::unique_ptr<Histogram> wait_us;
    std::unique_ptr<Histogram> hold_us;
  };
  std::map<std::string, LockAgg> SnapshotLocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, LockAgg> out;
    for (const TrackedMutex* m : mutexes_) {
      LockAgg& agg = out[m->name()];
      const TrackedMutex::Stats stats = m->stats();
      agg.acquisitions += stats.acquisitions;
      agg.contended += stats.contended;
      if (agg.wait_us == nullptr) {
        agg.wait_us = std::make_unique<Histogram>(m->wait_histogram().bounds());
        agg.hold_us = std::make_unique<Histogram>(m->hold_histogram().bounds());
      }
      agg.wait_us->Merge(m->wait_histogram());
      agg.hold_us->Merge(m->hold_histogram());
    }
    return out;
  }

  struct QueueAgg {
    std::int64_t current = 0;
    std::int64_t peak = 0;
  };
  std::map<std::string, QueueAgg> SnapshotQueues() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, QueueAgg> out;
    for (const QueueDepth* q : queues_) {
      QueueAgg& agg = out[q->name()];
      agg.current += q->current();
      agg.peak = std::max(agg.peak, q->peak());
    }
    return out;
  }

 private:
  LockRegistry() = default;
  mutable std::mutex mu_;
  std::vector<TrackedMutex*> mutexes_;
  std::vector<QueueDepth*> queues_;
};

}  // namespace

TrackedMutex::TrackedMutex(const char* name)
    : name_(name),
      wait_us_(std::make_unique<Histogram>()),
      hold_us_(std::make_unique<Histogram>()) {
  LockRegistry::Global().Register(this);
}

TrackedMutex::~TrackedMutex() { LockRegistry::Global().Unregister(this); }

void TrackedMutex::LockSlow() {
  if (mu_.try_lock()) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    contended_.fetch_add(1, std::memory_order_relaxed);
    const double start = SteadyMicros();
    mu_.lock();
    wait_us_->Observe(SteadyMicros() - start);
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  hold_timed_ = true;
  hold_start_us_ = SteadyMicros();
}

bool TrackedMutex::TryLockSlow() {
  if (!mu_.try_lock()) return false;
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  hold_timed_ = true;
  hold_start_us_ = SteadyMicros();
  return true;
}

void TrackedMutex::UnlockSlow() {
  const double held = SteadyMicros() - hold_start_us_;
  hold_timed_ = false;
  mu_.unlock();
  // Observe after release: the histogram update (atomic CAS on sum_) should
  // not extend the critical section it measures.
  hold_us_->Observe(held);
}

TrackedMutex::Stats TrackedMutex::stats() const {
  Stats s;
  s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  s.contended = contended_.load(std::memory_order_relaxed);
  return s;
}

QueueDepth::QueueDepth(const char* name) : name_(name) {
  LockRegistry::Global().Register(this);
}

QueueDepth::~QueueDepth() { LockRegistry::Global().Unregister(this); }

void PublishLockMetrics(MetricRegistry* registry) {
  // Snapshot first, publish after: GetGauge takes the registry's own
  // TrackedMutex, which must not happen while holding the LockRegistry lock
  // (a racing TrackedMutex constructor would deadlock against it).
  const auto locks = LockRegistry::Global().SnapshotLocks();
  const auto queues = LockRegistry::Global().SnapshotQueues();
  for (const auto& [name, agg] : locks) {
    const Labels labels = {{"lock", name}};
    registry->GetGauge("lock.acquisitions", labels)
        ->Set(static_cast<double>(agg.acquisitions));
    registry->GetGauge("lock.contended", labels)
        ->Set(static_cast<double>(agg.contended));
    registry->GetGauge("lock.wait_us.p50", labels)
        ->Set(agg.wait_us->Quantile(0.5));
    registry->GetGauge("lock.wait_us.p95", labels)
        ->Set(agg.wait_us->Quantile(0.95));
    registry->GetGauge("lock.wait_us.max", labels)->Set(agg.wait_us->Max());
    registry->GetGauge("lock.hold_us.p50", labels)
        ->Set(agg.hold_us->Quantile(0.5));
    registry->GetGauge("lock.hold_us.p95", labels)
        ->Set(agg.hold_us->Quantile(0.95));
    registry->GetGauge("lock.hold_us.max", labels)->Set(agg.hold_us->Max());
  }
  for (const auto& [name, agg] : queues) {
    const Labels labels = {{"queue", name}};
    registry->GetGauge("queue.depth", labels)
        ->Set(static_cast<double>(agg.current));
    registry->GetGauge("queue.depth.peak", labels)
        ->Set(static_cast<double>(agg.peak));
  }
}

std::string LockStatsJson() {
  const auto locks = LockRegistry::Global().SnapshotLocks();
  const auto queues = LockRegistry::Global().SnapshotQueues();
  JsonWriter w;
  w.BeginObject();
  w.Key("locks").BeginArray();
  for (const auto& [name, agg] : locks) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("acquisitions").Int(agg.acquisitions);
    w.Key("contended").Int(agg.contended);
    w.Key("wait_p95_us").Number(agg.wait_us->Quantile(0.95));
    w.Key("wait_max_us").Number(agg.wait_us->Max());
    w.Key("hold_p95_us").Number(agg.hold_us->Quantile(0.95));
    w.Key("hold_max_us").Number(agg.hold_us->Max());
    w.EndObject();
  }
  w.EndArray();
  w.Key("queues").BeginArray();
  for (const auto& [name, agg] : queues) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("depth").Int(agg.current);
    w.Key("peak").Int(agg.peak);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace obs
}  // namespace trmma
