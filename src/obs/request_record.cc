#include "obs/request_record.h"

#include "obs/json.h"
#include "obs/json_parse.h"

namespace trmma {
namespace obs {

namespace {

void WriteMatchedArray(JsonWriter& w, const std::string& key,
                       const std::vector<RecordMatchedPoint>& points) {
  w.Key(key).BeginArray();
  for (const auto& p : points) {
    w.BeginArray().Int(p.segment).Number(p.ratio).Number(p.t).EndArray();
  }
  w.EndArray();
}

std::vector<RecordMatchedPoint> ReadMatchedArray(const JsonValue& v) {
  std::vector<RecordMatchedPoint> out;
  if (!v.is_array()) return out;
  for (const auto& item : v.AsArray()) {
    const auto& a = item.AsArray();
    RecordMatchedPoint p;
    if (a.size() >= 1) p.segment = static_cast<std::int64_t>(a[0].AsNumber());
    if (a.size() >= 2) p.ratio = a[1].AsNumber();
    if (a.size() >= 3) p.t = a[2].AsNumber();
    out.push_back(p);
  }
  return out;
}

}  // namespace

std::string RequestRecord::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("id").String(id);
  if (!trace_id.empty()) w.Key("trace_id").String(trace_id);
  w.Key("kind").String(kind);
  w.Key("method").String(method);
  w.Key("city").String(city);
  w.Key("seed").Int(seed);
  w.Key("epsilon").Int(epsilon);
  w.Key("gamma").Number(gamma);
  w.Key("dataset_trajectories").Int(dataset_trajectories);
  w.Key("train_state").BeginArray();
  for (const auto& s : train_state) w.String(s);
  w.EndArray();
  w.Key("input").BeginArray();
  for (const auto& p : input) {
    w.BeginArray().Number(p.lat).Number(p.lng).Number(p.t).EndArray();
  }
  w.EndArray();
  w.Key("truth_segments").BeginArray();
  for (std::int64_t s : truth_segments) w.Int(s);
  w.EndArray();
  w.Key("candidates").BeginArray();
  for (const auto& per_point : candidates) {
    w.BeginArray();
    for (const auto& c : per_point) {
      w.BeginArray().Int(c.segment).Number(c.distance).Number(c.ratio)
          .EndArray();
    }
    w.EndArray();
  }
  w.EndArray();
  w.Key("scores").BeginArray();
  for (double s : scores) w.Number(s);
  w.EndArray();
  WriteMatchedArray(w, "matched", matched);
  w.Key("route").BeginArray();
  for (std::int64_t s : route) w.Int(s);
  w.EndArray();
  WriteMatchedArray(w, "recovered", recovered);
  w.Key("outcome").String(outcome);
  w.Key("route_sections").Int(route_sections);
  w.Key("degraded_points").Int(degraded_points);
  w.Key("events").BeginArray();
  for (const auto& e : events) w.String(e);
  w.EndArray();
  w.Key("error").String(error);
  w.Key("wall_us").Int(wall_us);
  w.Key("stages").BeginArray();
  for (const auto& st : stages) {
    w.BeginObject().Key("name").String(st.name).Key("us").Int(st.us)
        .EndObject();
  }
  w.EndArray();
  w.Key("quality").Number(quality);
  w.Key("reason").String(reason);
  w.EndObject();
  return w.TakeString();
}

StatusOr<RequestRecord> RequestRecordFromJsonLine(const std::string& line) {
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = *parsed;
  if (!v.is_object()) {
    return Status::InvalidArgument("record line is not a JSON object");
  }
  if (!v.Get("id").is_string() || v.Get("id").AsString().empty()) {
    return Status::InvalidArgument("record has no id");
  }
  RequestRecord r;
  r.id = v.Get("id").AsString();
  r.trace_id = v.Get("trace_id").AsString();
  r.kind = v.Get("kind").AsString();
  r.method = v.Get("method").AsString();
  r.city = v.Get("city").AsString();
  r.seed = static_cast<std::int64_t>(v.Get("seed").AsNumber());
  r.epsilon = static_cast<std::int64_t>(v.Get("epsilon").AsNumber());
  r.gamma = v.Get("gamma").AsNumber();
  r.dataset_trajectories =
      static_cast<std::int64_t>(v.Get("dataset_trajectories").AsNumber());
  for (const auto& s : v.Get("train_state").AsArray()) {
    r.train_state.push_back(s.AsString());
  }
  for (const auto& item : v.Get("input").AsArray()) {
    const auto& a = item.AsArray();
    RecordGpsPoint p;
    if (a.size() >= 1) p.lat = a[0].AsNumber();
    if (a.size() >= 2) p.lng = a[1].AsNumber();
    if (a.size() >= 3) p.t = a[2].AsNumber();
    r.input.push_back(p);
  }
  for (const auto& s : v.Get("truth_segments").AsArray()) {
    r.truth_segments.push_back(static_cast<std::int64_t>(s.AsNumber()));
  }
  for (const auto& per_point : v.Get("candidates").AsArray()) {
    std::vector<RecordCandidate> cs;
    for (const auto& item : per_point.AsArray()) {
      const auto& a = item.AsArray();
      RecordCandidate c;
      if (a.size() >= 1) c.segment = static_cast<std::int64_t>(a[0].AsNumber());
      if (a.size() >= 2) c.distance = a[1].AsNumber();
      if (a.size() >= 3) c.ratio = a[2].AsNumber();
      cs.push_back(c);
    }
    r.candidates.push_back(std::move(cs));
  }
  for (const auto& s : v.Get("scores").AsArray()) {
    r.scores.push_back(s.AsNumber());
  }
  r.matched = ReadMatchedArray(v.Get("matched"));
  for (const auto& s : v.Get("route").AsArray()) {
    r.route.push_back(static_cast<std::int64_t>(s.AsNumber()));
  }
  r.recovered = ReadMatchedArray(v.Get("recovered"));
  r.outcome = v.Get("outcome").AsString();
  r.route_sections =
      static_cast<std::int64_t>(v.Get("route_sections").AsNumber());
  r.degraded_points =
      static_cast<std::int64_t>(v.Get("degraded_points").AsNumber());
  for (const auto& e : v.Get("events").AsArray()) {
    r.events.push_back(e.AsString());
  }
  r.error = v.Get("error").AsString();
  r.wall_us = static_cast<std::int64_t>(v.Get("wall_us").AsNumber());
  for (const auto& st : v.Get("stages").AsArray()) {
    RecordStage stage;
    stage.name = st.Get("name").AsString();
    stage.us = static_cast<std::int64_t>(st.Get("us").AsNumber());
    r.stages.push_back(std::move(stage));
  }
  r.quality = v.Get("quality").AsNumber(-1.0);
  r.reason = v.Get("reason").AsString();
  return r;
}

}  // namespace obs
}  // namespace trmma
