#ifndef TRMMA_OBS_FLIGHT_RECORDER_H_
#define TRMMA_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/request_record.h"
#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {

/// Retention policy and output location for the per-request flight recorder.
/// Disabled by default; enabling it captures a full decision trace per
/// request and keeps a bounded set of exemplars (see FlightRecorder).
struct FlightRecorderConfig {
  bool enabled = false;
  /// Uniform sampling: every `sample_every`-th request is retained
  /// unconditionally (1 = all).
  int sample_every = 100;
  int top_slow = 8;       ///< K slowest requests by wall time
  int top_worst = 8;      ///< K worst-quality requests (when quality is known)
  int max_outcome_records = 64;  ///< cap on retained failed/degraded requests
  int max_events = 64;    ///< per-record event-list cap
  std::string path = "flight_records.jsonl";  ///< JSONL sink; "" = no file
};

/// Reads TRMMA_FLIGHT_RECORDER (an integer N enables 1-in-N sampling) and
/// TRMMA_FLIGHT_RECORDER_FILE (output path) into a config.
FlightRecorderConfig FlightRecorderConfigFromEnv();

namespace internal_obs {
/// Combined capture gate: true when ANY consumer of RequestRecords is on —
/// flight-recorder retention or quality telemetry (obs/quality.h). Hooks
/// read this one flag, so enabling either consumer activates capture.
extern std::atomic<bool> g_flight_enabled;
/// The recorder-proper gate: retention/flushing of exemplars.
extern std::atomic<bool> g_flight_retention;
extern thread_local RequestRecord* t_flight_current;
/// Recomputes g_flight_enabled from the per-consumer gates; called by
/// FlightRecorder::Configure and QualityLog::Configure.
void RefreshCaptureGate();
}  // namespace internal_obs

/// The per-hook fast gate. When the recorder is disabled this is one relaxed
/// atomic load and a branch (the ≤2 ns contract measured by bench_micro_obs);
/// hooks do all capture work behind a non-null return.
inline RequestRecord* ActiveRecord() {
  if (!internal_obs::g_flight_enabled.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  return internal_obs::t_flight_current;
}

/// Appends a diagnostic event to the active record, if any. Event lists are
/// capped (FlightRecorderConfig::max_events) with an explicit truncation
/// marker so a pathological request can't balloon a record.
void RecordEvent(const std::string& event);

/// Process-wide recorder: assigns request IDs, applies retention at request
/// end, and persists retained exemplars as JSONL.
class FlightRecorder {
 public:
  struct Stats {
    std::int64_t requests = 0;   ///< requests begun while enabled
    std::int64_t retained = 0;   ///< exemplars currently held
    std::int64_t written = 0;    ///< records persisted by the last Flush
    std::int64_t bytes = 0;      ///< bytes written by the last Flush
    std::int64_t replay_mismatches = 0;
  };

  static FlightRecorder& Global();

  void Configure(const FlightRecorderConfig& config);
  FlightRecorderConfig config() const;
  bool enabled() const {
    return internal_obs::g_flight_retention.load(std::memory_order_relaxed);
  }

  /// Retention decision for a finished request. `index` is the zero-based
  /// request index from NextRequestId (drives uniform sampling). Takes
  /// ownership of the record; called by RequestScope, not directly.
  void End(RequestRecord&& record, std::int64_t index);

  /// Next request id ("req-%06d") and the zero-based request index used for
  /// uniform sampling.
  std::string NextRequestId(std::int64_t* index);

  /// Rewrites the configured JSONL file with all currently retained records
  /// (sorted by id, so output is deterministic). Idempotent; returns the
  /// number of records written.
  std::int64_t Flush();
  /// Non-blocking Flush for the crash path: false when the recorder lock is
  /// held (a crash mid-retention skips the flush instead of deadlocking).
  bool TryFlush(std::int64_t* written);

  /// Copies of the retained exemplars, sorted by id.
  std::vector<RequestRecord> Snapshot() const;

  /// Replay harnesses report divergences here so they surface in StatsJson.
  void AddReplayMismatches(std::int64_t n);

  Stats stats() const;
  /// One-line JSON object for splicing into BENCH_*.json reports.
  std::string StatsJson() const;

  /// Drops retained records and resets counters/stats; keeps the config.
  void ResetForTest();

 private:
  FlightRecorder() = default;

  struct Retained {
    RequestRecord record;
    std::set<std::string> reasons;
    std::int64_t approx_bytes = 0;  ///< heap estimate fed to MemTag accounting
  };

  // Drops `reason` from `id`, erasing the exemplar once no reason holds it.
  void DropReasonLocked(const std::string& id, const std::string& reason);

  std::int64_t FlushLocked();

  mutable TrackedMutex mu_{"flight.recorder"};
  FlightRecorderConfig config_;
  std::atomic<std::int64_t> next_index_{0};
  std::int64_t requests_ = 0;
  std::int64_t outcome_retained_ = 0;
  std::int64_t written_ = 0;
  std::int64_t bytes_ = 0;
  std::atomic<std::int64_t> replay_mismatches_{0};
  std::map<std::string, Retained> retained_;
  std::int64_t retained_bytes_ = 0;  ///< sum of approx_bytes over retained_
  /// Top-K rankings: (wall_us, id) for slow, (quality, id) for worst.
  std::vector<std::pair<std::int64_t, std::string>> slow_;
  std::vector<std::pair<double, std::string>> worst_;
};

/// RAII capture scope for one request. Activates capture on the current
/// thread when the recorder is enabled and no request is already active
/// (nested scopes are no-ops, so a pipeline request wrapping a matcher call
/// produces one record). Fills wall time and hands the record to retention
/// on destruction.
class RequestScope {
 public:
  explicit RequestScope(const char* kind);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  /// The record being captured, or nullptr when this scope is inactive.
  RequestRecord* record() { return active_ ? &record_ : nullptr; }

 private:
  RequestRecord record_;
  bool active_ = false;
  std::int64_t index_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_FLIGHT_RECORDER_H_
