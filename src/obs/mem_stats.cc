#include "obs/mem_stats.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "nn/matrix.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace trmma {
namespace obs {
namespace internal_obs {

std::atomic<bool> g_mem_stats_enabled{false};
MemTagCell g_mem_cells[kMemTagCount];

void MemRecordSlow(MemTag tag, std::int64_t delta, bool set) {
  MemTagCell& cell = g_mem_cells[static_cast<int>(tag)];
  std::int64_t now;
  if (set) {
    cell.current.store(delta, std::memory_order_relaxed);
    now = delta;
  } else {
    now = cell.current.fetch_add(delta, std::memory_order_relaxed) + delta;
  }
  std::int64_t peak = cell.peak.load(std::memory_order_relaxed);
  while (now > peak && !cell.peak.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  cell.events.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal_obs

const char* MemTagName(MemTag tag) {
  switch (tag) {
    case MemTag::kGraph:
      return "graph";
    case MemTag::kRtree:
      return "rtree";
    case MemTag::kUbodt:
      return "ubodt";
    case MemTag::kMatrix:
      return "matrix";
    case MemTag::kFlightRecorder:
      return "flight_recorder";
    case MemTag::kOther:
      return "other";
  }
  return "unknown";
}

MemTagStats GetMemTagStats(MemTag tag) {
  MemTagStats out;
  if (tag == MemTag::kMatrix) {
    // Matrix storage is already accounted by nn (every Matrix special
    // member); bridging at read time keeps the nn hot path free of a second
    // hook.
    const nn::MatrixAllocStats stats = nn::GetMatrixAllocStats();
    out.current_bytes = stats.live_bytes;
    out.peak_bytes = stats.peak_bytes;
    out.events = stats.total_bytes > 0 ? 1 : 0;
    return out;
  }
  const internal_obs::MemTagCell& cell =
      internal_obs::g_mem_cells[static_cast<int>(tag)];
  out.current_bytes = cell.current.load(std::memory_order_relaxed);
  out.peak_bytes = cell.peak.load(std::memory_order_relaxed);
  out.events = cell.events.load(std::memory_order_relaxed);
  return out;
}

RssSample SampleRss() {
  RssSample out;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long long kb = 0;
      if (std::sscanf(line, "VmRSS: %lld kB", &kb) == 1) {
        out.rss_bytes = static_cast<std::int64_t>(kb) * 1024;
      } else if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
        out.rss_peak_bytes = static_cast<std::int64_t>(kb) * 1024;
      }
    }
    std::fclose(f);
  }
  if (out.rss_peak_bytes == 0) {
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      // ru_maxrss is KiB on Linux.
      out.rss_peak_bytes = static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
    }
  }
  if (out.rss_bytes == 0) out.rss_bytes = out.rss_peak_bytes;
  return out;
}

std::string MemoryJson() {
  const RssSample rss = SampleRss();
  JsonWriter w;
  w.BeginObject();
  w.Key("rss_bytes").Int(rss.rss_bytes);
  w.Key("rss_peak_bytes").Int(rss.rss_peak_bytes);
  w.Key("subsystems").BeginArray();
  for (int i = 0; i < kMemTagCount; ++i) {
    const MemTag tag = static_cast<MemTag>(i);
    const MemTagStats stats = GetMemTagStats(tag);
    w.BeginObject();
    w.Key("name").String(MemTagName(tag));
    w.Key("current_bytes").Int(stats.current_bytes);
    w.Key("peak_bytes").Int(stats.peak_bytes);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void PublishMemoryMetrics(MetricRegistry* registry) {
  const RssSample rss = SampleRss();
  registry->GetGauge("mem.rss.bytes")->Set(static_cast<double>(rss.rss_bytes));
  registry->GetGauge("mem.rss_peak.bytes")
      ->Set(static_cast<double>(rss.rss_peak_bytes));
  for (int i = 0; i < kMemTagCount; ++i) {
    const MemTag tag = static_cast<MemTag>(i);
    const MemTagStats stats = GetMemTagStats(tag);
    const Labels labels = {{"subsystem", MemTagName(tag)}};
    registry->GetGauge("mem.subsystem.bytes", labels)
        ->Set(static_cast<double>(stats.current_bytes));
    registry->GetGauge("mem.subsystem.peak.bytes", labels)
        ->Set(static_cast<double>(stats.peak_bytes));
  }
}

void EnableMemStats(bool enabled) {
  internal_obs::g_mem_stats_enabled.store(enabled, std::memory_order_relaxed);
}

bool InitMemStatsFromEnv() {
  const char* env = std::getenv("TRMMA_MEM_STATS");
  const bool enabled =
      !(env != nullptr && (std::strcmp(env, "0") == 0 ||
                           std::strcmp(env, "off") == 0));
  EnableMemStats(enabled);
  return enabled;
}

void ResetMemStats() {
  for (internal_obs::MemTagCell& cell : internal_obs::g_mem_cells) {
    cell.current.store(0, std::memory_order_relaxed);
    cell.peak.store(0, std::memory_order_relaxed);
    cell.events.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace trmma
