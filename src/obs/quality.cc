#include "obs/quality.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace trmma {
namespace obs {

namespace internal_obs {
std::atomic<bool> g_quality_enabled{false};
std::atomic<int> g_quality_phase{static_cast<int>(QualityPhase::kServe)};
}  // namespace internal_obs

// ---------------------------------------------------------------------------
// Calibration primitives.
// ---------------------------------------------------------------------------

CalibrationSummary ComputeCalibration(
    const std::vector<ConfidenceSample>& samples, int num_bins) {
  CalibrationSummary out;
  if (num_bins < 1) num_bins = 1;
  out.bins.resize(num_bins);
  for (int b = 0; b < num_bins; ++b) {
    out.bins[b].lo = static_cast<double>(b) / num_bins;
    out.bins[b].hi = static_cast<double>(b + 1) / num_bins;
  }
  double brier_sum = 0.0;
  for (const ConfidenceSample& s : samples) {
    if (!std::isfinite(s.confidence)) {
      ++out.dropped_nonfinite;
      continue;
    }
    if (s.confidence < 0.0 || s.confidence > 1.0) {
      ++out.dropped_out_of_range;
      continue;
    }
    const int b = std::min(num_bins - 1,
                           static_cast<int>(s.confidence * num_bins));
    CalibrationBin& bin = out.bins[b];
    ++bin.count;
    bin.confidence_sum += s.confidence;
    bin.correct_sum += s.correct ? 1.0 : 0.0;
    ++out.samples;
    const double err = s.confidence - (s.correct ? 1.0 : 0.0);
    brier_sum += err * err;
  }
  if (out.samples > 0) {
    double ece = 0.0;
    for (const CalibrationBin& bin : out.bins) {
      if (bin.count == 0) continue;
      ece += static_cast<double>(bin.count) / out.samples *
             std::abs(bin.accuracy() - bin.mean_confidence());
    }
    out.ece = ece;
    out.brier = brier_sum / out.samples;
  }
  return out;
}

double PopulationStabilityIndex(const std::vector<double>& expected_counts,
                                const std::vector<double>& observed_counts,
                                bool* degenerate) {
  if (degenerate != nullptr) *degenerate = false;
  const auto total = [](const std::vector<double>& v) {
    double t = 0.0;
    for (double x : v) {
      if (std::isfinite(x) && x > 0.0) t += x;
    }
    return t;
  };
  const double expected_total = total(expected_counts);
  const double observed_total = total(observed_counts);
  if (expected_counts.empty() || observed_counts.empty() ||
      expected_counts.size() != observed_counts.size() ||
      expected_total <= 0.0 || observed_total <= 0.0) {
    if (degenerate != nullptr) *degenerate = true;
    return 0.0;
  }
  // Additive smoothing keeps empty bins finite; with identical shapes the
  // smoothed terms cancel, so PSI(x, x) is exactly 0.
  const double kSmooth = 1e-6;
  double psi = 0.0;
  for (std::size_t i = 0; i < expected_counts.size(); ++i) {
    const double e = std::isfinite(expected_counts[i]) && expected_counts[i] > 0
                         ? expected_counts[i]
                         : 0.0;
    const double o = std::isfinite(observed_counts[i]) && observed_counts[i] > 0
                         ? observed_counts[i]
                         : 0.0;
    const double p = e / expected_total + kSmooth;
    const double q = o / observed_total + kSmooth;
    psi += (p - q) * std::log(p / q);
  }
  return psi;
}

// ---------------------------------------------------------------------------
// Slice taxonomy.
// ---------------------------------------------------------------------------

std::string EpsilonBucket(double effective_interval_s) {
  if (!(effective_interval_s > 0.0)) return "unknown";
  if (effective_interval_s <= 15.0) return "<=15s";
  if (effective_interval_s <= 30.0) return "<=30s";
  if (effective_interval_s <= 60.0) return "<=60s";
  if (effective_interval_s <= 120.0) return "<=120s";
  if (effective_interval_s <= 180.0) return "<=180s";
  return ">180s";
}

std::string GapBucket(double max_gap_s) {
  if (!(max_gap_s > 0.0)) return "unknown";
  if (max_gap_s <= 30.0) return "<=30s";
  if (max_gap_s <= 60.0) return "<=60s";
  if (max_gap_s <= 120.0) return "<=120s";
  if (max_gap_s <= 300.0) return "<=300s";
  return ">300s";
}

std::string CandidateCountBucket(double mean_candidates) {
  if (!(mean_candidates > 0.0)) return "none";
  if (mean_candidates <= 2.0) return "1-2";
  if (mean_candidates <= 4.0) return "3-4";
  if (mean_candidates <= 8.0) return "5-8";
  return ">8";
}

std::string DensityBucket(double mean_kth_distance_m) {
  if (!(mean_kth_distance_m > 0.0)) return "unknown";
  if (mean_kth_distance_m <= 50.0) return "dense(<=50m)";
  if (mean_kth_distance_m <= 150.0) return "mid(50-150m)";
  if (mean_kth_distance_m <= 400.0) return "sparse(150-400m)";
  return "isolated(>400m)";
}

std::string OutcomeBucket(const std::string& outcome) {
  return outcome.empty() ? "none" : outcome;
}

QualitySample QualitySampleFromRecord(const RequestRecord& record) {
  QualitySample s;
  s.kind = record.kind;
  s.method = record.method;
  s.city = record.city;
  s.quality = record.quality;

  // Effective sampling interval: the dataset's dense interval ε stretched
  // by the sparsification keep-rate γ (Figs. 7/11 sweep γ at fixed ε).
  // Records that predate the gamma field fall back to the observed mean
  // inter-point interval.
  double effective = 0.0;
  if (record.epsilon > 0) {
    effective = record.gamma > 0.0
                    ? static_cast<double>(record.epsilon) / record.gamma
                    : static_cast<double>(record.epsilon);
  }
  double max_gap = 0.0;
  if (record.input.size() >= 2) {
    double span = 0.0;
    for (std::size_t i = 1; i < record.input.size(); ++i) {
      const double dt = record.input[i].t - record.input[i - 1].t;
      max_gap = std::max(max_gap, dt);
      span += dt;
    }
    if (effective <= 0.0 && span > 0.0) {
      effective = span / static_cast<double>(record.input.size() - 1);
    }
  }
  s.epsilon_bucket = EpsilonBucket(effective);
  s.gap_bucket = GapBucket(max_gap);

  double candidate_sum = 0.0;
  double kth_sum = 0.0;
  std::int64_t kth_points = 0;
  for (const auto& per_point : record.candidates) {
    candidate_sum += static_cast<double>(per_point.size());
    double kth = 0.0;
    for (const RecordCandidate& c : per_point) {
      if (std::isfinite(c.distance)) kth = std::max(kth, c.distance);
    }
    if (!per_point.empty()) {
      kth_sum += kth;
      ++kth_points;
    }
  }
  const double n_points =
      record.candidates.empty() ? 0.0
                                : static_cast<double>(record.candidates.size());
  s.candidate_bucket =
      CandidateCountBucket(n_points > 0.0 ? candidate_sum / n_points : 0.0);
  s.density_bucket =
      DensityBucket(kth_points > 0 ? kth_sum / kth_points : 0.0);
  s.outcome_bucket = OutcomeBucket(record.outcome);

  // Confidence/correctness pairs: score i belongs to input point i, whose
  // true segment (when known) is truth_segments[i]. Matched points carry
  // the chosen segment. Without truth the scores stay unpaired; non-finite
  // ones are still surfaced through the counter.
  const std::size_t pairable =
      std::min({record.scores.size(), record.matched.size(),
                record.truth_segments.size()});
  for (std::size_t i = 0; i < pairable; ++i) {
    if (record.truth_segments[i] < 0) continue;
    s.confidences.push_back(
        {record.scores[i],
         record.matched[i].segment == record.truth_segments[i]});
  }
  if (record.truth_segments.empty() || record.matched.empty()) {
    for (double score : record.scores) {
      if (!std::isfinite(score)) ++s.confidence_nonfinite;
    }
  }

  // Candidate-rank observations: where in the (distance-ordered) candidate
  // list the chosen and the true segment sit.
  const auto rank_of = [](const std::vector<RecordCandidate>& cs,
                          std::int64_t segment) {
    if (segment < 0) return kQualityRankBuckets;
    for (std::size_t r = 0; r < cs.size(); ++r) {
      if (cs[r].segment == segment) {
        return std::min(static_cast<int>(r), kQualityRankBuckets);
      }
    }
    return kQualityRankBuckets;
  };
  const std::size_t rankable =
      std::min(record.candidates.size(), record.matched.size());
  for (std::size_t i = 0; i < rankable; ++i) {
    s.chosen_rank.push_back(
        rank_of(record.candidates[i], record.matched[i].segment));
  }
  const std::size_t truth_rankable =
      std::min(record.candidates.size(), record.truth_segments.size());
  for (std::size_t i = 0; i < truth_rankable; ++i) {
    if (record.truth_segments[i] < 0) continue;
    s.truth_rank.push_back(
        rank_of(record.candidates[i], record.truth_segments[i]));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

void QualityAggregator::Add(const QualitySample& sample) {
  const std::string key = sample.kind + "|" + sample.method + "|" + sample.city;
  GroupAgg& g = groups_[key];
  ++g.requests;
  if (sample.quality >= 0.0) {
    if (g.scored == 0) {
      g.quality_min = sample.quality;
      g.quality_max = sample.quality;
    } else {
      g.quality_min = std::min(g.quality_min, sample.quality);
      g.quality_max = std::max(g.quality_max, sample.quality);
    }
    ++g.scored;
    g.quality_sum += sample.quality;
  }
  const std::pair<const char*, const std::string*> dims[] = {
      {"epsilon", &sample.epsilon_bucket},
      {"gap", &sample.gap_bucket},
      {"candidates", &sample.candidate_bucket},
      {"density", &sample.density_bucket},
      {"outcome", &sample.outcome_bucket},
  };
  for (const auto& [dim, bucket] : dims) {
    SliceAgg& slice = g.slices[dim][*bucket];
    ++slice.requests;
    if (sample.quality >= 0.0) {
      ++slice.scored;
      slice.quality_sum += sample.quality;
    }
  }
  g.confidences.insert(g.confidences.end(), sample.confidences.begin(),
                       sample.confidences.end());
  g.confidence_nonfinite += sample.confidence_nonfinite;
  for (int r : sample.chosen_rank) {
    ++g.chosen_rank[std::clamp(r, 0, kQualityRankBuckets)];
  }
  for (int r : sample.truth_rank) {
    ++g.truth_rank[std::clamp(r, 0, kQualityRankBuckets)];
  }
}

bool QualityAggregator::HasData() const { return !groups_.empty(); }

std::int64_t QualityAggregator::requests() const {
  std::int64_t n = 0;
  for (const auto& [key, g] : groups_) n += g.requests;
  return n;
}

std::string QualityAggregator::GroupsJson(int reliability_bins) const {
  JsonWriter w;
  w.BeginArray();
  for (const auto& [key, g] : groups_) {
    const std::size_t p1 = key.find('|');
    const std::size_t p2 = key.find('|', p1 + 1);
    w.BeginObject();
    w.Key("kind").String(key.substr(0, p1));
    w.Key("method").String(key.substr(p1 + 1, p2 - p1 - 1));
    w.Key("city").String(key.substr(p2 + 1));
    w.Key("requests").Int(g.requests);
    w.Key("scored").Int(g.scored);
    w.Key("mean_quality")
        .Number(g.scored > 0 ? g.quality_sum / g.scored : -1.0);
    w.Key("min_quality").Number(g.scored > 0 ? g.quality_min : -1.0);
    w.Key("max_quality").Number(g.scored > 0 ? g.quality_max : -1.0);
    w.Key("slices").BeginArray();
    for (const auto& [dim, buckets] : g.slices) {
      for (const auto& [bucket, slice] : buckets) {
        w.BeginObject();
        w.Key("dimension").String(dim);
        w.Key("bucket").String(bucket);
        w.Key("requests").Int(slice.requests);
        w.Key("scored").Int(slice.scored);
        w.Key("mean_quality")
            .Number(slice.scored > 0 ? slice.quality_sum / slice.scored
                                     : -1.0);
        w.EndObject();
      }
    }
    w.EndArray();
    const CalibrationSummary cal =
        ComputeCalibration(g.confidences, reliability_bins);
    w.Key("calibration").BeginObject();
    w.Key("samples").Int(cal.samples);
    w.Key("dropped_nonfinite")
        .Int(cal.dropped_nonfinite + g.confidence_nonfinite);
    w.Key("dropped_out_of_range").Int(cal.dropped_out_of_range);
    w.Key("ece").Number(cal.ece);
    w.Key("brier").Number(cal.brier);
    w.Key("bins").BeginArray();
    for (const CalibrationBin& bin : cal.bins) {
      w.BeginObject();
      w.Key("lo").Number(bin.lo);
      w.Key("hi").Number(bin.hi);
      w.Key("count").Int(bin.count);
      w.Key("mean_confidence").Number(bin.mean_confidence());
      w.Key("accuracy").Number(bin.accuracy());
      w.EndObject();
    }
    w.EndArray();
    w.Key("chosen_rank").BeginArray();
    for (std::int64_t c : g.chosen_rank) w.Int(c);
    w.EndArray();
    w.Key("truth_rank").BeginArray();
    for (std::int64_t c : g.truth_rank) w.Int(c);
    w.EndArray();
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

void QualityAggregator::Reset() { groups_.clear(); }

// ---------------------------------------------------------------------------
// Feature drift.
// ---------------------------------------------------------------------------

namespace {

/// Fixed per-feature histogram upper bounds (lower bound 0, linear bins);
/// values at or beyond the bound land in the last bin. Fixed layouts keep
/// train and serve histograms comparable without a negotiation step.
constexpr double kFeatureUpperBound[kNumQualityFeatures] = {
    160.0,  // nearest candidate distance, m
    800.0,  // k-th candidate distance, m
    16.0,   // candidate count
    480.0,  // gap seconds
    320.0,  // trajectory points
};

const char* const kFeatureNames[kNumQualityFeatures] = {
    "nearest_candidate_m", "kth_candidate_m", "candidate_count",
    "gap_seconds",         "traj_points",
};

}  // namespace

const char* QualityFeatureName(int feature) {
  if (feature < 0 || feature >= kNumQualityFeatures) return "unknown";
  return kFeatureNames[feature];
}

QualityLog& QualityLog::Global() {
  static QualityLog* log = new QualityLog();
  return *log;
}

void QualityLog::Configure(bool enabled) {
  internal_obs::g_quality_enabled.store(enabled, std::memory_order_relaxed);
  internal_obs::RefreshCaptureGate();
}

void QualityLog::ConfigureFromEnv() {
  const char* env = std::getenv("TRMMA_QUALITY");
  Configure(env != nullptr && env[0] != '\0' &&
            !(env[0] == '0' && env[1] == '\0'));
}

void QualityLog::Ingest(const RequestRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  aggregator_.AddRecord(record);
}

void QualityLog::ObserveFeature(int feature, double value) {
  if (feature < 0 || feature >= kNumQualityFeatures) return;
  if (!std::isfinite(value)) return;
  const double bound = kFeatureUpperBound[feature];
  int bin = static_cast<int>(value / bound * kDriftBins);
  bin = std::clamp(bin, 0, kDriftBins - 1);
  const int phase =
      internal_obs::g_quality_phase.load(std::memory_order_relaxed);
  drift_[feature][phase & 1][bin].fetch_add(1, std::memory_order_relaxed);
}

bool QualityLog::HasData() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregator_.HasData();
}

std::vector<double> QualityLog::DriftCounts(int feature,
                                            QualityPhase phase) const {
  std::vector<double> out(kDriftBins, 0.0);
  if (feature < 0 || feature >= kNumQualityFeatures) return out;
  const int p = static_cast<int>(phase) & 1;
  for (int b = 0; b < kDriftBins; ++b) {
    out[b] = static_cast<double>(
        drift_[feature][p][b].load(std::memory_order_relaxed));
  }
  return out;
}

std::string QualityLog::SummaryJson() const {
  std::string groups;
  {
    std::lock_guard<std::mutex> lock(mu_);
    groups = aggregator_.GroupsJson();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("drift").BeginArray();
  for (int f = 0; f < kNumQualityFeatures; ++f) {
    const std::vector<double> train = DriftCounts(f, QualityPhase::kTrain);
    const std::vector<double> serve = DriftCounts(f, QualityPhase::kServe);
    double train_total = 0.0;
    double serve_total = 0.0;
    for (double x : train) train_total += x;
    for (double x : serve) serve_total += x;
    if (train_total <= 0.0 && serve_total <= 0.0) continue;
    bool degenerate = false;
    const double psi = PopulationStabilityIndex(train, serve, &degenerate);
    w.BeginObject();
    w.Key("feature").String(QualityFeatureName(f));
    w.Key("train").Int(static_cast<std::int64_t>(train_total));
    w.Key("serve").Int(static_cast<std::int64_t>(serve_total));
    w.Key("psi").Number(psi);
    w.Key("degenerate").Bool(degenerate);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  // Splice the groups array in front of "drift" (same pop-the-brace trick
  // as RunReport::ToJson, on the opening side).
  std::string out = w.TakeString();
  out.erase(0, 1);
  return "{\"groups\":" + groups + "," + out;
}

void QualityLog::ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aggregator_.Reset();
  }
  for (int f = 0; f < kNumQualityFeatures; ++f) {
    for (int p = 0; p < 2; ++p) {
      for (int b = 0; b < kDriftBins; ++b) {
        drift_[f][p][b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace obs
}  // namespace trmma
