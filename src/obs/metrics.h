#ifndef TRMMA_OBS_METRICS_H_
#define TRMMA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/tracked_mutex.h"

namespace trmma {
namespace obs {

/// Instrumentation levels, cheapest first. kOff makes every TRMMA_SPAN and
/// gated counter a single relaxed load + branch; kMetrics feeds the metric
/// registry (histogram per span site); kTrace additionally records recent
/// spans into the ring buffer of trace.h.
enum class TraceMode { kOff = 0, kMetrics = 1, kTrace = 2 };

namespace internal_obs {
/// Process-wide mode. Initialized from the TRMMA_TRACE environment variable
/// ("1"/"on"/"full" -> kTrace, "metrics" -> kMetrics, otherwise kOff).
extern std::atomic<int> g_trace_mode;
}  // namespace internal_obs

inline TraceMode CurrentTraceMode() {
  return static_cast<TraceMode>(
      internal_obs::g_trace_mode.load(std::memory_order_relaxed));
}

/// Fast gate for hot-path instrumentation: one relaxed load + compare.
inline bool MetricsEnabled() { return CurrentTraceMode() != TraceMode::kOff; }

/// Programmatic override (e.g. bench mains enable kMetrics so reports carry
/// span histograms even without TRMMA_TRACE).
void SetTraceMode(TraceMode mode);

/// Metric labels as key/value pairs; canonicalized (sorted by key) when the
/// metric is registered, so label order does not create duplicates.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Whether histograms capture exemplars (trace ids attached to recent
/// observations). Defaults on; TRMMA_EXEMPLARS=0/off disables the capture
/// and the OpenMetrics emission in WriteText.
bool ExemplarsEnabled();
/// Programmatic override (tests, benches). Wins over the environment.
void SetExemplarsEnabled(bool enabled);

/// One exemplar: an observed value and the trace that produced it.
struct HistogramExemplar {
  double value = 0.0;
  uint64_t trace_id = 0;
};

/// Monotonically increasing counter. Increment is a relaxed atomic add.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with lock-free recording: per-bucket atomic
/// counters plus atomic count/sum/min/max. Quantiles are estimated by
/// linear interpolation inside the bucket containing the target rank, which
/// is exact enough for latency reporting (p50/p95/p99) with exponential
/// bucket layouts.
class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bounds; an implicit overflow
  /// bucket catches everything above the last bound. An empty vector uses
  /// DefaultLatencyBounds().
  explicit Histogram(std::vector<double> bounds = {});

  /// Non-finite values are dropped (they would poison sum/quantiles) and
  /// tallied in DroppedCount().
  void Observe(double v);

  /// Observe plus exemplar capture: when `exemplar_trace_id` is nonzero and
  /// exemplars are enabled, stamps {v, trace_id} into a small wait-free ring
  /// of recent exemplars so WriteText can link the metric to an offending
  /// trace. With trace_id == 0 this is exactly Observe(v) plus one branch.
  void Observe(double v, uint64_t exemplar_trace_id) {
    Observe(v);
    if (exemplar_trace_id != 0) CaptureExemplar(v, exemplar_trace_id);
  }

  /// Largest-valued of the recent captured exemplars ("recent worst");
  /// false when none were captured since the last Reset.
  bool WorstExemplar(HistogramExemplar* out) const;

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t DroppedCount() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;  ///< 0 when empty
  double Max() const;  ///< 0 when empty
  double Mean() const;
  /// Quantile estimate for q in [0,1]; 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<int64_t> BucketCounts() const;
  void Reset();

  /// Adds `other`'s observations into this histogram (cross-thread / per-
  /// shard aggregation). Requires identical bucket bounds — returns false
  /// and leaves this histogram untouched on a mismatch. Bucket counts are
  /// snapshotted first, so count_ stays consistent with the buckets even if
  /// `other` is being observed concurrently (and self-merge doubles
  /// cleanly). Dropped counts propagate; a non-finite sum in `other` is
  /// skipped rather than poisoning this sum; empty-histogram sentinels never
  /// widen min/max.
  bool Merge(const Histogram& other);

  /// `count` buckets growing geometrically from `start` by `factor`.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);
  /// Span-latency default: 1us .. ~67s, factor 2.
  static const std::vector<double>& DefaultLatencyBounds();

 private:
  /// Per-slot seqlock: `ver` is even when the slot is stable, odd while a
  /// writer owns it. Writers claim a slot by CAS and *drop* the exemplar on
  /// contention instead of spinning — the capture path must stay wait-free
  /// because it runs inside Observe on serving hot paths.
  struct ExemplarSlot {
    std::atomic<uint64_t> ver{0};
    std::atomic<double> value{0.0};
    std::atomic<uint64_t> trace_id{0};
  };
  static constexpr int kExemplarSlots = 4;

  void CaptureExemplar(double v, uint64_t trace_id);

  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<uint64_t> exemplar_cursor_{0};
  ExemplarSlot exemplars_[kExemplarSlots];
};

/// Read-only summary of one metric family (all label sets of a name merged),
/// as returned by MetricRegistry::HistogramStatsByName.
struct HistogramStats {
  int64_t count = 0;
  int64_t dropped = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Registry of named metrics. Get* registers on first use and is idempotent:
/// the same name+labels always returns the same object (a histogram's bucket
/// bounds are fixed by the first registration). Returned pointers stay valid
/// for the registry's lifetime — Reset() zeroes values but never deallocates,
/// so call sites may cache them.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry used by spans and library instrumentation.
  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> bounds = {});

  /// Zeroes every registered metric; registrations (and pointers) survive.
  void Reset();

  /// One line per metric: `counter name{k=v} 42`. Sorted by key.
  std::string TextDump() const;
  /// {"counters":[...],"gauges":[...],"histograms":[...]} — see DESIGN.md.
  std::string JsonDump() const;
  /// Non-blocking JsonDump for the crash path: false (out untouched) when
  /// the registry lock is held, so the postmortem writer degrades the
  /// metrics section to null instead of deadlocking.
  bool TryJsonDump(std::string* out) const;
  /// Prometheus text exposition format (version 0.0.4): `# HELP`/`# TYPE`
  /// once per metric family, sanitized metric names (dots become
  /// underscores), escaped label values, histograms rendered as summaries
  /// with quantile labels plus _sum/_count.
  std::string WriteText() const;

  /// Read-only aggregate lookups over every label set of `name` (used by the
  /// SLO watchdog — never registers anything). Return false when no metric
  /// with that name exists.
  bool SumCountersByName(const std::string& name, int64_t* out) const;
  /// Max across label sets — the conservative reading for threshold checks.
  bool MaxGaugeByName(const std::string& name, double* out) const;
  /// Merges every label set of `name` into a temporary histogram (label sets
  /// whose bounds differ from the first are skipped) and summarizes it.
  bool HistogramStatsByName(const std::string& name, HistogramStats* out) const;
  /// Worst recent exemplar across every label set of `name`; false when the
  /// metric does not exist or no exemplar was captured.
  bool WorstExemplarByName(const std::string& name,
                           HistogramExemplar* out) const;

 private:
  /// Canonical map key: name{k=v,...} with labels sorted by key.
  static std::string MakeKey(const std::string& name, const Labels& labels);

  std::string JsonDumpLocked() const;

  struct Entry {
    std::string name;
    Labels labels;  ///< sorted
  };

  mutable TrackedMutex mu_{"metrics.registry"};
  std::map<std::string, std::pair<Entry, std::unique_ptr<Counter>>> counters_;
  std::map<std::string, std::pair<Entry, std::unique_ptr<Gauge>>> gauges_;
  std::map<std::string, std::pair<Entry, std::unique_ptr<Histogram>>>
      histograms_;
};

}  // namespace obs
}  // namespace trmma

#endif  // TRMMA_OBS_METRICS_H_
