#ifndef TRMMA_ROBUST_FAULT_INJECTION_H_
#define TRMMA_ROBUST_FAULT_INJECTION_H_

#include <mutex>
#include <string>

#include "common/random.h"
#include "traj/types.h"

namespace trmma {

/// Rates of the deterministic corruption operators. All zero (the default)
/// means injection is fully disabled. Populated either directly by tests or
/// from the TRMMA_FAULTS environment variable, e.g.
///   TRMMA_FAULTS="coord_spike=0.05,coord_nan=0.02,ts_shuffle=0.05,
///                 drop_point=0.05,io_fail=0.01,csv_truncate=0.02,seed=9"
struct FaultInjectionConfig {
  double coord_spike_prob = 0.0;  ///< per point: large coordinate jump
  double coord_nan_prob = 0.0;    ///< per point: NaN latitude (dropped field)
  double ts_shuffle_prob = 0.0;   ///< per trajectory: swap two timestamps
  double drop_point_prob = 0.0;   ///< per point: remove the observation
  double io_fail_prob = 0.0;      ///< per named site: simulated read failure
  double csv_truncate_prob = 0.0; ///< per CSV row: truncate or drop fields
  double spike_m = 5000.0;        ///< magnitude of coordinate spikes
  uint64_t seed = 20240817;

  bool AnyEnabled() const {
    return coord_spike_prob > 0 || coord_nan_prob > 0 || ts_shuffle_prob > 0 ||
           drop_point_prob > 0 || io_fail_prob > 0 || csv_truncate_prob > 0;
  }

  /// Parses TRMMA_FAULTS (unset/empty -> all zeros). Unknown keys and
  /// malformed values are warned about and ignored.
  static FaultInjectionConfig FromEnv();
};

/// Seedable source of deterministic input corruption for chaos testing.
/// One instance owns one random stream, so a fixed (config, call sequence)
/// reproduces the exact same faults. Sites are string names checked by
/// production code through common/fault_points.h; Install() routes those
/// checks here.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectionConfig& config);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-wide injector configured from TRMMA_FAULTS; installed as the
  /// fault-point handler automatically when any rate is nonzero.
  static FaultInjector& Global();

  bool enabled() const { return config_.AnyEnabled(); }
  const FaultInjectionConfig& config() const { return config_; }

  /// Routes common/fault_points.h checks to this injector (and away from
  /// any previously installed one). Uninstall restores "no handler".
  void Install();
  static void Uninstall();

  /// True when the named site should simulate a failure (io_fail_prob).
  bool ShouldFail(const char* site);

  /// Applies coordinate spikes, NaN fields, point drops and timestamp
  /// shuffles to `traj` in place, drawing from the injector's shared
  /// stream (mutex-guarded; the fault sequence depends on call order).
  void CorruptTrajectory(Trajectory* traj);

  /// Same corruption operators, but drawn from a private stream seeded by
  /// MixSeed(config.seed, stream). Lock-free and interleaving-independent:
  /// under the concurrent serving engine each request passes its request id
  /// as `stream`, so the faults a request sees are a pure function of
  /// (config, request id) — retries and hedges of the same request re-read
  /// the identical corrupted input.
  void CorruptTrajectorySeeded(Trajectory* traj, uint64_t stream) const;

  /// Applies row truncation / field drops to raw CSV text.
  std::string CorruptCsv(const std::string& text);

 private:
  FaultInjectionConfig config_;
  std::mutex mu_;
  Rng rng_;
};

}  // namespace trmma

#endif  // TRMMA_ROBUST_FAULT_INJECTION_H_
