#include "robust/sanitize.h"

#include <cmath>

#include "obs/metrics.h"

namespace trmma {
namespace {

bool IsFinitePoint(const GpsPoint& p) {
  return std::isfinite(p.pos.lat) && std::isfinite(p.pos.lng) &&
         std::isfinite(p.t);
}

BBox NetworkBBox(const RoadNetwork& network) {
  BBox box;
  for (NodeId i = 0; i < network.num_nodes(); ++i) {
    const Vec2& xy = network.node(i).xy;
    if (i == 0) {
      box = BBox{xy.x, xy.y, xy.x, xy.y};
    } else {
      box = BBox::Union(box, BBox{xy.x, xy.y, xy.x, xy.y});
    }
  }
  return box;
}

void CountReport(const SanitizeReport& report, bool failed) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  static obs::Counter* const points =
      reg.GetCounter("robust.sanitize.points_in");
  static obs::Counter* const dropped =
      reg.GetCounter("robust.sanitize.points_dropped");
  static obs::Counter* const clamped =
      reg.GetCounter("robust.sanitize.points_clamped");
  static obs::Counter* const splits = reg.GetCounter("robust.sanitize.splits");
  static obs::Counter* const empty = reg.GetCounter("robust.sanitize.emptied");
  points->Increment(report.input_points);
  dropped->Increment(report.dropped + report.discarded_points);
  clamped->Increment(report.clamped);
  splits->Increment(report.splits);
  if (failed) empty->Increment();
}

}  // namespace

SanitizeConfig SanitizeConfig::ForNetwork(const RoadNetwork& network) {
  SanitizeConfig config;
  config.network = &network;
  return config;
}

std::vector<Trajectory> SanitizeTrajectory(const Trajectory& traj,
                                           const SanitizeConfig& config,
                                           SanitizeReport* report) {
  SanitizeReport local;
  SanitizeReport& rep = report != nullptr ? *report : local;
  rep = SanitizeReport{};
  rep.input_points = traj.size();

  const bool have_net =
      config.network != nullptr && config.network->num_nodes() > 0;
  const BBox box = have_net
                       ? NetworkBBox(*config.network)
                             .Expanded(config.bbox_margin_m)
                       : BBox{};

  // Projection for meter-space distances: the network's when available,
  // otherwise anchored at the first finite input point.
  LocalProjection proj;
  if (have_net) {
    proj = config.network->projection();
  } else {
    for (const GpsPoint& p : traj.points) {
      if (IsFinitePoint(p)) {
        proj = LocalProjection(p.pos);
        break;
      }
    }
  }

  std::vector<Trajectory> pieces;
  Trajectory piece;
  Vec2 last_xy{0, 0};
  auto cut = [&] {
    if (!piece.empty()) {
      pieces.push_back(std::move(piece));
      piece = Trajectory{};
    }
  };

  for (const GpsPoint& input : traj.points) {
    GpsPoint p = input;
    // Rule 1: finiteness. Clamping a NaN is undefined; always drop.
    if (!IsFinitePoint(p)) {
      ++rep.nonfinite;
      ++rep.dropped;
      continue;
    }
    Vec2 xy = proj.ToMeters(p.pos);

    // Rule 2: inside the mapped area (+ margin).
    if (have_net && !box.Contains(xy)) {
      ++rep.out_of_bbox;
      if (config.policy == RepairPolicy::kClamp) {
        xy.x = std::min(std::max(xy.x, box.min_x), box.max_x);
        xy.y = std::min(std::max(xy.y, box.min_y), box.max_y);
        p.pos = proj.ToLatLng(xy);
        ++rep.clamped;
      } else {
        // kSplit also drops: an off-map fix carries no usable position.
        ++rep.dropped;
        continue;
      }
    }

    if (!piece.empty()) {
      const GpsPoint& prev = piece.points.back();
      // Rule 3: strictly increasing timestamps.
      if (p.t <= prev.t) {
        ++rep.non_monotonic;
        if (config.policy == RepairPolicy::kSplit) {
          ++rep.splits;
          cut();
          // fall through: p starts the next piece
        } else {
          ++rep.dropped;
          continue;
        }
      }
    }
    if (!piece.empty()) {
      // Rule 4: speed-feasible motion between consecutive points.
      const GpsPoint& prev = piece.points.back();
      const double dt = p.t - prev.t;
      const Vec2 delta = xy - last_xy;
      const double dist = delta.Norm();
      if (dist > config.max_speed_mps * dt) {
        ++rep.speed_violations;
        if (config.policy == RepairPolicy::kClamp) {
          const double scale = config.max_speed_mps * dt / dist;
          xy = last_xy + Vec2{delta.x * scale, delta.y * scale};
          p.pos = proj.ToLatLng(xy);
          ++rep.clamped;
        } else if (config.policy == RepairPolicy::kSplit) {
          ++rep.splits;
          cut();
        } else {
          ++rep.dropped;
          continue;
        }
      }
    }
    piece.points.push_back(p);
    last_xy = xy;
  }
  cut();

  // Discard pieces too short to recover from.
  std::vector<Trajectory> out;
  for (Trajectory& candidate : pieces) {
    if (candidate.size() >= std::max(config.min_points, 1)) {
      out.push_back(std::move(candidate));
    } else {
      rep.discarded_points += candidate.size();
    }
  }
  CountReport(rep, out.empty());
  return out;
}

}  // namespace trmma
