#include "robust/fault_injection.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/fault_points.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace trmma {
namespace {

/// Spikes are applied in degrees; city-scale conversion from meters.
constexpr double kMetersPerDegree = 111320.0;

bool TrampolineShouldFail(void* ctx, const char* site) {
  return static_cast<FaultInjector*>(ctx)->ShouldFail(site);
}

void CountInjected(const char* which, int64_t n = 1) {
  if (!obs::MetricsEnabled() || n == 0) return;
  obs::MetricRegistry::Global()
      .GetCounter("robust.faults_injected", {{"kind", which}})
      ->Increment(n);
}

/// Corruption body shared by the shared-stream and per-request entry
/// points; the caller owns locking (or stream isolation) around `rng`.
void CorruptTrajectoryWith(const FaultInjectionConfig& config, Rng& rng,
                           Trajectory* traj) {
  std::vector<GpsPoint> out;
  out.reserve(traj->points.size());
  int64_t spikes = 0;
  int64_t nans = 0;
  int64_t drops = 0;
  for (const GpsPoint& p : traj->points) {
    if (rng.Bernoulli(config.drop_point_prob)) {
      ++drops;
      continue;
    }
    GpsPoint q = p;
    if (rng.Bernoulli(config.coord_nan_prob)) {
      q.pos.lat = std::numeric_limits<double>::quiet_NaN();
      ++nans;
    } else if (rng.Bernoulli(config.coord_spike_prob)) {
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      const double deg = config.spike_m / kMetersPerDegree;
      q.pos.lat += deg * std::sin(angle);
      q.pos.lng += deg * std::cos(angle);
      ++spikes;
    }
    out.push_back(q);
  }
  if (out.size() >= 3 && rng.Bernoulli(config.ts_shuffle_prob)) {
    // Swap two distinct interior timestamps: a classic device-buffer bug.
    const size_t i = 1 + rng.UniformInt(out.size() - 2);
    size_t j = 1 + rng.UniformInt(out.size() - 2);
    if (i == j) j = i == out.size() - 2 ? i - 1 : i + 1;
    std::swap(out[i].t, out[j].t);
    CountInjected("ts_shuffle");
  }
  CountInjected("coord_spike", spikes);
  CountInjected("coord_nan", nans);
  CountInjected("drop_point", drops);
  traj->points = std::move(out);
}

}  // namespace

FaultInjectionConfig FaultInjectionConfig::FromEnv() {
  FaultInjectionConfig config;
  const char* env = std::getenv("TRMMA_FAULTS");
  if (env == nullptr || *env == '\0') return config;
  std::stringstream ss(env);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      TRMMA_LOG(Warning) << "TRMMA_FAULTS: ignoring malformed token '"
                         << token << "'";
      continue;
    }
    const std::string key = token.substr(0, eq);
    char* end = nullptr;
    const double value = std::strtod(token.c_str() + eq + 1, &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      TRMMA_LOG(Warning) << "TRMMA_FAULTS: ignoring malformed value in '"
                         << token << "'";
      continue;
    }
    if (key == "coord_spike") {
      config.coord_spike_prob = value;
    } else if (key == "coord_nan") {
      config.coord_nan_prob = value;
    } else if (key == "ts_shuffle") {
      config.ts_shuffle_prob = value;
    } else if (key == "drop_point") {
      config.drop_point_prob = value;
    } else if (key == "io_fail") {
      config.io_fail_prob = value;
    } else if (key == "csv_truncate") {
      config.csv_truncate_prob = value;
    } else if (key == "spike_m") {
      config.spike_m = value;
    } else if (key == "seed") {
      config.seed = static_cast<uint64_t>(value);
    } else {
      TRMMA_LOG(Warning) << "TRMMA_FAULTS: unknown key '" << key << "'";
    }
  }
  return config;
}

FaultInjector::FaultInjector(const FaultInjectionConfig& config)
    : config_(config), rng_(config.seed) {}

FaultInjector::~FaultInjector() = default;

FaultInjector& FaultInjector::Global() {
  static FaultInjector* const injector = [] {
    auto* inj = new FaultInjector(FaultInjectionConfig::FromEnv());
    if (inj->enabled()) {
      TRMMA_LOG(Warning) << "fault injection enabled via TRMMA_FAULTS";
      inj->Install();
    }
    return inj;
  }();
  return *injector;
}

void FaultInjector::Install() {
  InstallFaultHandler(&TrampolineShouldFail, this);
}

void FaultInjector::Uninstall() { ClearFaultHandler(); }

bool FaultInjector::ShouldFail(const char* site) {
  if (config_.io_fail_prob <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const bool fail = rng_.Bernoulli(config_.io_fail_prob);
  if (fail) {
    TRMMA_LOG(Debug) << "injecting failure at site " << site;
    CountInjected("io_fail");
  }
  return fail;
}

void FaultInjector::CorruptTrajectory(Trajectory* traj) {
  if (!enabled() || traj == nullptr || traj->empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  CorruptTrajectoryWith(config_, rng_, traj);
}

void FaultInjector::CorruptTrajectorySeeded(Trajectory* traj,
                                            uint64_t stream) const {
  if (!enabled() || traj == nullptr || traj->empty()) return;
  Rng rng(MixSeed(config_.seed, stream));
  CorruptTrajectoryWith(config_, rng, traj);
}

std::string FaultInjector::CorruptCsv(const std::string& text) {
  if (config_.csv_truncate_prob <= 0.0) return text;
  std::lock_guard<std::mutex> lock(mu_);
  std::stringstream in(text);
  std::string out;
  std::string line;
  int64_t corrupted = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && rng_.Bernoulli(config_.csv_truncate_prob)) {
      ++corrupted;
      if (rng_.Bernoulli(0.5)) {
        // Truncate the row mid-field (partial write / torn line).
        line.resize(rng_.UniformInt(line.size()) + 1);
      } else {
        // Replace the last field with garbage (corrupted numeric field).
        const size_t comma = line.find_last_of(',');
        if (comma != std::string::npos) {
          line = line.substr(0, comma + 1) + "##";
        }
      }
    }
    out += line;
    out += '\n';
  }
  CountInjected("csv_truncate", corrupted);
  return out;
}

}  // namespace trmma
