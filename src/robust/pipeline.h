#ifndef TRMMA_ROBUST_PIPELINE_H_
#define TRMMA_ROBUST_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "recovery/recovery.h"
#include "robust/sanitize.h"
#include "traj/types.h"

namespace trmma {

/// How a trajectory fared in the fault-tolerant pipeline (DESIGN.md §6).
enum class RecoveryOutcome {
  kOk,        ///< clean input, recovered on a single connected route
  kRepaired,  ///< sanitizer modified points but the full input was recovered
  kDegraded,  ///< splits, gap fill or partial piece failure reduced fidelity
  kFailed,    ///< nothing could be recovered
};

/// Stable lowercase label of an outcome ("ok", "repaired", ...).
const char* RecoveryOutcomeName(RecoveryOutcome outcome);

struct PipelineConfig {
  SanitizeConfig sanitize;
  double epsilon = 15.0;  ///< target ε-sampling rate passed to the method
};

/// Per-trajectory result: whatever could be recovered plus the full account
/// of the repairs and degradation it took to get there.
struct PipelineResult {
  RecoveryOutcome outcome = RecoveryOutcome::kFailed;
  MatchedTrajectory recovered;    ///< concatenated over sanitized pieces
  SanitizeReport sanitize_report;
  int route_sections = 0;         ///< summed over pieces
  int degraded_points = 0;        ///< summed over pieces
  int pieces_attempted = 0;
  int pieces_failed = 0;
  std::string error;              ///< first piece failure, when any

  bool failed() const { return outcome == RecoveryOutcome::kFailed; }
};

/// Running outcome tally, mirrored on the robust.pipeline.outcome metric.
struct PipelineCounters {
  int64_t ok = 0;
  int64_t repaired = 0;
  int64_t degraded = 0;
  int64_t failed = 0;

  int64_t total() const { return ok + repaired + degraded + failed; }
};

/// Fault-tolerant front end of a recovery method: sanitize the raw input,
/// recover every surviving piece through TryRecover (skip-and-record on
/// failure, never abort), and classify the overall outcome. Every input
/// ends up in exactly one counter of the ok/repaired/degraded/failed tally.
class RobustRecoveryPipeline {
 public:
  /// `method` must outlive the pipeline.
  RobustRecoveryPipeline(RecoveryMethod* method, const PipelineConfig& config);

  PipelineResult Run(const Trajectory& raw);

  /// The pipeline body after fault injection: sanitize, recover pieces,
  /// classify. Public so a flight-recorder replay can re-run a captured
  /// (already corrupted) input without re-rolling the chaos dice.
  PipelineResult RunSanitized(const Trajectory& input);

  const PipelineCounters& counters() const { return counters_; }

 private:
  RecoveryMethod* method_;
  PipelineConfig config_;
  PipelineCounters counters_;
};

}  // namespace trmma

#endif  // TRMMA_ROBUST_PIPELINE_H_
