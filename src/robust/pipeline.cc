#include "robust/pipeline.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"

namespace trmma {

const char* RecoveryOutcomeName(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kOk:
      return "ok";
    case RecoveryOutcome::kRepaired:
      return "repaired";
    case RecoveryOutcome::kDegraded:
      return "degraded";
    case RecoveryOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

namespace {

void CountOutcome(RecoveryOutcome outcome) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricRegistry::Global()
      .GetCounter("robust.pipeline.outcome",
                  {{"outcome", RecoveryOutcomeName(outcome)}})
      ->Increment();
}

}  // namespace

RobustRecoveryPipeline::RobustRecoveryPipeline(RecoveryMethod* method,
                                               const PipelineConfig& config)
    : method_(method), config_(config) {}

PipelineResult RobustRecoveryPipeline::Run(const Trajectory& raw) {
  // Chaos hook: when TRMMA_FAULTS is set, the process-wide injector
  // corrupts inputs at this ingestion site (and I/O fault points are
  // armed by its installation). Disabled injection is a no-op. Everything
  // downstream of the corruption lives in RunSanitized, so a flight-recorder
  // replay (which starts from the captured, already-corrupted input) takes
  // exactly the path the original request took.
  const Trajectory* input = &raw;
  Trajectory corrupted;
  FaultInjector& chaos = FaultInjector::Global();
  if (chaos.enabled()) {
    corrupted = raw;
    chaos.CorruptTrajectory(&corrupted);
    input = &corrupted;
  }
  return RunSanitized(*input);
}

PipelineResult RobustRecoveryPipeline::RunSanitized(const Trajectory& input) {
  obs::RequestScope request("pipeline");
  if (obs::RequestRecord* rec = request.record()) {
    rec->method = method_->name();
    rec->epsilon = static_cast<std::int64_t>(config_.epsilon);
    rec->input.reserve(input.size());
    for (const GpsPoint& p : input.points) {
      rec->input.push_back({p.pos.lat, p.pos.lng, p.t});
    }
  }
  PipelineResult result;
  const std::vector<Trajectory> pieces =
      SanitizeTrajectory(input, config_.sanitize, &result.sanitize_report);

  for (const Trajectory& piece : pieces) {
    ++result.pieces_attempted;
    RecoverStats stats;
    StatusOr<MatchedTrajectory> rec =
        method_->TryRecover(piece, config_.epsilon, &stats);
    if (!rec.ok()) {
      ++result.pieces_failed;
      if (result.error.empty()) result.error = rec.status().ToString();
      TRMMA_LOG(Warning) << "pipeline: piece of " << piece.size()
                         << " points failed: " << rec.status().ToString();
      continue;
    }
    result.route_sections += stats.route_sections;
    result.degraded_points += stats.degraded_points;
    result.recovered.insert(result.recovered.end(), rec->begin(), rec->end());
  }

  const bool nothing_recovered = result.recovered.empty();
  const bool partial = result.pieces_failed > 0 ||
                       !result.sanitize_report.contiguous() ||
                       result.route_sections > result.pieces_attempted -
                                                   result.pieces_failed ||
                       result.degraded_points > 0;
  if (nothing_recovered) {
    result.outcome = RecoveryOutcome::kFailed;
    if (result.error.empty()) {
      result.error = "sanitizer discarded the entire trajectory";
    }
  } else if (partial) {
    result.outcome = RecoveryOutcome::kDegraded;
  } else if (result.sanitize_report.clean()) {
    result.outcome = RecoveryOutcome::kOk;
  } else {
    result.outcome = RecoveryOutcome::kRepaired;
  }

  switch (result.outcome) {
    case RecoveryOutcome::kOk:
      ++counters_.ok;
      break;
    case RecoveryOutcome::kRepaired:
      ++counters_.repaired;
      break;
    case RecoveryOutcome::kDegraded:
      ++counters_.degraded;
      break;
    case RecoveryOutcome::kFailed:
      ++counters_.failed;
      break;
  }
  CountOutcome(result.outcome);

  if (obs::RequestRecord* rec = request.record()) {
    rec->outcome = RecoveryOutcomeName(result.outcome);
    if (rec->route_sections == 0) rec->route_sections = result.route_sections;
    rec->degraded_points = result.degraded_points;
    rec->error = result.error;
    rec->recovered.reserve(result.recovered.size());
    for (const MatchedPoint& p : result.recovered) {
      rec->recovered.push_back({p.segment, p.ratio, p.t});
    }
    const SanitizeReport& sr = result.sanitize_report;
    if (sr.nonfinite > 0) {
      obs::RecordEvent("sanitize:nonfinite=" + std::to_string(sr.nonfinite));
    }
    if (sr.out_of_bbox > 0) {
      obs::RecordEvent("sanitize:out_of_bbox=" +
                       std::to_string(sr.out_of_bbox));
    }
    if (sr.non_monotonic > 0) {
      obs::RecordEvent("sanitize:non_monotonic=" +
                       std::to_string(sr.non_monotonic));
    }
    if (sr.speed_violations > 0) {
      obs::RecordEvent("sanitize:speed_violations=" +
                       std::to_string(sr.speed_violations));
    }
    if (sr.splits > 0) {
      obs::RecordEvent("sanitize:splits=" + std::to_string(sr.splits));
    }
    if (sr.discarded_points > 0) {
      obs::RecordEvent("sanitize:discarded_points=" +
                       std::to_string(sr.discarded_points));
    }
    if (result.pieces_failed > 0) {
      obs::RecordEvent("pipeline:pieces_failed=" +
                       std::to_string(result.pieces_failed));
    }
  }
  return result;
}

}  // namespace trmma
