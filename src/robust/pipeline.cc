#include "robust/pipeline.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"

namespace trmma {

const char* RecoveryOutcomeName(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kOk:
      return "ok";
    case RecoveryOutcome::kRepaired:
      return "repaired";
    case RecoveryOutcome::kDegraded:
      return "degraded";
    case RecoveryOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

namespace {

void CountOutcome(RecoveryOutcome outcome) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricRegistry::Global()
      .GetCounter("robust.pipeline.outcome",
                  {{"outcome", RecoveryOutcomeName(outcome)}})
      ->Increment();
}

}  // namespace

RobustRecoveryPipeline::RobustRecoveryPipeline(RecoveryMethod* method,
                                               const PipelineConfig& config)
    : method_(method), config_(config) {}

PipelineResult RobustRecoveryPipeline::Run(const Trajectory& raw) {
  PipelineResult result;
  // Chaos hook: when TRMMA_FAULTS is set, the process-wide injector
  // corrupts inputs at this ingestion site (and I/O fault points are
  // armed by its installation). Disabled injection is a no-op.
  const Trajectory* input = &raw;
  Trajectory corrupted;
  FaultInjector& chaos = FaultInjector::Global();
  if (chaos.enabled()) {
    corrupted = raw;
    chaos.CorruptTrajectory(&corrupted);
    input = &corrupted;
  }
  const std::vector<Trajectory> pieces =
      SanitizeTrajectory(*input, config_.sanitize, &result.sanitize_report);

  for (const Trajectory& piece : pieces) {
    ++result.pieces_attempted;
    RecoverStats stats;
    StatusOr<MatchedTrajectory> rec =
        method_->TryRecover(piece, config_.epsilon, &stats);
    if (!rec.ok()) {
      ++result.pieces_failed;
      if (result.error.empty()) result.error = rec.status().ToString();
      TRMMA_LOG(Warning) << "pipeline: piece of " << piece.size()
                         << " points failed: " << rec.status().ToString();
      continue;
    }
    result.route_sections += stats.route_sections;
    result.degraded_points += stats.degraded_points;
    result.recovered.insert(result.recovered.end(), rec->begin(), rec->end());
  }

  const bool nothing_recovered = result.recovered.empty();
  const bool partial = result.pieces_failed > 0 ||
                       !result.sanitize_report.contiguous() ||
                       result.route_sections > result.pieces_attempted -
                                                   result.pieces_failed ||
                       result.degraded_points > 0;
  if (nothing_recovered) {
    result.outcome = RecoveryOutcome::kFailed;
    if (result.error.empty()) {
      result.error = "sanitizer discarded the entire trajectory";
    }
  } else if (partial) {
    result.outcome = RecoveryOutcome::kDegraded;
  } else if (result.sanitize_report.clean()) {
    result.outcome = RecoveryOutcome::kOk;
  } else {
    result.outcome = RecoveryOutcome::kRepaired;
  }

  switch (result.outcome) {
    case RecoveryOutcome::kOk:
      ++counters_.ok;
      break;
    case RecoveryOutcome::kRepaired:
      ++counters_.repaired;
      break;
    case RecoveryOutcome::kDegraded:
      ++counters_.degraded;
      break;
    case RecoveryOutcome::kFailed:
      ++counters_.failed;
      break;
  }
  CountOutcome(result.outcome);
  return result;
}

}  // namespace trmma
