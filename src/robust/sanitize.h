#ifndef TRMMA_ROBUST_SANITIZE_H_
#define TRMMA_ROBUST_SANITIZE_H_

#include <vector>

#include "geo/geometry.h"
#include "graph/road_network.h"
#include "traj/types.h"

namespace trmma {

/// What to do with a point that violates a sanitizer rule.
enum class RepairPolicy {
  kDrop,   ///< remove the offending point
  kClamp,  ///< move it to the nearest feasible position (falls back to drop
           ///< where clamping is undefined, e.g. non-finite values)
  kSplit,  ///< cut the trajectory at the violation and continue in a new piece
};

/// Validation rules for raw trajectories, per the paper's Def. 6
/// assumptions (finite ε-sampled points on the mapped area with physically
/// plausible motion). `network` supplies the local projection and the valid
/// bounding box; without it only finiteness and monotonicity are checked.
struct SanitizeConfig {
  const RoadNetwork* network = nullptr;
  double bbox_margin_m = 1000.0;  ///< tolerance around the network bbox
  double max_speed_mps = 50.0;    ///< teleport threshold between points
  RepairPolicy policy = RepairPolicy::kDrop;
  int min_points = 2;  ///< pieces shorter than this are discarded

  /// Config validating against a finalized network's bounding box.
  static SanitizeConfig ForNetwork(const RoadNetwork& network);
};

/// Per-trajectory account of what the sanitizer found and did.
struct SanitizeReport {
  int input_points = 0;
  int nonfinite = 0;         ///< NaN/Inf coordinate or timestamp
  int out_of_bbox = 0;       ///< outside network bbox + margin
  int non_monotonic = 0;     ///< timestamp not strictly increasing
  int speed_violations = 0;  ///< implied speed above max_speed_mps
  int dropped = 0;           ///< points removed
  int clamped = 0;           ///< points moved to a feasible position
  int splits = 0;            ///< cuts made by RepairPolicy::kSplit
  int discarded_points = 0;  ///< points lost to too-short pieces

  /// No rule fired: the input was already valid.
  bool clean() const {
    return nonfinite == 0 && out_of_bbox == 0 && non_monotonic == 0 &&
           speed_violations == 0;
  }
  /// The output is contiguous: nothing was cut away wholesale.
  bool contiguous() const { return splits == 0 && discarded_points == 0; }
};

/// Validates `traj` against `config` and applies the repair policy.
/// Returns the surviving pieces in time order (one piece when nothing was
/// split; empty when nothing survives). Points inside each piece are
/// guaranteed finite, strictly increasing in time, inside the bbox (when a
/// network is given) and speed-feasible. Counts aggregate into the
/// robust.sanitize.* metrics when observability is enabled.
std::vector<Trajectory> SanitizeTrajectory(const Trajectory& traj,
                                           const SanitizeConfig& config,
                                           SanitizeReport* report = nullptr);

}  // namespace trmma

#endif  // TRMMA_ROBUST_SANITIZE_H_
