#ifndef TRMMA_NN_MODULE_H_
#define TRMMA_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "nn/tensor.h"

namespace trmma {
namespace nn {

/// Base class for trainable components. Modules own their Params (and
/// child modules) and expose a flat parameter list for the optimizer and
/// serialization. Registration order is deterministic, which is what the
/// binary checkpoint format relies on.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its children, in registration order.
  std::vector<Param*> Parameters();

  /// Sum of parameter element counts.
  int64_t NumParameters();

  /// Zeroes every parameter gradient.
  void ZeroGrad();

 protected:
  /// Creates and registers a parameter initialized by `init`.
  Param* AddParam(std::string name, Matrix value);

  /// Registers a child whose parameters are reported after this module's
  /// own. The child must outlive this module (typically a member).
  void AddChild(Module* child);

 private:
  std::vector<std::unique_ptr<Param>> params_;
  std::vector<Module*> children_;
};

/// Xavier/Glorot uniform initialization.
Matrix XavierUniform(int rows, int cols, Rng& rng);

/// Uniform initialization in [-scale, scale].
Matrix UniformInit(int rows, int cols, double scale, Rng& rng);

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_MODULE_H_
