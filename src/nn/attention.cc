#include "nn/attention.h"

#include <cmath>

#include "common/logging.h"

namespace trmma {
namespace nn {

MultiHeadAttention::MultiHeadAttention(int model_dim, int num_heads, Rng& rng)
    : model_dim_(model_dim), num_heads_(num_heads),
      head_dim_(model_dim / num_heads) {
  TRMMA_CHECK_EQ(model_dim % num_heads, 0);
  wq_ = AddParam("wq", XavierUniform(model_dim, model_dim, rng));
  wk_ = AddParam("wk", XavierUniform(model_dim, model_dim, rng));
  wv_ = AddParam("wv", XavierUniform(model_dim, model_dim, rng));
  wo_ = AddParam("wo", XavierUniform(model_dim, model_dim, rng));
}

Tensor MultiHeadAttention::Forward(Tensor query, Tensor keys) {
  TRMMA_CHECK_EQ(query.cols(), model_dim_);
  TRMMA_CHECK_EQ(keys.cols(), model_dim_);
  Tensor q = ops::MatMulParam(query, *wq_);
  Tensor k = ops::MatMulParam(keys, *wk_);
  Tensor v = ops::MatMulParam(keys, *wv_);

  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(head_dim_));
  Tensor heads;
  for (int h = 0; h < num_heads_; ++h) {
    Tensor qh = ops::SliceCols(q, h * head_dim_, head_dim_);
    Tensor kh = ops::SliceCols(k, h * head_dim_, head_dim_);
    Tensor vh = ops::SliceCols(v, h * head_dim_, head_dim_);
    Tensor scores =
        ops::Scale(ops::MatMul(qh, ops::Transpose(kh)), inv_sqrt_d);
    Tensor attn = ops::SoftmaxRows(scores);
    Tensor out = ops::MatMul(attn, vh);
    heads = h == 0 ? out : ops::ConcatCols(heads, out);
  }
  return ops::MatMulParam(heads, *wo_);
}

}  // namespace nn
}  // namespace trmma
