#include "nn/tensor.h"

#include "common/logging.h"

namespace trmma {
namespace nn {

Tensor Tape::NewNode(Matrix value, BackwardFn backward) {
  nodes_.push_back(NodeRecord{std::move(value), Matrix(), std::move(backward)});
  return Tensor(this, static_cast<int>(nodes_.size()) - 1);
}

Matrix& Tape::grad(int id) {
  NodeRecord& node = nodes_[id];
  if (node.grad.empty()) {
    node.grad = Matrix(node.value.rows(), node.value.cols());
  }
  return node.grad;
}

void Tape::Backward(const Tensor& loss) {
  TRMMA_CHECK(loss.tape() == this);
  TRMMA_CHECK_EQ(loss.rows(), 1);
  TRMMA_CHECK_EQ(loss.cols(), 1);
  grad(loss.id()).at(0, 0) = 1.0;
  for (int id = loss.id(); id >= 0; --id) {
    NodeRecord& node = nodes_[id];
    if (node.backward && !node.grad.empty()) {
      node.backward(*this, id);
    }
  }
}

void Tape::Clear() { nodes_.clear(); }

}  // namespace nn
}  // namespace trmma
