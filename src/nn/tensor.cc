#include "nn/tensor.h"

#include "common/logging.h"
#include "nn/profiler.h"
#include "obs/trace.h"

namespace trmma {
namespace nn {

Tensor Tape::NewNode(Matrix value, BackwardFn backward) {
  NodeRecord node{std::move(value), Matrix(), std::move(backward), nullptr};
  if (OpProfiler::Enabled()) node.op_name = CurrentProfiledOp();
  nodes_.push_back(std::move(node));
  return Tensor(this, static_cast<int>(nodes_.size()) - 1);
}

Matrix& Tape::grad(int id) {
  NodeRecord& node = nodes_[id];
  if (node.grad.empty()) {
    node.grad = Matrix(node.value.rows(), node.value.cols());
  }
  return node.grad;
}

void Tape::Backward(const Tensor& loss) {
  TRMMA_CHECK(loss.tape() == this);
  TRMMA_CHECK_EQ(loss.rows(), 1);
  TRMMA_CHECK_EQ(loss.cols(), 1);
  grad(loss.id()).at(0, 0) = 1.0;
  const bool profiled = OpProfiler::Enabled();
  for (int id = loss.id(); id >= 0; --id) {
    NodeRecord& node = nodes_[id];
    if (!node.backward || node.grad.empty()) continue;
    if (profiled && node.op_name != nullptr) {
      const int64_t bytes0 = MatrixBytesAllocated();
      const double t0 = obs::NowMicros();
      node.backward(*this, id);
      OpProfiler::Global().RecordBackward(node.op_name,
                                          obs::NowMicros() - t0,
                                          MatrixBytesAllocated() - bytes0);
    } else {
      node.backward(*this, id);
    }
  }
}

void Tape::Clear() { nodes_.clear(); }

}  // namespace nn
}  // namespace trmma
