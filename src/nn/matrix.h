#ifndef TRMMA_NN_MATRIX_H_
#define TRMMA_NN_MATRIX_H_

#include <cstdint>
#include <vector>

namespace trmma {
namespace nn {

/// Process-wide matrix storage accounting, maintained by every Matrix
/// special member. Feeds the op profiler's bytes-per-op column and the
/// training telemetry's peak-bytes field.
struct MatrixAllocStats {
  int64_t total_bytes = 0;  ///< cumulative bytes ever allocated
  int64_t live_bytes = 0;   ///< bytes currently held by live matrices
  int64_t peak_bytes = 0;   ///< high-water mark of live_bytes
};

MatrixAllocStats GetMatrixAllocStats();

/// Cumulative allocated bytes (monotonic); cheap single atomic load, used
/// by the profiler to attribute allocation deltas to ops.
int64_t MatrixBytesAllocated();

/// Resets the peak-bytes high-water mark to the current live bytes, so a
/// training step can report its own peak.
void ResetMatrixPeakBytes();

/// Dense row-major matrix of doubles: the storage type of the from-scratch
/// neural-network substrate. Double precision keeps numerical gradient
/// checks tight; model dimensions in this project are small (d <= 64) so
/// the cost is acceptable. All special members keep the process-wide
/// allocation stats above in sync (one relaxed atomic op each — far below
/// the cost of the heap allocation itself).
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);
  Matrix(int rows, int cols, double fill);
  Matrix(const Matrix& o);
  Matrix(Matrix&& o) noexcept;
  Matrix& operator=(const Matrix& o);
  Matrix& operator=(Matrix&& o) noexcept;
  ~Matrix();

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double& at(int r, int c) { return data_[r * cols_ + c]; }
  double at(int r, int c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double* row(int r) { return data_.data() + r * cols_; }
  const double* row(int r) const { return data_.data() + r * cols_; }

  /// Sets every element to `v`.
  void Fill(double v);

  /// In-place scaled accumulate: this += alpha * other (same shape).
  void Axpy(double alpha, const Matrix& other);

  /// Sum of all elements.
  double Sum() const;

  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. Shapes must agree; out is resized.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a * b (accumulating variant used by gradients).
void AddMatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a^T * b.
void AddMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a * b^T.
void AddMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out);

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_MATRIX_H_
