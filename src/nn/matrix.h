#ifndef TRMMA_NN_MATRIX_H_
#define TRMMA_NN_MATRIX_H_

#include <vector>

namespace trmma {
namespace nn {

/// Dense row-major matrix of doubles: the storage type of the from-scratch
/// neural-network substrate. Double precision keeps numerical gradient
/// checks tight; model dimensions in this project are small (d <= 64) so
/// the cost is acceptable.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);
  Matrix(int rows, int cols, double fill);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double& at(int r, int c) { return data_[r * cols_ + c]; }
  double at(int r, int c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double* row(int r) { return data_.data() + r * cols_; }
  const double* row(int r) const { return data_.data() + r * cols_; }

  /// Sets every element to `v`.
  void Fill(double v);

  /// In-place scaled accumulate: this += alpha * other (same shape).
  void Axpy(double alpha, const Matrix& other);

  /// Sum of all elements.
  double Sum() const;

  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. Shapes must agree; out is resized.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a * b (accumulating variant used by gradients).
void AddMatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a^T * b.
void AddMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a * b^T.
void AddMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out);

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_MATRIX_H_
