#ifndef TRMMA_NN_ADAM_H_
#define TRMMA_NN_ADAM_H_

#include <vector>

#include "nn/tensor.h"

namespace trmma {
namespace nn {

/// Adam optimizer (Kingma & Ba). Owns first/second moment estimates per
/// parameter; Step consumes and clears accumulated gradients.
class Adam {
 public:
  explicit Adam(std::vector<Param*> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  /// Applies one update using the gradients currently stored in the
  /// parameters, then zeroes them. Optionally clips the global gradient
  /// norm to `max_grad_norm` (<=0 disables clipping).
  void Step(double max_grad_norm = 5.0);

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }
  int64_t num_steps() const { return t_; }

  /// Global L2 norm of the gradients consumed by the most recent Step(),
  /// measured before clipping. 0 until the first step.
  double last_grad_norm() const { return last_grad_norm_; }

  /// Global L2 norm of the parameter delta applied by the most recent
  /// Step(). 0 until the first step.
  double last_update_norm() const { return last_update_norm_; }

  const std::vector<Param*>& params() const { return params_; }

 private:
  std::vector<Param*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int64_t t_ = 0;
  double last_grad_norm_ = 0.0;
  double last_update_norm_ = 0.0;
};

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_ADAM_H_
