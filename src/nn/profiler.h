#ifndef TRMMA_NN_PROFILER_H_
#define TRMMA_NN_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hw_counters.h"

namespace trmma {
namespace nn {

/// Aggregated cost of one autograd op type across all calls since the last
/// Reset(): forward wall time (measured inside the op constructor, which is
/// where the forward compute happens in this define-by-run tape), backward
/// wall time (measured around the node's backward closure), estimated
/// forward FLOPs, and matrix bytes allocated during forward + backward.
struct OpProfileEntry {
  std::string name;
  int64_t calls = 0;
  double forward_us = 0.0;
  double backward_us = 0.0;
  double flops = 0.0;
  int64_t bytes = 0;
  /// Scaled hardware-counter deltas accumulated across forward scopes that
  /// measured successfully (hw_samples of them; 0 when counters were
  /// unavailable). Forward-only by design: the FLOP estimates are
  /// forward-only, so roofline coordinates computed from `hw` stay
  /// consistent with `flops`/`bytes`.
  obs::HwCounterDelta hw;
  int64_t hw_samples = 0;

  double total_us() const { return forward_us + backward_us; }
};

/// Per-op-type profiler for the autograd substrate, modeled on
/// torch.profiler's op tables. Off by default: when disabled, OpScope and
/// the tape hooks cost one relaxed atomic load + branch. Enable with the
/// TRMMA_OP_PROFILE environment variable or SetEnabled(true); benches
/// enable it around the region they want attributed. Recording takes a
/// mutex per op call, which is acceptable in profiling mode (the workloads
/// here are single-threaded training loops).
class OpProfiler {
 public:
  static OpProfiler& Global();

  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void RecordForward(const char* name, double us, double flops,
                     int64_t bytes) {
    RecordForward(name, us, flops, bytes, nullptr);
  }
  /// As above, additionally folding one measured counter delta into the
  /// op's hw aggregate (hw may be null when the scope did not measure).
  void RecordForward(const char* name, double us, double flops, int64_t bytes,
                     const obs::HwCounterDelta* hw);
  void RecordBackward(const char* name, double us, int64_t bytes);

  /// Entries sorted by forward+backward time, descending.
  std::vector<OpProfileEntry> SortedEntries() const;

  /// Sum of forward+backward microseconds across all ops — the numerator of
  /// the profiler's coverage ratio against a wall-clock measurement.
  double TotalAccountedMicros() const;

  /// Human-readable table, one op per line, sorted by total time.
  std::string DumpString() const;

  /// JSON array for the run report's "op_profile" section.
  std::string ToJson() const;

  void Reset();

 private:
  OpProfiler() = default;

  struct Cell {
    int64_t calls = 0;
    double fwd_us = 0.0;
    double bwd_us = 0.0;
    double flops = 0.0;
    int64_t bytes = 0;
    obs::HwCounterDelta hw;
    int64_t hw_samples = 0;
  };

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  /// Keyed by the op-name literal's address: every op site passes the same
  /// static string, so pointer identity is name identity and lookups never
  /// hash characters.
  std::map<const char*, Cell> cells_;
};

/// Name of the op whose OpScope is currently open on this thread (nullptr
/// outside any op). Tape::NewNode captures it so backward closures can be
/// attributed to the op that created them.
const char* CurrentProfiledOp();

/// RAII forward-pass bracket used by every op constructor in ops.cc. When
/// the profiler is disabled, construction and destruction are a relaxed
/// load + branch each. When enabled it times the scope, snapshots the
/// matrix allocation counter, and publishes the op name for tape capture.
class OpScope {
 public:
  explicit OpScope(const char* name);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Adds to the FLOP estimate recorded at scope exit (no-op when the
  /// profiler is disabled — name_ stays null so the destructor skips).
  void AddFlops(double flops) { flops_ += flops; }

 private:
  const char* name_ = nullptr;
  const char* prev_op_ = nullptr;
  double start_us_ = 0.0;
  int64_t start_bytes_ = 0;
  double flops_ = 0.0;
  /// Delimited counter read spanning the forward scope. Inert unless both
  /// the op profiler and the hw-counter subsystem are enabled; nested op
  /// scopes each carry their own (counters are free-running, so inner
  /// scopes' cycles are also part of the outer delta — same double-counting
  /// semantics the wall-time columns already have).
  obs::HwCounterScope hw_;
};

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_PROFILER_H_
