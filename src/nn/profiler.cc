#include "nn/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "nn/matrix.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace trmma {
namespace nn {
namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("TRMMA_OP_PROFILE");
  return env != nullptr && *env != '\0' && *env != '0';
}

thread_local const char* t_current_op = nullptr;

}  // namespace

std::atomic<bool> OpProfiler::enabled_{EnabledFromEnv()};

OpProfiler& OpProfiler::Global() {
  static OpProfiler* profiler = new OpProfiler();
  return *profiler;
}

void OpProfiler::RecordForward(const char* name, double us, double flops,
                               int64_t bytes,
                               const obs::HwCounterDelta* hw) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[name];
  cell.calls += 1;
  cell.fwd_us += us;
  cell.flops += flops;
  cell.bytes += bytes;
  if (hw != nullptr) {
    cell.hw.Accumulate(*hw);
    cell.hw_samples += 1;
  }
}

void OpProfiler::RecordBackward(const char* name, double us, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[name];
  cell.bwd_us += us;
  cell.bytes += bytes;
}

std::vector<OpProfileEntry> OpProfiler::SortedEntries() const {
  std::vector<OpProfileEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(cells_.size());
    for (const auto& [name, cell] : cells_) {
      OpProfileEntry e;
      e.name = name;
      e.calls = cell.calls;
      e.forward_us = cell.fwd_us;
      e.backward_us = cell.bwd_us;
      e.flops = cell.flops;
      e.bytes = cell.bytes;
      e.hw = cell.hw;
      e.hw_samples = cell.hw_samples;
      out.push_back(std::move(e));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const OpProfileEntry& a, const OpProfileEntry& b) {
                     return a.total_us() > b.total_us();
                   });
  return out;
}

double OpProfiler::TotalAccountedMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [name, cell] : cells_) total += cell.fwd_us + cell.bwd_us;
  return total;
}

std::string OpProfiler::DumpString() const {
  const std::vector<OpProfileEntry> entries = SortedEntries();
  double total_us = 0.0;
  for (const OpProfileEntry& e : entries) total_us += e.total_us();
  std::string out =
      "op                    calls     fwd_ms     bwd_ms   total_ms  "
      "  %     MFLOP    alloc_MB\n";
  char buf[160];
  for (const OpProfileEntry& e : entries) {
    const double pct =
        total_us > 0.0 ? 100.0 * e.total_us() / total_us : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%-20s %6lld %10.3f %10.3f %10.3f %5.1f %9.2f %11.3f\n",
                  e.name.c_str(), static_cast<long long>(e.calls),
                  e.forward_us / 1e3, e.backward_us / 1e3,
                  e.total_us() / 1e3, pct, e.flops / 1e6,
                  static_cast<double>(e.bytes) / (1024.0 * 1024.0));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "total accounted: %.3f ms over %zu op kinds\n",
                total_us / 1e3, entries.size());
  out += buf;
  return out;
}

std::string OpProfiler::ToJson() const {
  obs::JsonWriter w;
  w.BeginArray();
  for (const OpProfileEntry& e : SortedEntries()) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("calls").Int(e.calls);
    w.Key("forward_us").Number(e.forward_us);
    w.Key("backward_us").Number(e.backward_us);
    w.Key("flops").Number(e.flops);
    w.Key("bytes").Int(e.bytes);
    // Roofline coordinates, present only for ops that measured at least one
    // forward counter delta (absent entirely on hosts without a PMU, so the
    // section shape stays schema-stable either way).
    if (e.hw_samples > 0 && e.hw.cycles() > 0.0) {
      w.Key("hw_samples").Int(e.hw_samples);
      w.Key("cycles").Number(e.hw.cycles());
      w.Key("ipc").Number(e.hw.ipc());
      w.Key("flop_per_cycle").Number(e.flops / e.hw.cycles());
      w.Key("bytes_per_cycle")
          .Number(static_cast<double>(e.bytes) / e.hw.cycles());
    }
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

void OpProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

const char* CurrentProfiledOp() { return t_current_op; }

OpScope::OpScope(const char* name) {
  if (!OpProfiler::Enabled()) return;
  name_ = name;
  prev_op_ = t_current_op;
  t_current_op = name;
  start_bytes_ = MatrixBytesAllocated();
  hw_.Start();
  start_us_ = obs::NowMicros();
}

OpScope::~OpScope() {
  if (name_ == nullptr) return;
  const double us = obs::NowMicros() - start_us_;
  obs::HwCounterDelta hw;
  const bool measured = hw_.End(&hw);
  OpProfiler::Global().RecordForward(name_, us, flops_,
                                     MatrixBytesAllocated() - start_bytes_,
                                     measured ? &hw : nullptr);
  t_current_op = prev_op_;
}

}  // namespace nn
}  // namespace trmma
