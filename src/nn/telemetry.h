#ifndef TRMMA_NN_TELEMETRY_H_
#define TRMMA_NN_TELEMETRY_H_

#include <cstdint>

#include "nn/adam.h"

namespace trmma {
namespace nn {

/// Publishes one training-step row to obs::TrainLogger::Global() after an
/// optimizer step: loss, the optimizer's last grad/update norms, the
/// current global parameter norm, update ratio, throughput, and the peak
/// matrix bytes since the previous logged step (the peak counter is reset
/// on each call). `model` must be static-storage (a literal tag like
/// "mma"). A relaxed-load no-op when telemetry is disabled, so training
/// loops can call it unconditionally.
void LogTrainStep(const char* model, const Adam& opt, double mean_loss,
                  int64_t examples, double step_seconds, int64_t epoch = -1);

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_TELEMETRY_H_
