#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

namespace trmma {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0x54524d41;  // "TRMA"

}  // namespace

Status SaveParameters(const std::vector<Param*>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open: " + path);
  const uint32_t magic = kMagic;
  const uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Param* p : params) {
    const int32_t rows = p->value.rows();
    const int32_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(sizeof(double)) * p->value.size());
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(const std::vector<Param*>& params,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);
  uint32_t magic = 0;
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || magic != kMagic) {
    return Status::IOError("not a TRMMA checkpoint: " + path);
  }
  if (count != params.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  for (Param* p : params) {
    int32_t rows = 0;
    int32_t cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in.good() || rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("checkpoint shape mismatch for " +
                                     p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(sizeof(double)) * p->value.size());
    if (!in.good()) return Status::IOError("truncated checkpoint: " + path);
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace trmma
