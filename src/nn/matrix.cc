#include "nn/matrix.h"

#include <atomic>
#include <utility>

#include "common/logging.h"

namespace trmma {
namespace nn {
namespace {

std::atomic<int64_t> g_total_bytes{0};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void TrackAlloc(int64_t bytes) {
  if (bytes == 0) return;
  g_total_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void TrackFree(int64_t bytes) {
  if (bytes != 0) g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t LogicalBytes(int rows, int cols) {
  return static_cast<int64_t>(rows) * cols *
         static_cast<int64_t>(sizeof(double));
}

}  // namespace

MatrixAllocStats GetMatrixAllocStats() {
  MatrixAllocStats s;
  s.total_bytes = g_total_bytes.load(std::memory_order_relaxed);
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  return s;
}

int64_t MatrixBytesAllocated() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

void ResetMatrixPeakBytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

Matrix::Matrix(int rows, int cols) : Matrix(rows, cols, 0.0) {}

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
  TRMMA_CHECK_GE(rows, 0);
  TRMMA_CHECK_GE(cols, 0);
  TrackAlloc(LogicalBytes(rows_, cols_));
}

Matrix::Matrix(const Matrix& o)
    : rows_(o.rows_), cols_(o.cols_), data_(o.data_) {
  TrackAlloc(LogicalBytes(rows_, cols_));
}

Matrix::Matrix(Matrix&& o) noexcept
    : rows_(o.rows_), cols_(o.cols_), data_(std::move(o.data_)) {
  // The moved-from matrix no longer owns storage; its bytes are ours now.
  o.rows_ = 0;
  o.cols_ = 0;
  o.data_.clear();
}

Matrix& Matrix::operator=(const Matrix& o) {
  if (this == &o) return *this;
  TrackFree(LogicalBytes(rows_, cols_));
  rows_ = o.rows_;
  cols_ = o.cols_;
  data_ = o.data_;
  TrackAlloc(LogicalBytes(rows_, cols_));
  return *this;
}

Matrix& Matrix::operator=(Matrix&& o) noexcept {
  if (this == &o) return *this;
  TrackFree(LogicalBytes(rows_, cols_));
  rows_ = o.rows_;
  cols_ = o.cols_;
  data_ = std::move(o.data_);
  o.rows_ = 0;
  o.cols_ = 0;
  o.data_.clear();
  return *this;
}

Matrix::~Matrix() { TrackFree(LogicalBytes(rows_, cols_)); }

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  TRMMA_CHECK(SameShape(other));
  const double* src = other.data();
  double* dst = data();
  for (int i = 0; i < size(); ++i) dst[i] += alpha * src[i];
}

double Matrix::Sum() const {
  double total = 0.0;
  for (double x : data_) total += x;
  return total;
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  *out = Matrix(a.rows(), b.cols());
  AddMatMul(a, b, out);
}

void AddMatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  TRMMA_CHECK_EQ(a.cols(), b.rows());
  TRMMA_CHECK_EQ(out->rows(), a.rows());
  TRMMA_CHECK_EQ(out->cols(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  // i-k-j loop order: streams through b and out rows contiguously.
  for (int i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double* orow = out->row(i);
    for (int p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void AddMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  TRMMA_CHECK_EQ(a.rows(), b.rows());
  TRMMA_CHECK_EQ(out->rows(), a.cols());
  TRMMA_CHECK_EQ(out->cols(), b.cols());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  for (int p = 0; p < k; ++p) {
    const double* arow = a.row(p);
    const double* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out->row(i);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void AddMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  TRMMA_CHECK_EQ(a.cols(), b.cols());
  TRMMA_CHECK_EQ(out->rows(), a.rows());
  TRMMA_CHECK_EQ(out->cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  for (int i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double* orow = out->row(i);
    for (int j = 0; j < n; ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

}  // namespace nn
}  // namespace trmma
