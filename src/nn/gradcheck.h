#ifndef TRMMA_NN_GRADCHECK_H_
#define TRMMA_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/tensor.h"

namespace trmma {
namespace nn {

/// Result of a numerical gradient check.
struct GradCheckResult {
  bool ok = true;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

/// Verifies analytic gradients of `loss_fn` w.r.t. `params` against central
/// finite differences. `loss_fn` must build a fresh graph on the given tape
/// and return a 1x1 loss each call. Checks at most `max_entries_per_param`
/// entries per parameter (all when <=0).
GradCheckResult CheckGradients(
    const std::function<Tensor(Tape&)>& loss_fn, std::vector<Param*> params,
    double step = 1e-5, double tolerance = 1e-4,
    int max_entries_per_param = 16);

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_GRADCHECK_H_
