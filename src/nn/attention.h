#ifndef TRMMA_NN_ATTENTION_H_
#define TRMMA_NN_ATTENTION_H_

#include "nn/layers.h"
#include "nn/module.h"

namespace trmma {
namespace nn {

/// Multi-head scaled dot-product self/cross attention (paper Eq. 4).
/// Model dimension must be divisible by the number of heads.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int model_dim, int num_heads, Rng& rng);

  /// MHAttn(Q=query, K=keys, V=keys): query (n x d), keys (m x d) -> n x d.
  Tensor Forward(Tensor query, Tensor keys);

  int model_dim() const { return model_dim_; }
  int num_heads() const { return num_heads_; }

 private:
  int model_dim_;
  int num_heads_;
  int head_dim_;
  Param* wq_;
  Param* wk_;
  Param* wv_;
  Param* wo_;
};

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_ATTENTION_H_
