#ifndef TRMMA_NN_LAYERS_H_
#define TRMMA_NN_LAYERS_H_

#include "nn/module.h"
#include "nn/ops.h"

namespace trmma {
namespace nn {

/// Fully-connected layer y = xW + b.
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng& rng);

  Tensor Forward(Tensor x);

  Param& weight() { return *w_; }
  Param& bias() { return *b_; }

 private:
  Param* w_;
  Param* b_;
};

/// Two-layer perceptron with ReLU: relu(xW1+b1)W2+b2 (paper Eq. 2/7/15).
class Mlp : public Module {
 public:
  Mlp(int in_dim, int hidden_dim, int out_dim, Rng& rng);

  Tensor Forward(Tensor x);

 private:
  Linear fc1_;
  Linear fc2_;
};

/// Row-wise layer normalization with trainable gain and bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  Tensor Forward(Tensor x);

 private:
  Param* gamma_;
  Param* beta_;
};

/// Trainable embedding table; rows are looked up by integer id. Supports
/// initialization from pre-trained vectors (MMA initializes its segment
/// table from Node2Vec, paper Eq. 1).
class Embedding : public Module {
 public:
  Embedding(int num_rows, int dim, Rng& rng);

  /// Overwrites the table with pre-trained vectors (same shape).
  void LoadPretrained(const Matrix& table);

  Tensor Forward(Tape& tape, const std::vector<int>& ids);

  Param& table() { return *table_; }

 private:
  Param* table_;
};

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_LAYERS_H_
