#include "nn/telemetry.h"

#include <cmath>

#include "nn/matrix.h"
#include "obs/train_log.h"

namespace trmma {
namespace nn {

void LogTrainStep(const char* model, const Adam& opt, double mean_loss,
                  int64_t examples, double step_seconds, int64_t epoch) {
  obs::TrainLogger& logger = obs::TrainLogger::Global();
  if (!logger.Enabled()) return;

  double param_norm2 = 0.0;
  for (const Param* p : opt.params()) {
    for (int i = 0; i < p->value.size(); ++i) {
      param_norm2 += p->value.data()[i] * p->value.data()[i];
    }
  }
  const double param_norm = std::sqrt(param_norm2);

  obs::TrainStepRow row;
  row.model = model;
  row.step = opt.num_steps();
  row.epoch = epoch;
  row.loss = mean_loss;
  row.grad_norm = opt.last_grad_norm();
  row.param_norm = param_norm;
  row.update_ratio =
      param_norm > 0.0 ? opt.last_update_norm() / param_norm : 0.0;
  row.examples = examples;
  row.examples_per_sec =
      step_seconds > 0.0 ? static_cast<double>(examples) / step_seconds : 0.0;
  row.peak_bytes = GetMatrixAllocStats().peak_bytes;
  ResetMatrixPeakBytes();
  logger.LogStep(row);
}

}  // namespace nn
}  // namespace trmma
