#ifndef TRMMA_NN_SERIALIZE_H_
#define TRMMA_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace trmma {
namespace nn {

/// Writes parameter values to a binary checkpoint. Parameters are stored
/// in list order; loading requires the identical module structure.
Status SaveParameters(const std::vector<Param*>& params,
                      const std::string& path);

/// Restores parameter values from a checkpoint written by SaveParameters.
/// Fails on any shape or count mismatch.
Status LoadParameters(const std::vector<Param*>& params,
                      const std::string& path);

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_SERIALIZE_H_
