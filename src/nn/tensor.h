#ifndef TRMMA_NN_TENSOR_H_
#define TRMMA_NN_TENSOR_H_

#include <functional>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace trmma {
namespace nn {

/// A trainable parameter: value + accumulated gradient, living outside any
/// tape so it persists across training steps. Gradients are accumulated by
/// Tape::Backward and cleared by the optimizer.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;

  Param() = default;
  Param(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0); }
};

class Tape;

/// A lightweight handle to a node on a Tape (define-by-run autograd).
/// Valid only until the owning tape is cleared.
class Tensor {
 public:
  Tensor() = default;
  Tensor(Tape* tape, int id) : tape_(tape), id_(id) {}

  bool defined() const { return tape_ != nullptr; }
  int id() const { return id_; }
  Tape* tape() const { return tape_; }

  const Matrix& value() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

 private:
  Tape* tape_ = nullptr;
  int id_ = -1;
};

/// A dynamic computation graph. Nodes are appended in topological order by
/// the op constructors in ops.h; Backward replays them in reverse. The
/// tape is meant to be cleared (or destroyed) after every training step.
class Tape {
 public:
  using BackwardFn = std::function<void(Tape&, int self)>;

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Creates a node holding `value`. `backward` may be null for leaves.
  Tensor NewNode(Matrix value, BackwardFn backward);

  /// Runs reverse-mode differentiation from `loss` (must be 1x1): seeds
  /// d(loss)/d(loss)=1 and accumulates into node and Param gradients.
  void Backward(const Tensor& loss);

  /// Releases all nodes. Handles created before the call become invalid.
  void Clear();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  const Matrix& value(int id) const { return nodes_[id].value; }
  Matrix& value(int id) { return nodes_[id].value; }

  /// Gradient buffer of a node, allocated (zeroed) on first access.
  Matrix& grad(int id);

  /// True if the node's gradient was ever touched during this backward.
  bool has_grad(int id) const { return !nodes_[id].grad.empty(); }

 private:
  struct NodeRecord {
    Matrix value;
    Matrix grad;  ///< empty until first accessed
    BackwardFn backward;
    /// Static-storage op name captured from the enclosing OpScope when the
    /// op profiler is enabled (nullptr otherwise); lets Backward attribute
    /// each backward closure to the op that created the node.
    const char* op_name = nullptr;
  };
  std::vector<NodeRecord> nodes_;
};

inline const Matrix& Tensor::value() const { return tape_->value(id_); }

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_TENSOR_H_
