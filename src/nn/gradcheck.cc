#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace trmma {
namespace nn {

GradCheckResult CheckGradients(const std::function<Tensor(Tape&)>& loss_fn,
                               std::vector<Param*> params, double step,
                               double tolerance,
                               int max_entries_per_param) {
  GradCheckResult result;

  // Analytic gradients.
  for (Param* p : params) p->ZeroGrad();
  {
    Tape tape;
    Tensor loss = loss_fn(tape);
    tape.Backward(loss);
  }

  auto eval = [&]() {
    Tape tape;
    return loss_fn(tape).value().at(0, 0);
  };

  for (Param* p : params) {
    const int total = p->value.size();
    const int check = max_entries_per_param > 0
                          ? std::min(max_entries_per_param, total)
                          : total;
    // Spread checked entries across the parameter.
    const int stride = std::max(1, total / check);
    for (int i = 0; i < total; i += stride) {
      const double saved = p->value.data()[i];
      p->value.data()[i] = saved + step;
      const double up = eval();
      p->value.data()[i] = saved - step;
      const double down = eval();
      p->value.data()[i] = saved;

      const double numeric = (up - down) / (2.0 * step);
      const double analytic = p->grad.data()[i];
      const double abs_err = std::abs(numeric - analytic);
      const double rel_err =
          abs_err / std::max({std::abs(numeric), std::abs(analytic), 1.0});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > tolerance) result.ok = false;
    }
  }
  for (Param* p : params) p->ZeroGrad();
  return result;
}

}  // namespace nn
}  // namespace trmma
