#include "nn/transformer.h"

#include <cmath>

namespace trmma {
namespace nn {

TransformerLayer::TransformerLayer(int model_dim, int num_heads, int ffn_dim,
                                   Rng& rng)
    : attention_(model_dim, num_heads, rng),
      ffn_(model_dim, ffn_dim, model_dim, rng),
      norm1_(model_dim),
      norm2_(model_dim) {
  AddChild(&attention_);
  AddChild(&ffn_);
  AddChild(&norm1_);
  AddChild(&norm2_);
}

Tensor TransformerLayer::Forward(Tensor x) {
  Tensor attended = norm1_.Forward(ops::Add(x, attention_.Forward(x, x)));
  return norm2_.Forward(ops::Add(attended, ffn_.Forward(attended)));
}

TransformerEncoder::TransformerEncoder(int model_dim, int num_heads,
                                       int ffn_dim, int num_layers, Rng& rng)
    : model_dim_(model_dim) {
  for (int i = 0; i < num_layers; ++i) {
    layers_.push_back(
        std::make_unique<TransformerLayer>(model_dim, num_heads, ffn_dim, rng));
    AddChild(layers_.back().get());
  }
}

Tensor TransformerEncoder::Forward(Tensor x) {
  Tensor h = ops::Add(
      x, ops::Input(*x.tape(),
                    SinusoidalPositionalEncoding(x.rows(), model_dim_)));
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

Matrix SinusoidalPositionalEncoding(int len, int dim) {
  Matrix pe(len, dim);
  for (int pos = 0; pos < len; ++pos) {
    for (int i = 0; i < dim; i += 2) {
      const double freq = std::pow(10000.0, -static_cast<double>(i) / dim);
      pe.at(pos, i) = std::sin(pos * freq);
      if (i + 1 < dim) pe.at(pos, i + 1) = std::cos(pos * freq);
    }
  }
  return pe;
}

}  // namespace nn
}  // namespace trmma
