#ifndef TRMMA_NN_OPS_H_
#define TRMMA_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"

namespace trmma {
namespace nn {

/// Differentiable operators over Tape tensors. Every function appends one
/// node to the tape of its inputs and returns a handle to it. Parameters
/// (Param&) must outlive the tape's Backward call; their gradients are
/// accumulated in place.
namespace ops {

/// Constant leaf (no gradient flows into it).
Tensor Input(Tape& tape, Matrix value);

/// Leaf mirroring a parameter; backward accumulates into param.grad.
Tensor FromParam(Tape& tape, Param& param);

/// a * b (matrix product).
Tensor MatMul(Tensor a, Tensor b);

/// x * W (trainable weight on the right).
Tensor MatMulParam(Tensor x, Param& w);

/// x * W + b, b broadcast over rows (b is 1 x out).
Tensor Affine(Tensor x, Param& w, Param& b);

/// Gathers rows `ids` of an embedding table; backward scatters.
Tensor EmbeddingLookup(Tape& tape, Param& table, const std::vector<int>& ids);

Tensor Add(Tensor a, Tensor b);
Tensor Sub(Tensor a, Tensor b);
/// Hadamard (elementwise) product.
Tensor Mul(Tensor a, Tensor b);
/// alpha * a.
Tensor Scale(Tensor a, double alpha);
/// 1 - a (used by GRU gates).
Tensor OneMinus(Tensor a);

Tensor Relu(Tensor a);
Tensor Sigmoid(Tensor a);
Tensor Tanh(Tensor a);

/// Row-wise softmax.
Tensor SoftmaxRows(Tensor a);

/// Row-wise layer normalization with trainable gain/bias (1 x d).
Tensor LayerNormRows(Tensor x, Param& gamma, Param& beta, double eps = 1e-5);

/// Horizontal concatenation [a | b].
Tensor ConcatCols(Tensor a, Tensor b);
/// Vertical concatenation of one-or-more tensors with equal column counts.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Column slice [start, start+len).
Tensor SliceCols(Tensor a, int start, int len);
/// Row slice [start, start+len).
Tensor SliceRows(Tensor a, int start, int len);

Tensor Transpose(Tensor a);

/// Repeats a 1 x d row tensor n times -> n x d (broadcast helper).
Tensor RepeatRows(Tensor a, int n);

/// Mean over rows -> 1 x cols.
Tensor MeanRows(Tensor a);

/// Sum of all elements -> 1 x 1.
Tensor SumAll(Tensor a);

/// Numerically stable binary cross entropy with logits, summed over all
/// elements: sum_i max(z,0) - z*y + log(1+exp(-|z|)). `targets` must have
/// the logits' shape with values in [0,1].
Tensor BceWithLogits(Tensor logits, Matrix targets);

/// Sum of absolute errors |pred - target| (paper Eq. 20 uses MAE).
Tensor L1Loss(Tensor pred, Matrix targets);

/// Multiclass cross entropy with logits: row r is one example, targets[r]
/// its class; returns the summed loss (used by the full-network baselines).
Tensor SoftmaxCrossEntropy(Tensor logits, const std::vector<int>& targets);

}  // namespace ops
}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_OPS_H_
