#include "nn/layers.h"

#include "common/logging.h"

namespace trmma {
namespace nn {

Linear::Linear(int in_dim, int out_dim, Rng& rng)
    : w_(AddParam("w", XavierUniform(in_dim, out_dim, rng))),
      b_(AddParam("b", Matrix(1, out_dim))) {}

Tensor Linear::Forward(Tensor x) { return ops::Affine(x, *w_, *b_); }

Mlp::Mlp(int in_dim, int hidden_dim, int out_dim, Rng& rng)
    : fc1_(in_dim, hidden_dim, rng), fc2_(hidden_dim, out_dim, rng) {
  AddChild(&fc1_);
  AddChild(&fc2_);
}

Tensor Mlp::Forward(Tensor x) {
  return fc2_.Forward(ops::Relu(fc1_.Forward(x)));
}

LayerNorm::LayerNorm(int dim)
    : gamma_(AddParam("gamma", Matrix(1, dim, 1.0))),
      beta_(AddParam("beta", Matrix(1, dim))) {}

Tensor LayerNorm::Forward(Tensor x) {
  return ops::LayerNormRows(x, *gamma_, *beta_);
}

Embedding::Embedding(int num_rows, int dim, Rng& rng)
    : table_(AddParam("table", XavierUniform(num_rows, dim, rng))) {}

void Embedding::LoadPretrained(const Matrix& table) {
  TRMMA_CHECK(table_->value.SameShape(table));
  table_->value = table;
}

Tensor Embedding::Forward(Tape& tape, const std::vector<int>& ids) {
  return ops::EmbeddingLookup(tape, *table_, ids);
}

}  // namespace nn
}  // namespace trmma
