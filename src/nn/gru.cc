#include "nn/gru.h"

namespace trmma {
namespace nn {
namespace {

Tensor Gate(Tensor x, Tensor h, Param& w, Param& u, Param& b) {
  return ops::Add(ops::Affine(x, w, b), ops::MatMulParam(h, u));
}

}  // namespace

GruCell::GruCell(int input_dim, int hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim) {
  wz_ = AddParam("wz", XavierUniform(input_dim, hidden_dim, rng));
  uz_ = AddParam("uz", XavierUniform(hidden_dim, hidden_dim, rng));
  bz_ = AddParam("bz", Matrix(1, hidden_dim));
  wr_ = AddParam("wr", XavierUniform(input_dim, hidden_dim, rng));
  ur_ = AddParam("ur", XavierUniform(hidden_dim, hidden_dim, rng));
  br_ = AddParam("br", Matrix(1, hidden_dim));
  wh_ = AddParam("wh", XavierUniform(input_dim, hidden_dim, rng));
  uh_ = AddParam("uh", XavierUniform(hidden_dim, hidden_dim, rng));
  bh_ = AddParam("bh", Matrix(1, hidden_dim));
}

Tensor GruCell::Step(Tensor x, Tensor h) {
  Tensor z = ops::Sigmoid(Gate(x, h, *wz_, *uz_, *bz_));
  Tensor r = ops::Sigmoid(Gate(x, h, *wr_, *ur_, *br_));
  Tensor candidate = ops::Tanh(ops::Add(ops::Affine(x, *wh_, *bh_),
                                        ops::MatMulParam(ops::Mul(r, h), *uh_)));
  return ops::Add(ops::Mul(ops::OneMinus(z), h), ops::Mul(z, candidate));
}

}  // namespace nn
}  // namespace trmma
