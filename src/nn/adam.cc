#include "nn/adam.h"

#include <cmath>

#include "obs/trace.h"

namespace trmma {
namespace nn {

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step(double max_grad_norm) {
  TRMMA_SPAN("nn.adam.step");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const steps =
        obs::MetricRegistry::Global().GetCounter("nn.adam.steps");
    steps->Increment();
  }
  ++t_;
  double norm2 = 0.0;
  for (Param* p : params_) {
    for (int i = 0; i < p->grad.size(); ++i) {
      norm2 += p->grad.data()[i] * p->grad.data()[i];
    }
  }
  last_grad_norm_ = std::sqrt(norm2);
  double scale = 1.0;
  if (max_grad_norm > 0.0 && last_grad_norm_ > max_grad_norm) {
    scale = max_grad_norm / last_grad_norm_;
  }
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  double update_norm2 = 0.0;
  for (size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    for (int i = 0; i < p->value.size(); ++i) {
      const double g = p->grad.data()[i] * scale;
      double& m = m_[k].data()[i];
      double& v = v_[k].data()[i];
      m = beta1_ * m + (1.0 - beta1_) * g;
      v = beta2_ * v + (1.0 - beta2_) * g * g;
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      const double delta = lr_ * mhat / (std::sqrt(vhat) + eps_);
      p->value.data()[i] -= delta;
      update_norm2 += delta * delta;
    }
    p->ZeroGrad();
  }
  last_update_norm_ = std::sqrt(update_norm2);
}

}  // namespace nn
}  // namespace trmma
