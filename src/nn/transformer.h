#ifndef TRMMA_NN_TRANSFORMER_H_
#define TRMMA_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace trmma {
namespace nn {

/// One post-norm transformer encoder layer (paper Eq. 6):
///   X' = LayerNorm(X + MHAttn(X,X,X));  out = LayerNorm(X' + FFN(X')).
class TransformerLayer : public Module {
 public:
  TransformerLayer(int model_dim, int num_heads, int ffn_dim, Rng& rng);

  Tensor Forward(Tensor x);

 private:
  MultiHeadAttention attention_;
  Mlp ffn_;
  LayerNorm norm1_;
  LayerNorm norm2_;
};

/// A stack of transformer layers with additive sinusoidal positional
/// encodings (Trans(.) in paper Eq. 3/11/12).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int model_dim, int num_heads, int ffn_dim,
                     int num_layers, Rng& rng);

  /// Encodes a sequence (len x d) -> (len x d).
  Tensor Forward(Tensor x);

 private:
  int model_dim_;
  std::vector<std::unique_ptr<TransformerLayer>> layers_;
};

/// Sinusoidal positional encoding matrix (len x dim).
Matrix SinusoidalPositionalEncoding(int len, int dim);

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_TRANSFORMER_H_
