#include "nn/module.h"

#include <cmath>

namespace trmma {
namespace nn {

std::vector<Param*> Module::Parameters() {
  std::vector<Param*> out;
  for (auto& p : params_) out.push_back(p.get());
  for (Module* child : children_) {
    for (Param* p : child->Parameters()) out.push_back(p);
  }
  return out;
}

int64_t Module::NumParameters() {
  int64_t total = 0;
  for (Param* p : Parameters()) total += p->value.size();
  return total;
}

void Module::ZeroGrad() {
  for (Param* p : Parameters()) p->ZeroGrad();
}

Param* Module::AddParam(std::string name, Matrix value) {
  params_.push_back(std::make_unique<Param>(std::move(name), std::move(value)));
  return params_.back().get();
}

void Module::AddChild(Module* child) { children_.push_back(child); }

Matrix XavierUniform(int rows, int cols, Rng& rng) {
  const double limit = std::sqrt(6.0 / (rows + cols));
  return UniformInit(rows, cols, limit, rng);
}

Matrix UniformInit(int rows, int cols, double scale, Rng& rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Uniform(-scale, scale);
  }
  return m;
}

}  // namespace nn
}  // namespace trmma
