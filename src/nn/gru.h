#ifndef TRMMA_NN_GRU_H_
#define TRMMA_NN_GRU_H_

#include "nn/module.h"
#include "nn/ops.h"

namespace trmma {
namespace nn {

/// Gated recurrent unit cell (Cho et al. [46]; the sequential decoder of
/// TRMMA, paper Fig. 4):
///   z = sigmoid(xWz + hUz + bz)       update gate
///   r = sigmoid(xWr + hUr + br)       reset gate
///   h~ = tanh(xWh + (r*h)Uh + bh)     candidate state
///   h' = (1-z)*h + z*h~
class GruCell : public Module {
 public:
  GruCell(int input_dim, int hidden_dim, Rng& rng);

  /// One step: x (1 x input_dim), h (1 x hidden_dim) -> h' (1 x hidden_dim).
  Tensor Step(Tensor x, Tensor h);

  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  Param* wz_;
  Param* uz_;
  Param* bz_;
  Param* wr_;
  Param* ur_;
  Param* br_;
  Param* wh_;
  Param* uh_;
  Param* bh_;
};

}  // namespace nn
}  // namespace trmma

#endif  // TRMMA_NN_GRU_H_
