#include "nn/ops.h"

#include <cmath>
#include <memory>

#include "common/logging.h"
#include "nn/profiler.h"

namespace trmma {
namespace nn {
namespace ops {
namespace {

double SigmoidScalar(double x) {
  if (x >= 0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

Tensor Input(Tape& tape, Matrix value) {
  OpScope prof("input");
  return tape.NewNode(std::move(value), nullptr);
}

Tensor FromParam(Tape& tape, Param& param) {
  OpScope prof("from_param");
  Matrix copy = param.value;
  Param* p = &param;
  return tape.NewNode(std::move(copy), [p](Tape& t, int self) {
    p->grad.Axpy(1.0, t.grad(self));
  });
}

Tensor MatMul(Tensor a, Tensor b) {
  OpScope prof("matmul");
  prof.AddFlops(2.0 * a.rows() * a.cols() * b.cols());
  Tape& tape = *a.tape();
  Matrix out;
  nn::MatMul(a.value(), b.value(), &out);
  const int ia = a.id();
  const int ib = b.id();
  return tape.NewNode(std::move(out), [ia, ib](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    AddMatMulTransB(g, t.value(ib), &t.grad(ia));  // dA += g * B^T
    AddMatMulTransA(t.value(ia), g, &t.grad(ib));  // dB += A^T * g
  });
}

Tensor MatMulParam(Tensor x, Param& w) {
  OpScope prof("matmul_param");
  prof.AddFlops(2.0 * x.rows() * x.cols() * w.value.cols());
  Tape& tape = *x.tape();
  Matrix out;
  nn::MatMul(x.value(), w.value, &out);
  const int ix = x.id();
  Param* pw = &w;
  return tape.NewNode(std::move(out), [ix, pw](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    AddMatMulTransB(g, pw->value, &t.grad(ix));
    AddMatMulTransA(t.value(ix), g, &pw->grad);
  });
}

Tensor Affine(Tensor x, Param& w, Param& b) {
  OpScope prof("affine");
  prof.AddFlops(2.0 * x.rows() * x.cols() * w.value.cols() +
                static_cast<double>(x.rows()) * w.value.cols());
  TRMMA_CHECK_EQ(b.value.rows(), 1);
  TRMMA_CHECK_EQ(b.value.cols(), w.value.cols());
  Tape& tape = *x.tape();
  Matrix out;
  nn::MatMul(x.value(), w.value, &out);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) += b.value.at(0, c);
  }
  const int ix = x.id();
  Param* pw = &w;
  Param* pb = &b;
  return tape.NewNode(std::move(out), [ix, pw, pb](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    AddMatMulTransB(g, pw->value, &t.grad(ix));
    AddMatMulTransA(t.value(ix), g, &pw->grad);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) pb->grad.at(0, c) += g.at(r, c);
    }
  });
}

Tensor EmbeddingLookup(Tape& tape, Param& table,
                       const std::vector<int>& ids) {
  OpScope prof("embedding_lookup");
  const int d = table.value.cols();
  Matrix out(static_cast<int>(ids.size()), d);
  for (size_t r = 0; r < ids.size(); ++r) {
    TRMMA_CHECK_GE(ids[r], 0);
    TRMMA_CHECK_LT(ids[r], table.value.rows());
    const double* src = table.value.row(ids[r]);
    double* dst = out.row(static_cast<int>(r));
    for (int c = 0; c < d; ++c) dst[c] = src[c];
  }
  Param* pt = &table;
  std::vector<int> ids_copy = ids;
  return tape.NewNode(std::move(out),
                      [pt, ids_copy = std::move(ids_copy)](Tape& t, int self) {
                        const Matrix& g = t.grad(self);
                        for (size_t r = 0; r < ids_copy.size(); ++r) {
                          double* dst = pt->grad.row(ids_copy[r]);
                          const double* src = g.row(static_cast<int>(r));
                          for (int c = 0; c < g.cols(); ++c) dst[c] += src[c];
                        }
                      });
}

Tensor Add(Tensor a, Tensor b) {
  OpScope prof("add");
  prof.AddFlops(a.value().size());
  TRMMA_CHECK(a.value().SameShape(b.value()));
  Tape& tape = *a.tape();
  Matrix out = a.value();
  out.Axpy(1.0, b.value());
  const int ia = a.id();
  const int ib = b.id();
  return tape.NewNode(std::move(out), [ia, ib](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    t.grad(ia).Axpy(1.0, g);
    t.grad(ib).Axpy(1.0, g);
  });
}

Tensor Sub(Tensor a, Tensor b) {
  OpScope prof("sub");
  prof.AddFlops(a.value().size());
  TRMMA_CHECK(a.value().SameShape(b.value()));
  Tape& tape = *a.tape();
  Matrix out = a.value();
  out.Axpy(-1.0, b.value());
  const int ia = a.id();
  const int ib = b.id();
  return tape.NewNode(std::move(out), [ia, ib](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    t.grad(ia).Axpy(1.0, g);
    t.grad(ib).Axpy(-1.0, g);
  });
}

Tensor Mul(Tensor a, Tensor b) {
  OpScope prof("mul");
  prof.AddFlops(a.value().size());
  TRMMA_CHECK(a.value().SameShape(b.value()));
  Tape& tape = *a.tape();
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= b.value().data()[i];
  const int ia = a.id();
  const int ib = b.id();
  return tape.NewNode(std::move(out), [ia, ib](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    Matrix& ga = t.grad(ia);
    Matrix& gb = t.grad(ib);
    const Matrix& va = t.value(ia);
    const Matrix& vb = t.value(ib);
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * vb.data()[i];
      gb.data()[i] += g.data()[i] * va.data()[i];
    }
  });
}

Tensor Scale(Tensor a, double alpha) {
  OpScope prof("scale");
  prof.AddFlops(a.value().size());
  Tape& tape = *a.tape();
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= alpha;
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia, alpha](Tape& t, int self) {
    t.grad(ia).Axpy(alpha, t.grad(self));
  });
}

Tensor OneMinus(Tensor a) {
  OpScope prof("one_minus");
  prof.AddFlops(a.value().size());
  Tape& tape = *a.tape();
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = 1.0 - out.data()[i];
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia](Tape& t, int self) {
    t.grad(ia).Axpy(-1.0, t.grad(self));
  });
}

Tensor Relu(Tensor a) {
  OpScope prof("relu");
  prof.AddFlops(a.value().size());
  Tape& tape = *a.tape();
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0) out.data()[i] = 0.0;
  }
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    const Matrix& y = t.value(self);
    Matrix& ga = t.grad(ia);
    for (int i = 0; i < g.size(); ++i) {
      if (y.data()[i] > 0.0) ga.data()[i] += g.data()[i];
    }
  });
}

Tensor Sigmoid(Tensor a) {
  OpScope prof("sigmoid");
  prof.AddFlops(4.0 * a.value().size());
  Tape& tape = *a.tape();
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = SigmoidScalar(out.data()[i]);
  }
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    const Matrix& y = t.value(self);
    Matrix& ga = t.grad(ia);
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * y.data()[i] * (1.0 - y.data()[i]);
    }
  });
}

Tensor Tanh(Tensor a) {
  OpScope prof("tanh");
  prof.AddFlops(4.0 * a.value().size());
  Tape& tape = *a.tape();
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::tanh(out.data()[i]);
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    const Matrix& y = t.value(self);
    Matrix& ga = t.grad(ia);
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * (1.0 - y.data()[i] * y.data()[i]);
    }
  });
}

Tensor SoftmaxRows(Tensor a) {
  OpScope prof("softmax_rows");
  prof.AddFlops(5.0 * a.value().size());
  Tape& tape = *a.tape();
  Matrix out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    double* row = out.row(r);
    double mx = row[0];
    for (int c = 1; c < out.cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (int c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (int c = 0; c < out.cols(); ++c) row[c] /= sum;
  }
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    const Matrix& y = t.value(self);
    Matrix& ga = t.grad(ia);
    for (int r = 0; r < g.rows(); ++r) {
      double dot = 0.0;
      for (int c = 0; c < g.cols(); ++c) dot += g.at(r, c) * y.at(r, c);
      for (int c = 0; c < g.cols(); ++c) {
        ga.at(r, c) += y.at(r, c) * (g.at(r, c) - dot);
      }
    }
  });
}

Tensor LayerNormRows(Tensor x, Param& gamma, Param& beta, double eps) {
  OpScope prof("layer_norm_rows");
  prof.AddFlops(8.0 * x.value().size());
  const int d = x.cols();
  TRMMA_CHECK_EQ(gamma.value.cols(), d);
  TRMMA_CHECK_EQ(beta.value.cols(), d);
  Tape& tape = *x.tape();
  const Matrix& in = x.value();
  Matrix out(in.rows(), d);
  // Cache the normalized activations and 1/σ per row for the backward pass.
  auto xhat = std::make_shared<Matrix>(in.rows(), d);
  auto inv_sigma = std::make_shared<std::vector<double>>(in.rows());
  for (int r = 0; r < in.rows(); ++r) {
    double mean = 0.0;
    for (int c = 0; c < d; ++c) mean += in.at(r, c);
    mean /= d;
    double var = 0.0;
    for (int c = 0; c < d; ++c) {
      const double diff = in.at(r, c) - mean;
      var += diff * diff;
    }
    var /= d;
    const double inv = 1.0 / std::sqrt(var + eps);
    (*inv_sigma)[r] = inv;
    for (int c = 0; c < d; ++c) {
      const double xh = (in.at(r, c) - mean) * inv;
      xhat->at(r, c) = xh;
      out.at(r, c) = xh * gamma.value.at(0, c) + beta.value.at(0, c);
    }
  }
  const int ix = x.id();
  Param* pg = &gamma;
  Param* pb = &beta;
  return tape.NewNode(
      std::move(out), [ix, pg, pb, xhat, inv_sigma, d](Tape& t, int self) {
        const Matrix& g = t.grad(self);
        Matrix& gx = t.grad(ix);
        for (int r = 0; r < g.rows(); ++r) {
          double mean_gy = 0.0;
          double mean_gy_xhat = 0.0;
          for (int c = 0; c < d; ++c) {
            const double gy = g.at(r, c) * pg->value.at(0, c);
            mean_gy += gy;
            mean_gy_xhat += gy * xhat->at(r, c);
            pg->grad.at(0, c) += g.at(r, c) * xhat->at(r, c);
            pb->grad.at(0, c) += g.at(r, c);
          }
          mean_gy /= d;
          mean_gy_xhat /= d;
          const double inv = (*inv_sigma)[r];
          for (int c = 0; c < d; ++c) {
            const double gy = g.at(r, c) * pg->value.at(0, c);
            gx.at(r, c) +=
                (gy - mean_gy - xhat->at(r, c) * mean_gy_xhat) * inv;
          }
        }
      });
}

Tensor ConcatCols(Tensor a, Tensor b) {
  OpScope prof("concat_cols");
  TRMMA_CHECK_EQ(a.rows(), b.rows());
  Tape& tape = *a.tape();
  const int ca = a.cols();
  const int cb = b.cols();
  Matrix out(a.rows(), ca + cb);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < ca; ++c) out.at(r, c) = a.value().at(r, c);
    for (int c = 0; c < cb; ++c) out.at(r, ca + c) = b.value().at(r, c);
  }
  const int ia = a.id();
  const int ib = b.id();
  return tape.NewNode(std::move(out), [ia, ib, ca, cb](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    Matrix& ga = t.grad(ia);
    Matrix& gb = t.grad(ib);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < ca; ++c) ga.at(r, c) += g.at(r, c);
      for (int c = 0; c < cb; ++c) gb.at(r, c) += g.at(r, ca + c);
    }
  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  OpScope prof("concat_rows");
  TRMMA_CHECK(!parts.empty());
  Tape& tape = *parts[0].tape();
  const int cols = parts[0].cols();
  int rows = 0;
  for (const Tensor& p : parts) {
    TRMMA_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Matrix out(rows, cols);
  std::vector<int> ids;
  std::vector<int> offsets;
  int at = 0;
  for (const Tensor& p : parts) {
    ids.push_back(p.id());
    offsets.push_back(at);
    for (int r = 0; r < p.rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.at(at + r, c) = p.value().at(r, c);
    }
    at += p.rows();
  }
  return tape.NewNode(std::move(out),
                      [ids, offsets](Tape& t, int self) {
                        const Matrix& g = t.grad(self);
                        for (size_t k = 0; k < ids.size(); ++k) {
                          Matrix& gp = t.grad(ids[k]);
                          for (int r = 0; r < gp.rows(); ++r) {
                            for (int c = 0; c < g.cols(); ++c) {
                              gp.at(r, c) += g.at(offsets[k] + r, c);
                            }
                          }
                        }
                      });
}

Tensor SliceCols(Tensor a, int start, int len) {
  OpScope prof("slice_cols");
  TRMMA_CHECK_GE(start, 0);
  TRMMA_CHECK_LE(start + len, a.cols());
  Tape& tape = *a.tape();
  Matrix out(a.rows(), len);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < len; ++c) out.at(r, c) = a.value().at(r, start + c);
  }
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia, start, len](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    Matrix& ga = t.grad(ia);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < len; ++c) ga.at(r, start + c) += g.at(r, c);
    }
  });
}

Tensor SliceRows(Tensor a, int start, int len) {
  OpScope prof("slice_rows");
  TRMMA_CHECK_GE(start, 0);
  TRMMA_CHECK_LE(start + len, a.rows());
  Tape& tape = *a.tape();
  Matrix out(len, a.cols());
  for (int r = 0; r < len; ++r) {
    for (int c = 0; c < a.cols(); ++c) out.at(r, c) = a.value().at(start + r, c);
  }
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia, start, len](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    Matrix& ga = t.grad(ia);
    for (int r = 0; r < len; ++r) {
      for (int c = 0; c < g.cols(); ++c) ga.at(start + r, c) += g.at(r, c);
    }
  });
}

Tensor Transpose(Tensor a) {
  OpScope prof("transpose");
  Tape& tape = *a.tape();
  Matrix out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.at(c, r) = a.value().at(r, c);
  }
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    Matrix& ga = t.grad(ia);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) ga.at(c, r) += g.at(r, c);
    }
  });
}

Tensor RepeatRows(Tensor a, int n) {
  OpScope prof("repeat_rows");
  TRMMA_CHECK_EQ(a.rows(), 1);
  Tape& tape = *a.tape();
  Matrix out(n, a.cols());
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < a.cols(); ++c) out.at(r, c) = a.value().at(0, c);
  }
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia, n](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    Matrix& ga = t.grad(ia);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < g.cols(); ++c) ga.at(0, c) += g.at(r, c);
    }
  });
}

Tensor MeanRows(Tensor a) {
  OpScope prof("mean_rows");
  prof.AddFlops(a.value().size());
  Tape& tape = *a.tape();
  const int n = a.rows();
  Matrix out(1, a.cols());
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < a.cols(); ++c) out.at(0, c) += a.value().at(r, c);
  }
  for (int c = 0; c < a.cols(); ++c) out.at(0, c) /= n;
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia, n](Tape& t, int self) {
    const Matrix& g = t.grad(self);
    Matrix& ga = t.grad(ia);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < g.cols(); ++c) ga.at(r, c) += g.at(0, c) / n;
    }
  });
}

Tensor SumAll(Tensor a) {
  OpScope prof("sum_all");
  prof.AddFlops(a.value().size());
  Tape& tape = *a.tape();
  Matrix out(1, 1);
  out.at(0, 0) = a.value().Sum();
  const int ia = a.id();
  return tape.NewNode(std::move(out), [ia](Tape& t, int self) {
    const double g = t.grad(self).at(0, 0);
    Matrix& ga = t.grad(ia);
    for (int i = 0; i < ga.size(); ++i) ga.data()[i] += g;
  });
}

Tensor BceWithLogits(Tensor logits, Matrix targets) {
  OpScope prof("bce_with_logits");
  prof.AddFlops(6.0 * logits.value().size());
  TRMMA_CHECK(logits.value().SameShape(targets));
  Tape& tape = *logits.tape();
  const Matrix& z = logits.value();
  double total = 0.0;
  for (int i = 0; i < z.size(); ++i) {
    const double zi = z.data()[i];
    const double yi = targets.data()[i];
    total += std::max(zi, 0.0) - zi * yi + std::log1p(std::exp(-std::abs(zi)));
  }
  Matrix out(1, 1);
  out.at(0, 0) = total;
  const int iz = logits.id();
  auto y = std::make_shared<Matrix>(std::move(targets));
  return tape.NewNode(std::move(out), [iz, y](Tape& t, int self) {
    const double g = t.grad(self).at(0, 0);
    const Matrix& z = t.value(iz);
    Matrix& gz = t.grad(iz);
    for (int i = 0; i < z.size(); ++i) {
      gz.data()[i] += g * (SigmoidScalar(z.data()[i]) - y->data()[i]);
    }
  });
}

Tensor L1Loss(Tensor pred, Matrix targets) {
  OpScope prof("l1_loss");
  prof.AddFlops(2.0 * pred.value().size());
  TRMMA_CHECK(pred.value().SameShape(targets));
  Tape& tape = *pred.tape();
  const Matrix& p = pred.value();
  double total = 0.0;
  for (int i = 0; i < p.size(); ++i) {
    total += std::abs(p.data()[i] - targets.data()[i]);
  }
  Matrix out(1, 1);
  out.at(0, 0) = total;
  const int ip = pred.id();
  auto y = std::make_shared<Matrix>(std::move(targets));
  return tape.NewNode(std::move(out), [ip, y](Tape& t, int self) {
    const double g = t.grad(self).at(0, 0);
    const Matrix& p = t.value(ip);
    Matrix& gp = t.grad(ip);
    for (int i = 0; i < p.size(); ++i) {
      const double diff = p.data()[i] - y->data()[i];
      gp.data()[i] += g * (diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0));
    }
  });
}

Tensor SoftmaxCrossEntropy(Tensor logits, const std::vector<int>& targets) {
  OpScope prof("softmax_xent");
  prof.AddFlops(5.0 * logits.value().size());
  TRMMA_CHECK_EQ(static_cast<size_t>(logits.rows()), targets.size());
  Tape& tape = *logits.tape();
  const Matrix& z = logits.value();
  // Cache the row-wise softmax for the backward pass.
  auto probs = std::make_shared<Matrix>(z.rows(), z.cols());
  double total = 0.0;
  for (int r = 0; r < z.rows(); ++r) {
    double mx = z.at(r, 0);
    for (int c = 1; c < z.cols(); ++c) mx = std::max(mx, z.at(r, c));
    double sum = 0.0;
    for (int c = 0; c < z.cols(); ++c) {
      const double e = std::exp(z.at(r, c) - mx);
      probs->at(r, c) = e;
      sum += e;
    }
    for (int c = 0; c < z.cols(); ++c) probs->at(r, c) /= sum;
    TRMMA_CHECK_GE(targets[r], 0);
    TRMMA_CHECK_LT(targets[r], z.cols());
    total += -std::log(std::max(probs->at(r, targets[r]), 1e-300));
  }
  Matrix out(1, 1);
  out.at(0, 0) = total;
  const int iz = logits.id();
  auto tgt = std::make_shared<std::vector<int>>(targets);
  return tape.NewNode(std::move(out), [iz, probs, tgt](Tape& t, int self) {
    const double g = t.grad(self).at(0, 0);
    Matrix& gz = t.grad(iz);
    for (int r = 0; r < probs->rows(); ++r) {
      for (int c = 0; c < probs->cols(); ++c) {
        const double onehot = c == (*tgt)[r] ? 1.0 : 0.0;
        gz.at(r, c) += g * (probs->at(r, c) - onehot);
      }
    }
  });
}

}  // namespace ops
}  // namespace nn
}  // namespace trmma
