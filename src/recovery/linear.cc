#include "recovery/linear.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "graph/route.h"

namespace trmma {

int NumMissingPoints(double t1, double t2, double epsilon) {
  const int n = static_cast<int>(std::lround((t2 - t1) / epsilon)) - 1;
  return std::max(n, 0);
}

MatchedPoint WalkAlongRoute(const RoadNetwork& network, const Route& route,
                            int& idx, double ratio, double dist_m) {
  TRMMA_CHECK(!route.empty());
  idx = std::clamp(idx, 0, static_cast<int>(route.size()) - 1);
  double pos_m = ratio * network.segment(route[idx]).length_m + dist_m;
  while (true) {
    const double len = network.segment(route[idx]).length_m;
    if (pos_m < len || idx + 1 == static_cast<int>(route.size())) {
      const double r = std::clamp(pos_m / len, 0.0, 0.999999);
      return MatchedPoint{route[idx], r, 0.0};
    }
    pos_m -= len;
    ++idx;
  }
}

LinearRecovery::LinearRecovery(const RoadNetwork& network, MapMatcher* matcher,
                               DaRoutePlanner* planner,
                               ShortestPathEngine* fallback, std::string label)
    : network_(network), matcher_(matcher), planner_(planner),
      fallback_(fallback), label_(std::move(label)) {}

MatchedTrajectory LinearRecovery::Recover(const Trajectory& sparse,
                                          double epsilon) {
  MatchedTrajectory out;
  if (sparse.empty()) return out;

  const std::vector<SegmentId> segs = matcher_->MatchPoints(sparse);
  const Route route = StitchRoute(network_, *planner_, *fallback_, segs);

  // Observed matched points + their segment's index on the route.
  const int n = sparse.size();
  std::vector<MatchedPoint> anchors(n);
  std::vector<int> route_idx(n, 0);
  int cursor = 0;
  for (int i = 0; i < n; ++i) {
    anchors[i] = ProjectToSegment(network_, sparse.points[i], segs[i]);
    // First occurrence of the segment at or after the previous anchor.
    int found = -1;
    for (int k = cursor; k < static_cast<int>(route.size()); ++k) {
      if (route[k] == segs[i]) {
        found = k;
        break;
      }
    }
    if (found < 0) {
      for (int k = 0; k < static_cast<int>(route.size()); ++k) {
        if (route[k] == segs[i]) {
          found = k;
          break;
        }
      }
    }
    route_idx[i] = found >= 0 ? found : cursor;
    cursor = route_idx[i];
  }

  for (int i = 0; i < n; ++i) {
    out.push_back(anchors[i]);
    if (i + 1 == n) break;
    const int missing = NumMissingPoints(sparse.points[i].t,
                                         sparse.points[i + 1].t, epsilon);
    if (missing == 0) continue;

    const bool forward =
        route_idx[i + 1] > route_idx[i] ||
        (route_idx[i + 1] == route_idx[i] &&
         anchors[i + 1].ratio >= anchors[i].ratio);
    double total = 0.0;
    if (forward) {
      total = DistanceAlongRoute(network_, route, route_idx[i],
                                 anchors[i].ratio, route_idx[i + 1],
                                 anchors[i + 1].ratio);
    }
    int idx = route_idx[i];
    double walked = 0.0;
    for (int j = 1; j <= missing; ++j) {
      const double target = total * j / (missing + 1);
      MatchedPoint a = WalkAlongRoute(network_, route, idx,
                                      anchors[i].ratio, target);
      // WalkAlongRoute moves `idx`, but distance is measured from the
      // anchor, so restart the ratio base only when staying on course.
      a.t = sparse.points[i].t + j * epsilon;
      out.push_back(a);
      idx = route_idx[i];  // re-walk from the anchor for exactness
    }
  }
  return out;
}

}  // namespace trmma
