#ifndef TRMMA_RECOVERY_RECOVERY_H_
#define TRMMA_RECOVERY_RECOVERY_H_

#include <string>

#include "common/status.h"
#include "traj/types.h"

namespace trmma {

/// How much graceful degradation a TryRecover call needed. All-default
/// values mean the input was recovered on a single connected route.
struct RecoverStats {
  int route_sections = 1;   ///< >1: unroutable pairs forced route splits
  int degraded_points = 0;  ///< points filled by nearest-anchor hold
};

/// Common interface of trajectory-recovery methods (paper Def. 7): given a
/// sparse trajectory T and a target sampling rate ε, produce the
/// map-matched ε-sampling trajectory T_ε.
class RecoveryMethod {
 public:
  virtual ~RecoveryMethod() = default;

  virtual MatchedTrajectory Recover(const Trajectory& sparse,
                                    double epsilon) = 0;

  /// Status-propagating variant for batch pipelines that must skip-and-record
  /// rather than die: implementations return an error instead of aborting on
  /// degenerate input (unmatchable points, empty routes) and report how much
  /// degradation the recovery needed via `stats`. The default wraps
  /// Recover() for methods without failure modes of their own.
  virtual StatusOr<MatchedTrajectory> TryRecover(const Trajectory& sparse,
                                                 double epsilon,
                                                 RecoverStats* stats = nullptr) {
    if (stats != nullptr) *stats = RecoverStats{};
    return Recover(sparse, epsilon);
  }

  /// Display name used in experiment tables.
  virtual std::string name() const = 0;
};

/// Number of missing points to insert between observations at t1 < t2 so
/// the result satisfies the ε-sampling rate (Algorithm 2 line 9, made
/// robust to floating-point timestamps on an exact ε grid).
int NumMissingPoints(double t1, double t2, double epsilon);

}  // namespace trmma

#endif  // TRMMA_RECOVERY_RECOVERY_H_
