#ifndef TRMMA_RECOVERY_RECOVERY_H_
#define TRMMA_RECOVERY_RECOVERY_H_

#include <string>

#include "traj/types.h"

namespace trmma {

/// Common interface of trajectory-recovery methods (paper Def. 7): given a
/// sparse trajectory T and a target sampling rate ε, produce the
/// map-matched ε-sampling trajectory T_ε.
class RecoveryMethod {
 public:
  virtual ~RecoveryMethod() = default;

  virtual MatchedTrajectory Recover(const Trajectory& sparse,
                                    double epsilon) = 0;

  /// Display name used in experiment tables.
  virtual std::string name() const = 0;
};

/// Number of missing points to insert between observations at t1 < t2 so
/// the result satisfies the ε-sampling rate (Algorithm 2 line 9, made
/// robust to floating-point timestamps on an exact ε grid).
int NumMissingPoints(double t1, double t2, double epsilon);

}  // namespace trmma

#endif  // TRMMA_RECOVERY_RECOVERY_H_
