#ifndef TRMMA_RECOVERY_TRMMA_H_
#define TRMMA_RECOVERY_TRMMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/transition_stats.h"
#include "mm/map_matcher.h"
#include "mm/route_stitch.h"
#include "nn/adam.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/transformer.h"
#include "recovery/recovery.h"
#include "traj/dataset.h"

namespace trmma {

/// Hyperparameters of TRMMA (paper §VI-A, scaled; see DESIGN.md §4).
struct TrmmaConfig {
  int dh = 32;          ///< model dim of the DualFormer (paper d_h)
  int trans_layers = 2;
  int trans_heads = 2;
  int trans_ffn = 64;
  double lr = 1e-3;
  int batch_size = 8;   ///< trajectories per optimizer step
  double lambda = 5.0;  ///< ratio-loss weight (paper Eq. 21)
  uint64_t seed = 31;
  bool use_dualformer = true;  ///< off = TRMMA-DF ablation (H = R)
  /// Probability of feeding the decoder its own prediction instead of the
  /// ground truth during training (scheduled sampling; mitigates exposure
  /// bias in the sequential decode of Algorithm 2).
  double scheduled_sampling = 0.35;
};

/// TRMMA (paper §V): recovers the map-matched ε-sampling trajectory of a
/// sparse input by (1) map matching it with the provided matcher and
/// stitching the route R, (2) encoding T and R with the DualFormer
/// (Eq. 11-14), and (3) sequentially decoding missing points with a GRU
/// that classifies over the segments of R and regresses position ratios
/// (Eq. 15-18, Algorithm 2). Candidates are the route's segments only —
/// never all of G — which is the source of its efficiency.
class TrmmaRecovery : public RecoveryMethod, public nn::Module {
 public:
  /// `matcher` provides routes at inference (MMA for full TRMMA; Nearest /
  /// HMM for the TRMMA-Near / TRMMA-HMM ablations). Referenced objects
  /// must outlive the instance.
  TrmmaRecovery(const RoadNetwork& network, MapMatcher* matcher,
                DaRoutePlanner* planner, ShortestPathEngine* fallback,
                const TrmmaConfig& config, std::string label = "TRMMA");

  /// One teacher-forced training epoch over the dataset's training split
  /// (ground-truth routes and matched points; loss Eq. 21). Returns the
  /// average per-point loss.
  double TrainEpoch(const Dataset& dataset, Rng& rng);

  /// Fast inference (Algorithm 2): the DualFormer encoding runs once on
  /// the autograd tape; the sequential decode then runs tape-free with the
  /// step-invariant part of the classifier (H * W8_top) precomputed per
  /// trajectory — the engineering behind the paper's inference-speed
  /// claim.
  MatchedTrajectory Recover(const Trajectory& sparse,
                            double epsilon) override;

  /// Non-aborting recovery. Unmatched points are repaired by borrowing the
  /// nearest matched neighbor's segment; unroutable candidate pairs split
  /// the route into sections that are decoded independently, with the
  /// ε-grid points between sections filled by nearest-anchor hold. Returns
  /// an error Status (instead of aborting) only when no point of the input
  /// can be map-matched at all. `stats` reports how much degradation was
  /// needed. Recover() is a thin wrapper that logs-and-drops failures.
  StatusOr<MatchedTrajectory> TryRecover(
      const Trajectory& sparse, double epsilon,
      RecoverStats* stats = nullptr) override;

  /// Reference implementation of Recover on the autograd tape. Slower;
  /// kept for differential testing against the fast path.
  MatchedTrajectory RecoverReference(const Trajectory& sparse,
                                     double epsilon);

  /// Tape-based counterpart of TryRecover with identical degradation
  /// semantics (section splitting, gap fill, Status on total failure).
  StatusOr<MatchedTrajectory> TryRecoverReference(
      const Trajectory& sparse, double epsilon,
      RecoverStats* stats = nullptr);

  std::string name() const override { return label_; }

  /// Diagnostic: teacher-forced decoding quality on the given samples
  /// (ground-truth routes, anchors and previous points). Separates decoder
  /// quality from map-matching quality.
  struct TeacherForcedStats {
    double cls_accuracy = 0.0;  ///< argmax-over-suffix segment accuracy
    double ratio_mae = 0.0;     ///< mean |ratio error|
  };
  TeacherForcedStats EvaluateTeacherForced(const Dataset& dataset,
                                           const std::vector<int>& indices);

  const TrmmaConfig& config() const { return config_; }

  /// Persists / restores all trainable parameters. The loading model must
  /// be constructed with the same config and network.
  Status Save(const std::string& path);
  Status Load(const std::string& path);

 private:
  /// DualFormer encoding H (Eq. 11-14) for a (sparse points, matched
  /// anchors, route) triple.
  nn::Tensor EncodeH(nn::Tape& tape, const Trajectory& sparse,
                     const std::vector<MatchedPoint>& anchors,
                     const Route& route);

  /// Advances the GRU with the previous point and emits classification
  /// logits over the route (Eq. 15). `seg_time_frac` holds each route
  /// segment's midpoint expected-time fraction; the classifier receives,
  /// per segment, its offset from the target time and from the previous
  /// position (explicit alignment features; DESIGN.md §2).
  /// `expected_frac` is the anticipated route fraction of the target
  /// point: the time-linear interpolation between the two observed
  /// anchors bracketing the gap. The classifier learns a residual on it.
  void StepAndClassify(nn::Tape& tape, nn::Tensor h_in, nn::Tensor enc_h,
                       const std::vector<double>& prefix_frac,
                       SegmentId prev_segment, double prev_ratio,
                       double target_time_frac, double prev_route_frac,
                       double expected_frac, nn::Tensor* h_out,
                       nn::Tensor* w);

  /// Ratio regression (Eq. 18) given the step's logits and the analytic
  /// uniform-speed ratio prior of the chosen segment.
  nn::Tensor PredictRatio(nn::Tape& tape, nn::Tensor h, nn::Tensor enc_h,
                          nn::Tensor w, double expected_ratio);

  /// Sequential decode (Algorithm 2 lines 2-16) of one route section: the
  /// sparse sub-trajectory `sparse` with per-point `anchors`, all of whose
  /// segments lie on the connected `route`. Tape-free fast path.
  MatchedTrajectory DecodeSectionFast(const Trajectory& sparse,
                                      const std::vector<MatchedPoint>& anchors,
                                      const Route& route, double epsilon);

  /// Tape-based reference decode of one route section.
  MatchedTrajectory DecodeSectionReference(
      const Trajectory& sparse, const std::vector<MatchedPoint>& anchors,
      const Route& route, double epsilon);

  const RoadNetwork& network_;
  MapMatcher* matcher_;
  DaRoutePlanner* planner_;
  ShortestPathEngine* fallback_;
  TrmmaConfig config_;
  std::string label_;
  Rng init_rng_;

  nn::Embedding seg_table_;   ///< shared id embedding (W7 and T0's segment part)
  nn::Linear t0_fc_;          ///< W6 (Eq. 11)
  nn::Linear route_fc_;       ///< W7 over [id emb | geometric features]
  nn::TransformerEncoder trans_t_;  ///< Trans_T (Eq. 11)
  nn::TransformerEncoder trans_r_;  ///< Trans_R (Eq. 12)
  nn::GruCell gru_;           ///< decoder state
  nn::Mlp cls_mlp_;           ///< Eq. 15
  nn::Mlp ratio_mlp_;         ///< Eq. 18
  std::unique_ptr<nn::Adam> optimizer_;
  int64_t epochs_trained_ = 0;  ///< epoch index reported in train telemetry
};

}  // namespace trmma

#endif  // TRMMA_RECOVERY_TRMMA_H_
