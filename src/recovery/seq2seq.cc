#include "recovery/seq2seq.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/ops.h"
#include "nn/telemetry.h"

namespace trmma {

using nn::Tensor;
namespace ops = nn::ops;

Seq2SeqRecovery::Seq2SeqRecovery(const RoadNetwork& network,
                                 const SegmentRTree& index,
                                 const Seq2SeqConfig& config,
                                 std::string label)
    : network_(network), index_(index), config_(config),
      label_(std::move(label)), grid_(network, config.grid_cell_m),
      init_rng_(config.seed),
      cell_emb_(grid_.num_cells(), config.dh, init_rng_),
      input_fc_(3, config.dh, init_rng_),
      encoder_gru_(config.dh, config.dh, init_rng_),
      seg_table_(network.num_segments(), config.dh, init_rng_),
      decoder_gru_(config.dh + 2, config.dh, init_rng_),
      output_fc_(config.dh, network.num_segments(), init_rng_),
      ratio_mlp_(config.dh, config.dh, 1, init_rng_) {
  AddChild(&cell_emb_);
  AddChild(&input_fc_);
  AddChild(&encoder_gru_);
  if (config.transformer_encoder) {
    encoder_trans_ = std::make_unique<nn::TransformerEncoder>(
        config.dh, config.trans_heads, config.trans_ffn, config.trans_layers,
        init_rng_);
    AddChild(encoder_trans_.get());
  }
  AddChild(&seg_table_);
  AddChild(&decoder_gru_);
  AddChild(&output_fc_);
  AddChild(&ratio_mlp_);
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config.lr);
}

namespace {

nn::Matrix RawFeatures(const RoadNetwork& network, const Trajectory& traj) {
  double min_lat = 1e30;
  double max_lat = -1e30;
  double min_lng = 1e30;
  double max_lng = -1e30;
  for (NodeId i = 0; i < network.num_nodes(); ++i) {
    const LatLng& p = network.node(i).pos;
    min_lat = std::min(min_lat, p.lat);
    max_lat = std::max(max_lat, p.lat);
    min_lng = std::min(min_lng, p.lng);
    max_lng = std::max(max_lng, p.lng);
  }
  const double lat_span = std::max(max_lat - min_lat, 1e-9);
  const double lng_span = std::max(max_lng - min_lng, 1e-9);
  const double t0 = traj.points.front().t;
  const double t_span = std::max(traj.points.back().t - t0, 1e-9);
  nn::Matrix z(traj.size(), 3);
  for (int i = 0; i < traj.size(); ++i) {
    z.at(i, 0) = (traj.points[i].pos.lat - min_lat) / lat_span;
    z.at(i, 1) = (traj.points[i].pos.lng - min_lng) / lng_span;
    z.at(i, 2) = (traj.points[i].t - t0) / t_span;
  }
  return z;
}

}  // namespace

Tensor Seq2SeqRecovery::Encode(nn::Tape& tape, const Trajectory& sparse) {
  // Grid-cell embeddings of the GPS points (the family's discretization)
  // plus continuous features.
  std::vector<int> cells(sparse.size());
  for (int i = 0; i < sparse.size(); ++i) {
    cells[i] = grid_.CellOf(sparse.points[i].pos);
  }
  Tensor x = ops::Add(
      cell_emb_.Forward(tape, cells),
      input_fc_.Forward(ops::Input(tape, RawFeatures(network_, sparse))));
  if (config_.transformer_encoder) {
    return ops::MeanRows(encoder_trans_->Forward(x));
  }
  Tensor h = ops::Input(tape, nn::Matrix(1, config_.dh));
  for (int i = 0; i < sparse.size(); ++i) {
    h = encoder_gru_.Step(ops::SliceRows(x, i, 1), h);
  }
  return h;
}

void Seq2SeqRecovery::DecodeStep(nn::Tape& tape, Tensor h_in,
                                 SegmentId prev_segment, double prev_ratio,
                                 double target_time_frac, Tensor* h_out,
                                 Tensor* logits, Tensor* ratio) {
  nn::Matrix r_in(1, 2);
  r_in.at(0, 0) = prev_ratio;
  r_in.at(0, 1) = target_time_frac;
  Tensor x = ops::ConcatCols(seg_table_.Forward(tape, {prev_segment}),
                             ops::Input(tape, std::move(r_in)));
  *h_out = decoder_gru_.Step(x, h_in);
  *logits = output_fc_.Forward(*h_out);  // 1 x |E|: full-network prediction
  *ratio = ops::Sigmoid(ratio_mlp_.Forward(*h_out));
}

double Seq2SeqRecovery::TrainEpoch(const Dataset& dataset, Rng& rng) {
  std::vector<int> order = dataset.train_idx;
  rng.Shuffle(order);
  double total_loss = 0.0;
  int64_t total_points = 0;
  int in_batch = 0;
  double batch_loss = 0.0;
  int64_t batch_points = 0;
  Stopwatch step_watch;
  const int64_t epoch = epochs_trained_++;
  nn::Tape tape;
  for (int idx : order) {
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2 || sample.truth.size() < 2) continue;
    Tensor h = Encode(tape, sample.sparse);
    const double t_begin = sample.sparse.points.front().t;
    const double t_span =
        std::max(sample.sparse.points.back().t - t_begin, 1e-9);

    Tensor loss;
    int count = 0;
    for (size_t j = 1; j < sample.truth.size(); ++j) {
      const MatchedPoint& prev = sample.truth[j - 1];
      const MatchedPoint& cur = sample.truth[j];
      Tensor h_next;
      Tensor logits;
      Tensor ratio;
      DecodeStep(tape, h, prev.segment, prev.ratio,
                 (cur.t - t_begin) / t_span, &h_next, &logits, &ratio);
      h = h_next;
      Tensor seg_loss = ops::SoftmaxCrossEntropy(logits, {cur.segment});
      nn::Matrix target(1, 1);
      target.at(0, 0) = cur.ratio;
      Tensor step_loss = ops::Add(
          seg_loss, ops::Scale(ops::L1Loss(ratio, std::move(target)),
                               config_.lambda));
      loss = count == 0 ? step_loss : ops::Add(loss, step_loss);
      ++count;
    }
    loss = ops::Scale(loss, 1.0 / count);
    total_loss += loss.value().at(0, 0) * count;
    total_points += count;
    batch_loss += loss.value().at(0, 0) * count;
    batch_points += count;
    tape.Backward(loss);
    tape.Clear();
    if (++in_batch == config_.batch_size) {
      optimizer_->Step();
      nn::LogTrainStep("seq2seq", *optimizer_,
                       batch_points > 0 ? batch_loss / batch_points : 0.0,
                       batch_points, step_watch.LapMillis() / 1e3, epoch);
      in_batch = 0;
      batch_loss = 0.0;
      batch_points = 0;
    }
  }
  if (in_batch > 0) {
    optimizer_->Step();
    nn::LogTrainStep("seq2seq", *optimizer_,
                     batch_points > 0 ? batch_loss / batch_points : 0.0,
                     batch_points, step_watch.LapMillis() / 1e3, epoch);
  }
  return total_points > 0 ? total_loss / total_points : 0.0;
}

MatchedTrajectory Seq2SeqRecovery::Recover(const Trajectory& sparse,
                                           double epsilon) {
  MatchedTrajectory out;
  if (sparse.empty()) return out;
  nn::Tape tape;
  Tensor h = Encode(tape, sparse);

  // Seed with the nearest-segment projection of the first GPS point.
  const Vec2 xy0 = network_.projection().ToMeters(sparse.points.front().pos);
  const auto first_hits = index_.KNearest(xy0, 1);
  TRMMA_CHECK(!first_hits.empty());
  MatchedPoint prev{first_hits[0].segment, first_hits[0].ratio,
                    sparse.points.front().t};
  out.push_back(prev);
  const double t_begin = sparse.points.front().t;
  const double t_span = std::max(sparse.points.back().t - t_begin, 1e-9);

  for (int i = 0; i + 1 < sparse.size(); ++i) {
    const int steps = NumMissingPoints(sparse.points[i].t,
                                       sparse.points[i + 1].t, epsilon) +
                      1;  // missing points plus the observation itself
    for (int j = 1; j <= steps; ++j) {
      const double t_j = sparse.points[i].t + j * epsilon;
      Tensor h_next;
      Tensor logits;
      Tensor ratio;
      DecodeStep(tape, h, prev.segment, prev.ratio,
                 (t_j - t_begin) / t_span, &h_next, &logits, &ratio);
      h = h_next;
      int best = -1;
      if (config_.constraint_hops > 0) {
        // MTrajRec's constraint mask: argmax over segments reachable from
        // the previous prediction within constraint_hops hops.
        std::vector<SegmentId> frontier = {prev.segment};
        std::vector<SegmentId> reachable = {prev.segment};
        for (int hop = 0; hop < config_.constraint_hops; ++hop) {
          std::vector<SegmentId> next_frontier;
          for (SegmentId e : frontier) {
            for (SegmentId nx : network_.NextSegments(e)) {
              reachable.push_back(nx);
              next_frontier.push_back(nx);
            }
          }
          frontier = std::move(next_frontier);
        }
        for (SegmentId c : reachable) {
          if (best < 0 ||
              logits.value().at(0, c) > logits.value().at(0, best)) {
            best = c;
          }
        }
      }
      if (best < 0) {
        best = 0;
        for (int c = 1; c < logits.cols(); ++c) {
          if (logits.value().at(0, c) > logits.value().at(0, best)) best = c;
        }
      }
      MatchedPoint a;
      a.segment = best;
      a.ratio = std::clamp(ratio.value().at(0, 0), 0.0, 0.999999);
      a.t = t_j;
      if (j == steps) {
        // Observation step: condition on the observed GPS point (the full
        // MTrajRec attends to encoder states; the lite version snaps to
        // the observation's nearest-segment projection).
        const Vec2 xy =
            network_.projection().ToMeters(sparse.points[i + 1].pos);
        const auto hits = index_.KNearest(xy, 1);
        a.segment = hits[0].segment;
        a.ratio = hits[0].ratio;
      }
      out.push_back(a);
      prev = a;
    }
  }
  return out;
}

}  // namespace trmma
