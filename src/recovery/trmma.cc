#include "recovery/trmma.h"

#include <algorithm>
#include <cmath>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "nn/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace trmma {

using nn::Tensor;
namespace ops = nn::ops;

TrmmaRecovery::TrmmaRecovery(const RoadNetwork& network, MapMatcher* matcher,
                             DaRoutePlanner* planner,
                             ShortestPathEngine* fallback,
                             const TrmmaConfig& config, std::string label)
    : network_(network), matcher_(matcher), planner_(planner),
      fallback_(fallback), config_(config), label_(std::move(label)),
      init_rng_(config.seed),
      seg_table_(network.num_segments(), config.dh, init_rng_),
      t0_fc_(4 + config.dh, config.dh, init_rng_),
      route_fc_(config.dh + 4, config.dh, init_rng_),
      trans_t_(config.dh, config.trans_heads, config.trans_ffn,
               config.trans_layers, init_rng_),
      trans_r_(config.dh, config.trans_heads, config.trans_ffn,
               config.trans_layers, init_rng_),
      gru_(config.dh + 4, config.dh, init_rng_),
      cls_mlp_(2 * config.dh + 3, config.dh, 1, init_rng_),
      ratio_mlp_(2 * config.dh + 1, config.dh, 1, init_rng_) {
  AddChild(&seg_table_);
  AddChild(&t0_fc_);
  AddChild(&route_fc_);
  AddChild(&trans_t_);
  AddChild(&trans_r_);
  AddChild(&gru_);
  AddChild(&cls_mlp_);
  AddChild(&ratio_mlp_);
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config.lr);
}

namespace {

/// Min-max normalized [lat, lng, t, ratio] block of T0 (Eq. 11).
nn::Matrix AnchorFeatures(const RoadNetwork& network, const Trajectory& sparse,
                          const std::vector<MatchedPoint>& anchors) {
  double min_lat = 1e30;
  double max_lat = -1e30;
  double min_lng = 1e30;
  double max_lng = -1e30;
  for (NodeId i = 0; i < network.num_nodes(); ++i) {
    const LatLng& p = network.node(i).pos;
    min_lat = std::min(min_lat, p.lat);
    max_lat = std::max(max_lat, p.lat);
    min_lng = std::min(min_lng, p.lng);
    max_lng = std::max(max_lng, p.lng);
  }
  const double lat_span = std::max(max_lat - min_lat, 1e-9);
  const double lng_span = std::max(max_lng - min_lng, 1e-9);
  const double t0 = sparse.points.front().t;
  const double t_span = std::max(sparse.points.back().t - t0, 1e-9);

  nn::Matrix z(sparse.size(), 4);
  for (int i = 0; i < sparse.size(); ++i) {
    z.at(i, 0) = (sparse.points[i].pos.lat - min_lat) / lat_span;
    z.at(i, 1) = (sparse.points[i].pos.lng - min_lng) / lng_span;
    z.at(i, 2) = (sparse.points[i].t - t0) / t_span;
    z.at(i, 3) = anchors[i].ratio;
  }
  return z;
}

/// Prefix sums of expected (free-flow) traversal times along the route:
/// out[k] = time before route[k]; out[route.size()] = total. Expected time
/// is the natural coordinate for locating a point that is a known number
/// of seconds into the trip.
std::vector<double> RoutePrefix(const RoadNetwork& network,
                                const Route& route) {
  std::vector<double> prefix(route.size() + 1, 0.0);
  for (size_t k = 0; k < route.size(); ++k) {
    const RoadSegment& seg = network.segment(route[k]);
    prefix[k + 1] = prefix[k] + seg.length_m / seg.speed_mps;
  }
  return prefix;
}

/// Cumulative expected-time fraction of position (idx, ratio).
double RouteFraction(const RoadNetwork& network, const Route& route,
                     const std::vector<double>& prefix, int idx,
                     double ratio) {
  if (route.empty()) return 0.0;
  idx = std::clamp(idx, 0, static_cast<int>(route.size()) - 1);
  const double total = std::max(prefix.back(), 1e-9);
  const RoadSegment& seg = network.segment(route[idx]);
  return (prefix[idx] + ratio * seg.length_m / seg.speed_mps) / total;
}

/// Normalized expected-time prefix: out[k] = fraction of total expected
/// time before route[k]; out[route.size()] = 1.
std::vector<double> NormalizedPrefix(const std::vector<double>& prefix) {
  std::vector<double> out(prefix.size());
  const double total = std::max(prefix.back(), 1e-9);
  for (size_t k = 0; k < prefix.size(); ++k) out[k] = prefix[k] / total;
  return out;
}

/// Midpoint expected-time fraction of every route segment.
std::vector<double> RouteMidFractions(const RoadNetwork& network,
                                      const Route& route,
                                      const std::vector<double>& prefix) {
  std::vector<double> mid(route.size());
  const double total = std::max(prefix.back(), 1e-9);
  for (size_t k = 0; k < route.size(); ++k) {
    const RoadSegment& seg = network.segment(route[k]);
    mid[k] = (prefix[k] + 0.5 * seg.length_m / seg.speed_mps) / total;
  }
  return mid;
}

/// Analytic position-ratio prior for segment `k` at time fraction `tau`:
/// where a uniform-expected-time traveller would sit on that segment.
double ExpectedRatio(const RoadNetwork& network, const Route& route,
                     const std::vector<double>& prefix, int k, double tau) {
  if (route.empty()) return 0.5;
  k = std::clamp(k, 0, static_cast<int>(route.size()) - 1);
  const double total = std::max(prefix.back(), 1e-9);
  const RoadSegment& seg = network.segment(route[k]);
  const double seg_time = std::max(seg.length_m / seg.speed_mps, 1e-9);
  return std::clamp((tau * total - prefix[k]) / seg_time, 0.0, 1.0);
}

/// First index of `segment` in `route` at or after `from`; falls back to a
/// global search, then to `from` itself.
int LocateOnRoute(const Route& route, SegmentId segment, int from) {
  for (int k = from; k < static_cast<int>(route.size()); ++k) {
    if (route[k] == segment) return k;
  }
  for (int k = 0; k < from && k < static_cast<int>(route.size()); ++k) {
    if (route[k] == segment) return k;
  }
  return std::min(from, static_cast<int>(route.size()) - 1);
}

/// Map-matched input of the decode: per-point anchors and the route
/// section(s) they lie on. `repaired` counts points whose unmatched segment
/// was borrowed from a neighbor.
struct PreparedInput {
  std::vector<MatchedPoint> anchors;
  std::vector<RouteSection> sections;
  int repaired = 0;
};

/// Map matches `sparse` and prepares the per-section decode input. Points
/// the matcher could not place (kInvalidSegment) borrow the nearest matched
/// neighbor's segment; an input where no point matches at all is the only
/// unrecoverable case and returns a Status instead.
StatusOr<PreparedInput> PrepareSections(const RoadNetwork& network,
                                        MapMatcher& matcher,
                                        DaRoutePlanner& planner,
                                        ShortestPathEngine& fallback,
                                        const Trajectory& sparse) {
  std::vector<SegmentId> segs = matcher.MatchPoints(sparse);
  const int n = static_cast<int>(segs.size());
  auto valid = [&](SegmentId sid) {
    return sid >= 0 && sid < network.num_segments();
  };
  PreparedInput prep;
  for (int i = 0; i < n; ++i) {
    if (valid(segs[i])) continue;
    for (int off = 1; off < n; ++off) {
      if (i - off >= 0 && valid(segs[i - off])) {
        segs[i] = segs[i - off];
        break;
      }
      if (i + off < n && valid(segs[i + off])) {
        segs[i] = segs[i + off];
        break;
      }
    }
    if (!valid(segs[i])) {
      return Status::FailedPrecondition(
          "map matching produced no usable segment for any point");
    }
    ++prep.repaired;
  }
  if (prep.repaired > 0) {
    obs::RecordEvent("recover:anchor_repaired=" +
                     std::to_string(prep.repaired));
  }
  prep.sections = StitchRouteSections(network, planner, fallback, segs);
  if (prep.sections.empty()) {
    return Status::Internal("route stitching produced no sections");
  }
  if (prep.sections.size() > 1) {
    obs::RecordEvent("recover:multi_section=" +
                     std::to_string(prep.sections.size()));
  }
  prep.anchors.resize(n);
  for (int i = 0; i < n; ++i) {
    prep.anchors[i] = ProjectToSegment(network, sparse.points[i], segs[i]);
  }
  return prep;
}

/// Decodes every section independently and fills the ε-grid points of the
/// unroutable gaps between sections by holding the nearest anchor (first
/// half of a gap holds the left anchor, second half the right). Adds the
/// held points to `stats->degraded_points`.
template <typename DecodeFn>
MatchedTrajectory AssembleSections(const std::vector<RouteSection>& sections,
                                   const Trajectory& sparse,
                                   const std::vector<MatchedPoint>& anchors,
                                   double epsilon, RecoverStats* stats,
                                   DecodeFn&& decode) {
  MatchedTrajectory out;
  int held = 0;
  for (size_t s = 0; s < sections.size(); ++s) {
    const RouteSection& sec = sections[s];
    Trajectory sub;
    sub.points.assign(sparse.points.begin() + sec.first_point,
                      sparse.points.begin() + sec.last_point + 1);
    std::vector<MatchedPoint> sub_anchors(
        anchors.begin() + sec.first_point,
        anchors.begin() + sec.last_point + 1);
    if (s > 0) {
      const double t_l = sparse.points[sections[s - 1].last_point].t;
      const double t_r = sparse.points[sec.first_point].t;
      const MatchedPoint left = out.back();
      const MatchedPoint& right = sub_anchors.front();
      const int missing = NumMissingPoints(t_l, t_r, epsilon);
      for (int j = 1; j <= missing; ++j) {
        MatchedPoint p = (t_l + j * epsilon) - t_l <= t_r - (t_l + j * epsilon)
                             ? left
                             : right;
        p.t = t_l + j * epsilon;
        out.push_back(p);
      }
      held += missing;
    }
    MatchedTrajectory piece = decode(sub, sub_anchors, sec.route);
    out.insert(out.end(), piece.begin(), piece.end());
  }
  if (held > 0) {
    obs::RecordEvent("recover:gap_fill_held=" + std::to_string(held));
  }
  if (stats != nullptr) {
    stats->route_sections = static_cast<int>(sections.size());
    stats->degraded_points += held;
  }
  return out;
}

/// Counts a degraded / failed recovery on the obs registry.
void CountRecoverEvent(const char* name) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricRegistry::Global().GetCounter(name)->Increment();
}

}  // namespace

Tensor TrmmaRecovery::EncodeH(nn::Tape& tape, const Trajectory& sparse,
                              const std::vector<MatchedPoint>& anchors,
                              const Route& route) {
  TRMMA_SPAN("trmma.encode");
  // T branch (Eq. 11): [lat,lng,t,r] + segment id embedding -> FC -> Trans.
  std::vector<int> anchor_ids(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    anchor_ids[i] = anchors[i].segment;
  }
  Tensor t0 = ops::ConcatCols(
      ops::Input(tape, AnchorFeatures(network_, sparse, anchors)),
      seg_table_.Forward(tape, anchor_ids));
  Tensor t_mat = trans_t_.Forward(t0_fc_.Forward(t0));

  // R branch (Eq. 12): id embedding plus geometric features (normalized
  // length, cumulative-distance fraction, speed, cumulative-time fraction)
  // -> FC -> Trans. The geometric features substitute for what the paper's
  // W7 embeddings learn from millions of trips (DESIGN.md §2).
  std::vector<int> route_ids(route.begin(), route.end());
  const double total_len = std::max(RouteLength(network_, route), 1e-9);
  const std::vector<double> time_prefix = RoutePrefix(network_, route);
  const double total_time = std::max(time_prefix.back(), 1e-9);
  nn::Matrix rfeat(static_cast<int>(route.size()), 4);
  double cum = 0.0;
  for (size_t k = 0; k < route.size(); ++k) {
    const RoadSegment& seg = network_.segment(route[k]);
    rfeat.at(k, 0) = seg.length_m / 500.0;
    rfeat.at(k, 1) = (cum + 0.5 * seg.length_m) / total_len;
    rfeat.at(k, 2) = seg.speed_mps / 30.0;
    rfeat.at(k, 3) =
        (time_prefix[k] + 0.5 * seg.length_m / seg.speed_mps) / total_time;
    cum += seg.length_m;
  }
  Tensor r1 = route_fc_.Forward(
      ops::ConcatCols(seg_table_.Forward(tape, route_ids),
                      ops::Input(tape, std::move(rfeat))));
  Tensor r_mat = trans_r_.Forward(r1);

  if (!config_.use_dualformer) return r_mat;  // TRMMA-DF ablation

  // Cross attention (Eq. 13-14): H = R + softmax(R T^T) T.
  Tensor beta = ops::SoftmaxRows(ops::MatMul(r_mat, ops::Transpose(t_mat)));
  return ops::Add(r_mat, ops::MatMul(beta, t_mat));
}

void TrmmaRecovery::StepAndClassify(nn::Tape& tape, Tensor h_in, Tensor enc_h,
                                    const std::vector<double>& prefix_frac,
                                    SegmentId prev_segment, double prev_ratio,
                                    double target_time_frac,
                                    double prev_route_frac,
                                    double expected_frac, Tensor* h_out,
                                    Tensor* w) {
  // GRU input: embedding of the previous point's segment, its ratio, the
  // normalized time of the point being recovered (its timestamp is known
  // from the ε grid, Def. 6), the previous point's route fraction, and the
  // anchor-interpolated expected fraction of the target.
  nn::Matrix r_in(1, 4);
  r_in.at(0, 0) = prev_ratio;
  r_in.at(0, 1) = target_time_frac;
  r_in.at(0, 2) = prev_route_frac;
  r_in.at(0, 3) = expected_frac;
  Tensor x = ops::ConcatCols(seg_table_.Forward(tape, {prev_segment}),
                             ops::Input(tape, std::move(r_in)));
  *h_out = gru_.Step(x, h_in);

  // Classification over the route's segments (Eq. 15), structured as a
  // residual around an analytic containment prior: a segment whose
  // expected-time interval contains the anchor-interpolated expected
  // position gets a positive prior logit, others negative proportional to
  // their offset. The network refines this prior rather than solving
  // localization from scratch (DESIGN.md §2).
  const int route_len = enc_h.rows();
  nn::Matrix prior(route_len, 1);
  nn::Matrix align(route_len, 3);
  for (int k = 0; k < route_len; ++k) {
    const double start = prefix_frac[k];
    const double end = prefix_frac[k + 1];
    const double width = std::max(end - start, 1e-9);
    const double u = (expected_frac - start) / width;
    prior.at(k, 0) = 4.0 * std::min(u, 1.0 - u);  // >0 inside, <0 outside
    const double mid = 0.5 * (start + end);
    align.at(k, 0) = mid - expected_frac;
    align.at(k, 1) = mid - prev_route_frac;
    align.at(k, 2) = mid - target_time_frac;
  }
  Tensor paired = ops::ConcatCols(
      ops::ConcatCols(enc_h, ops::RepeatRows(*h_out, route_len)),
      ops::Input(tape, std::move(align)));
  *w = ops::Add(ops::Input(tape, std::move(prior)),
                cls_mlp_.Forward(paired));  // route_len x 1
}

Tensor TrmmaRecovery::PredictRatio(nn::Tape& tape, Tensor h, Tensor enc_h,
                                   Tensor w, double expected_ratio) {
  // Ratio regression (Eq. 18): attention readout over H weighted by the
  // classification scores. The network output is a residual added to the
  // logit of the analytic uniform-speed ratio prior of the chosen
  // segment, so the prediction starts at the prior and is refined.
  Tensor psi = ops::SoftmaxRows(ops::Transpose(w));  // 1 x route_len
  Tensor ctx = ops::MatMul(psi, enc_h);
  const double clamped = std::clamp(expected_ratio, 0.02, 0.98);
  nn::Matrix prior_feat(1, 1);
  prior_feat.at(0, 0) = expected_ratio;
  Tensor in = ops::ConcatCols(ops::ConcatCols(h, ctx),
                              ops::Input(tape, std::move(prior_feat)));
  nn::Matrix prior_logit(1, 1);
  prior_logit.at(0, 0) = std::log(clamped / (1.0 - clamped));
  return ops::Sigmoid(ops::Add(ratio_mlp_.Forward(in),
                               ops::Input(tape, std::move(prior_logit))));
}

Status TrmmaRecovery::Save(const std::string& path) {
  return nn::SaveParameters(Parameters(), path);
}

Status TrmmaRecovery::Load(const std::string& path) {
  return nn::LoadParameters(Parameters(), path);
}

double TrmmaRecovery::TrainEpoch(const Dataset& dataset, Rng& rng) {
  TRMMA_SPAN("trmma.train_epoch");
  std::vector<int> order = dataset.train_idx;
  rng.Shuffle(order);

  double total_loss = 0.0;
  int64_t total_points = 0;
  int in_batch = 0;
  double batch_loss = 0.0;
  int64_t batch_points = 0;
  Stopwatch step_watch;
  const int64_t epoch = epochs_trained_++;
  nn::Tape tape;
  for (int idx : order) {
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2 || sample.route.empty()) continue;

    // Training uses the ground-truth route and matched anchors, with
    // scheduled sampling: the previous point fed to the decoder is
    // sometimes the model's own prediction so that free-running inference
    // does not drift (exposure-bias mitigation).
    std::vector<MatchedPoint> anchors(sample.sparse.size());
    for (size_t i = 0; i < anchors.size(); ++i) {
      anchors[i] = sample.truth[sample.sparse_indices[i]];
    }
    Tensor enc_h = EncodeH(tape, sample.sparse, anchors, sample.route);
    Tensor h = ops::MeanRows(enc_h);

    const double t_begin = sample.sparse.points.front().t;
    const double t_span =
        std::max(sample.sparse.points.back().t - t_begin, 1e-9);
    const std::vector<double> prefix = RoutePrefix(network_, sample.route);
    const std::vector<double> pfrac = NormalizedPrefix(prefix);
    std::vector<char> observed(sample.truth.size(), 0);
    for (int si : sample.sparse_indices) observed[si] = 1;

    // Anchor-interpolated expected route fraction of every dense point.
    std::vector<double> expected(sample.truth.size(), 0.0);
    {
      int cursor = 0;
      for (size_t g = 0; g + 1 < sample.sparse_indices.size(); ++g) {
        const int a = sample.sparse_indices[g];
        const int b = sample.sparse_indices[g + 1];
        const int idx_a =
            LocateOnRoute(sample.route, sample.truth[a].segment, cursor);
        const int idx_b =
            LocateOnRoute(sample.route, sample.truth[b].segment, idx_a);
        cursor = idx_a;
        const double fa = RouteFraction(network_, sample.route, prefix,
                                        idx_a, sample.truth[a].ratio);
        const double fb = RouteFraction(network_, sample.route, prefix,
                                        idx_b, sample.truth[b].ratio);
        const double dt =
            std::max(sample.truth[b].t - sample.truth[a].t, 1e-9);
        for (int j = a; j <= b; ++j) {
          expected[j] =
              fa + (fb - fa) * (sample.truth[j].t - sample.truth[a].t) / dt;
        }
      }
    }

    Tensor loss;
    int num_predicted = 0;
    MatchedPoint prev = sample.truth.front();
    int prev_route_idx = LocateOnRoute(sample.route, prev.segment, 0);
    for (size_t j = 1; j < sample.truth.size(); ++j) {
      const MatchedPoint& cur = sample.truth[j];
      const double tau = (cur.t - t_begin) / t_span;
      Tensor h_next;
      Tensor w;
      StepAndClassify(tape, h, enc_h, pfrac, prev.segment, prev.ratio, tau,
                      RouteFraction(network_, sample.route, prefix,
                                    prev_route_idx, prev.ratio),
                      expected[j], &h_next, &w);
      h = h_next;

      if (observed[j]) {
        prev = cur;
        prev_route_idx =
            LocateOnRoute(sample.route, cur.segment, prev_route_idx);
        continue;
      }

      // Classification loss (Eq. 19).
      const int target_idx =
          LocateOnRoute(sample.route, cur.segment, prev_route_idx);
      nn::Matrix labels(w.rows(), 1);
      if (sample.route[target_idx] == cur.segment) {
        labels.at(target_idx, 0) = 1.0;
      }
      Tensor seg_loss = ops::BceWithLogits(w, std::move(labels));

      // Ratio loss (Eq. 20), conditioned on the true segment.
      Tensor ratio = PredictRatio(
          tape, h, enc_h, w,
          ExpectedRatio(network_, sample.route, prefix, target_idx,
                        expected[j]));
      nn::Matrix target_ratio(1, 1);
      target_ratio.at(0, 0) = cur.ratio;
      Tensor ratio_loss = ops::L1Loss(ratio, std::move(target_ratio));

      Tensor step_loss =
          ops::Add(seg_loss, ops::Scale(ratio_loss, config_.lambda));
      loss = num_predicted == 0 ? step_loss : ops::Add(loss, step_loss);
      ++num_predicted;

      // Scheduled sampling: advance from the model's own prediction with
      // probability `scheduled_sampling`.
      if (rng.Bernoulli(config_.scheduled_sampling)) {
        int best = prev_route_idx;
        for (int k = prev_route_idx;
             k < static_cast<int>(sample.route.size()); ++k) {
          if (w.value().at(k, 0) > w.value().at(best, 0)) best = k;
        }
        prev = MatchedPoint{
            sample.route[best],
            std::clamp(ratio.value().at(0, 0), 0.0, 0.999999), cur.t};
        prev_route_idx = best;
      } else {
        prev = cur;
        prev_route_idx =
            LocateOnRoute(sample.route, cur.segment, prev_route_idx);
      }
    }
    if (num_predicted == 0) {
      tape.Clear();
      continue;
    }
    loss = ops::Scale(loss, 1.0 / num_predicted);
    total_loss += loss.value().at(0, 0) * num_predicted;
    total_points += num_predicted;
    batch_loss += loss.value().at(0, 0) * num_predicted;
    batch_points += num_predicted;
    tape.Backward(loss);
    tape.Clear();
    if (++in_batch == config_.batch_size) {
      optimizer_->Step();
      nn::LogTrainStep("trmma", *optimizer_,
                       batch_points > 0 ? batch_loss / batch_points : 0.0,
                       batch_points, step_watch.LapMillis() / 1e3, epoch);
      in_batch = 0;
      batch_loss = 0.0;
      batch_points = 0;
    }
  }
  if (in_batch > 0) {
    optimizer_->Step();
    nn::LogTrainStep("trmma", *optimizer_,
                     batch_points > 0 ? batch_loss / batch_points : 0.0,
                     batch_points, step_watch.LapMillis() / 1e3, epoch);
  }
  return total_points > 0 ? total_loss / total_points : 0.0;
}

TrmmaRecovery::TeacherForcedStats TrmmaRecovery::EvaluateTeacherForced(
    const Dataset& dataset, const std::vector<int>& indices) {
  TeacherForcedStats stats;
  int64_t count = 0;
  int64_t correct = 0;
  double ratio_err = 0.0;
  nn::Tape tape;
  for (int idx : indices) {
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2 || sample.route.empty()) continue;
    std::vector<MatchedPoint> anchors(sample.sparse.size());
    for (size_t i = 0; i < anchors.size(); ++i) {
      anchors[i] = sample.truth[sample.sparse_indices[i]];
    }
    Tensor enc_h = EncodeH(tape, sample.sparse, anchors, sample.route);
    Tensor h = ops::MeanRows(enc_h);
    const double t_begin = sample.sparse.points.front().t;
    const double t_span =
        std::max(sample.sparse.points.back().t - t_begin, 1e-9);
    const std::vector<double> prefix = RoutePrefix(network_, sample.route);
    const std::vector<double> pfrac = NormalizedPrefix(prefix);
    std::vector<char> observed(sample.truth.size(), 0);
    for (int si : sample.sparse_indices) observed[si] = 1;
    std::vector<double> expected(sample.truth.size(), 0.0);
    {
      int cursor = 0;
      for (size_t g = 0; g + 1 < sample.sparse_indices.size(); ++g) {
        const int a = sample.sparse_indices[g];
        const int b = sample.sparse_indices[g + 1];
        const int idx_a =
            LocateOnRoute(sample.route, sample.truth[a].segment, cursor);
        const int idx_b =
            LocateOnRoute(sample.route, sample.truth[b].segment, idx_a);
        cursor = idx_a;
        const double fa = RouteFraction(network_, sample.route, prefix,
                                        idx_a, sample.truth[a].ratio);
        const double fb = RouteFraction(network_, sample.route, prefix,
                                        idx_b, sample.truth[b].ratio);
        const double dt =
            std::max(sample.truth[b].t - sample.truth[a].t, 1e-9);
        for (int j = a; j <= b; ++j) {
          expected[j] =
              fa + (fb - fa) * (sample.truth[j].t - sample.truth[a].t) / dt;
        }
      }
    }
    int prev_route_idx = 0;
    for (size_t j = 1; j < sample.truth.size(); ++j) {
      const MatchedPoint& prev = sample.truth[j - 1];
      const MatchedPoint& cur = sample.truth[j];
      const double tau = (cur.t - t_begin) / t_span;
      prev_route_idx =
          LocateOnRoute(sample.route, prev.segment, prev_route_idx);
      Tensor h_next;
      Tensor w;
      StepAndClassify(tape, h, enc_h, pfrac, prev.segment, prev.ratio, tau,
                      RouteFraction(network_, sample.route, prefix,
                                    prev_route_idx, prev.ratio),
                      expected[j], &h_next, &w);
      h = h_next;
      if (!observed[j]) {
        int best = prev_route_idx;
        for (int k = prev_route_idx;
             k < static_cast<int>(sample.route.size()); ++k) {
          if (w.value().at(k, 0) > w.value().at(best, 0)) best = k;
        }
        if (sample.route[best] == cur.segment) ++correct;
        Tensor ratio = PredictRatio(
            tape, h, enc_h, w,
            ExpectedRatio(network_, sample.route, prefix, best,
                          expected[j]));
        ratio_err += std::abs(ratio.value().at(0, 0) - cur.ratio);
        ++count;
      }
    }
    tape.Clear();
  }
  if (count > 0) {
    stats.cls_accuracy = static_cast<double>(correct) / count;
    stats.ratio_mae = ratio_err / count;
  }
  return stats;
}

MatchedTrajectory TrmmaRecovery::RecoverReference(const Trajectory& sparse,
                                                  double epsilon) {
  StatusOr<MatchedTrajectory> result = TryRecoverReference(sparse, epsilon);
  if (!result.ok()) {
    TRMMA_LOG(Warning) << "RecoverReference failed ("
                       << result.status().ToString()
                       << "); returning empty recovery";
    CountRecoverEvent("trmma.recover.failed");
    return {};
  }
  return std::move(result).value();
}

StatusOr<MatchedTrajectory> TrmmaRecovery::TryRecoverReference(
    const Trajectory& sparse, double epsilon, RecoverStats* stats) {
  if (stats != nullptr) *stats = RecoverStats{};
  if (sparse.empty()) return MatchedTrajectory{};

  // Step 1 (Algorithm 2 line 1): map match and stitch the route section(s).
  StatusOr<PreparedInput> prep =
      PrepareSections(network_, *matcher_, *planner_, *fallback_, sparse);
  if (!prep.ok()) return prep.status();
  if (stats != nullptr) stats->degraded_points += prep->repaired;
  if (prep->sections.size() > 1) CountRecoverEvent("trmma.recover.degraded");
  return AssembleSections(
      prep->sections, sparse, prep->anchors, epsilon, stats,
      [&](const Trajectory& sub, const std::vector<MatchedPoint>& anchors,
          const Route& route) {
        return DecodeSectionReference(sub, anchors, route, epsilon);
      });
}

MatchedTrajectory TrmmaRecovery::DecodeSectionReference(
    const Trajectory& sparse, const std::vector<MatchedPoint>& anchors,
    const Route& route, double epsilon) {
  MatchedTrajectory out;

  // Lines 5-6: DualFormer encoding and initial decoder state.
  nn::Tape tape;
  Tensor enc_h = EncodeH(tape, sparse, anchors, route);
  Tensor h = ops::MeanRows(enc_h);

  // Lines 7-16: sequential decoding, constrained to the route order.
  const double t_begin = sparse.points.front().t;
  const double t_span = std::max(sparse.points.back().t - t_begin, 1e-9);
  const std::vector<double> prefix = RoutePrefix(network_, route);
  const std::vector<double> pfrac = NormalizedPrefix(prefix);
  int prev_route_idx = LocateOnRoute(route, anchors[0].segment, 0);
  MatchedPoint prev = anchors[0];
  out.push_back(anchors[0]);
  for (int i = 0; i + 1 < sparse.size(); ++i) {
    const int missing = NumMissingPoints(sparse.points[i].t,
                                         sparse.points[i + 1].t, epsilon);
    // Missing points of this gap lie between the current position and the
    // next observed point on the route, so the argmax of Eq. 17 is taken
    // over that sub-route (the suffix additionally truncated at the next
    // anchor, which every method knows).
    const int next_anchor_idx =
        LocateOnRoute(route, anchors[i + 1].segment, prev_route_idx);
    const int window_end = std::max(next_anchor_idx, prev_route_idx);
    const double frac_a = RouteFraction(network_, route, prefix,
                                        prev_route_idx, anchors[i].ratio);
    const double frac_b = RouteFraction(network_, route, prefix,
                                        window_end, anchors[i + 1].ratio);
    const double gap_dt =
        std::max(sparse.points[i + 1].t - sparse.points[i].t, 1e-9);
    for (int j = 1; j <= missing; ++j) {
      const double t_j = sparse.points[i].t + j * epsilon;
      const double tau = (t_j - t_begin) / t_span;
      const double expected_frac =
          frac_a + (frac_b - frac_a) * (t_j - sparse.points[i].t) / gap_dt;
      Tensor h_next;
      Tensor w;
      StepAndClassify(tape, h, enc_h, pfrac, prev.segment, prev.ratio, tau,
                      RouteFraction(network_, route, prefix, prev_route_idx,
                                    prev.ratio),
                      expected_frac, &h_next, &w);
      h = h_next;
      // argmax over the sub-route starting at the previous point (Eq. 17).
      int best = prev_route_idx;
      for (int k = prev_route_idx; k <= window_end; ++k) {
        if (w.value().at(k, 0) > w.value().at(best, 0)) best = k;
      }
      Tensor ratio = PredictRatio(
          tape, h, enc_h, w,
          ExpectedRatio(network_, route, prefix, best, expected_frac));
      MatchedPoint a;
      a.segment = route[best];
      a.ratio = std::clamp(ratio.value().at(0, 0), 0.0, 0.999999);
      a.t = t_j;
      out.push_back(a);
      prev = a;
      prev_route_idx = best;
    }
    // The observed point a_{i+1} also advances the GRU state.
    Tensor h_next;
    Tensor w;
    StepAndClassify(tape, h, enc_h, pfrac, prev.segment, prev.ratio,
                    (sparse.points[i + 1].t - t_begin) / t_span,
                    RouteFraction(network_, route, prefix, prev_route_idx,
                                  prev.ratio),
                    frac_b, &h_next, &w);
    h = h_next;
    prev = anchors[i + 1];
    prev_route_idx = LocateOnRoute(route, prev.segment, prev_route_idx);
    out.push_back(anchors[i + 1]);
  }
  return out;
}

namespace {

/// Weight views of a two-layer Mlp (fc1.w, fc1.b, fc2.w, fc2.b).
struct MlpView {
  const nn::Matrix* w1;
  const nn::Matrix* b1;
  const nn::Matrix* w2;
  const nn::Matrix* b2;
};

MlpView ViewMlp(nn::Module& mlp) {
  auto params = mlp.Parameters();
  return {&params[0]->value, &params[1]->value, &params[2]->value,
          &params[3]->value};
}

double SigmoidScalar(double x) {
  if (x >= 0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// y = x * W + b for row vectors, written into out (resized).
void AffineRow(const std::vector<double>& x, const nn::Matrix& w,
               const nn::Matrix& b, std::vector<double>* out) {
  const int n = w.cols();
  out->assign(n, 0.0);
  for (int i = 0; i < w.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* wr = w.row(i);
    for (int j = 0; j < n; ++j) (*out)[j] += xi * wr[j];
  }
  for (int j = 0; j < n; ++j) (*out)[j] += b.at(0, j);
}

}  // namespace

MatchedTrajectory TrmmaRecovery::Recover(const Trajectory& sparse,
                                         double epsilon) {
  StatusOr<MatchedTrajectory> result = TryRecover(sparse, epsilon);
  if (!result.ok()) {
    TRMMA_LOG(Warning) << "Recover failed (" << result.status().ToString()
                       << "); returning empty recovery";
    CountRecoverEvent("trmma.recover.failed");
    return {};
  }
  return std::move(result).value();
}

StatusOr<MatchedTrajectory> TrmmaRecovery::TryRecover(const Trajectory& sparse,
                                                      double epsilon,
                                                      RecoverStats* stats) {
  TRMMA_SPAN("trmma.recover");
  if (stats != nullptr) *stats = RecoverStats{};
  if (sparse.empty()) return MatchedTrajectory{};

  // Step 1 (Algorithm 2 line 1): map match and stitch the route section(s).
  StatusOr<PreparedInput> prep =
      PrepareSections(network_, *matcher_, *planner_, *fallback_, sparse);
  if (!prep.ok()) return prep.status();
  if (stats != nullptr) stats->degraded_points += prep->repaired;
  if (prep->sections.size() > 1) CountRecoverEvent("trmma.recover.degraded");
  MatchedTrajectory out = AssembleSections(
      prep->sections, sparse, prep->anchors, epsilon, stats,
      [&](const Trajectory& sub, const std::vector<MatchedPoint>& anchors,
          const Route& route) {
        return DecodeSectionFast(sub, anchors, route, epsilon);
      });
  if (obs::MetricsEnabled()) {
    static obs::Counter* const recovered =
        obs::MetricRegistry::Global().GetCounter("trmma.points_recovered");
    recovered->Increment(static_cast<int64_t>(out.size()));
  }
  return out;
}

MatchedTrajectory TrmmaRecovery::DecodeSectionFast(
    const Trajectory& sparse, const std::vector<MatchedPoint>& anchors,
    const Route& route, double epsilon) {
  MatchedTrajectory out;
  const int route_len = static_cast<int>(route.size());

  // Lines 5-6: DualFormer encoding (once, on the tape) + initial state.
  nn::Tape tape;
  const nn::Matrix enc = EncodeH(tape, sparse, anchors, route).value();
  const int dh = config_.dh;
  std::vector<double> h(dh, 0.0);
  for (int k = 0; k < route_len; ++k) {
    for (int j = 0; j < dh; ++j) h[j] += enc.at(k, j);
  }
  for (int j = 0; j < dh; ++j) h[j] /= route_len;
  tape.Clear();

  // Precompute the step-invariant classifier term: H * W8[0:dh] (the
  // classifier input layout is [H_k | h | align0..2]).
  const MlpView cls = ViewMlp(cls_mlp_);
  const MlpView rat = ViewMlp(ratio_mlp_);
  const nn::Matrix& gamma = seg_table_.table().value;
  nn::Matrix cls_h_part(route_len, dh);
  for (int k = 0; k < route_len; ++k) {
    for (int d = 0; d < dh; ++d) {
      const double v = enc.at(k, d);
      if (v == 0.0) continue;
      const double* wr = cls.w1->row(d);
      for (int j = 0; j < dh; ++j) cls_h_part.at(k, j) += v * wr[j];
    }
  }

  // GRU weight views (GruCell parameter order: wz,uz,bz,wr,ur,br,wh,uh,bh).
  auto gru_params = gru_.Parameters();
  const nn::Matrix& wz = gru_params[0]->value;
  const nn::Matrix& uz = gru_params[1]->value;
  const nn::Matrix& bz = gru_params[2]->value;
  const nn::Matrix& wr = gru_params[3]->value;
  const nn::Matrix& ur = gru_params[4]->value;
  const nn::Matrix& br = gru_params[5]->value;
  const nn::Matrix& wh = gru_params[6]->value;
  const nn::Matrix& uh = gru_params[7]->value;
  const nn::Matrix& bh = gru_params[8]->value;

  const double t_begin = sparse.points.front().t;
  const double t_span = std::max(sparse.points.back().t - t_begin, 1e-9);
  const std::vector<double> prefix = RoutePrefix(network_, route);
  const std::vector<double> pfrac = NormalizedPrefix(prefix);
  std::vector<double> mid(route_len);
  for (int k = 0; k < route_len; ++k) {
    mid[k] = 0.5 * (pfrac[k] + pfrac[k + 1]);
  }

  // One tape-free decode step: advances h in place, fills w (logits with
  // prior) for all route segments.
  std::vector<double> x(dh + 4);
  std::vector<double> gz;
  std::vector<double> gr;
  std::vector<double> gh;
  std::vector<double> tmp;
  std::vector<double> w(route_len);
  std::vector<double> u_part;
  auto gru_step = [&](SegmentId prev_seg, double prev_ratio, double tau,
                      double prev_frac, double expected_frac) {
    const double* emb = gamma.row(prev_seg);
    for (int j = 0; j < dh; ++j) x[j] = emb[j];
    x[dh] = prev_ratio;
    x[dh + 1] = tau;
    x[dh + 2] = prev_frac;
    x[dh + 3] = expected_frac;
    AffineRow(x, wz, bz, &gz);
    AffineRow(x, wr, br, &gr);
    AffineRow(x, wh, bh, &gh);
    // + h * U terms.
    tmp.assign(dh, 0.0);
    for (int i = 0; i < dh; ++i) {
      const double hi = h[i];
      if (hi == 0.0) continue;
      const double* uzr = uz.row(i);
      const double* urr = ur.row(i);
      for (int j = 0; j < dh; ++j) {
        gz[j] += hi * uzr[j];
        gr[j] += hi * urr[j];
      }
    }
    for (int j = 0; j < dh; ++j) {
      gz[j] = SigmoidScalar(gz[j]);
      gr[j] = SigmoidScalar(gr[j]);
      tmp[j] = gr[j] * h[j];  // r * h
    }
    for (int i = 0; i < dh; ++i) {
      const double ri = tmp[i];
      if (ri == 0.0) continue;
      const double* uhr = uh.row(i);
      for (int j = 0; j < dh; ++j) gh[j] += ri * uhr[j];
    }
    for (int j = 0; j < dh; ++j) {
      const double cand = std::tanh(gh[j]);
      h[j] = (1.0 - gz[j]) * h[j] + gz[j] * cand;
    }
  };
  auto classify = [&](double tau, double prev_frac, double expected_frac) {
    // u = h * W8[dh:2dh] + b8 (the h-dependent classifier part).
    u_part.assign(dh, 0.0);
    for (int i = 0; i < dh; ++i) {
      const double hi = h[i];
      if (hi == 0.0) continue;
      const double* wr1 = cls.w1->row(dh + i);
      for (int j = 0; j < dh; ++j) u_part[j] += hi * wr1[j];
    }
    for (int j = 0; j < dh; ++j) u_part[j] += cls.b1->at(0, j);
    const double* a0w = cls.w1->row(2 * dh);
    const double* a1w = cls.w1->row(2 * dh + 1);
    const double* a2w = cls.w1->row(2 * dh + 2);
    for (int k = 0; k < route_len; ++k) {
      const double a0 = mid[k] - expected_frac;
      const double a1 = mid[k] - prev_frac;
      const double a2 = mid[k] - tau;
      double acc = cls.b2->at(0, 0);
      const double* hk = cls_h_part.row(k);
      for (int j = 0; j < dh; ++j) {
        const double pre =
            hk[j] + u_part[j] + a0 * a0w[j] + a1 * a1w[j] + a2 * a2w[j];
        if (pre > 0.0) acc += pre * cls.w2->at(j, 0);
      }
      // Containment prior (mirrors StepAndClassify).
      const double start = pfrac[k];
      const double end = pfrac[k + 1];
      const double width = std::max(end - start, 1e-9);
      const double uu = (expected_frac - start) / width;
      w[k] = acc + 4.0 * std::min(uu, 1.0 - uu);
    }
  };
  auto predict_ratio = [&](double expected_ratio) {
    // psi = softmax(w); ctx = psi * H.
    double mx = w[0];
    for (int k = 1; k < route_len; ++k) mx = std::max(mx, w[k]);
    double sum = 0.0;
    tmp.assign(route_len, 0.0);
    for (int k = 0; k < route_len; ++k) {
      tmp[k] = std::exp(w[k] - mx);
      sum += tmp[k];
    }
    std::vector<double> in(2 * dh + 1, 0.0);
    for (int j = 0; j < dh; ++j) in[j] = h[j];
    for (int k = 0; k < route_len; ++k) {
      const double psi = tmp[k] / sum;
      if (psi == 0.0) continue;
      for (int j = 0; j < dh; ++j) in[dh + j] += psi * enc.at(k, j);
    }
    in[2 * dh] = expected_ratio;
    AffineRow(in, *rat.w1, *rat.b1, &gh);
    double acc = rat.b2->at(0, 0);
    for (int j = 0; j < static_cast<int>(gh.size()); ++j) {
      if (gh[j] > 0.0) acc += gh[j] * rat.w2->at(j, 0);
    }
    const double clamped = std::clamp(expected_ratio, 0.02, 0.98);
    return SigmoidScalar(acc + std::log(clamped / (1.0 - clamped)));
  };

  // Lines 7-16: sequential decode.
  int prev_route_idx = LocateOnRoute(route, anchors[0].segment, 0);
  MatchedPoint prev = anchors[0];
  out.push_back(anchors[0]);
  bool expired = false;
  for (int i = 0; i + 1 < sparse.size(); ++i) {
    const int missing = NumMissingPoints(sparse.points[i].t,
                                         sparse.points[i + 1].t, epsilon);
    // Deadline checkpoint: every recovered point costs a GRU step plus an
    // attention pass over the route window. Once expired, fill the
    // remaining gaps by holding the nearest anchor (the AssembleSections
    // gap-fill shape) so the output keeps its epsilon-grid timestamps.
    if (!expired && DeadlineExpired()) {
      expired = true;
      NoteDeadlineDegradation();
      CountRecoverEvent("trmma.decode.deadline_degraded");
      obs::RecordEvent("trmma:decode_deadline_degraded@" + std::to_string(i));
    }
    if (expired) {
      const double t_l = sparse.points[i].t;
      const double t_r = sparse.points[i + 1].t;
      for (int j = 1; j <= missing; ++j) {
        const double t_j = t_l + j * epsilon;
        MatchedPoint p = t_j - t_l <= t_r - t_j ? anchors[i] : anchors[i + 1];
        p.t = t_j;
        out.push_back(p);
      }
      out.push_back(anchors[i + 1]);
      continue;
    }
    const int next_anchor_idx =
        LocateOnRoute(route, anchors[i + 1].segment, prev_route_idx);
    const int window_end = std::max(next_anchor_idx, prev_route_idx);
    const double frac_a = RouteFraction(network_, route, prefix,
                                        prev_route_idx, anchors[i].ratio);
    const double frac_b = RouteFraction(network_, route, prefix,
                                        window_end, anchors[i + 1].ratio);
    const double gap_dt =
        std::max(sparse.points[i + 1].t - sparse.points[i].t, 1e-9);
    for (int j = 1; j <= missing; ++j) {
      const double t_j = sparse.points[i].t + j * epsilon;
      const double tau = (t_j - t_begin) / t_span;
      const double expected_frac =
          frac_a + (frac_b - frac_a) * (t_j - sparse.points[i].t) / gap_dt;
      const double prev_frac = RouteFraction(network_, route, prefix,
                                             prev_route_idx, prev.ratio);
      gru_step(prev.segment, prev.ratio, tau, prev_frac, expected_frac);
      classify(tau, prev_frac, expected_frac);
      int best = prev_route_idx;
      for (int k = prev_route_idx; k <= window_end; ++k) {
        if (w[k] > w[best]) best = k;
      }
      const double ratio = predict_ratio(
          ExpectedRatio(network_, route, prefix, best, expected_frac));
      MatchedPoint a;
      a.segment = route[best];
      a.ratio = std::clamp(ratio, 0.0, 0.999999);
      a.t = t_j;
      out.push_back(a);
      prev = a;
      prev_route_idx = best;
    }
    // The observed point a_{i+1} also advances the GRU state.
    gru_step(prev.segment, prev.ratio,
             (sparse.points[i + 1].t - t_begin) / t_span,
             RouteFraction(network_, route, prefix, prev_route_idx,
                           prev.ratio),
             frac_b);
    prev = anchors[i + 1];
    prev_route_idx = LocateOnRoute(route, prev.segment, prev_route_idx);
    out.push_back(anchors[i + 1]);
  }
  return out;
}

}  // namespace trmma
