#ifndef TRMMA_RECOVERY_SEQ2SEQ_H_
#define TRMMA_RECOVERY_SEQ2SEQ_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "graph/spatial_index.h"
#include "mm/grid_cells.h"
#include "nn/adam.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/transformer.h"
#include "recovery/recovery.h"
#include "traj/dataset.h"

namespace trmma {

/// Hyperparameters of the full-network seq2seq recovery baselines.
struct Seq2SeqConfig {
  /// Hidden size. The original MTrajRec/RNTrajRec use 256-512; we scale to
  /// 64 to stay proportional to our TRMMA dims (paper ratio preserved).
  int dh = 64;
  double grid_cell_m = 200.0;  ///< encoder grid discretization (MTrajRec)
  /// MTrajRec's constraint-mask component: at inference the decoder's
  /// argmax is restricted to segments reachable from the previous
  /// prediction within `constraint_hops` hops (0 disables).
  int constraint_hops = 2;
  double lr = 1e-3;
  int batch_size = 8;
  double lambda = 5.0;
  uint64_t seed = 41;
  /// false: GRU encoder (MTrajRec [14] style). true: transformer encoder,
  /// standing in for the trajectory-representation-learning + decoder
  /// family (TrajCL/ST2Vec/TrajGAT + Dec in Table III).
  bool transformer_encoder = false;
  int trans_layers = 2;
  int trans_heads = 2;
  int trans_ffn = 64;
};

/// Representative reimplementation of the recovery methods the paper
/// contrasts with (MTrajRec/RNTrajRec family): an encoder over the sparse
/// GPS sequence and a GRU decoder that, at every ε step, classifies the
/// segment over ALL |E| segments of the road network and regresses the
/// position ratio. The |E|-sized output layer — rather than the route's
/// segments — is exactly the design TRMMA avoids, and it dominates this
/// baseline's training/inference cost on large networks.
class Seq2SeqRecovery : public RecoveryMethod, public nn::Module {
 public:
  Seq2SeqRecovery(const RoadNetwork& network, const SegmentRTree& index,
                  const Seq2SeqConfig& config, std::string label);

  /// One teacher-forced training epoch; returns average per-point loss.
  double TrainEpoch(const Dataset& dataset, Rng& rng);

  MatchedTrajectory Recover(const Trajectory& sparse,
                            double epsilon) override;
  std::string name() const override { return label_; }

 private:
  nn::Tensor Encode(nn::Tape& tape, const Trajectory& sparse);
  void DecodeStep(nn::Tape& tape, nn::Tensor h_in, SegmentId prev_segment,
                  double prev_ratio, double target_time_frac,
                  nn::Tensor* h_out, nn::Tensor* logits, nn::Tensor* ratio);

  const RoadNetwork& network_;
  const SegmentRTree& index_;
  Seq2SeqConfig config_;
  std::string label_;
  GridIndexer grid_;
  Rng init_rng_;

  nn::Embedding cell_emb_;
  nn::Linear input_fc_;
  nn::GruCell encoder_gru_;
  std::unique_ptr<nn::TransformerEncoder> encoder_trans_;
  nn::Embedding seg_table_;
  nn::GruCell decoder_gru_;
  nn::Linear output_fc_;  ///< hidden -> |E| logits: the costly output layer
  nn::Mlp ratio_mlp_;
  std::unique_ptr<nn::Adam> optimizer_;
  int64_t epochs_trained_ = 0;  ///< epoch index reported in train telemetry
};

}  // namespace trmma

#endif  // TRMMA_RECOVERY_SEQ2SEQ_H_
