#ifndef TRMMA_RECOVERY_LINEAR_H_
#define TRMMA_RECOVERY_LINEAR_H_

#include <string>

#include "graph/transition_stats.h"
#include "mm/map_matcher.h"
#include "mm/route_stitch.h"
#include "recovery/recovery.h"

namespace trmma {

/// The "Linear" / "X+linear" baselines of paper Tables III/IV: map-match
/// the sparse points with any matcher, stitch the route, then place the
/// missing points by linear interpolation of travelled distance along the
/// route. Does not learn anything; its accuracy ceiling motivates TRMMA.
class LinearRecovery : public RecoveryMethod {
 public:
  /// All referenced objects must outlive the instance. `label` becomes the
  /// display name (e.g. "Linear", "MMA+linear", "Nearest+linear").
  LinearRecovery(const RoadNetwork& network, MapMatcher* matcher,
                 DaRoutePlanner* planner, ShortestPathEngine* fallback,
                 std::string label);

  MatchedTrajectory Recover(const Trajectory& sparse,
                            double epsilon) override;
  std::string name() const override { return label_; }

 private:
  const RoadNetwork& network_;
  MapMatcher* matcher_;
  DaRoutePlanner* planner_;
  ShortestPathEngine* fallback_;
  std::string label_;
};

/// Position after travelling `dist_m` forward along `route` starting from
/// (segment index `idx`, ratio `ratio`). Clamps at the route end and
/// updates `idx` to the segment reached.
MatchedPoint WalkAlongRoute(const RoadNetwork& network, const Route& route,
                            int& idx, double ratio, double dist_m);

}  // namespace trmma

#endif  // TRMMA_RECOVERY_LINEAR_H_
