#include "traj/dataset.h"

#include <numeric>

#include "common/csv.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace trmma {

void Dataset::Split(double train_frac, double val_frac, Rng& rng) {
  TRMMA_CHECK_GT(train_frac, 0.0);
  TRMMA_CHECK_GE(val_frac, 0.0);
  TRMMA_CHECK_LE(train_frac + val_frac, 1.0);
  std::vector<int> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const int n = static_cast<int>(order.size());
  const int n_train = static_cast<int>(n * train_frac);
  const int n_val = static_cast<int>(n * val_frac);
  train_idx.assign(order.begin(), order.begin() + n_train);
  val_idx.assign(order.begin() + n_train, order.begin() + n_train + n_val);
  test_idx.assign(order.begin() + n_train + n_val, order.end());
}

namespace {

std::string Num(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.13g", v);
  return buf;
}

void AppendIndexRow(std::vector<std::vector<std::string>>& rows,
                    const std::string& tag, const std::vector<int>& idx) {
  std::vector<std::string> row = {tag};
  for (int i : idx) row.push_back(std::to_string(i));
  rows.push_back(std::move(row));
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  if (dataset.network == nullptr) {
    return Status::FailedPrecondition("dataset has no network");
  }
  const RoadNetwork& g = *dataset.network;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"DATASET", dataset.name, Num(dataset.epsilon_s),
                  Num(dataset.gamma)});
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    rows.push_back({"NODE", Num(g.node(i).pos.lat), Num(g.node(i).pos.lng)});
  }
  for (SegmentId i = 0; i < g.num_segments(); ++i) {
    const auto& s = g.segment(i);
    rows.push_back({"SEG", std::to_string(s.from), std::to_string(s.to),
                    Num(s.speed_mps)});
  }
  for (const auto& sample : dataset.samples) {
    rows.push_back({"SAMPLE"});
    for (int i = 0; i < sample.raw.size(); ++i) {
      const auto& p = sample.raw.points[i];
      const auto& a = sample.truth[i];
      rows.push_back({"PT", Num(p.pos.lat), Num(p.pos.lng), Num(p.t),
                      std::to_string(a.segment), Num(a.ratio)});
    }
    AppendIndexRow(rows, "ROUTE",
                   std::vector<int>(sample.route.begin(), sample.route.end()));
    AppendIndexRow(rows, "SPARSE", sample.sparse_indices);
  }
  AppendIndexRow(rows, "TRAIN", dataset.train_idx);
  AppendIndexRow(rows, "VAL", dataset.val_idx);
  AppendIndexRow(rows, "TEST", dataset.test_idx);
  return csv::WriteFile(path, rows);
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  auto table_or = csv::ReadTable(path);
  if (!table_or.ok()) return table_or.status();
  const csv::Table& table = table_or.value();
  const auto& rows = table.rows;
  if (rows.empty() || rows[0][0] != "DATASET" || rows[0].size() < 4) {
    return Status::IOError("malformed dataset file: " + path);
  }

  Dataset dataset;
  dataset.name = rows[0][1];
  auto epsilon = csv::ParseDouble(rows[0][2]);
  auto gamma = csv::ParseDouble(rows[0][3]);
  if (!epsilon.ok() || !gamma.ok()) {
    return Status::IOError("malformed DATASET header at " + table.Context(0));
  }
  dataset.epsilon_s = epsilon.value();
  dataset.gamma = gamma.value();
  dataset.network = std::make_unique<RoadNetwork>();

  // Damage policy: the network rows (NODE/SEG) are structural — skipping
  // one would silently shift every id after it, so a malformed one fails
  // the load with file:line context. Sample rows (PT/ROUTE/SPARSE) are
  // independent records: a malformed one is logged, counted and poisons
  // just its sample, which is dropped (with the split indices remapped)
  // instead of aborting the whole load.
  int64_t bad_rows = 0;
  std::vector<char> poisoned;  // parallel to dataset.samples
  auto skip_row = [&](size_t r, const std::string& why) {
    ++bad_rows;
    TRMMA_LOG(Warning) << "dataset: skipping row at " << table.Context(r)
                       << ": " << why;
  };
  auto poison = [&](size_t r, const std::string& why) {
    skip_row(r, why);
    if (!poisoned.empty()) poisoned.back() = 1;
  };
  auto parse_index_row = [](const std::vector<std::string>& row,
                            std::vector<int>* out) -> bool {
    out->clear();
    for (size_t i = 1; i < row.size(); ++i) {
      if (row[i].empty()) continue;  // trailing delimiter
      auto v = csv::ParseInt(row[i]);
      if (!v.ok()) return false;
      out->push_back(v.value());
    }
    return true;
  };

  bool network_done = false;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const std::string& tag = row[0];
    if (tag == "NODE") {
      if (row.size() < 3) {
        return Status::IOError("short NODE row at " + table.Context(r));
      }
      auto lat = csv::ParseDouble(row[1]);
      auto lng = csv::ParseDouble(row[2]);
      if (!lat.ok() || !lng.ok()) {
        return Status::IOError("malformed NODE row at " + table.Context(r));
      }
      dataset.network->AddNode(LatLng{lat.value(), lng.value()});
    } else if (tag == "SEG") {
      if (row.size() < 4) {
        return Status::IOError("short SEG row at " + table.Context(r));
      }
      auto from = csv::ParseInt(row[1]);
      auto to = csv::ParseInt(row[2]);
      auto speed = csv::ParseDouble(row[3]);
      if (!from.ok() || !to.ok() || !speed.ok()) {
        return Status::IOError("malformed SEG row at " + table.Context(r));
      }
      auto seg = dataset.network->AddSegment(from.value(), to.value(),
                                             speed.value());
      if (!seg.ok()) return seg.status();
    } else if (tag == "SAMPLE") {
      if (!network_done) {
        TRMMA_RETURN_IF_ERROR(dataset.network->Finalize());
        network_done = true;
      }
      dataset.samples.emplace_back();
      poisoned.push_back(0);
    } else if (tag == "PT") {
      if (dataset.samples.empty()) {
        skip_row(r, "PT before any SAMPLE");
        continue;
      }
      if (row.size() < 6) {
        poison(r, "short PT row");
        continue;
      }
      auto lat = csv::ParseDouble(row[1]);
      auto lng = csv::ParseDouble(row[2]);
      auto t = csv::ParseDouble(row[3]);
      auto seg = csv::ParseInt(row[4]);
      auto ratio = csv::ParseDouble(row[5]);
      if (!lat.ok() || !lng.ok() || !t.ok() || !seg.ok() || !ratio.ok()) {
        poison(r, "non-numeric PT field");
        continue;
      }
      if (seg.value() < 0 || seg.value() >= dataset.network->num_segments()) {
        poison(r, "PT segment id out of range");
        continue;
      }
      auto& sample = dataset.samples.back();
      GpsPoint p{LatLng{lat.value(), lng.value()}, t.value()};
      sample.raw.points.push_back(p);
      sample.truth.push_back(
          MatchedPoint{seg.value(), ratio.value(), p.t});
    } else if (tag == "ROUTE") {
      if (dataset.samples.empty()) {
        skip_row(r, "ROUTE before any SAMPLE");
        continue;
      }
      std::vector<int> ids;
      if (!parse_index_row(row, &ids)) {
        poison(r, "non-numeric ROUTE field");
        continue;
      }
      bool in_range = true;
      for (int id : ids) {
        in_range = in_range && id >= 0 &&
                   id < dataset.network->num_segments();
      }
      if (!in_range) {
        poison(r, "ROUTE segment id out of range");
        continue;
      }
      dataset.samples.back().route.assign(ids.begin(), ids.end());
    } else if (tag == "SPARSE") {
      if (dataset.samples.empty()) {
        skip_row(r, "SPARSE before any SAMPLE");
        continue;
      }
      auto& sample = dataset.samples.back();
      if (!parse_index_row(row, &sample.sparse_indices)) {
        poison(r, "non-numeric SPARSE field");
        sample.sparse_indices.clear();
        continue;
      }
      bool in_range = true;
      for (int idx : sample.sparse_indices) {
        in_range = in_range && idx >= 0 && idx < sample.raw.size();
      }
      if (!in_range) {
        poison(r, "SPARSE index out of range");
        sample.sparse_indices.clear();
        continue;
      }
      for (int idx : sample.sparse_indices) {
        sample.sparse.points.push_back(sample.raw.points[idx]);
      }
    } else if (tag == "TRAIN") {
      if (!parse_index_row(row, &dataset.train_idx)) {
        skip_row(r, "non-numeric TRAIN field");
      }
    } else if (tag == "VAL") {
      if (!parse_index_row(row, &dataset.val_idx)) {
        skip_row(r, "non-numeric VAL field");
      }
    } else if (tag == "TEST") {
      if (!parse_index_row(row, &dataset.test_idx)) {
        skip_row(r, "non-numeric TEST field");
      }
    } else {
      skip_row(r, "unknown row tag: " + tag);
    }
  }
  if (!network_done) {
    TRMMA_RETURN_IF_ERROR(dataset.network->Finalize());
  }

  // Drop poisoned samples and remap the split indices onto the survivors
  // (split entries pointing at dropped or out-of-range samples vanish).
  int64_t dropped = 0;
  std::vector<int> remap(dataset.samples.size(), -1);
  {
    std::vector<TrajectorySample> kept;
    kept.reserve(dataset.samples.size());
    for (size_t i = 0; i < dataset.samples.size(); ++i) {
      if (poisoned[i]) {
        ++dropped;
        continue;
      }
      remap[i] = static_cast<int>(kept.size());
      kept.push_back(std::move(dataset.samples[i]));
    }
    dataset.samples = std::move(kept);
  }
  auto remap_split = [&](std::vector<int>* idx) {
    std::vector<int> out;
    out.reserve(idx->size());
    for (int i : *idx) {
      if (i < 0 || i >= static_cast<int>(remap.size()) || remap[i] < 0) {
        continue;
      }
      out.push_back(remap[i]);
    }
    *idx = std::move(out);
  };
  remap_split(&dataset.train_idx);
  remap_split(&dataset.val_idx);
  remap_split(&dataset.test_idx);

  if (obs::MetricsEnabled() && (bad_rows > 0 || dropped > 0)) {
    obs::MetricRegistry::Global()
        .GetCounter("dataset.load.bad_rows")
        ->Increment(bad_rows);
    obs::MetricRegistry::Global()
        .GetCounter("dataset.load.samples_dropped")
        ->Increment(dropped);
  }
  if (bad_rows > 0) {
    TRMMA_LOG(Warning) << "dataset: " << path << ": skipped " << bad_rows
                       << " bad rows, dropped " << dropped << " samples";
  }
  return dataset;
}

}  // namespace trmma
