#include "traj/dataset.h"

#include <numeric>

#include "common/csv.h"
#include "common/logging.h"

namespace trmma {

void Dataset::Split(double train_frac, double val_frac, Rng& rng) {
  TRMMA_CHECK_GT(train_frac, 0.0);
  TRMMA_CHECK_GE(val_frac, 0.0);
  TRMMA_CHECK_LE(train_frac + val_frac, 1.0);
  std::vector<int> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const int n = static_cast<int>(order.size());
  const int n_train = static_cast<int>(n * train_frac);
  const int n_val = static_cast<int>(n * val_frac);
  train_idx.assign(order.begin(), order.begin() + n_train);
  val_idx.assign(order.begin() + n_train, order.begin() + n_train + n_val);
  test_idx.assign(order.begin() + n_train + n_val, order.end());
}

namespace {

std::string Num(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.13g", v);
  return buf;
}

void AppendIndexRow(std::vector<std::vector<std::string>>& rows,
                    const std::string& tag, const std::vector<int>& idx) {
  std::vector<std::string> row = {tag};
  for (int i : idx) row.push_back(std::to_string(i));
  rows.push_back(std::move(row));
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  if (dataset.network == nullptr) {
    return Status::FailedPrecondition("dataset has no network");
  }
  const RoadNetwork& g = *dataset.network;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"DATASET", dataset.name, Num(dataset.epsilon_s),
                  Num(dataset.gamma)});
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    rows.push_back({"NODE", Num(g.node(i).pos.lat), Num(g.node(i).pos.lng)});
  }
  for (SegmentId i = 0; i < g.num_segments(); ++i) {
    const auto& s = g.segment(i);
    rows.push_back({"SEG", std::to_string(s.from), std::to_string(s.to),
                    Num(s.speed_mps)});
  }
  for (const auto& sample : dataset.samples) {
    rows.push_back({"SAMPLE"});
    for (int i = 0; i < sample.raw.size(); ++i) {
      const auto& p = sample.raw.points[i];
      const auto& a = sample.truth[i];
      rows.push_back({"PT", Num(p.pos.lat), Num(p.pos.lng), Num(p.t),
                      std::to_string(a.segment), Num(a.ratio)});
    }
    AppendIndexRow(rows, "ROUTE",
                   std::vector<int>(sample.route.begin(), sample.route.end()));
    AppendIndexRow(rows, "SPARSE", sample.sparse_indices);
  }
  AppendIndexRow(rows, "TRAIN", dataset.train_idx);
  AppendIndexRow(rows, "VAL", dataset.val_idx);
  AppendIndexRow(rows, "TEST", dataset.test_idx);
  return csv::WriteFile(path, rows);
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  auto rows_or = csv::ReadFile(path);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty() || rows[0][0] != "DATASET" || rows[0].size() < 4) {
    return Status::IOError("malformed dataset file: " + path);
  }

  Dataset dataset;
  dataset.name = rows[0][1];
  dataset.epsilon_s = std::stod(rows[0][2]);
  dataset.gamma = std::stod(rows[0][3]);
  dataset.network = std::make_unique<RoadNetwork>();

  auto parse_index_row =
      [](const std::vector<std::string>& row) -> std::vector<int> {
    std::vector<int> out;
    for (size_t i = 1; i < row.size(); ++i) {
      if (!row[i].empty()) out.push_back(std::stoi(row[i]));
    }
    return out;
  };

  bool network_done = false;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const std::string& tag = row[0];
    if (tag == "NODE") {
      dataset.network->AddNode(LatLng{std::stod(row[1]), std::stod(row[2])});
    } else if (tag == "SEG") {
      auto seg = dataset.network->AddSegment(std::stoi(row[1]),
                                             std::stoi(row[2]),
                                             std::stod(row[3]));
      if (!seg.ok()) return seg.status();
    } else if (tag == "SAMPLE") {
      if (!network_done) {
        TRMMA_RETURN_IF_ERROR(dataset.network->Finalize());
        network_done = true;
      }
      dataset.samples.emplace_back();
    } else if (tag == "PT") {
      auto& sample = dataset.samples.back();
      GpsPoint p{LatLng{std::stod(row[1]), std::stod(row[2])},
                 std::stod(row[3])};
      sample.raw.points.push_back(p);
      sample.truth.push_back(
          MatchedPoint{std::stoi(row[4]), std::stod(row[5]), p.t});
    } else if (tag == "ROUTE") {
      auto ids = parse_index_row(row);
      dataset.samples.back().route.assign(ids.begin(), ids.end());
    } else if (tag == "SPARSE") {
      auto& sample = dataset.samples.back();
      sample.sparse_indices = parse_index_row(row);
      for (int idx : sample.sparse_indices) {
        if (idx < 0 || idx >= sample.raw.size()) {
          return Status::IOError("sparse index out of range");
        }
        sample.sparse.points.push_back(sample.raw.points[idx]);
      }
    } else if (tag == "TRAIN") {
      dataset.train_idx = parse_index_row(row);
    } else if (tag == "VAL") {
      dataset.val_idx = parse_index_row(row);
    } else if (tag == "TEST") {
      dataset.test_idx = parse_index_row(row);
    } else {
      return Status::IOError("unknown row tag: " + tag);
    }
  }
  if (!network_done) {
    TRMMA_RETURN_IF_ERROR(dataset.network->Finalize());
  }
  return dataset;
}

}  // namespace trmma
