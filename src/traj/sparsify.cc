#include "traj/sparsify.h"

#include "common/logging.h"

namespace trmma {

std::vector<int> SparseIndices(int dense_size, double gamma, Rng& rng) {
  TRMMA_CHECK_GE(dense_size, 2);
  TRMMA_CHECK_GT(gamma, 0.0);
  TRMMA_CHECK_LE(gamma, 1.0);
  std::vector<int> keep;
  keep.push_back(0);
  for (int i = 1; i < dense_size - 1; ++i) {
    if (rng.Bernoulli(gamma)) keep.push_back(i);
  }
  keep.push_back(dense_size - 1);
  return keep;
}

void SparsifySample(TrajectorySample& sample, double gamma, Rng& rng) {
  sample.sparse_indices = SparseIndices(sample.raw.size(), gamma, rng);
  sample.sparse.points.clear();
  sample.sparse.points.reserve(sample.sparse_indices.size());
  for (int idx : sample.sparse_indices) {
    sample.sparse.points.push_back(sample.raw.points[idx]);
  }
}

}  // namespace trmma
