#ifndef TRMMA_TRAJ_DATASET_H_
#define TRMMA_TRAJ_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "traj/types.h"

namespace trmma {

/// A complete experimental dataset: a road network plus trajectory samples
/// split into train/validation/test (paper §VI-A uses 40/30/30).
struct Dataset {
  std::string name;
  double epsilon_s = 15.0;  ///< target high-sampling rate ε
  double gamma = 0.1;       ///< sparsity ratio used to derive sparse inputs
  std::unique_ptr<RoadNetwork> network;
  std::vector<TrajectorySample> samples;
  std::vector<int> train_idx;
  std::vector<int> val_idx;
  std::vector<int> test_idx;

  /// Randomly splits samples into train/val/test with the given fractions.
  void Split(double train_frac, double val_frac, Rng& rng);
};

/// Persists a dataset (network + samples + split) to a text file.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Loads a dataset previously written by SaveDataset.
StatusOr<Dataset> LoadDataset(const std::string& path);

}  // namespace trmma

#endif  // TRMMA_TRAJ_DATASET_H_
