#ifndef TRMMA_TRAJ_TYPES_H_
#define TRMMA_TRAJ_TYPES_H_

#include <vector>

#include "geo/latlng.h"
#include "graph/road_network.h"
#include "graph/route.h"

namespace trmma {

/// A timestamped GPS observation (paper Def. 2).
struct GpsPoint {
  LatLng pos;
  double t = 0.0;  ///< seconds
};

/// A trajectory: a time-ordered sequence of GPS points (paper Def. 2).
struct Trajectory {
  std::vector<GpsPoint> points;

  int size() const { return static_cast<int>(points.size()); }
  bool empty() const { return points.empty(); }
};

/// A map-matched point a=(e,r,t) (paper Def. 5): position ratio r on
/// segment e at time t.
struct MatchedPoint {
  SegmentId segment = kInvalidSegment;
  double ratio = 0.0;
  double t = 0.0;
};

/// A map-matched ε-sampling trajectory (paper Def. 6).
using MatchedTrajectory = std::vector<MatchedPoint>;

/// One experiment instance: the dense ground truth, its route, and the
/// sparse input derived from it.
struct TrajectorySample {
  Trajectory raw;            ///< dense noisy GPS points at ε-sampling
  MatchedTrajectory truth;   ///< ground-truth matched points, aligned with raw
  Route route;               ///< ground-truth route (deduplicated, connected)
  Trajectory sparse;         ///< the sparse trajectory T given to methods
  std::vector<int> sparse_indices;  ///< indices of sparse points in raw/truth
};

/// GPS coordinate of a matched point via interpolation on its segment.
GpsPoint GpsFromMatched(const RoadNetwork& network, const MatchedPoint& a);

/// Projects a GPS point onto the given segment, producing a matched point
/// (paper Algorithm 2 lines 2-4).
MatchedPoint ProjectToSegment(const RoadNetwork& network, const GpsPoint& p,
                              SegmentId segment);

}  // namespace trmma

#endif  // TRMMA_TRAJ_TYPES_H_
