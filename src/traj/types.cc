#include "traj/types.h"

#include <algorithm>

namespace trmma {

GpsPoint GpsFromMatched(const RoadNetwork& network, const MatchedPoint& a) {
  return GpsPoint{network.LatLngOnSegment(a.segment, a.ratio), a.t};
}

MatchedPoint ProjectToSegment(const RoadNetwork& network, const GpsPoint& p,
                              SegmentId segment) {
  const Vec2 xy = network.projection().ToMeters(p.pos);
  const SegmentProjection proj = network.ProjectOnto(segment, xy);
  // Def. 5 requires r in [0,1): clamp the projection's closed upper end.
  return MatchedPoint{segment, std::min(proj.ratio, 0.999999), p.t};
}

}  // namespace trmma
