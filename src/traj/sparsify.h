#ifndef TRMMA_TRAJ_SPARSIFY_H_
#define TRMMA_TRAJ_SPARSIFY_H_

#include <vector>

#include "common/random.h"
#include "traj/types.h"

namespace trmma {

/// Selects the indices of a sparse subsequence of a dense ε-sampling
/// trajectory of length `dense_size`, following the paper's protocol
/// (§VI-A): interior points are kept independently with probability γ so
/// the sparse trajectory has average interval ε/γ; the first and last
/// points are always kept.
std::vector<int> SparseIndices(int dense_size, double gamma, Rng& rng);

/// Applies SparseIndices to a sample: fills sample.sparse and
/// sample.sparse_indices from sample.raw.
void SparsifySample(TrajectorySample& sample, double gamma, Rng& rng);

}  // namespace trmma

#endif  // TRMMA_TRAJ_SPARSIFY_H_
