#ifndef TRMMA_COMMON_CSV_H_
#define TRMMA_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace trmma {

/// Minimal CSV support for dataset persistence. Fields never contain commas
/// or newlines in this project, so no quoting is implemented. Readers are
/// hardened against real-world file damage: CRLF line endings, ragged rows,
/// trailing delimiters and non-numeric numeric fields are all survivable —
/// parsing helpers return Status instead of throwing or misparsing.
namespace csv {

/// Splits one CSV line into fields.
std::vector<std::string> SplitLine(const std::string& line, char delim = ',');

/// Reads a whole CSV file into rows of fields. Empty lines are skipped.
StatusOr<std::vector<std::vector<std::string>>> ReadFile(
    const std::string& path, char delim = ',');

/// A parsed CSV file that remembers the 1-based source line of every row so
/// loaders can report "file:line" context for malformed fields instead of
/// crashing deep inside std::stod.
struct Table {
  std::string path;
  std::vector<std::vector<std::string>> rows;
  std::vector<int> lines;  ///< 1-based source line of each row

  /// "path:line" context string for error messages about row `r`.
  std::string Context(size_t r) const;
};

/// ReadFile variant keeping per-row line numbers.
StatusOr<Table> ReadTable(const std::string& path, char delim = ',');

/// Strict full-string numeric parse: no exceptions, no partial consumption
/// ("12abc" and "" are errors, leading/trailing whitespace is not accepted).
/// Non-finite spellings ("nan", "inf") parse successfully; range validation
/// is the caller's job.
StatusOr<double> ParseDouble(const std::string& field);

/// Strict full-string integer parse in int range.
StatusOr<int> ParseInt(const std::string& field);

/// Writes rows of fields as a CSV file, overwriting any existing file.
Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows,
                 char delim = ',');

}  // namespace csv
}  // namespace trmma

#endif  // TRMMA_COMMON_CSV_H_
