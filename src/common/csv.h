#ifndef TRMMA_COMMON_CSV_H_
#define TRMMA_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace trmma {

/// Minimal CSV support for dataset persistence. Fields never contain commas
/// or newlines in this project, so no quoting is implemented.
namespace csv {

/// Splits one CSV line into fields.
std::vector<std::string> SplitLine(const std::string& line, char delim = ',');

/// Reads a whole CSV file into rows of fields. Empty lines are skipped.
StatusOr<std::vector<std::vector<std::string>>> ReadFile(
    const std::string& path, char delim = ',');

/// Writes rows of fields as a CSV file, overwriting any existing file.
Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows,
                 char delim = ',');

}  // namespace csv
}  // namespace trmma

#endif  // TRMMA_COMMON_CSV_H_
