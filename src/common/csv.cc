#include "common/csv.h"

#include <cerrno>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/fault_points.h"

namespace trmma {
namespace csv {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadFile(
    const std::string& path, char delim) {
  auto table_or = ReadTable(path, delim);
  if (!table_or.ok()) return table_or.status();
  return std::move(table_or.value().rows);
}

std::string Table::Context(size_t r) const {
  const int line = r < lines.size() ? lines[r] : -1;
  return path + ":" + std::to_string(line);
}

StatusOr<Table> ReadTable(const std::string& path, char delim) {
  if (FaultPointTriggered("csv.read")) {
    return Status::IOError("injected fault at csv.read: " + path);
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for read: " + path);
  }
  Table table;
  table.path = path;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // A lone '\r' is what an empty CRLF line looks like after getline.
    if (line.empty() || line == "\r") continue;
    table.rows.push_back(SplitLine(line, delim));
    table.lines.push_back(lineno);
  }
  if (in.bad()) return Status::IOError("read failed: " + path);
  return table;
}

StatusOr<double> ParseDouble(const std::string& field) {
  if (field.empty()) return Status::InvalidArgument("empty numeric field");
  // strtod/strtol silently skip leading whitespace; the contract is a
  // strict full-string parse, so reject it explicitly.
  if (std::isspace(static_cast<unsigned char>(field.front()))) {
    return Status::InvalidArgument("not a number: '" + field + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size() || errno == ERANGE) {
    return Status::InvalidArgument("not a number: '" + field + "'");
  }
  return v;
}

StatusOr<int> ParseInt(const std::string& field) {
  if (field.empty()) return Status::InvalidArgument("empty integer field");
  if (std::isspace(static_cast<unsigned char>(field.front()))) {
    return Status::InvalidArgument("not an integer: '" + field + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size() || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("not an integer: '" + field + "'");
  }
  return static_cast<int>(v);
}

Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows,
                 char delim) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for write: " + path);
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << delim;
      out << row[i];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace csv
}  // namespace trmma
