#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace trmma {
namespace csv {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadFile(
    const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(SplitLine(line, delim));
  }
  return rows;
}

Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows,
                 char delim) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for write: " + path);
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << delim;
      out << row[i];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace csv
}  // namespace trmma
