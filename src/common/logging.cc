#include "common/logging.h"

namespace trmma {
namespace internal_logging {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

void SetMinLogLevel(LogLevel level) {
  internal_logging::MinLogLevel() = level;
}

}  // namespace trmma
