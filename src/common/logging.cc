#include "common/logging.h"

#include <algorithm>
#include <cctype>
#include <mutex>

namespace trmma {
namespace internal_logging {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    // One mutex-guarded write per message so lines from instrumented
    // multi-threaded code never interleave.
    static std::mutex emit_mutex;
    std::lock_guard<std::mutex> lock(emit_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

void SetMinLogLevel(LogLevel level) {
  internal_logging::MinLogLevel() = level;
}

void SetMinLogLevelFromEnv() {
  const char* env = std::getenv("TRMMA_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  std::string value(env);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "debug") {
    SetMinLogLevel(LogLevel::kDebug);
  } else if (value == "info") {
    SetMinLogLevel(LogLevel::kInfo);
  } else if (value == "warning" || value == "warn") {
    SetMinLogLevel(LogLevel::kWarning);
  } else if (value == "error") {
    SetMinLogLevel(LogLevel::kError);
  }
}

}  // namespace trmma
