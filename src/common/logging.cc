#include "common/logging.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <mutex>

#include "obs/tracked_mutex.h"

namespace trmma {
namespace internal_logging {
namespace {

// One mutex guards both the sink pointer and each message emission, so
// lines from instrumented multi-threaded code never interleave and a
// SetLogFile can't race a write. Instrumented (and leaked, never
// destructed) so log contention shows up in lock telemetry and a fatal
// message during process teardown still has a live mutex.
obs::TrackedMutex& EmitMutex() {
  static obs::TrackedMutex* m = new obs::TrackedMutex("log.emit");
  return *m;
}

std::ofstream& FileSink() {
  static std::ofstream f;
  return f;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::lock_guard<obs::TrackedMutex> lock(EmitMutex());
    std::ofstream& file = FileSink();
    if (file.is_open()) {
      file << stream_.str() << std::endl;
      // A fatal abort must never disappear into a log file.
      if (level_ == LogLevel::kFatal) {
        std::cerr << stream_.str() << std::endl;
      }
    } else {
      std::cerr << stream_.str() << std::endl;
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

void SetMinLogLevel(LogLevel level) {
  internal_logging::MinLogLevel() = level;
}

bool SetLogFile(const std::string& path) {
  std::lock_guard<obs::TrackedMutex> lock(internal_logging::EmitMutex());
  std::ofstream& file = internal_logging::FileSink();
  if (file.is_open()) file.close();
  if (path.empty()) return true;
  file.open(path, std::ios::app);
  if (!file.is_open()) {
    std::cerr << "[W logging] cannot open log file '" << path
              << "', logging to stderr" << std::endl;
    return false;
  }
  return true;
}

void SetLogFileFromEnv() {
  const char* env = std::getenv("TRMMA_LOG_FILE");
  if (env == nullptr || *env == '\0') return;
  SetLogFile(env);
}

void SetMinLogLevelFromEnv() {
  const char* env = std::getenv("TRMMA_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  std::string value(env);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "debug") {
    SetMinLogLevel(LogLevel::kDebug);
  } else if (value == "info") {
    SetMinLogLevel(LogLevel::kInfo);
  } else if (value == "warning" || value == "warn") {
    SetMinLogLevel(LogLevel::kWarning);
  } else if (value == "error") {
    SetMinLogLevel(LogLevel::kError);
  }
}

}  // namespace trmma
