#ifndef TRMMA_COMMON_DEADLINE_H_
#define TRMMA_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>

namespace trmma {

/// Absolute time budget of one request. Value type: cheap to copy, computed
/// once at admission (so queue wait counts against the budget) and threaded
/// through the pipeline via a thread-local scope rather than parameters —
/// candidate search, Viterbi/MMA decode, route stitching and the TRMMA
/// sequential decode poll DeadlineExpired() at their loop heads and switch
/// to their degraded fallbacks when the budget is gone (DESIGN.md §11).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: unbounded (never expires).
  Deadline() = default;

  /// Expires `ms` from now; ms <= 0 yields an already-expired deadline.
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = Clock::now() +
            std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0));
    return d;
  }

  static Deadline Unbounded() { return Deadline(); }

  bool bounded() const { return bounded_; }

  bool Expired() const { return bounded_ && Clock::now() >= at_; }

  /// Milliseconds left; +inf when unbounded, clamped at 0 when expired.
  double RemainingMillis() const {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    const auto left = at_ - Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(left).count();
    return ms > 0.0 ? ms : 0.0;
  }

 private:
  bool bounded_ = false;
  Clock::time_point at_{};
};

namespace internal {

/// Thread-local deadline state installed by DeadlineScope. Exposed in the
/// header only so DeadlineExpired() inlines to a thread-local load plus a
/// branch when no scope is active (the whole-library fast path).
struct DeadlineState {
  bool active = false;
  bool bounded = false;
  Deadline::Clock::time_point at{};
  /// Optional external cancellation (e.g. "a hedged twin already won").
  const std::atomic<bool>* cancel = nullptr;
  /// Set by NoteDeadlineDegradation when a checkpoint took a degraded path.
  bool degraded = false;
};

extern thread_local DeadlineState t_deadline;

}  // namespace internal

/// RAII installer of the calling thread's deadline (plus an optional cancel
/// flag). Scopes nest by save/restore; an inner scope's degradation note is
/// propagated to the outer scope on exit so a wrapping request still sees
/// that its work was cut short.
class DeadlineScope {
 public:
  explicit DeadlineScope(const Deadline& deadline,
                         const std::atomic<bool>* cancel = nullptr);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  internal::DeadlineState saved_;
};

/// Cancellation checkpoint: true when the current scope's deadline has
/// passed or its cancel flag is set. Without an active scope this is a
/// thread-local load and a branch — cheap enough for per-point loops.
inline bool DeadlineExpired() {
  const internal::DeadlineState& s = internal::t_deadline;
  if (!s.active) return false;
  if (s.cancel != nullptr && s.cancel->load(std::memory_order_relaxed)) {
    return true;
  }
  if (!s.bounded) return false;
  return Deadline::Clock::now() >= s.at;
}

/// Milliseconds left in the current scope; +inf when none is active.
double DeadlineRemainingMillis();

/// Called by a checkpoint that switched to a degraded fallback, so the
/// serving layer can classify the response (full result vs degraded). The
/// caller is responsible for its own metrics/events — common/ stays a leaf.
void NoteDeadlineDegradation();

/// True when any checkpoint under the current scope degraded its output.
bool DeadlineDegradationNoted();

}  // namespace trmma

#endif  // TRMMA_COMMON_DEADLINE_H_
