#ifndef TRMMA_COMMON_STOPWATCH_H_
#define TRMMA_COMMON_STOPWATCH_H_

#include <chrono>

namespace trmma {

/// Wall-clock stopwatch used by the experiment harness for the timing
/// columns of the paper's efficiency figures.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trmma

#endif  // TRMMA_COMMON_STOPWATCH_H_
