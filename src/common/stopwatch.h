#ifndef TRMMA_COMMON_STOPWATCH_H_
#define TRMMA_COMMON_STOPWATCH_H_

#include <chrono>

namespace trmma {

/// Wall-clock stopwatch used by the experiment harness for the timing
/// columns of the paper's efficiency figures.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  /// Resets the reference point (and the lap marker) to now.
  void Restart() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Milliseconds since the last LapMillis() call (or construction /
  /// Restart() for the first lap), and marks a new lap. Lets loops report
  /// per-iteration time from one stopwatch: total via ElapsedSeconds(),
  /// laps via LapMillis().
  double LapMillis() {
    const Clock::time_point now = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(now - lap_).count();
    lap_ = now;
    return ms;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace trmma

#endif  // TRMMA_COMMON_STOPWATCH_H_
