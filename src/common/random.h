#ifndef TRMMA_COMMON_RANDOM_H_
#define TRMMA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trmma {

/// Deterministic pseudo-random generator (splitmix64-seeded xoshiro256**).
/// All stochastic components of the library take an explicit Rng so every
/// experiment is reproducible from a single seed.
///
/// NOT thread-safe: Next() mutates state_ and Gaussian() caches its second
/// Box-Muller sample without synchronization. Concurrent code must use one
/// Rng per thread or per request — derive independent streams from a shared
/// base seed with MixSeed (e.g. MixSeed(config_seed, request_id)), which is
/// what the serving engine and the fault injector's per-request corruption
/// path do.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal sample (Box-Muller).
  double Gaussian();

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Nonpositive-total weights fall back to uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Mixes two seeds into one well-distributed stream id (splitmix64 over the
/// concatenation). Use to derive a per-request/per-thread Rng from a base
/// seed plus an index: nearby indices yield statistically independent
/// streams, and the result depends only on (a, b) — never on interleaving.
uint64_t MixSeed(uint64_t a, uint64_t b);

}  // namespace trmma

#endif  // TRMMA_COMMON_RANDOM_H_
