#ifndef TRMMA_COMMON_FAULT_POINTS_H_
#define TRMMA_COMMON_FAULT_POINTS_H_

namespace trmma {

/// Named fault-injection sites. Low-level code (CSV reader, dataset loader)
/// asks FaultPointTriggered("site") before fallible operations; the call is
/// a single relaxed atomic load + null check unless a handler is installed,
/// so production paths pay nothing. robust/fault_injection.h installs the
/// handler that makes sites fire deterministically for chaos testing.
using FaultHandler = bool (*)(void* ctx, const char* site);

/// True when an installed handler decides the named site should fail this
/// time. Always false without a handler.
bool FaultPointTriggered(const char* site);

/// Installs / clears the process-wide handler (not thread-safe against
/// concurrent installs; tests install once up front).
void InstallFaultHandler(FaultHandler handler, void* ctx);
void ClearFaultHandler();

}  // namespace trmma

#endif  // TRMMA_COMMON_FAULT_POINTS_H_
