#include "common/deadline.h"

namespace trmma {
namespace internal {

thread_local DeadlineState t_deadline;

}  // namespace internal

DeadlineScope::DeadlineScope(const Deadline& deadline,
                             const std::atomic<bool>* cancel)
    : saved_(internal::t_deadline) {
  internal::DeadlineState s;
  s.active = true;
  s.bounded = deadline.bounded();
  if (s.bounded) {
    // Re-derive the absolute time point: Deadline keeps it private, so go
    // through the public remaining-time accessor.
    s.at = Deadline::Clock::now() +
           std::chrono::duration_cast<Deadline::Clock::duration>(
               std::chrono::duration<double, std::milli>(
                   deadline.RemainingMillis()));
  }
  s.cancel = cancel;
  s.degraded = false;
  internal::t_deadline = s;
}

DeadlineScope::~DeadlineScope() {
  const bool degraded = internal::t_deadline.degraded;
  internal::t_deadline = saved_;
  // An inner scope cutting work short degrades the outer request too.
  if (degraded && internal::t_deadline.active) {
    internal::t_deadline.degraded = true;
  }
}

double DeadlineRemainingMillis() {
  const internal::DeadlineState& s = internal::t_deadline;
  if (!s.active || !s.bounded) {
    return std::numeric_limits<double>::infinity();
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        s.at - Deadline::Clock::now())
                        .count();
  return ms > 0.0 ? ms : 0.0;
}

void NoteDeadlineDegradation() {
  if (internal::t_deadline.active) internal::t_deadline.degraded = true;
}

bool DeadlineDegradationNoted() {
  return internal::t_deadline.active && internal::t_deadline.degraded;
}

}  // namespace trmma
