#include "common/fault_points.h"

#include <atomic>

namespace trmma {
namespace {

std::atomic<FaultHandler> g_handler{nullptr};
std::atomic<void*> g_ctx{nullptr};

}  // namespace

bool FaultPointTriggered(const char* site) {
  FaultHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler == nullptr) return false;
  return handler(g_ctx.load(std::memory_order_acquire), site);
}

void InstallFaultHandler(FaultHandler handler, void* ctx) {
  g_ctx.store(ctx, std::memory_order_release);
  g_handler.store(handler, std::memory_order_release);
}

void ClearFaultHandler() {
  g_handler.store(nullptr, std::memory_order_release);
  g_ctx.store(nullptr, std::memory_order_release);
}

}  // namespace trmma
