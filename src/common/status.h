#ifndef TRMMA_COMMON_STATUS_H_
#define TRMMA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace trmma {

/// Error categories used across the library. Library code does not throw;
/// fallible operations return Status or StatusOr<T> (Arrow/RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
};

/// A lightweight success-or-error result carrying a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Check ok() before value().
template <typename T>
class StatusOr {
 public:
  /// Implicit so functions can `return value;` or `return status;`.
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace trmma

/// Propagates a non-OK Status from an expression to the caller.
#define TRMMA_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::trmma::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // TRMMA_COMMON_STATUS_H_
