#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace trmma {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits give a uniform double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  TRMMA_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t x = a;
  uint64_t mixed = SplitMix64(x);
  x = mixed ^ b;
  mixed = SplitMix64(x);
  return SplitMix64(x) ^ mixed;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  TRMMA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0.0) return UniformInt(weights.size());
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

}  // namespace trmma
