#ifndef TRMMA_COMMON_LOGGING_H_
#define TRMMA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace trmma {

/// Severity levels for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Returns the process-wide minimum level; messages below it are dropped.
LogLevel& MinLogLevel();

/// Stream-style log message; emits on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns an ostream expression into void so CHECK can use ?: (glog trick).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

/// Sets the process-wide minimum log level.
void SetMinLogLevel(LogLevel level);

/// Sets the minimum level from the TRMMA_LOG_LEVEL environment variable
/// ("debug", "info", "warning", "error"; case-insensitive). Unset or
/// unrecognized values leave the current level unchanged. Bench and test
/// mains call this so verbosity is controllable without a rebuild.
void SetMinLogLevelFromEnv();

/// Redirects log output to `path`, opened in append mode. An empty path
/// restores stderr. Fatal messages are always mirrored to stderr so an
/// abort is never silent. Returns false (and keeps logging to stderr) when
/// the file cannot be opened.
bool SetLogFile(const std::string& path);

/// Applies TRMMA_LOG_FILE — the logger's counterpart of TRMMA_METRICS_FILE
/// and TRMMA_TRACE_FILE. Unset or empty leaves the current sink unchanged.
void SetLogFileFromEnv();

}  // namespace trmma

#define TRMMA_LOG(level)                                                    \
  ::trmma::internal_logging::LogMessage(::trmma::LogLevel::k##level,        \
                                        __FILE__, __LINE__)                 \
      .stream()

/// Aborts with a message when `cond` is false. Active in all build types:
/// invariant violations in a data system must not silently corrupt results.
#define TRMMA_CHECK(cond)                                              \
  (cond) ? (void)0                                                     \
         : ::trmma::internal_logging::Voidify() &                      \
               ::trmma::internal_logging::LogMessage(                  \
                   ::trmma::LogLevel::kFatal, __FILE__, __LINE__)      \
                       .stream()                                       \
                   << "Check failed: " #cond " "

#define TRMMA_CHECK_EQ(a, b) TRMMA_CHECK((a) == (b))
#define TRMMA_CHECK_NE(a, b) TRMMA_CHECK((a) != (b))
#define TRMMA_CHECK_LT(a, b) TRMMA_CHECK((a) < (b))
#define TRMMA_CHECK_LE(a, b) TRMMA_CHECK((a) <= (b))
#define TRMMA_CHECK_GT(a, b) TRMMA_CHECK((a) > (b))
#define TRMMA_CHECK_GE(a, b) TRMMA_CHECK((a) >= (b))

#endif  // TRMMA_COMMON_LOGGING_H_
