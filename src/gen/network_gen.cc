#include "gen/network_gen.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace trmma {
namespace {

/// Kosaraju's algorithm: returns the component id of every node and the id
/// of the largest strongly connected component.
std::pair<std::vector<int>, int> LargestScc(
    int n, const std::vector<std::vector<int>>& out,
    const std::vector<std::vector<int>>& in) {
  std::vector<int> order;
  order.reserve(n);
  std::vector<char> seen(n, 0);
  // Iterative DFS for finish order.
  for (int start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::vector<std::pair<int, size_t>> stack = {{start, 0}};
    seen[start] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < out[u].size()) {
        const int v = out[u][next++];
        if (!seen[v]) {
          seen[v] = 1;
          stack.push_back({v, 0});
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  std::vector<int> comp(n, -1);
  int num_comps = 0;
  std::vector<int> comp_size;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] != -1) continue;
    const int c = num_comps++;
    comp_size.push_back(0);
    std::vector<int> stack = {*it};
    comp[*it] = c;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      ++comp_size[c];
      for (int v : in[u]) {
        if (comp[v] == -1) {
          comp[v] = c;
          stack.push_back(v);
        }
      }
    }
  }
  int best = 0;
  for (int c = 1; c < num_comps; ++c) {
    if (comp_size[c] > comp_size[best]) best = c;
  }
  return {comp, best};
}

}  // namespace

StatusOr<std::unique_ptr<RoadNetwork>> GenerateNetwork(
    const NetworkGenConfig& config, Rng& rng) {
  const int w = config.grid_width;
  const int h = config.grid_height;
  if (w < 3 || h < 3) {
    return Status::InvalidArgument("grid must be at least 3x3");
  }

  // 1. Place intersections with jitter; delete a fraction.
  const LocalProjection proj(config.origin);
  std::vector<int> grid_id(w * h, -1);
  std::vector<Vec2> positions;
  auto grid = [w](int gx, int gy) { return gy * w + gx; };
  for (int gy = 0; gy < h; ++gy) {
    for (int gx = 0; gx < w; ++gx) {
      // Keep the border intact so the city stays one connected frame.
      const bool border = gx == 0 || gy == 0 || gx == w - 1 || gy == h - 1;
      if (!border && rng.Bernoulli(config.delete_node_prob)) continue;
      const double jx = rng.Uniform(-1.0, 1.0) * config.jitter_frac;
      const double jy = rng.Uniform(-1.0, 1.0) * config.jitter_frac;
      grid_id[grid(gx, gy)] = static_cast<int>(positions.size());
      positions.push_back(Vec2{(gx + jx) * config.spacing_m,
                               (gy + jy) * config.spacing_m});
    }
  }

  // 2. Build candidate directed adjacency over surviving intersections.
  struct DirEdge {
    int from;
    int to;
    double speed;
  };
  std::vector<DirEdge> edges;
  auto is_arterial = [&](int gx0, int gy0, int gx1, int gy1) {
    if (gy0 == gy1) return config.arterial_every > 0 &&
                           gy0 % config.arterial_every == 0;
    if (gx0 == gx1) return config.arterial_every > 0 &&
                           gx0 % config.arterial_every == 0;
    return false;
  };
  auto add_street = [&](int gx0, int gy0, int gx1, int gy1) {
    const int a = grid_id[grid(gx0, gy0)];
    const int b = grid_id[grid(gx1, gy1)];
    if (a < 0 || b < 0) return;
    const double base = is_arterial(gx0, gy0, gx1, gy1)
                            ? config.arterial_speed_mps
                            : config.street_speed_mps;
    const double speed = base * rng.Uniform(0.50, 1.15);
    if (rng.Bernoulli(config.oneway_prob)) {
      if (rng.Bernoulli(0.5)) {
        edges.push_back({a, b, speed});
      } else {
        edges.push_back({b, a, speed});
      }
    } else {
      edges.push_back({a, b, speed});
      edges.push_back({b, a, speed});
    }
  };
  for (int gy = 0; gy < h; ++gy) {
    for (int gx = 0; gx < w; ++gx) {
      if (gx + 1 < w) add_street(gx, gy, gx + 1, gy);
      if (gy + 1 < h) add_street(gx, gy, gx, gy + 1);
      if (gx + 1 < w && gy + 1 < h && rng.Bernoulli(config.diagonal_prob)) {
        add_street(gx, gy, gx + 1, gy + 1);
      }
    }
  }

  // 3. Keep the largest strongly connected component so every
  //    origin/destination pair used by the simulator is routable.
  const int n = static_cast<int>(positions.size());
  std::vector<std::vector<int>> out(n);
  std::vector<std::vector<int>> in(n);
  for (const auto& e : edges) {
    out[e.from].push_back(e.to);
    in[e.to].push_back(e.from);
  }
  auto [comp, best] = LargestScc(n, out, in);

  auto network = std::make_unique<RoadNetwork>();
  std::vector<NodeId> remap(n, kInvalidNode);
  for (int i = 0; i < n; ++i) {
    if (comp[i] != best) continue;
    remap[i] = network->AddNode(proj.ToLatLng(positions[i]));
  }
  int added = 0;
  for (const auto& e : edges) {
    if (comp[e.from] != best || comp[e.to] != best) continue;
    auto seg = network->AddSegment(remap[e.from], remap[e.to], e.speed);
    if (!seg.ok()) return seg.status();
    ++added;
  }
  if (network->num_nodes() < 16 || added < 32) {
    return Status::Internal("generated network is degenerate");
  }
  TRMMA_RETURN_IF_ERROR(network->Finalize());
  return network;
}

}  // namespace trmma
