#ifndef TRMMA_GEN_NETWORK_GEN_H_
#define TRMMA_GEN_NETWORK_GEN_H_

#include <memory>

#include "common/random.h"
#include "common/status.h"
#include "graph/road_network.h"

namespace trmma {

/// Parameters of the synthetic city generator: a jittered grid with
/// arterial roads, occasional diagonals, one-way streets and random block
/// deletions, reduced to its largest strongly connected component so route
/// planning always succeeds.
struct NetworkGenConfig {
  int grid_width = 20;          ///< intersections per row
  int grid_height = 16;         ///< intersections per column
  double spacing_m = 220.0;     ///< nominal block size
  double jitter_frac = 0.25;    ///< positional jitter as a fraction of spacing
  double delete_node_prob = 0.08;  ///< fraction of intersections removed
  double diagonal_prob = 0.05;  ///< chance of adding a diagonal shortcut
  double oneway_prob = 0.12;    ///< chance a street is one-way
  int arterial_every = 5;       ///< every k-th row/column is a fast arterial
  double arterial_speed_mps = 16.7;
  double street_speed_mps = 9.7;
  LatLng origin{31.20, 121.45};  ///< south-west corner coordinate
};

/// Generates a synthetic road network. Deterministic given `rng`'s state.
/// Returns an error if the configuration yields a degenerate graph.
StatusOr<std::unique_ptr<RoadNetwork>> GenerateNetwork(
    const NetworkGenConfig& config, Rng& rng);

}  // namespace trmma

#endif  // TRMMA_GEN_NETWORK_GEN_H_
