#ifndef TRMMA_GEN_TRAJ_GEN_H_
#define TRMMA_GEN_TRAJ_GEN_H_

#include "common/random.h"
#include "common/status.h"
#include "graph/shortest_path.h"
#include "traj/types.h"

namespace trmma {

/// Parameters of the kinematic trajectory simulator.
struct TrajGenConfig {
  double epsilon_s = 15.0;       ///< ground-truth sampling rate ε
  double gps_noise_sigma_m = 8.0;  ///< isotropic Gaussian GPS error
  /// Maximum magnitude of the fixed per-segment "urban canyon" bias added
  /// to observations: multipath reflection shifts GPS systematically on
  /// specific streets. Deterministic per segment, so learned matchers can
  /// exploit it from history while memoryless Gaussian-emission HMMs
  /// cannot — the effect behind the paper's learned-vs-HMM gap.
  double canyon_bias_m = 11.0;
  double min_route_length_m = 1500.0;
  double max_route_length_m = 8000.0;
  int min_points = 12;           ///< minimum dense points per trajectory
  int max_points = 120;          ///< trajectory is truncated beyond this
  double speed_factor_lo = 0.90;   ///< per-trip speed noise range
  double speed_factor_hi = 1.08;
  /// Probability that a trip takes a waypoint detour instead of the exact
  /// shortest path (real drivers prefer arterials, avoid turns, or simply
  /// know better); detours are what make HMM shortest-path transition
  /// models unreliable on sparse data, per the paper's motivation.
  double detour_prob = 0.6;
  double max_detour_factor = 1.5;  ///< detour length cap vs shortest path
};

/// Simulates vehicle trips on a road network: samples an
/// origin/destination pair, routes it, drives the route with per-segment
/// speeds and emits (a) exact ground-truth map-matched points every ε
/// seconds and (b) Gaussian-noise GPS observations of them. The sparse
/// input is NOT filled here; use SparsifySample.
class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const RoadNetwork& network, const TrajGenConfig& config);

  TrajectoryGenerator(const TrajectoryGenerator&) = delete;
  TrajectoryGenerator& operator=(const TrajectoryGenerator&) = delete;

  /// Generates one trajectory sample (raw + truth + route). Retries
  /// internally on unroutable O/D pairs; returns an error only after
  /// repeated failures (degenerate network).
  StatusOr<TrajectorySample> Generate(Rng& rng);

 private:
  const RoadNetwork& network_;
  TrajGenConfig config_;
  ShortestPathEngine engine_;
};

}  // namespace trmma

#endif  // TRMMA_GEN_TRAJ_GEN_H_
