#include "gen/presets.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "traj/sparsify.h"

namespace trmma {
namespace {

/// All four presets, optionally filtered by the TRMMA_BENCH_CITIES
/// environment variable (comma-separated, e.g. "PT,CD"). Unknown names are
/// ignored; a filter that matches nothing falls back to the full list so a
/// typo can't silently turn a bench into a no-op.
std::vector<std::string> FilteredCityNames() {
  const std::vector<std::string> all = {"PT", "XA", "BJ", "CD"};
  const char* env = std::getenv("TRMMA_BENCH_CITIES");
  if (env == nullptr || *env == '\0') return all;
  std::vector<std::string> picked;
  std::stringstream ss(env);
  std::string token;
  while (std::getline(ss, token, ',')) {
    for (const std::string& name : all) {
      if (token == name) {
        picked.push_back(name);
        break;
      }
    }
  }
  if (picked.empty()) {
    TRMMA_LOG(Warning) << "TRMMA_BENCH_CITIES='" << env
                       << "' matches no preset; using all cities";
    return all;
  }
  return picked;
}

}  // namespace

const std::vector<std::string>& CityNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>(FilteredCityNames());
  return *names;
}

StatusOr<CityPreset> GetCityPreset(const std::string& name) {
  CityPreset p;
  p.name = name;
  if (name == "PT") {
    // Porto: medium network, ε=15s, coastal irregular grid.
    p.net.grid_width = 22;
    p.net.grid_height = 13;
    p.net.spacing_m = 240.0;
    p.net.jitter_frac = 0.30;
    p.net.origin = {41.15, -8.62};
    p.traj.epsilon_s = 15.0;
    p.seed = 101;
  } else if (name == "XA") {
    // Xi'an: smallest, very regular dense grid, ε=12s.
    p.net.grid_width = 15;
    p.net.grid_height = 13;
    p.net.spacing_m = 300.0;
    p.net.jitter_frac = 0.12;
    p.net.delete_node_prob = 0.04;
    p.net.origin = {34.24, 108.95};
    p.traj.epsilon_s = 12.0;
    p.seed = 202;
  } else if (name == "BJ") {
    // Beijing: largest network, coarse ε=60s, longer trips.
    p.net.grid_width = 34;
    p.net.grid_height = 25;
    p.net.spacing_m = 260.0;
    p.net.jitter_frac = 0.25;
    p.net.origin = {39.90, 116.40};
    p.traj.epsilon_s = 60.0;
    p.traj.min_route_length_m = 4000.0;
    p.traj.max_route_length_m = 14000.0;
    p.traj.min_points = 10;
    p.seed = 303;
  } else if (name == "CD") {
    // Chengdu: dense mid-size grid, ε=12s.
    p.net.grid_width = 20;
    p.net.grid_height = 17;
    p.net.spacing_m = 250.0;
    p.net.jitter_frac = 0.22;
    p.net.origin = {30.66, 104.06};
    p.traj.epsilon_s = 12.0;
    p.seed = 404;
  } else {
    return Status::InvalidArgument("unknown city preset: " + name);
  }
  return p;
}

StatusOr<Dataset> BuildCityDataset(const CityPreset& preset,
                                   int num_trajectories) {
  const int count =
      num_trajectories > 0 ? num_trajectories : preset.num_trajectories;
  Rng rng(preset.seed);

  Dataset dataset;
  dataset.name = preset.name;
  dataset.epsilon_s = preset.traj.epsilon_s;
  dataset.gamma = preset.gamma;

  auto network_or = GenerateNetwork(preset.net, rng);
  if (!network_or.ok()) return network_or.status();
  dataset.network = std::move(network_or).value();

  TrajectoryGenerator generator(*dataset.network, preset.traj);
  dataset.samples.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto sample_or = generator.Generate(rng);
    if (!sample_or.ok()) return sample_or.status();
    dataset.samples.push_back(std::move(sample_or).value());
    SparsifySample(dataset.samples.back(), preset.gamma, rng);
  }
  dataset.Split(0.4, 0.3, rng);
  return dataset;
}

StatusOr<Dataset> BuildCityDatasetByName(const std::string& name,
                                         int num_trajectories) {
  auto preset_or = GetCityPreset(name);
  if (!preset_or.ok()) return preset_or.status();
  return BuildCityDataset(preset_or.value(), num_trajectories);
}

}  // namespace trmma
