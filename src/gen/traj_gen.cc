#include "gen/traj_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace trmma {
namespace {

double Hash01(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Fixed multipath bias of a segment: deterministic direction/magnitude.
Vec2 CanyonBias(SegmentId segment, double max_magnitude) {
  const double angle = 2.0 * M_PI * Hash01(static_cast<uint64_t>(segment));
  const double mag =
      max_magnitude * (0.3 + 0.7 * Hash01(static_cast<uint64_t>(segment) + 997));
  return Vec2{mag * std::cos(angle), mag * std::sin(angle)};
}

}  // namespace

TrajectoryGenerator::TrajectoryGenerator(const RoadNetwork& network,
                                         const TrajGenConfig& config)
    : network_(network), config_(config), engine_(network) {
  TRMMA_CHECK(network.finalized());
  TRMMA_CHECK_GT(config.epsilon_s, 0.0);
}

StatusOr<TrajectorySample> TrajectoryGenerator::Generate(Rng& rng) {
  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const NodeId src = static_cast<NodeId>(rng.UniformInt(network_.num_nodes()));
    const NodeId dst = static_cast<NodeId>(rng.UniformInt(network_.num_nodes()));
    if (src == dst) continue;
    PathResult path =
        engine_.NodeToNode(src, dst, config_.max_route_length_m * 1.2);
    if (!path.found || path.distance_m < config_.min_route_length_m ||
        path.distance_m > config_.max_route_length_m) {
      continue;
    }

    // Possibly take a waypoint detour instead of the exact shortest path.
    std::vector<SegmentId> driven = path.segments;
    if (rng.Bernoulli(config_.detour_prob)) {
      for (int tries = 0; tries < 4; ++tries) {
        const NodeId w =
            static_cast<NodeId>(rng.UniformInt(network_.num_nodes()));
        if (w == src || w == dst) continue;
        PathResult leg1 =
            engine_.NodeToNode(src, w, config_.max_route_length_m);
        if (!leg1.found) continue;
        PathResult leg2 =
            engine_.NodeToNode(w, dst, config_.max_route_length_m);
        if (!leg2.found) continue;
        const double total = leg1.distance_m + leg2.distance_m;
        if (total > config_.max_route_length_m ||
            total > path.distance_m * config_.max_detour_factor) {
          continue;
        }
        driven = leg1.segments;
        driven.insert(driven.end(), leg2.segments.begin(),
                      leg2.segments.end());
        break;
      }
    }

    TrajectorySample sample;
    sample.route = DeduplicateConsecutive(driven);

    // Per-segment effective speeds: free-flow speed damped by a random
    // traffic factor, fixed for the whole trip.
    std::vector<double> speed(sample.route.size());
    for (size_t i = 0; i < speed.size(); ++i) {
      speed[i] = network_.segment(sample.route[i]).speed_mps *
                 rng.Uniform(config_.speed_factor_lo, config_.speed_factor_hi);
    }

    // Drive the route, emitting an exact matched point every ε seconds.
    // Points lie on a strict ε-grid (Def. 6); the trip is cut at the last
    // grid point reached, so every inter-point interval is exactly ε.
    double t = std::floor(rng.Uniform(0.0, 86400.0 - 7200.0));
    size_t seg_idx = 0;
    double seg_pos_m = 0.0;
    while (sample.truth.size() < static_cast<size_t>(config_.max_points)) {
      const SegmentId sid = sample.route[seg_idx];
      const double len = network_.segment(sid).length_m;
      sample.truth.push_back(
          MatchedPoint{sid, std::clamp(seg_pos_m / len, 0.0, 0.999999), t});

      // Advance ε seconds of driving, possibly across several segments.
      double remaining_s = config_.epsilon_s;
      bool trip_over = false;
      while (remaining_s > 0.0) {
        const double cur_len = network_.segment(sample.route[seg_idx]).length_m;
        const double dist_left = cur_len - seg_pos_m;
        const double time_to_end = dist_left / speed[seg_idx];
        if (time_to_end > remaining_s) {
          seg_pos_m += remaining_s * speed[seg_idx];
          remaining_s = 0.0;
        } else if (seg_idx + 1 == sample.route.size()) {
          trip_over = true;  // destination reached mid-step: stop here
          break;
        } else {
          remaining_s -= time_to_end;
          ++seg_idx;
          seg_pos_m = 0.0;
        }
      }
      if (trip_over) break;
      t += config_.epsilon_s;
    }

    if (sample.truth.size() < static_cast<size_t>(config_.min_points)) {
      continue;
    }
    // Trim the route to the part actually driven (search from the end:
    // detour routes may visit a segment twice).
    const SegmentId last_seg = sample.truth.back().segment;
    for (size_t i = sample.route.size(); i-- > 0;) {
      if (sample.route[i] == last_seg) {
        sample.route.resize(i + 1);
        break;
      }
    }

    // Observe each ground-truth point with the segment's fixed multipath
    // bias plus isotropic Gaussian noise.
    sample.raw.points.reserve(sample.truth.size());
    for (const MatchedPoint& a : sample.truth) {
      Vec2 xy = network_.PointOnSegment(a.segment, a.ratio);
      const Vec2 bias = CanyonBias(a.segment, config_.canyon_bias_m);
      xy.x += bias.x + rng.Gaussian(0.0, config_.gps_noise_sigma_m);
      xy.y += bias.y + rng.Gaussian(0.0, config_.gps_noise_sigma_m);
      sample.raw.points.push_back(
          GpsPoint{network_.projection().ToLatLng(xy), a.t});
    }
    return sample;
  }
  return Status::Internal(
      "could not generate a routable trajectory after retries");
}

}  // namespace trmma
