#ifndef TRMMA_GEN_PRESETS_H_
#define TRMMA_GEN_PRESETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gen/network_gen.h"
#include "gen/traj_gen.h"
#include "traj/dataset.h"

namespace trmma {

/// A synthetic stand-in for one of the paper's four cities. The presets
/// keep the *relative* characteristics of Table II: BJ has by far the
/// largest network and the coarsest ε (60s); XA the smallest network; CD
/// dense with ε=12s; PT medium with ε=15s.
struct CityPreset {
  std::string name;
  NetworkGenConfig net;
  TrajGenConfig traj;
  int num_trajectories = 800;
  double gamma = 0.1;  ///< default sparsity (sparse interval = ε/γ)
  uint64_t seed = 7;
};

/// Names of the four presets, in paper order: PT, XA, BJ, CD.
const std::vector<std::string>& CityNames();

/// Returns the preset for "PT", "XA", "BJ" or "CD" (errors otherwise).
StatusOr<CityPreset> GetCityPreset(const std::string& name);

/// Generates the network and trajectories of a preset, sparsifies with the
/// preset γ, and splits 40/30/30. `num_trajectories` <= 0 keeps the preset
/// default; pass a small number for quick tests.
StatusOr<Dataset> BuildCityDataset(const CityPreset& preset,
                                   int num_trajectories = -1);

/// Convenience: GetCityPreset + BuildCityDataset.
StatusOr<Dataset> BuildCityDatasetByName(const std::string& name,
                                         int num_trajectories = -1);

}  // namespace trmma

#endif  // TRMMA_GEN_PRESETS_H_
