#ifndef TRMMA_EVAL_METRICS_H_
#define TRMMA_EVAL_METRICS_H_

#include <vector>

#include "graph/shortest_path.h"
#include "traj/types.h"

namespace trmma {

/// Set-based quality metrics over segments (paper §VI-A).
struct SetMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double jaccard = 0.0;

  SetMetrics& operator+=(const SetMetrics& o);
  SetMetrics operator/(double n) const;
};

/// Precision/recall/F1/Jaccard between predicted and ground-truth segment
/// collections, with set semantics as in the paper.
SetMetrics SegmentSetMetrics(const std::vector<SegmentId>& pred,
                             const std::vector<SegmentId>& truth);

/// Pointwise segment accuracy between aligned matched trajectories
/// (paper's Accuracy). The denominator is the ground-truth length;
/// missing or extra predictions count as errors.
double PointwiseAccuracy(const MatchedTrajectory& pred,
                         const MatchedTrajectory& truth);

/// MAE/RMSE of road-network distances between aligned points (paper
/// §VI-A). Distances are the symmetric network distance (min of the two
/// directions), capped at `cap_m` for disconnected pairs.
struct DistanceErrors {
  double mae = 0.0;
  double rmse = 0.0;
};

DistanceErrors RecoveryDistanceErrors(const RoadNetwork& network,
                                      ShortestPathEngine& engine,
                                      const MatchedTrajectory& pred,
                                      const MatchedTrajectory& truth,
                                      double cap_m = 2000.0);

}  // namespace trmma

#endif  // TRMMA_EVAL_METRICS_H_
