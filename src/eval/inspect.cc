#include "eval/inspect.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "mm/route_stitch.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "robust/pipeline.h"

namespace trmma {

namespace {

constexpr size_t kMaxDiffDetails = 8;

MapMatcher* FindMatcher(ExperimentStack& stack, const std::string& name) {
  MapMatcher* all[] = {stack.nearest.get(), stack.hmm.get(),
                       stack.fmm.get(),     stack.lhmm.get(),
                       stack.mma.get(),     stack.deepmm.get()};
  for (MapMatcher* m : all) {
    if (m != nullptr && m->name() == name) return m;
  }
  return nullptr;
}

RecoveryMethod* FindRecovery(ExperimentStack& stack, const std::string& name) {
  RecoveryMethod* all[] = {stack.trmma.get(),          stack.linear.get(),
                           stack.mma_linear.get(),     stack.nearest_linear.get(),
                           stack.mtrajrec.get(),       stack.trajformer.get()};
  for (RecoveryMethod* m : all) {
    if (m != nullptr && m->name() == name) return m;
  }
  return nullptr;
}

Trajectory TrajectoryFromRecord(const obs::RequestRecord& record) {
  Trajectory traj;
  traj.points.reserve(record.input.size());
  for (const obs::RecordGpsPoint& p : record.input) {
    traj.points.push_back({LatLng{p.lat, p.lng}, p.t});
  }
  return traj;
}

void AddDetail(ReplayDiff* diff, const std::string& text) {
  if (diff->details.size() < kMaxDiffDetails) diff->details.push_back(text);
}

/// Position-by-position comparison of two segment sequences. A length
/// difference counts as one mismatch plus whatever differs in the overlap.
void DiffSegments(const std::vector<std::int64_t>& want,
                  const std::vector<SegmentId>& got, const char* what,
                  ReplayDiff* diff) {
  if (want.size() != got.size()) {
    ++diff->mismatches;
    AddDetail(diff, std::string(what) + ": length " +
                        std::to_string(want.size()) + " recorded vs " +
                        std::to_string(got.size()) + " replayed");
  }
  const size_t n = std::min(want.size(), got.size());
  for (size_t i = 0; i < n; ++i) {
    ++diff->compared;
    if (want[i] != static_cast<std::int64_t>(got[i])) {
      ++diff->mismatches;
      AddDetail(diff, std::string(what) + "[" + std::to_string(i) +
                          "]: segment " + std::to_string(want[i]) +
                          " recorded vs " + std::to_string(got[i]) +
                          " replayed");
    }
  }
}

/// Matched/recovered points must reproduce segment AND offset exactly —
/// the decode is deterministic arithmetic, so bit-equality is the contract.
void DiffMatched(const std::vector<obs::RecordMatchedPoint>& want,
                 const MatchedTrajectory& got, const char* what,
                 ReplayDiff* diff) {
  if (want.size() != got.size()) {
    ++diff->mismatches;
    AddDetail(diff, std::string(what) + ": length " +
                        std::to_string(want.size()) + " recorded vs " +
                        std::to_string(got.size()) + " replayed");
  }
  const size_t n = std::min(want.size(), got.size());
  for (size_t i = 0; i < n; ++i) {
    ++diff->compared;
    if (want[i].segment != static_cast<std::int64_t>(got[i].segment) ||
        want[i].ratio != got[i].ratio) {
      ++diff->mismatches;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s[%zu]: (%lld, %.17g) recorded vs (%d, %.17g) replayed",
                    what, i, static_cast<long long>(want[i].segment),
                    want[i].ratio, got[i].segment, got[i].ratio);
      AddDetail(diff, buf);
    }
  }
}

double Percentile(std::vector<std::int64_t> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

bool ValidSegment(const RoadNetwork& network, std::int64_t sid) {
  return sid >= 0 && sid < network.num_segments();
}

void GeoJsonCoord(obs::JsonWriter& w, const LatLng& p) {
  w.BeginArray().Number(p.lng).Number(p.lat).EndArray();
}

void GeoJsonSegmentLine(obs::JsonWriter& w, const RoadNetwork& network,
                        SegmentId sid) {
  const RoadSegment& seg = network.segment(sid);
  w.Key("geometry").BeginObject();
  w.Key("type").String("LineString");
  w.Key("coordinates").BeginArray();
  GeoJsonCoord(w, network.node(seg.from).pos);
  GeoJsonCoord(w, network.node(seg.to).pos);
  w.EndArray();
  w.EndObject();
}

}  // namespace

StatusOr<std::vector<obs::RequestRecord>> LoadRecords(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<obs::RequestRecord> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    StatusOr<obs::RequestRecord> record =
        obs::RequestRecordFromJsonLine(line);
    if (!record.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + record.status().ToString());
    }
    out.push_back(std::move(record).value());
  }
  return out;
}

StatusOr<obs::RequestRecord> FindRecord(const std::string& path,
                                        const std::string& id) {
  StatusOr<std::vector<obs::RequestRecord>> records = LoadRecords(path);
  if (!records.ok()) return records.status();
  // Match by record id, or by the hex trace id attached when the request ran
  // under a serving TraceContext — lets operators paste an exemplar trace id
  // straight from /metrics or an SLO breach.
  for (obs::RequestRecord& r : *records) {
    if (r.id == id || (!r.trace_id.empty() && r.trace_id == id)) {
      return std::move(r);
    }
  }
  return Status::NotFound("no record with id or trace_id " + id + " in " +
                          path);
}

StatusOr<ReplayDiff> ReplayRecord(ExperimentStack& stack,
                                  const obs::RequestRecord& record) {
  const Trajectory input = TrajectoryFromRecord(record);
  ReplayDiff diff;
  if (record.kind == "mm") {
    MapMatcher* matcher = FindMatcher(stack, record.method);
    if (matcher == nullptr) {
      return Status::NotFound("no matcher named " + record.method);
    }
    const std::vector<SegmentId> segs = matcher->MatchPoints(input);
    const Route route = StitchRoute(*stack.dataset->network, *stack.planner,
                                    *stack.engine, segs);
    std::vector<std::int64_t> want_segs(record.matched.size());
    for (size_t i = 0; i < record.matched.size(); ++i) {
      want_segs[i] = record.matched[i].segment;
    }
    DiffSegments(want_segs, segs, "matched", &diff);
    DiffSegments(record.route, route, "route", &diff);
    return diff;
  }
  if (record.kind == "recovery" || record.kind == "pipeline") {
    RecoveryMethod* method = FindRecovery(stack, record.method);
    if (method == nullptr) {
      return Status::NotFound("no recovery method named " + record.method);
    }
    if (record.kind == "pipeline") {
      // Replays the captured (post-fault-injection) input through the
      // pipeline body; the chaos stage is deliberately skipped.
      PipelineConfig config;
      config.epsilon = static_cast<double>(record.epsilon);
      RobustRecoveryPipeline pipeline(method, config);
      const PipelineResult result = pipeline.RunSanitized(input);
      DiffMatched(record.recovered, result.recovered, "recovered", &diff);
      if (!record.outcome.empty() &&
          record.outcome != RecoveryOutcomeName(result.outcome)) {
        ++diff.mismatches;
        AddDetail(&diff, "outcome: " + record.outcome + " recorded vs " +
                             RecoveryOutcomeName(result.outcome) +
                             " replayed");
      }
      return diff;
    }
    const MatchedTrajectory recovered =
        method->Recover(input, static_cast<double>(record.epsilon));
    DiffMatched(record.recovered, recovered, "recovered", &diff);
    return diff;
  }
  return Status::InvalidArgument("unknown record kind: " + record.kind);
}

std::int64_t ReplayRetainedRecords(ExperimentStack& stack) {
  std::int64_t mismatches = 0;
  for (const obs::RequestRecord& record :
       obs::FlightRecorder::Global().Snapshot()) {
    if (record.city != stack.dataset->name) continue;
    StatusOr<ReplayDiff> diff = ReplayRecord(stack, record);
    if (!diff.ok()) {
      ++mismatches;
      continue;
    }
    mismatches += diff->mismatches;
  }
  obs::FlightRecorder::Global().AddReplayMismatches(mismatches);
  return mismatches;
}

StatusOr<ReplayDiff> ReplayRecordRebuilt(const obs::RequestRecord& record) {
  StatusOr<Dataset> dataset = BuildCityDatasetByName(
      record.city, static_cast<int>(record.dataset_trajectories));
  if (!dataset.ok()) return dataset.status();
  StackConfig config;
  config.seed = static_cast<uint64_t>(record.seed);
  ExperimentStack stack = BuildStack(*dataset, config);
  const Status trained = ApplyTrainingLog(stack, record.train_state);
  if (!trained.ok()) return trained;
  return ReplayRecord(stack, record);
}

std::string RecordToGeoJson(const RoadNetwork& network,
                            const obs::RequestRecord& record) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("type").String("FeatureCollection");
  w.Key("features").BeginArray();

  for (size_t i = 0; i < record.input.size(); ++i) {
    const obs::RecordGpsPoint& p = record.input[i];
    w.BeginObject();
    w.Key("type").String("Feature");
    w.Key("geometry").BeginObject();
    w.Key("type").String("Point");
    w.Key("coordinates");
    GeoJsonCoord(w, LatLng{p.lat, p.lng});
    w.EndObject();
    w.Key("properties").BeginObject();
    w.Key("layer").String("gps");
    w.Key("index").Int(static_cast<long long>(i));
    w.Key("t").Number(p.t);
    w.EndObject();
    w.EndObject();
  }

  for (size_t i = 0; i < record.candidates.size(); ++i) {
    for (const obs::RecordCandidate& c : record.candidates[i]) {
      if (!ValidSegment(network, c.segment)) continue;
      w.BeginObject();
      w.Key("type").String("Feature");
      GeoJsonSegmentLine(w, network, static_cast<SegmentId>(c.segment));
      w.Key("properties").BeginObject();
      w.Key("layer").String("candidate");
      w.Key("point_index").Int(static_cast<long long>(i));
      w.Key("segment").Int(c.segment);
      w.Key("distance").Number(c.distance);
      w.Key("ratio").Number(c.ratio);
      w.EndObject();
      w.EndObject();
    }
  }

  if (!record.route.empty()) {
    w.BeginObject();
    w.Key("type").String("Feature");
    w.Key("geometry").BeginObject();
    w.Key("type").String("LineString");
    w.Key("coordinates").BeginArray();
    std::int64_t drawn = 0;
    for (size_t k = 0; k < record.route.size(); ++k) {
      const std::int64_t sid = record.route[k];
      if (!ValidSegment(network, sid)) continue;
      const RoadSegment& seg = network.segment(static_cast<SegmentId>(sid));
      GeoJsonCoord(w, network.node(seg.from).pos);
      if (k + 1 == record.route.size()) {
        GeoJsonCoord(w, network.node(seg.to).pos);
      }
      ++drawn;
    }
    w.EndArray();
    w.EndObject();
    w.Key("properties").BeginObject();
    w.Key("layer").String("route");
    w.Key("segments").Int(drawn);
    w.EndObject();
    w.EndObject();
  }

  for (size_t i = 0; i < record.recovered.size(); ++i) {
    const obs::RecordMatchedPoint& p = record.recovered[i];
    if (!ValidSegment(network, p.segment)) continue;
    w.BeginObject();
    w.Key("type").String("Feature");
    w.Key("geometry").BeginObject();
    w.Key("type").String("Point");
    w.Key("coordinates");
    GeoJsonCoord(w, network.LatLngOnSegment(static_cast<SegmentId>(p.segment),
                                            p.ratio));
    w.EndObject();
    w.Key("properties").BeginObject();
    w.Key("layer").String("recovered");
    w.Key("index").Int(static_cast<long long>(i));
    w.Key("segment").Int(p.segment);
    w.Key("ratio").Number(p.ratio);
    w.Key("t").Number(p.t);
    w.EndObject();
    w.EndObject();
  }

  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string SummarizeRecords(
    const std::vector<obs::RequestRecord>& records) {
  std::ostringstream out;
  out << "records: " << records.size() << "\n";
  if (records.empty()) return out.str();

  std::map<std::string, int> by_kind;
  std::map<std::string, int> by_method;
  std::map<std::string, int> by_outcome;
  std::map<std::string, int> by_reason;
  std::vector<std::int64_t> wall;
  // Per city: (points with candidates, total candidates, max set size).
  std::map<std::string, std::array<std::int64_t, 3>> cand;
  for (const obs::RequestRecord& r : records) {
    ++by_kind[r.kind];
    ++by_method[r.method.empty() ? "(none)" : r.method];
    ++by_outcome[r.outcome.empty() ? "(n/a)" : r.outcome];
    ++by_reason[r.reason.empty() ? "(n/a)" : r.reason];
    wall.push_back(r.wall_us);
    auto& c = cand[r.city.empty() ? "(none)" : r.city];
    for (const auto& per_point : r.candidates) {
      ++c[0];
      c[1] += static_cast<std::int64_t>(per_point.size());
      c[2] = std::max(c[2], static_cast<std::int64_t>(per_point.size()));
    }
  }

  auto print_map = [&out](const char* title,
                          const std::map<std::string, int>& m) {
    out << title << ":";
    for (const auto& [key, count] : m) out << " " << key << "=" << count;
    out << "\n";
  };
  print_map("kinds", by_kind);
  print_map("methods", by_method);
  print_map("outcomes", by_outcome);
  print_map("retained_for", by_reason);

  std::sort(wall.begin(), wall.end());
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "latency_us: p50=%.0f p90=%.0f p99=%.0f max=%lld\n",
                Percentile(wall, 0.5), Percentile(wall, 0.9),
                Percentile(wall, 0.99),
                static_cast<long long>(wall.back()));
  out << buf;

  for (const auto& [city, c] : cand) {
    if (c[0] == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "candidates[%s]: points=%lld mean=%.2f max=%lld\n",
                  city.c_str(), static_cast<long long>(c[0]),
                  static_cast<double>(c[1]) / static_cast<double>(c[0]),
                  static_cast<long long>(c[2]));
    out << buf;
  }
  return out.str();
}

std::string DescribeRecord(const obs::RequestRecord& record) {
  std::ostringstream out;
  out << "id: " << record.id << "\n";
  if (!record.trace_id.empty()) out << "trace_id: " << record.trace_id << "\n";
  out << "kind: " << record.kind << "  method: " << record.method
      << "  city: " << record.city << "\n";
  out << "seed: " << record.seed << "  epsilon: " << record.epsilon
      << "  dataset_trajectories: " << record.dataset_trajectories << "\n";
  out << "wall_us: " << record.wall_us;
  if (record.quality >= 0.0) out << "  quality: " << record.quality;
  if (!record.outcome.empty()) out << "  outcome: " << record.outcome;
  if (!record.reason.empty()) out << "  retained_for: " << record.reason;
  out << "\n";
  if (!record.train_state.empty()) {
    out << "train_state:";
    for (const std::string& s : record.train_state) out << " " << s;
    out << "\n";
  }
  if (!record.stages.empty()) {
    out << "stages:";
    for (const obs::RecordStage& s : record.stages) {
      out << " " << s.name << "=" << s.us << "us";
    }
    out << "\n";
  }
  if (!record.error.empty()) out << "error: " << record.error << "\n";

  out << "points: " << record.input.size() << "\n";
  constexpr size_t kMaxPoints = 200;
  for (size_t i = 0; i < record.input.size() && i < kMaxPoints; ++i) {
    const obs::RecordGpsPoint& p = record.input[i];
    char buf[200];
    std::snprintf(buf, sizeof(buf), "  [%3zu] (%.6f, %.6f) t=%.1f", i, p.lat,
                  p.lng, p.t);
    out << buf;
    if (i < record.candidates.size()) {
      out << "  candidates=" << record.candidates[i].size();
      if (!record.candidates[i].empty()) {
        const obs::RecordCandidate& c = record.candidates[i][0];
        std::snprintf(buf, sizeof(buf), " nearest=(%lld, %.1fm)",
                      static_cast<long long>(c.segment), c.distance);
        out << buf;
      }
    }
    if (i < record.matched.size()) {
      out << "  -> seg " << record.matched[i].segment;
    }
    if (i < record.scores.size()) {
      std::snprintf(buf, sizeof(buf), " score=%.4f", record.scores[i]);
      out << buf;
    }
    out << "\n";
  }
  if (record.input.size() > kMaxPoints) {
    out << "  ... (" << record.input.size() - kMaxPoints << " more)\n";
  }

  if (!record.route.empty()) {
    out << "route: " << record.route.size() << " segments";
    if (record.route_sections > 0) {
      out << " in " << record.route_sections << " section(s)";
    }
    out << "\n";
  }
  if (!record.recovered.empty()) {
    out << "recovered: " << record.recovered.size() << " points";
    if (record.degraded_points > 0) {
      out << " (" << record.degraded_points << " degraded)";
    }
    out << "\n";
  }
  if (!record.events.empty()) {
    out << "events:\n";
    for (const std::string& e : record.events) out << "  " << e << "\n";
  }
  return out.str();
}

}  // namespace trmma
