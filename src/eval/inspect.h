#ifndef TRMMA_EVAL_INSPECT_H_
#define TRMMA_EVAL_INSPECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/experiment.h"
#include "graph/road_network.h"
#include "obs/request_record.h"

namespace trmma {

/// Offline side of the flight recorder: loading persisted records,
/// rendering them (text / GeoJSON), and replaying them against live
/// methods. Shared by the trmma_inspect CLI and the bench replay smoke.

/// Loads every record of a JSONL file written by FlightRecorder::Flush.
/// A malformed line is an error (records are a contract, not best-effort).
StatusOr<std::vector<obs::RequestRecord>> LoadRecords(const std::string& path);

/// Loads one record by id from a JSONL file.
StatusOr<obs::RequestRecord> FindRecord(const std::string& path,
                                        const std::string& id);

/// Outcome of replaying one record: per-position comparison of the replayed
/// matched route / recovered trajectory against the recorded one.
struct ReplayDiff {
  int compared = 0;    ///< positions compared
  int mismatches = 0;  ///< positions that differ (plus any length delta)
  std::vector<std::string> details;  ///< human-readable, capped

  bool clean() const { return mismatches == 0; }
};

/// Re-runs `record` through the matching method instance of `stack` (found
/// by RequestRecord::method) from the captured input, and diffs routes
/// segment-by-segment and recovered points segment+offset-wise. The stack
/// must already be in the recorded training state — this is the in-process
/// primitive used right after a bench run, and by ReplayRecordRebuilt after
/// it reconstructs that state.
StatusOr<ReplayDiff> ReplayRecord(ExperimentStack& stack,
                                  const obs::RequestRecord& record);

/// Bench helper: replays every record currently retained by the global
/// recorder whose city matches `stack`, reports mismatches to the recorder
/// (so they land in the BENCH json), and returns the mismatch total.
std::int64_t ReplayRetainedRecords(ExperimentStack& stack);

/// Full cross-process replay: rebuilds the dataset and stack named by the
/// record (city, dataset size, seed), re-applies the recorded training log,
/// then replays. Deterministic generation + seeded training makes this
/// bit-exact with the original run.
StatusOr<ReplayDiff> ReplayRecordRebuilt(const obs::RequestRecord& record);

/// GeoJSON FeatureCollection of a record: GPS points, candidate segments,
/// the matched route, and recovered points, each layer tagged via a
/// "layer" property. Coordinates are [lng, lat] per RFC 7946.
std::string RecordToGeoJson(const RoadNetwork& network,
                            const obs::RequestRecord& record);

/// Aggregate text summary of a record set: outcome/kind/method tallies,
/// latency percentiles, and the candidate-set-size distribution per city.
std::string SummarizeRecords(const std::vector<obs::RequestRecord>& records);

/// Human-readable decision trace of one record (`trmma_inspect show`).
std::string DescribeRecord(const obs::RequestRecord& record);

}  // namespace trmma

#endif  // TRMMA_EVAL_INSPECT_H_
