#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mm/route_stitch.h"
#include "traj/sparsify.h"

namespace trmma {
namespace {

/// Dataset view containing only a fraction of the training split (used by
/// the paper's Fig. 8 robustness experiment). Holds copies of the selected
/// samples; the network pointer stays null because the models carry their
/// own network references.
Dataset SubsampleTraining(const Dataset& dataset, double fraction,
                          uint64_t seed) {
  Dataset sub;
  sub.name = dataset.name;
  sub.epsilon_s = dataset.epsilon_s;
  sub.gamma = dataset.gamma;
  std::vector<int> pool = dataset.train_idx;
  Rng rng(seed);
  rng.Shuffle(pool);
  const int keep = std::max<int>(
      1, static_cast<int>(pool.size() * std::clamp(fraction, 0.0, 1.0)));
  for (int i = 0; i < keep; ++i) {
    sub.samples.push_back(dataset.samples[pool[i]]);
    sub.train_idx.push_back(i);
  }
  return sub;
}

template <typename TrainFn>
TrainStats TimedEpochs(int epochs, TrainFn&& train_one_epoch) {
  TrainStats out;
  Stopwatch watch;
  for (int e = 0; e < epochs; ++e) {
    out.final_loss = train_one_epoch();
  }
  out.seconds_per_epoch = watch.ElapsedSeconds() / std::max(epochs, 1);
  return out;
}

}  // namespace

ExperimentStack BuildStack(const Dataset& dataset, const StackConfig& config) {
  TRMMA_CHECK(dataset.network != nullptr);
  const RoadNetwork& g = *dataset.network;

  ExperimentStack stack;
  stack.dataset = &dataset;
  stack.config = config;
  stack.config.node2vec.dim = config.mma.d0;  // table feeds MMA's W^C

  stack.index = std::make_unique<SegmentRTree>(g);
  stack.engine = std::make_unique<ShortestPathEngine>(g);
  stack.ubodt = std::make_unique<Ubodt>(g, config.ubodt_delta_m);
  stack.stats = std::make_unique<TransitionStats>(g);
  for (int idx : dataset.train_idx) {
    stack.stats->AddRoute(dataset.samples[idx].route);
  }
  stack.planner = std::make_unique<DaRoutePlanner>(g, *stack.stats);

  Rng n2v_rng(config.seed);
  stack.node2vec_table = TrainNode2Vec(g, stack.config.node2vec, n2v_rng);

  stack.nearest = std::make_unique<NearestMatcher>(g, *stack.index);
  stack.hmm = std::make_unique<HmmMatcher>(g, *stack.index, config.hmm);
  stack.fmm =
      std::make_unique<FmmMatcher>(g, *stack.index, *stack.ubodt, config.hmm);
  stack.lhmm =
      std::make_unique<LhmmMatcher>(g, *stack.index, *stack.ubodt, config.hmm);
  stack.mma = std::make_unique<MmaMatcher>(g, *stack.index, config.mma);
  stack.mma->LoadPretrainedSegmentEmbeddings(stack.node2vec_table);
  stack.deepmm = std::make_unique<DeepMmLiteMatcher>(g, config.deepmm);

  stack.trmma = std::make_unique<TrmmaRecovery>(
      g, stack.mma.get(), stack.planner.get(), stack.engine.get(),
      config.trmma, "TRMMA");
  stack.linear = std::make_unique<LinearRecovery>(
      g, stack.fmm.get(), stack.planner.get(), stack.engine.get(), "Linear");
  stack.mma_linear = std::make_unique<LinearRecovery>(
      g, stack.mma.get(), stack.planner.get(), stack.engine.get(),
      "MMA+linear");
  stack.nearest_linear = std::make_unique<LinearRecovery>(
      g, stack.nearest.get(), stack.planner.get(), stack.engine.get(),
      "Nearest+linear");

  Seq2SeqConfig mtr = config.seq2seq;
  mtr.transformer_encoder = false;
  stack.mtrajrec = std::make_unique<Seq2SeqRecovery>(g, *stack.index, mtr,
                                                     "MTrajRec");
  Seq2SeqConfig trf = config.seq2seq;
  trf.transformer_encoder = true;
  trf.seed = config.seq2seq.seed + 1;
  stack.trajformer = std::make_unique<Seq2SeqRecovery>(g, *stack.index, trf,
                                                       "TrajCL+Dec");
  return stack;
}

TrainStats TrainMma(ExperimentStack& stack, int epochs,
                    double train_fraction) {
  Rng rng(stack.config.seed + 1);
  if (train_fraction >= 1.0) {
    return TimedEpochs(epochs, [&] {
      return stack.mma->TrainEpoch(*stack.dataset, rng);
    });
  }
  Dataset sub =
      SubsampleTraining(*stack.dataset, train_fraction, stack.config.seed);
  return TimedEpochs(epochs, [&] { return stack.mma->TrainEpoch(sub, rng); });
}

TrainStats TrainLhmm(ExperimentStack& stack, int epochs) {
  Rng rng(stack.config.seed + 2);
  TrainStats out;
  Stopwatch watch;
  out.final_loss = stack.lhmm->Train(*stack.dataset, epochs, rng);
  out.seconds_per_epoch = watch.ElapsedSeconds() / std::max(epochs, 1);
  return out;
}

TrainStats TrainDeepMm(ExperimentStack& stack, int epochs) {
  Rng rng(stack.config.seed + 3);
  return TimedEpochs(epochs, [&] {
    return stack.deepmm->TrainEpoch(*stack.dataset, rng);
  });
}

TrainStats TrainTrmma(ExperimentStack& stack, int epochs,
                      double train_fraction) {
  Rng rng(stack.config.seed + 4);
  if (train_fraction >= 1.0) {
    return TimedEpochs(epochs, [&] {
      return stack.trmma->TrainEpoch(*stack.dataset, rng);
    });
  }
  Dataset sub =
      SubsampleTraining(*stack.dataset, train_fraction, stack.config.seed);
  return TimedEpochs(epochs,
                     [&] { return stack.trmma->TrainEpoch(sub, rng); });
}

TrainStats TrainSeq2Seq(ExperimentStack& stack, Seq2SeqRecovery& model,
                        int epochs, double train_fraction) {
  Rng rng(stack.config.seed + 5);
  if (train_fraction >= 1.0) {
    return TimedEpochs(epochs,
                       [&] { return model.TrainEpoch(*stack.dataset, rng); });
  }
  Dataset sub =
      SubsampleTraining(*stack.dataset, train_fraction, stack.config.seed);
  return TimedEpochs(epochs, [&] { return model.TrainEpoch(sub, rng); });
}

MapMatchEval EvaluateMapMatching(ExperimentStack& stack, MapMatcher& matcher,
                                 int max_trajectories) {
  const Dataset& dataset = *stack.dataset;
  MapMatchEval out;
  int count = 0;
  double elapsed = 0.0;
  for (int idx : dataset.test_idx) {
    if (max_trajectories > 0 && count >= max_trajectories) break;
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2) continue;

    Stopwatch watch;
    const std::vector<SegmentId> segs = matcher.MatchPoints(sample.sparse);
    const Route route = StitchRoute(*dataset.network, *stack.planner,
                                    *stack.engine, segs);
    elapsed += watch.ElapsedSeconds();

    out.metrics += SegmentSetMetrics(route, sample.route);
    ++count;
  }
  if (count > 0) {
    out.metrics = out.metrics / count;
    out.seconds_per_1000 = elapsed / count * 1000.0;
  }
  return out;
}

RecoveryEval EvaluateRecovery(ExperimentStack& stack, RecoveryMethod& method,
                              int max_trajectories) {
  const Dataset& dataset = *stack.dataset;
  RecoveryEval out;
  int count = 0;
  double elapsed = 0.0;
  double accuracy = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  for (int idx : dataset.test_idx) {
    if (max_trajectories > 0 && count >= max_trajectories) break;
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2) continue;

    Stopwatch watch;
    const MatchedTrajectory pred =
        method.Recover(sample.sparse, dataset.epsilon_s);
    elapsed += watch.ElapsedSeconds();

    std::vector<SegmentId> pred_segs(pred.size());
    for (size_t i = 0; i < pred.size(); ++i) pred_segs[i] = pred[i].segment;
    std::vector<SegmentId> truth_segs(sample.truth.size());
    for (size_t i = 0; i < sample.truth.size(); ++i) {
      truth_segs[i] = sample.truth[i].segment;
    }
    out.metrics += SegmentSetMetrics(pred_segs, truth_segs);
    accuracy += PointwiseAccuracy(pred, sample.truth);
    const DistanceErrors err = RecoveryDistanceErrors(
        *dataset.network, *stack.engine, pred, sample.truth);
    mae += err.mae;
    rmse += err.rmse;
    ++count;
  }
  if (count > 0) {
    out.metrics = out.metrics / count;
    out.accuracy = accuracy / count;
    out.mae_m = mae / count;
    out.rmse_m = rmse / count;
    out.seconds_per_1000 = elapsed / count * 1000.0;
  }
  return out;
}

void ResparsifyDataset(Dataset& dataset, double gamma, uint64_t seed) {
  Rng rng(seed);
  dataset.gamma = gamma;
  for (TrajectorySample& sample : dataset.samples) {
    SparsifySample(sample, gamma, rng);
  }
}

void PrintRow(const std::string& name, const std::vector<double>& values,
              int name_width, int col_width, int precision) {
  std::printf("%-*s", name_width, name.c_str());
  for (double v : values) {
    std::printf("%*.*f", col_width, precision, v);
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintHeader(const std::string& name,
                 const std::vector<std::string>& columns, int name_width,
                 int col_width) {
  std::printf("%-*s", name_width, name.c_str());
  for (const std::string& c : columns) {
    std::printf("%*s", col_width, c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace trmma
