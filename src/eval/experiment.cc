#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mm/route_stitch.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "traj/sparsify.h"

namespace trmma {
namespace {

/// Dataset view containing only a fraction of the training split (used by
/// the paper's Fig. 8 robustness experiment). Holds copies of the selected
/// samples; the network pointer stays null because the models carry their
/// own network references.
Dataset SubsampleTraining(const Dataset& dataset, double fraction,
                          uint64_t seed) {
  Dataset sub;
  sub.name = dataset.name;
  sub.epsilon_s = dataset.epsilon_s;
  sub.gamma = dataset.gamma;
  std::vector<int> pool = dataset.train_idx;
  Rng rng(seed);
  rng.Shuffle(pool);
  const int keep = std::max<int>(
      1, static_cast<int>(pool.size() * std::clamp(fraction, 0.0, 1.0)));
  for (int i = 0; i < keep; ++i) {
    sub.samples.push_back(dataset.samples[pool[i]]);
    sub.train_idx.push_back(i);
  }
  return sub;
}

/// Runs `epochs` epochs of `train_one_epoch`, timing each with the
/// stopwatch's lap counter and publishing the training telemetry every
/// perf question starts from: per-epoch loss (gauge + debug log),
/// throughput in examples/sec, and the epoch-time histogram. `method`
/// labels the metrics; `examples` is the per-epoch sample count.
template <typename TrainFn>
TrainStats TimedEpochs(const char* method, int examples, int epochs,
                       TrainFn&& train_one_epoch) {
  obs::ScopedPhase phase(std::string("train.") + method);
  // Feature observations made while training land on the "train" side of
  // the drift histograms (obs/quality.h).
  obs::QualityPhaseScope quality_phase(obs::QualityPhase::kTrain);
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  const obs::Labels labels = {{"method", method}};
  obs::Histogram* epoch_ms = reg.GetHistogram(
      "train.epoch_ms", labels, obs::Histogram::ExponentialBounds(1, 2, 24));

  TrainStats out;
  Stopwatch watch;
  for (int e = 0; e < epochs; ++e) {
    out.final_loss = train_one_epoch();
    const double lap_ms = watch.LapMillis();
    epoch_ms->Observe(lap_ms);
    reg.GetGauge("train.loss", labels)->Set(out.final_loss);
    if (lap_ms > 0.0) {
      reg.GetGauge("train.examples_per_sec", labels)
          ->Set(examples / (lap_ms / 1e3));
    }
    reg.GetCounter("train.epochs", labels)->Increment();
    TRMMA_LOG(Debug) << method << " epoch " << e + 1 << "/" << epochs
                     << " loss=" << out.final_loss << " (" << lap_ms
                     << " ms)";
  }
  out.seconds_per_epoch = watch.ElapsedSeconds() / std::max(epochs, 1);
  return out;
}

}  // namespace

ExperimentStack BuildStack(const Dataset& dataset, const StackConfig& config) {
  TRMMA_CHECK(dataset.network != nullptr);
  const RoadNetwork& g = *dataset.network;
  obs::ScopedPhase phase("build_stack." + dataset.name);

  // Config fingerprint for the run report: enough to tell two runs apart.
  obs::RunReport& report = obs::RunReport::Global();
  report.SetFingerprintNumber("config.seed", static_cast<double>(config.seed));
  report.SetFingerprintNumber("config.ubodt_delta_m", config.ubodt_delta_m);
  report.SetFingerprintNumber("config.mma.kc", config.mma.kc);
  report.SetFingerprintNumber("config.mma.d0", config.mma.d0);
  report.SetFingerprintNumber("config.trmma.dh", config.trmma.dh);

  ExperimentStack stack;
  stack.dataset = &dataset;
  stack.config = config;
  stack.config.node2vec.dim = config.mma.d0;  // table feeds MMA's W^C

  stack.index = std::make_unique<SegmentRTree>(g);
  stack.engine = std::make_unique<ShortestPathEngine>(g);
  stack.ubodt = std::make_unique<Ubodt>(g, config.ubodt_delta_m);
  stack.stats = std::make_unique<TransitionStats>(g);
  for (int idx : dataset.train_idx) {
    stack.stats->AddRoute(dataset.samples[idx].route);
  }
  stack.planner = std::make_unique<DaRoutePlanner>(g, *stack.stats);

  Rng n2v_rng(config.seed);
  stack.node2vec_table = TrainNode2Vec(g, stack.config.node2vec, n2v_rng);

  stack.nearest = std::make_unique<NearestMatcher>(g, *stack.index);
  stack.hmm = std::make_unique<HmmMatcher>(g, *stack.index, config.hmm);
  stack.fmm =
      std::make_unique<FmmMatcher>(g, *stack.index, *stack.ubodt, config.hmm);
  stack.lhmm =
      std::make_unique<LhmmMatcher>(g, *stack.index, *stack.ubodt, config.hmm);
  stack.mma = std::make_unique<MmaMatcher>(g, *stack.index, config.mma);
  stack.mma->LoadPretrainedSegmentEmbeddings(stack.node2vec_table);
  stack.deepmm = std::make_unique<DeepMmLiteMatcher>(g, config.deepmm);

  stack.trmma = std::make_unique<TrmmaRecovery>(
      g, stack.mma.get(), stack.planner.get(), stack.engine.get(),
      config.trmma, "TRMMA");
  stack.linear = std::make_unique<LinearRecovery>(
      g, stack.fmm.get(), stack.planner.get(), stack.engine.get(), "Linear");
  stack.mma_linear = std::make_unique<LinearRecovery>(
      g, stack.mma.get(), stack.planner.get(), stack.engine.get(),
      "MMA+linear");
  stack.nearest_linear = std::make_unique<LinearRecovery>(
      g, stack.nearest.get(), stack.planner.get(), stack.engine.get(),
      "Nearest+linear");

  Seq2SeqConfig mtr = config.seq2seq;
  mtr.transformer_encoder = false;
  stack.mtrajrec = std::make_unique<Seq2SeqRecovery>(g, *stack.index, mtr,
                                                     "MTrajRec");
  Seq2SeqConfig trf = config.seq2seq;
  trf.transformer_encoder = true;
  trf.seed = config.seq2seq.seed + 1;
  stack.trajformer = std::make_unique<Seq2SeqRecovery>(g, *stack.index, trf,
                                                       "TrajCL+Dec");
  return stack;
}

TrainStats TrainMma(ExperimentStack& stack, int epochs,
                    double train_fraction) {
  stack.training_log.push_back({"mma", epochs, train_fraction});
  Rng rng(stack.config.seed + 1);
  if (train_fraction >= 1.0) {
    return TimedEpochs("mma", static_cast<int>(stack.dataset->train_idx.size()),
                       epochs, [&] {
                         return stack.mma->TrainEpoch(*stack.dataset, rng);
                       });
  }
  Dataset sub =
      SubsampleTraining(*stack.dataset, train_fraction, stack.config.seed);
  return TimedEpochs("mma", static_cast<int>(sub.train_idx.size()), epochs,
                     [&] { return stack.mma->TrainEpoch(sub, rng); });
}

TrainStats TrainLhmm(ExperimentStack& stack, int epochs) {
  obs::ScopedPhase phase("train.lhmm");
  obs::QualityPhaseScope quality_phase(obs::QualityPhase::kTrain);
  stack.training_log.push_back({"lhmm", epochs, 1.0});
  Rng rng(stack.config.seed + 2);
  TrainStats out;
  Stopwatch watch;
  out.final_loss = stack.lhmm->Train(*stack.dataset, epochs, rng);
  out.seconds_per_epoch = watch.ElapsedSeconds() / std::max(epochs, 1);
  obs::MetricRegistry::Global()
      .GetGauge("train.loss", {{"method", "lhmm"}})
      ->Set(out.final_loss);
  return out;
}

TrainStats TrainDeepMm(ExperimentStack& stack, int epochs) {
  stack.training_log.push_back({"deepmm", epochs, 1.0});
  Rng rng(stack.config.seed + 3);
  return TimedEpochs("deepmm",
                     static_cast<int>(stack.dataset->train_idx.size()), epochs,
                     [&] { return stack.deepmm->TrainEpoch(*stack.dataset, rng); });
}

TrainStats TrainTrmma(ExperimentStack& stack, int epochs,
                      double train_fraction) {
  stack.training_log.push_back({"trmma", epochs, train_fraction});
  Rng rng(stack.config.seed + 4);
  if (train_fraction >= 1.0) {
    return TimedEpochs("trmma",
                       static_cast<int>(stack.dataset->train_idx.size()),
                       epochs, [&] {
                         return stack.trmma->TrainEpoch(*stack.dataset, rng);
                       });
  }
  Dataset sub =
      SubsampleTraining(*stack.dataset, train_fraction, stack.config.seed);
  return TimedEpochs("trmma", static_cast<int>(sub.train_idx.size()), epochs,
                     [&] { return stack.trmma->TrainEpoch(sub, rng); });
}

TrainStats TrainSeq2Seq(ExperimentStack& stack, Seq2SeqRecovery& model,
                        int epochs, double train_fraction) {
  const std::string method = model.name();
  stack.training_log.push_back({method, epochs, train_fraction});
  Rng rng(stack.config.seed + 5);
  if (train_fraction >= 1.0) {
    return TimedEpochs(method.c_str(),
                       static_cast<int>(stack.dataset->train_idx.size()),
                       epochs,
                       [&] { return model.TrainEpoch(*stack.dataset, rng); });
  }
  Dataset sub =
      SubsampleTraining(*stack.dataset, train_fraction, stack.config.seed);
  return TimedEpochs(method.c_str(), static_cast<int>(sub.train_idx.size()),
                     epochs, [&] { return model.TrainEpoch(sub, rng); });
}

std::vector<std::string> FormatTrainingLog(const ExperimentStack& stack) {
  std::vector<std::string> out;
  out.reserve(stack.training_log.size());
  char buf[96];
  for (const TrainLogEntry& e : stack.training_log) {
    std::snprintf(buf, sizeof(buf), "%s:%d:%g", e.key.c_str(), e.epochs,
                  e.fraction);
    out.push_back(buf);
  }
  return out;
}

Status ApplyTrainingLog(ExperimentStack& stack,
                        const std::vector<std::string>& log) {
  for (const std::string& entry : log) {
    const size_t c1 = entry.rfind(':');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : entry.rfind(':', c1 - 1);
    if (c2 == std::string::npos || c2 == 0) {
      return Status::InvalidArgument("malformed train-state entry: " + entry);
    }
    const std::string key = entry.substr(0, c2);
    const int epochs = std::atoi(entry.substr(c2 + 1, c1 - c2 - 1).c_str());
    const double fraction = std::atof(entry.substr(c1 + 1).c_str());
    if (key == "mma") {
      TrainMma(stack, epochs, fraction);
    } else if (key == "lhmm") {
      TrainLhmm(stack, epochs);
    } else if (key == "deepmm") {
      TrainDeepMm(stack, epochs);
    } else if (key == "trmma") {
      TrainTrmma(stack, epochs, fraction);
    } else if (stack.mtrajrec != nullptr && key == stack.mtrajrec->name()) {
      TrainSeq2Seq(stack, *stack.mtrajrec, epochs, fraction);
    } else if (stack.trajformer != nullptr &&
               key == stack.trajformer->name()) {
      TrainSeq2Seq(stack, *stack.trajformer, epochs, fraction);
    } else {
      return Status::InvalidArgument("unknown train-state key: " + key);
    }
  }
  return Status::OK();
}

namespace {

/// Fills the reproduction-context fields shared by every eval request,
/// including the per-input-point ground-truth segments (the eval harness is
/// the one place the truth alignment is known — sparse point i is
/// raw/truth point sparse_indices[i]).
void FillRequestContext(obs::RequestRecord* rec, const ExperimentStack& stack,
                        const std::string& method,
                        const TrajectorySample& sample) {
  const Dataset& dataset = *stack.dataset;
  const Trajectory& input = sample.sparse;
  rec->method = method;
  rec->city = dataset.name;
  rec->seed = static_cast<std::int64_t>(stack.config.seed);
  rec->epsilon = static_cast<std::int64_t>(dataset.epsilon_s);
  rec->gamma = dataset.gamma;
  rec->dataset_trajectories =
      static_cast<std::int64_t>(dataset.samples.size());
  rec->train_state = FormatTrainingLog(stack);
  rec->input.reserve(input.size());
  for (const GpsPoint& p : input.points) {
    rec->input.push_back({p.pos.lat, p.pos.lng, p.t});
  }
  rec->truth_segments.reserve(input.size());
  for (int i = 0; i < input.size(); ++i) {
    std::int64_t truth = -1;
    if (i < static_cast<int>(sample.sparse_indices.size())) {
      const int raw_idx = sample.sparse_indices[i];
      if (raw_idx >= 0 && raw_idx < static_cast<int>(sample.truth.size())) {
        truth = sample.truth[raw_idx].segment;
      }
    }
    rec->truth_segments.push_back(truth);
  }
}

}  // namespace

MapMatchEval EvaluateMapMatching(ExperimentStack& stack, MapMatcher& matcher,
                                 int max_trajectories) {
  obs::ScopedPhase phase("eval.mm." + matcher.name());
  const Dataset& dataset = *stack.dataset;
  MapMatchEval out;
  int count = 0;
  double elapsed = 0.0;
  for (int idx : dataset.test_idx) {
    if (max_trajectories > 0 && count >= max_trajectories) break;
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2) continue;

    obs::RequestScope request("mm");
    if (obs::RequestRecord* rec = request.record()) {
      FillRequestContext(rec, stack, matcher.name(), sample);
    }
    Stopwatch watch;
    const std::vector<SegmentId> segs = matcher.MatchPoints(sample.sparse);
    const Route route = StitchRoute(*dataset.network, *stack.planner,
                                    *stack.engine, segs);
    elapsed += watch.ElapsedSeconds();

    const SetMetrics metrics = SegmentSetMetrics(route, sample.route);
    out.metrics += metrics;
    if (obs::RequestRecord* rec = request.record()) {
      // The matcher may have captured matched points itself (MMA records
      // chosen candidates with real offsets); only backfill when it didn't.
      if (rec->matched.empty()) {
        rec->matched.reserve(segs.size());
        for (size_t i = 0; i < segs.size(); ++i) {
          rec->matched.push_back(
              {segs[i], 0.0, sample.sparse.points[i].t});
        }
      }
      rec->route.assign(route.begin(), route.end());
      rec->quality = metrics.f1;
    }
    ++count;
  }
  if (count > 0) {
    out.metrics = out.metrics / count;
    out.seconds_per_1000 = elapsed / count * 1000.0;
    obs::MetricRegistry::Global()
        .GetGauge("eval.mm.s_per_1000", {{"method", matcher.name()}})
        ->Set(out.seconds_per_1000);
  }
  return out;
}

RecoveryEval EvaluateRecovery(ExperimentStack& stack, RecoveryMethod& method,
                              int max_trajectories) {
  obs::ScopedPhase phase("eval.recovery." + method.name());
  const Dataset& dataset = *stack.dataset;
  RecoveryEval out;
  int count = 0;
  double elapsed = 0.0;
  double accuracy = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  for (int idx : dataset.test_idx) {
    if (max_trajectories > 0 && count >= max_trajectories) break;
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2) continue;

    obs::RequestScope request("recovery");
    if (obs::RequestRecord* rec = request.record()) {
      FillRequestContext(rec, stack, method.name(), sample);
    }
    Stopwatch watch;
    const MatchedTrajectory pred =
        method.Recover(sample.sparse, dataset.epsilon_s);
    elapsed += watch.ElapsedSeconds();

    std::vector<SegmentId> pred_segs(pred.size());
    for (size_t i = 0; i < pred.size(); ++i) pred_segs[i] = pred[i].segment;
    std::vector<SegmentId> truth_segs(sample.truth.size());
    for (size_t i = 0; i < sample.truth.size(); ++i) {
      truth_segs[i] = sample.truth[i].segment;
    }
    out.metrics += SegmentSetMetrics(pred_segs, truth_segs);
    const double point_acc = PointwiseAccuracy(pred, sample.truth);
    accuracy += point_acc;
    if (obs::RequestRecord* rec = request.record()) {
      rec->recovered.reserve(pred.size());
      for (const MatchedPoint& p : pred) {
        rec->recovered.push_back({p.segment, p.ratio, p.t});
      }
      rec->quality = point_acc;
    }
    const DistanceErrors err = RecoveryDistanceErrors(
        *dataset.network, *stack.engine, pred, sample.truth);
    mae += err.mae;
    rmse += err.rmse;
    ++count;
  }
  if (count > 0) {
    out.metrics = out.metrics / count;
    out.accuracy = accuracy / count;
    out.mae_m = mae / count;
    out.rmse_m = rmse / count;
    out.seconds_per_1000 = elapsed / count * 1000.0;
    obs::MetricRegistry::Global()
        .GetGauge("eval.recovery.s_per_1000", {{"method", method.name()}})
        ->Set(out.seconds_per_1000);
  }
  return out;
}

void ResparsifyDataset(Dataset& dataset, double gamma, uint64_t seed) {
  Rng rng(seed);
  dataset.gamma = gamma;
  for (TrajectorySample& sample : dataset.samples) {
    SparsifySample(sample, gamma, rng);
  }
}

void PrintRow(const std::string& name, const std::vector<double>& values,
              int name_width, int col_width, int precision) {
  std::printf("%-*s", name_width, name.c_str());
  for (double v : values) {
    std::printf("%*.*f", col_width, precision, v);
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintHeader(const std::string& name,
                 const std::vector<std::string>& columns, int name_width,
                 int col_width) {
  std::printf("%-*s", name_width, name.c_str());
  for (const std::string& c : columns) {
    std::printf("%*s", col_width, c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace trmma
