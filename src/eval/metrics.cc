#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace trmma {

SetMetrics& SetMetrics::operator+=(const SetMetrics& o) {
  precision += o.precision;
  recall += o.recall;
  f1 += o.f1;
  jaccard += o.jaccard;
  return *this;
}

SetMetrics SetMetrics::operator/(double n) const {
  return {precision / n, recall / n, f1 / n, jaccard / n};
}

SetMetrics SegmentSetMetrics(const std::vector<SegmentId>& pred,
                             const std::vector<SegmentId>& truth) {
  std::unordered_set<SegmentId> pred_set(pred.begin(), pred.end());
  std::unordered_set<SegmentId> truth_set(truth.begin(), truth.end());
  size_t inter = 0;
  for (SegmentId s : pred_set) inter += truth_set.count(s);
  const size_t uni = pred_set.size() + truth_set.size() - inter;

  SetMetrics m;
  m.precision = pred_set.empty() ? 0.0
                                 : static_cast<double>(inter) / pred_set.size();
  m.recall = truth_set.empty()
                 ? 0.0
                 : static_cast<double>(inter) / truth_set.size();
  m.f1 = (m.precision + m.recall) > 0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  m.jaccard = uni > 0 ? static_cast<double>(inter) / uni : 0.0;
  return m;
}

double PointwiseAccuracy(const MatchedTrajectory& pred,
                         const MatchedTrajectory& truth) {
  if (truth.empty()) return 0.0;
  const size_t n = std::min(pred.size(), truth.size());
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    if (pred[i].segment == truth[i].segment) ++correct;
  }
  return static_cast<double>(correct) / truth.size();
}

DistanceErrors RecoveryDistanceErrors(const RoadNetwork& network,
                                      ShortestPathEngine& engine,
                                      const MatchedTrajectory& pred,
                                      const MatchedTrajectory& truth,
                                      double cap_m) {
  DistanceErrors out;
  if (truth.empty()) return out;
  const size_t n = std::min(pred.size(), truth.size());
  double sum = 0.0;
  double sum2 = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = cap_m;  // missing prediction counts as the cap
    if (i < n) {
      const MatchedPoint& a = pred[i];
      const MatchedPoint& b = truth[i];
      const double forward =
          engine.PointToPointDistance(a.segment, a.ratio, b.segment, b.ratio,
                                      cap_m);
      const double backward =
          engine.PointToPointDistance(b.segment, b.ratio, a.segment, a.ratio,
                                      cap_m);
      d = std::min({forward, backward, cap_m});
    }
    sum += d;
    sum2 += d * d;
  }
  out.mae = sum / truth.size();
  out.rmse = std::sqrt(sum2 / truth.size());
  return out;
}

}  // namespace trmma
