#include "eval/report_html.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace trmma {

namespace {

void WriteValueRec(obs::JsonWriter& w, const obs::JsonValue& v) {
  switch (v.type()) {
    case obs::JsonValue::Type::kNull:
      w.Null();
      break;
    case obs::JsonValue::Type::kBool:
      w.Bool(v.AsBool());
      break;
    case obs::JsonValue::Type::kNumber:
      w.Number(v.AsNumber());
      break;
    case obs::JsonValue::Type::kString:
      w.String(v.AsString());
      break;
    case obs::JsonValue::Type::kArray:
      w.BeginArray();
      for (const obs::JsonValue& item : v.AsArray()) WriteValueRec(w, item);
      w.EndArray();
      break;
    case obs::JsonValue::Type::kObject:
      w.BeginObject();
      for (const auto& [key, member] : v.AsObject()) {
        w.Key(key);
        WriteValueRec(w, member);
      }
      w.EndObject();
      break;
  }
}

}  // namespace

std::string WriteJsonValue(const obs::JsonValue& value) {
  obs::JsonWriter w;
  WriteValueRec(w, value);
  return w.TakeString();
}

StatusOr<BenchRunSummary> LoadBenchReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  StatusOr<obs::JsonValue> parsed = obs::ParseJson(buf.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().ToString());
  }
  const obs::JsonValue& doc = *parsed;
  if (!doc.is_object() || !doc.Get("name").is_string() ||
      doc.Get("name").AsString().empty()) {
    return Status::InvalidArgument(path + ": not a BENCH report (no name)");
  }
  BenchRunSummary out;
  out.file = std::filesystem::path(path).filename().string();
  out.name = doc.Get("name").AsString();
  out.created_unix =
      static_cast<std::int64_t>(doc.Get("created_unix").AsNumber());
  out.wall_seconds = doc.Get("wall_seconds").AsNumber();
  out.quality = doc.Get("quality");
  out.memory = doc.Get("memory");
  out.hw_counters = doc.Get("hw_counters");
  return out;
}

StatusOr<std::vector<BenchRunSummary>> LoadBenchReports(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("cannot read directory " + dir);
  std::vector<std::string> paths;
  for (const std::filesystem::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0) continue;
    if (name.size() < 6 || name.substr(name.size() - 5) != ".json") continue;
    paths.push_back(entry.path().string());
  }
  if (paths.empty()) {
    return Status::NotFound("no BENCH_*.json reports in " + dir);
  }
  std::sort(paths.begin(), paths.end());  // deterministic load order
  std::vector<BenchRunSummary> out;
  for (const std::string& path : paths) {
    StatusOr<BenchRunSummary> report = LoadBenchReport(path);
    if (!report.ok()) return report.status();
    out.push_back(std::move(report).value());
  }
  std::sort(out.begin(), out.end(),
            [](const BenchRunSummary& a, const BenchRunSummary& b) {
              if (a.created_unix != b.created_unix) {
                return a.created_unix < b.created_unix;
              }
              if (a.name != b.name) return a.name < b.name;
              return a.file < b.file;
            });
  return out;
}

std::string BuildDashboardPayload(const std::vector<BenchRunSummary>& runs) {
  std::string out = "{\"runs\":[";
  bool first = true;
  for (const BenchRunSummary& run : runs) {
    if (!first) out += ',';
    first = false;
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("file").String(run.file);
    w.Key("name").String(run.name);
    w.Key("created_unix").Int(run.created_unix);
    w.Key("wall_seconds").Number(run.wall_seconds);
    w.EndObject();
    std::string obj = w.TakeString();
    obj.pop_back();
    obj += ",\"quality\":";
    obj += run.quality.is_null() ? "null" : WriteJsonValue(run.quality);
    obj += ",\"memory\":";
    obj += run.memory.is_null() ? "null" : WriteJsonValue(run.memory);
    obj += ",\"hw_counters\":";
    obj += run.hw_counters.is_null() ? "null"
                                     : WriteJsonValue(run.hw_counters);
    obj += '}';
    out += obj;
  }
  out += "]}";
  return out;
}

namespace {

// The dashboard shell. Colors are the validated reference data-viz palette
// (categorical slots in fixed order, both modes re-validated against their
// surfaces); identity never rides on color alone — every chart has a legend,
// ≤4-series charts direct-label line ends, and the slice/drift tables are
// the always-available table view.
constexpr const char kDashboardPrefix[] = R"HTML(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>TRMMA quality dashboard</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --good-text: #006300; --bad-text: #b4231f;
  --s1:#2a78d6; --s2:#eb6834; --s3:#1baf7a; --s4:#eda100;
  --s5:#e87ba4; --s6:#008300; --s7:#4a3aa7; --s8:#e34948;
  --status-good:#0ca30c; --status-warn:#fab219;
  --status-serious:#ec835a; --status-critical:#d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --good-text: #0ca30c; --bad-text: #e66767;
    --s1:#3987e5; --s2:#d95926; --s3:#199e70; --s4:#c98500;
    --s5:#d55181; --s6:#008300; --s7:#9085e9; --s8:#e66767;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.filters { display: flex; gap: 12px; align-items: center; margin: 0 0 16px; }
.filters label { color: var(--ink-2); }
.filters select {
  font: inherit; color: var(--ink-1); background: var(--surface-1);
  border: 1px solid var(--ring); border-radius: 6px; padding: 4px 8px;
}
.kpis { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 10px; padding: 12px 16px; min-width: 170px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 28px; font-weight: 600; }
.tile .delta { font-size: 12px; }
.delta.up { color: var(--good-text); }
.delta.down { color: var(--bad-text); }
.delta.flat { color: var(--ink-3); }
.grid2 { display: grid; grid-template-columns: repeat(auto-fit, minmax(420px, 1fr)); gap: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 10px; padding: 14px 16px; margin: 0 0 12px;
}
.card h2 { font-size: 14px; margin: 0 0 2px; }
.card .hint { color: var(--ink-3); font-size: 12px; margin: 0 0 8px; }
.legend { display: flex; flex-wrap: wrap; gap: 10px; margin: 6px 0 2px; font-size: 12px; color: var(--ink-2); }
.legend .key { display: inline-block; width: 14px; height: 3px; border-radius: 2px; vertical-align: middle; margin-right: 5px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px; border-radius: 3px; vertical-align: -1px; margin-right: 5px; }
svg { display: block; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; fill: var(--ink-3); }
svg text.dl { fill: var(--ink-2); font-weight: 600; }
.minis { display: grid; grid-template-columns: repeat(auto-fill, minmax(210px, 1fr)); gap: 12px; }
.mini h3 { font-size: 12px; font-weight: 600; margin: 0; color: var(--ink-1); }
.mini .hint { font-size: 11px; color: var(--ink-3); margin: 0 0 4px; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.status { white-space: nowrap; }
.status .dot { display: inline-block; width: 9px; height: 9px; border-radius: 50%; margin-right: 5px; vertical-align: 0; }
#tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px;
  padding: 8px 10px; font-size: 12px; box-shadow: 0 4px 14px rgba(0,0,0,0.18);
  max-width: 280px;
}
#tooltip .t-head { color: var(--ink-2); margin-bottom: 4px; }
#tooltip .row { display: flex; align-items: center; gap: 6px; }
#tooltip .row .key { width: 12px; height: 3px; border-radius: 2px; flex: none; }
#tooltip .row .v { font-weight: 600; color: var(--ink-1); }
#tooltip .row .n { color: var(--ink-2); }
.empty { color: var(--ink-3); font-size: 13px; }
</style>
</head>
<body>
<h1>TRMMA quality dashboard</h1>
<p class="sub" id="subtitle"></p>
<div class="filters">
  <label for="benchsel">Bench</label>
  <select id="benchsel"></select>
</div>
<div class="kpis" id="kpis"></div>
<div class="grid2" id="epscharts"></div>
<div class="grid2" id="historycharts"></div>
<div class="card" id="reliability">
  <h2>Confidence calibration</h2>
  <p class="hint">Reliability diagrams per method group (latest run in scope). Bars: empirical accuracy per confidence bin; the thin line is perfect calibration.</p>
  <div class="minis" id="relgrid"></div>
</div>
<div class="card" id="slices">
  <h2>Sliced accuracy (latest run in scope)</h2>
  <p class="hint">Mean quality attributed to where it varies: sampling interval, gap length, candidate-set size, degradation path, road density.</p>
  <div id="slicetables"></div>
</div>
<div class="card" id="drift">
  <h2>Train vs serve feature drift (PSI)</h2>
  <p class="hint">Population Stability Index over the matcher input-feature histograms. Rule of thumb: &lt;0.1 stable, 0.1&ndash;0.25 moderate, &gt;0.25 drifted.</p>
  <div id="drifttable"></div>
</div>
<div class="card" id="memcard">
  <h2>Memory</h2>
  <p class="hint">Process RSS and per-subsystem retained bytes (latest run in scope); deltas compare against the previous run that carries a memory section. Growth shows red because more memory is worse.</p>
  <div id="memtable"></div>
</div>
<div class="card" id="roofcard">
  <h2>Roofline (hardware counters)</h2>
  <p class="hint">Achieved FLOP/cycle vs arithmetic intensity per profiled op and matmul sweep point, log-log, latest run in scope with measured counters. The roof is the calibration microbenchmark's measured machine peak; points under the sloped segment are memory-bound, points under the flat segment are compute-bound.</p>
  <div id="roofchart"></div>
</div>
<div class="card">
  <h2>Runs</h2>
  <div id="runstable"></div>
</div>
<div id="tooltip"></div>
<script type="application/json" id="payload">
)HTML";

constexpr const char kDashboardSuffix[] = R"HTML(
</script>
<script>
'use strict';
const payload = JSON.parse(document.getElementById('payload').textContent);
const ALL_RUNS = payload.runs;
const SERIES = ['--s1','--s2','--s3','--s4','--s5','--s6','--s7','--s8'];
const EPS_ORDER = ['<=15s','<=30s','<=60s','<=120s','<=180s','>180s','unknown'];
const css = name => getComputedStyle(document.documentElement).getPropertyValue(name).trim();
const fmt = (v, d) => (v == null || !isFinite(v)) ? '–' : v.toFixed(d == null ? 3 : d);
const tooltip = document.getElementById('tooltip');

function showTooltip(ev, head, rows) {
  tooltip.textContent = '';
  if (head) {
    const h = document.createElement('div');
    h.className = 't-head';
    h.textContent = head;
    tooltip.appendChild(h);
  }
  for (const r of rows) {
    const div = document.createElement('div');
    div.className = 'row';
    if (r.color) {
      const k = document.createElement('span');
      k.className = 'key';
      k.style.background = r.color;
      div.appendChild(k);
    }
    const v = document.createElement('span');
    v.className = 'v';
    v.textContent = r.value;
    div.appendChild(v);
    const n = document.createElement('span');
    n.className = 'n';
    n.textContent = r.name;
    div.appendChild(n);
    tooltip.appendChild(div);
  }
  tooltip.style.display = 'block';
  const pad = 14;
  let x = ev.clientX + pad, y = ev.clientY + pad;
  const r = tooltip.getBoundingClientRect();
  if (x + r.width > innerWidth - 8) x = ev.clientX - r.width - pad;
  if (y + r.height > innerHeight - 8) y = ev.clientY - r.height - pad;
  tooltip.style.left = x + 'px';
  tooltip.style.top = y + 'px';
}
function hideTooltip() { tooltip.style.display = 'none'; }

function groupsOf(run) {
  return (run.quality && run.quality.groups) ? run.quality.groups : [];
}
// Aggregates one run's groups across cities: kind|method -> {quality, cal}.
function methodAgg(run) {
  const agg = new Map();
  for (const g of groupsOf(run)) {
    const key = g.kind + '|' + g.method;
    let a = agg.get(key);
    if (!a) {
      a = { kind: g.kind, method: g.method, scored: 0, qsum: 0,
            samples: 0, ecesum: 0, briersum: 0, slices: new Map() };
      agg.set(key, a);
    }
    a.scored += g.scored;
    a.qsum += (g.mean_quality >= 0 ? g.mean_quality : 0) * g.scored;
    const cal = g.calibration || {};
    if (cal.samples > 0) {
      a.samples += cal.samples;
      a.ecesum += cal.ece * cal.samples;
      a.briersum += cal.brier * cal.samples;
    }
    for (const s of (g.slices || [])) {
      const k = s.dimension + '|' + s.bucket;
      let sl = a.slices.get(k);
      if (!sl) { sl = { dimension: s.dimension, bucket: s.bucket, scored: 0, qsum: 0, requests: 0 }; a.slices.set(k, sl); }
      sl.requests += s.requests;
      sl.scored += s.scored;
      sl.qsum += (s.mean_quality >= 0 ? s.mean_quality : 0) * s.scored;
    }
  }
  for (const a of agg.values()) {
    a.mean_quality = a.scored > 0 ? a.qsum / a.scored : null;
    a.ece = a.samples > 0 ? a.ecesum / a.samples : null;
    a.brier = a.samples > 0 ? a.briersum / a.samples : null;
  }
  return agg;
}
// Stable per-kind color assignment over the WHOLE payload, so a method
// keeps its hue across filters and charts (color follows the entity).
function buildColorMap() {
  const byKind = new Map();
  for (const run of ALL_RUNS) {
    for (const g of groupsOf(run)) {
      if (!byKind.has(g.kind)) byKind.set(g.kind, new Set());
      byKind.get(g.kind).add(g.method);
    }
  }
  const colors = new Map();
  for (const [kind, methods] of byKind) {
    [...methods].sort().forEach((m, i) => {
      colors.set(kind + '|' + m,
                 i < SERIES.length ? css(SERIES[i]) : css('--ink-3'));
    });
  }
  return colors;
}
const COLOR = buildColorMap();
const colorOf = (kind, method) => COLOR.get(kind + '|' + method) || css('--ink-3');

function el(tag, attrs, parent) {
  const e = attrs && attrs.svg
      ? document.createElementNS('http://www.w3.org/2000/svg', tag)
      : document.createElement(tag);
  for (const [k, v] of Object.entries(attrs || {})) {
    if (k === 'svg') continue;
    if (k === 'text') e.textContent = v; else e.setAttribute(k, v);
  }
  if (parent) parent.appendChild(e);
  return e;
}

// A line chart with crosshair tooltip. series: [{name, color, points:[{x,label,y}]}]
function lineChart(parent, series, xLabels, opts) {
  const W = 430, H = 230, L = 44, R = 14, T = 12, B = 26;
  const svg = el('svg', { svg: 1, viewBox: `0 0 ${W} ${H}`, width: '100%' }, parent);
  const ymax = 1.0, ymin = 0.0;
  const px = i => xLabels.length < 2 ? (L + (W - L - R) / 2)
      : L + (W - L - R) * i / (xLabels.length - 1);
  const py = v => T + (H - T - B) * (1 - (v - ymin) / (ymax - ymin));
  for (let g = 0; g <= 4; ++g) {
    const v = ymin + (ymax - ymin) * g / 4;
    el('line', { svg: 1, x1: L, x2: W - R, y1: py(v), y2: py(v),
                 stroke: css('--grid'), 'stroke-width': 1 }, svg);
    el('text', { svg: 1, x: L - 6, y: py(v) + 4, 'text-anchor': 'end',
                 text: v.toFixed(2) }, svg);
  }
  el('line', { svg: 1, x1: L, x2: W - R, y1: py(0), y2: py(0),
               stroke: css('--axis'), 'stroke-width': 1 }, svg);
  xLabels.forEach((lbl, i) => {
    el('text', { svg: 1, x: px(i), y: H - 8, 'text-anchor': 'middle', text: lbl }, svg);
  });
  for (const s of series) {
    const pts = s.points.filter(p => p.y != null && isFinite(p.y));
    if (!pts.length) continue;
    const d = pts.map((p, i) => (i ? 'L' : 'M') + px(p.x) + ' ' + py(p.y)).join(' ');
    el('path', { svg: 1, d, fill: 'none', stroke: s.color, 'stroke-width': 2,
                 'stroke-linecap': 'round', 'stroke-linejoin': 'round' }, svg);
    for (const p of pts) {
      el('circle', { svg: 1, cx: px(p.x), cy: py(p.y), r: 4, fill: s.color,
                     stroke: css('--surface-1'), 'stroke-width': 2 }, svg);
    }
    const last = pts[pts.length - 1];
    if (series.length <= 4 && opts && opts.directLabels) {
      el('text', { svg: 1, class: 'dl', x: Math.min(px(last.x) + 7, W - 2),
                   y: py(last.y) + 4, text: s.name }, svg);
    }
  }
  const hair = el('line', { svg: 1, y1: T, y2: H - B, stroke: css('--axis'),
                            'stroke-width': 1, visibility: 'hidden' }, svg);
  svg.addEventListener('pointermove', ev => {
    const rect = svg.getBoundingClientRect();
    const sx = (ev.clientX - rect.left) * W / rect.width;
    let best = 0, bestd = Infinity;
    for (let i = 0; i < xLabels.length; ++i) {
      const d = Math.abs(px(i) - sx);
      if (d < bestd) { bestd = d; best = i; }
    }
    hair.setAttribute('x1', px(best));
    hair.setAttribute('x2', px(best));
    hair.setAttribute('visibility', 'visible');
    const rows = [];
    for (const s of series) {
      const p = s.points.find(p => p.x === best);
      if (p && p.y != null && isFinite(p.y)) {
        rows.push({ color: s.color, value: fmt(p.y), name: s.name });
      }
    }
    rows.sort((a, b) => parseFloat(b.value) - parseFloat(a.value));
    showTooltip(ev, xLabels[best], rows);
  });
  svg.addEventListener('pointerleave', () => { hair.setAttribute('visibility', 'hidden'); hideTooltip(); });
  return svg;
}

function legend(parent, series, mark) {
  if (series.length < 2) return;
  const box = el('div', { class: 'legend' }, parent);
  for (const s of series) {
    const item = el('span', {}, box);
    el('span', { class: mark === 'swatch' ? 'swatch' : 'key',
                 style: 'background:' + s.color }, item);
    item.appendChild(document.createTextNode(s.name));
  }
}

function card(parent, title, hint) {
  const c = el('div', { class: 'card' }, parent);
  el('h2', { text: title }, c);
  if (hint) el('p', { class: 'hint', text: hint }, c);
  return c;
}

const KIND_TITLE = { mm: 'Map matching (F1)', recovery: 'Recovery (accuracy)', pipeline: 'Pipeline (accuracy)' };

function renderEpsCharts(runs) {
  const root = document.getElementById('epscharts');
  root.textContent = '';
  const latest = runs[runs.length - 1];
  if (!latest) return;
  const byKind = new Map();
  for (const g of groupsOf(latest)) {
    if (!byKind.has(g.kind)) byKind.set(g.kind, new Map());
    const methods = byKind.get(g.kind);
    if (!methods.has(g.method)) methods.set(g.method, new Map());
    const buckets = methods.get(g.method);
    for (const s of (g.slices || [])) {
      if (s.dimension !== 'epsilon' || s.scored <= 0) continue;
      let b = buckets.get(s.bucket);
      if (!b) { b = { scored: 0, qsum: 0 }; buckets.set(s.bucket, b); }
      b.scored += s.scored;
      b.qsum += s.mean_quality * s.scored;
    }
  }
  for (const [kind, methods] of [...byKind.entries()].sort()) {
    const used = EPS_ORDER.filter(b => [...methods.values()].some(m => m.has(b)));
    if (!used.length) continue;
    const c = card(root, 'Accuracy vs sampling interval — ' + (KIND_TITLE[kind] || kind),
                   'Mean quality per effective sparse-interval bucket, latest run in scope (' + latest.file + ').');
    const series = [...methods.entries()].sort().map(([m, buckets]) => ({
      name: m, color: colorOf(kind, m),
      points: used.map((b, i) => {
        const v = buckets.get(b);
        return { x: i, y: v ? v.qsum / v.scored : null };
      }),
    }));
    lineChart(c, series, used, { directLabels: true });
    legend(c, series, 'key');
  }
}

function renderHistory(runs) {
  const root = document.getElementById('historycharts');
  root.textContent = '';
  const withQ = runs.filter(r => groupsOf(r).length);
  if (!withQ.length) return;
  const byKind = new Map();
  withQ.forEach((run, i) => {
    for (const a of methodAgg(run).values()) {
      if (a.mean_quality == null) continue;
      if (!byKind.has(a.kind)) byKind.set(a.kind, new Map());
      const methods = byKind.get(a.kind);
      if (!methods.has(a.method)) methods.set(a.method, []);
      methods.get(a.method).push({ x: i, y: a.mean_quality });
    }
  });
  const labels = withQ.map((r, i) => '#' + (i + 1));
  for (const [kind, methods] of [...byKind.entries()].sort()) {
    const c = card(root, 'Run-over-run quality — ' + (KIND_TITLE[kind] || kind),
                   withQ.length < 2 ? 'Only one run in scope; add more BENCH files for history.'
                                    : 'Mean quality per run, oldest to newest.');
    const series = [...methods.entries()].sort().map(([m, pts]) => ({
      name: m, color: colorOf(kind, m), points: pts,
    }));
    lineChart(c, series, labels, { directLabels: true });
    legend(c, series, 'key');
  }
}

function renderReliability(runs) {
  const grid = document.getElementById('relgrid');
  grid.textContent = '';
  const latest = runs[runs.length - 1];
  const groups = latest ? groupsOf(latest).filter(g => g.calibration && g.calibration.samples > 0) : [];
  if (!groups.length) {
    el('p', { class: 'empty', text: 'No calibrated probability scores in scope (only MMA-style matchers emit probabilities).' }, grid);
    return;
  }
  for (const g of groups) {
    const mini = el('div', { class: 'mini' }, grid);
    el('h3', { text: g.method + ' · ' + g.city + ' (' + g.kind + ')' }, mini);
    const cal = g.calibration;
    el('p', { class: 'hint', text: 'ECE ' + fmt(cal.ece) + ' · Brier ' + fmt(cal.brier) + ' · n=' + cal.samples +
              (cal.dropped_nonfinite ? ' · dropped NaN=' + cal.dropped_nonfinite : '') }, mini);
    const W = 210, H = 140, L = 26, R = 6, T = 6, B = 18;
    const svg = el('svg', { svg: 1, viewBox: `0 0 ${W} ${H}`, width: '100%' }, mini);
    const bins = cal.bins || [];
    const px = v => L + (W - L - R) * v;
    const py = v => T + (H - T - B) * (1 - v);
    el('line', { svg: 1, x1: px(0), y1: py(0), x2: px(1), y2: py(1),
                 stroke: css('--axis'), 'stroke-width': 1 }, svg);
    const bw = (W - L - R) / Math.max(bins.length, 1);
    bins.forEach((b, i) => {
      if (!b.count) return;
      const x = L + bw * i + 1, w = Math.max(bw - 2, 1);
      const h = Math.max(py(0) - py(b.accuracy), 0);
      const bar = el('rect', { svg: 1, x, width: w, y: py(b.accuracy), height: h,
                               rx: Math.min(4, w / 2), fill: css('--s1') }, svg);
      if (h > 4) el('rect', { svg: 1, x, width: w, y: py(0) - 2, height: 2, fill: css('--s1') }, svg);
      const hit = el('rect', { svg: 1, x: L + bw * i, width: bw, y: T, height: H - T - B, fill: 'transparent' }, svg);
      hit.addEventListener('pointermove', ev => {
        bar.setAttribute('opacity', '0.8');
        showTooltip(ev, 'confidence ' + fmt(b.lo, 1) + '–' + fmt(b.hi, 1), [
          { color: css('--s1'), value: fmt(b.accuracy), name: 'accuracy' },
          { value: fmt(b.mean_confidence), name: 'mean confidence' },
          { value: String(b.count), name: 'samples' },
        ]);
      });
      hit.addEventListener('pointerleave', () => { bar.setAttribute('opacity', '1'); hideTooltip(); });
    });
    el('text', { svg: 1, x: px(0), y: H - 5, text: '0' }, svg);
    el('text', { svg: 1, x: px(1), y: H - 5, 'text-anchor': 'end', text: 'confidence 1.0' }, svg);
  }
}

function renderSlices(runs) {
  const root = document.getElementById('slicetables');
  root.textContent = '';
  const latest = runs[runs.length - 1];
  const groups = latest ? groupsOf(latest) : [];
  if (!groups.length) {
    el('p', { class: 'empty', text: 'No quality section in the latest run in scope.' }, root);
    return;
  }
  const tbl = el('table', {}, root);
  const head = el('tr', {}, el('thead', {}, tbl));
  for (const h of ['Group', 'Dimension', 'Bucket']) el('th', { text: h }, head);
  for (const h of ['Requests', 'Mean quality']) el('th', { class: 'num', text: h }, head);
  const body = el('tbody', {}, tbl);
  for (const g of groups) {
    for (const s of (g.slices || [])) {
      const tr = el('tr', {}, body);
      const name = el('td', {}, tr);
      el('span', { class: 'swatch', style: 'display:inline-block;width:10px;height:10px;border-radius:3px;margin-right:5px;vertical-align:-1px;background:' + colorOf(g.kind, g.method) }, name);
      name.appendChild(document.createTextNode(g.method + ' · ' + g.city + ' (' + g.kind + ')'));
      el('td', { text: s.dimension }, tr);
      el('td', { text: s.bucket }, tr);
      el('td', { class: 'num', text: String(s.requests) }, tr);
      el('td', { class: 'num', text: s.scored > 0 ? fmt(s.mean_quality) : '–' }, tr);
    }
  }
}

function renderDrift(runs) {
  const root = document.getElementById('drifttable');
  root.textContent = '';
  const latest = runs[runs.length - 1];
  const drift = (latest && latest.quality && latest.quality.drift) ? latest.quality.drift : [];
  if (!drift.length) {
    el('p', { class: 'empty', text: 'No drift histograms in scope (enable quality telemetry during training and serving).' }, root);
    return;
  }
  const tbl = el('table', {}, root);
  const head = el('tr', {}, el('thead', {}, tbl));
  el('th', { text: 'Feature' }, head);
  for (const h of ['Train obs', 'Serve obs', 'PSI']) el('th', { class: 'num', text: h }, head);
  el('th', { text: 'Status' }, head);
  const body = el('tbody', {}, tbl);
  for (const d of drift) {
    const tr = el('tr', {}, body);
    el('td', { text: d.feature }, tr);
    el('td', { class: 'num', text: String(d.train) }, tr);
    el('td', { class: 'num', text: String(d.serve) }, tr);
    el('td', { class: 'num', text: fmt(d.psi) }, tr);
    const td = el('td', { class: 'status' }, tr);
    let color, label, icon;
    if (d.degenerate) { color = css('--ink-3'); label = 'degenerate'; icon = '◌'; }
    else if (d.psi < 0.1) { color = css('--status-good'); label = 'stable'; icon = '●'; }
    else if (d.psi < 0.25) { color = css('--status-warn'); label = 'moderate shift'; icon = '▲'; }
    else { color = css('--status-serious'); label = 'drifted'; icon = '▲'; }
    const dot = el('span', {}, td);
    dot.style.color = color;
    dot.textContent = icon + ' ';
    td.appendChild(document.createTextNode(label));
  }
}

function memOf(run) {
  return (run.memory && run.memory.subsystems) ? run.memory : null;
}
function fmtBytes(b) {
  if (b == null || !isFinite(b)) return '–';
  const units = ['B', 'KiB', 'MiB', 'GiB', 'TiB'];
  let u = 0;
  while (Math.abs(b) >= 1024 && u < units.length - 1) { b /= 1024; ++u; }
  return (u ? b.toFixed(1) : String(b)) + ' ' + units[u];
}

function renderMemory(runs) {
  const root = document.getElementById('memtable');
  root.textContent = '';
  const withM = runs.filter(r => memOf(r));
  if (!withM.length) {
    el('p', { class: 'empty', text: 'No memory section in scope (runs predate memory telemetry, or TRMMA_MEM_STATS=0).' }, root);
    return;
  }
  const latest = memOf(withM[withM.length - 1]);
  const prev = withM.length > 1 ? memOf(withM[withM.length - 2]) : null;
  // Growth is bad: positive deltas render with the "down" (bad) color.
  const deltaCell = (tr, now, before) => {
    const td = el('td', { class: 'num' }, tr);
    if (before == null || now == null) { td.textContent = '–'; return; }
    const d = now - before;
    td.textContent = (d >= 0 ? '+' : '−') + fmtBytes(Math.abs(d));
    td.className = 'num delta ' +
        (Math.abs(d) < 1 ? 'flat' : (d > 0 ? 'down' : 'up'));
  };
  const tbl = el('table', {}, root);
  const head = el('tr', {}, el('thead', {}, tbl));
  el('th', { text: 'Subsystem' }, head);
  for (const h of ['Current', 'Peak', 'Δ current']) {
    el('th', { class: 'num', text: h }, head);
  }
  const body = el('tbody', {}, tbl);
  const prevBy = new Map((prev ? prev.subsystems : []).map(s => [s.name, s]));
  const rows = [...latest.subsystems]
      .sort((a, b) => b.current_bytes - a.current_bytes);
  for (const s of rows) {
    const tr = el('tr', {}, body);
    el('td', { text: s.name }, tr);
    el('td', { class: 'num', text: fmtBytes(s.current_bytes) }, tr);
    el('td', { class: 'num', text: fmtBytes(s.peak_bytes) }, tr);
    const p = prevBy.get(s.name);
    deltaCell(tr, s.current_bytes, p ? p.current_bytes : null);
  }
  const trr = el('tr', {}, body);
  el('td', { text: 'process RSS' }, trr);
  el('td', { class: 'num', text: fmtBytes(latest.rss_bytes) }, trr);
  el('td', { class: 'num', text: fmtBytes(latest.rss_peak_bytes) }, trr);
  deltaCell(trr, latest.rss_peak_bytes, prev ? prev.rss_peak_bytes : null);
  if (withM.length > 1) {
    el('p', { class: 'hint', text: 'Peak RSS history (oldest to newest):' },
       root);
    const ht = el('table', {}, root);
    const hh = el('tr', {}, el('thead', {}, ht));
    for (const h of ['#', 'File']) el('th', { text: h }, hh);
    for (const h of ['Peak RSS', 'Δ vs previous']) {
      el('th', { class: 'num', text: h }, hh);
    }
    const hb = el('tbody', {}, ht);
    withM.forEach((r, i) => {
      const m = memOf(r);
      const tr = el('tr', {}, hb);
      el('td', { text: '#' + (i + 1) }, tr);
      el('td', { text: r.file }, tr);
      el('td', { class: 'num', text: fmtBytes(m.rss_peak_bytes) }, tr);
      deltaCell(tr, m.rss_peak_bytes,
                i > 0 ? memOf(withM[i - 1]).rss_peak_bytes : null);
    });
  }
}

function hwOf(run) {
  return (run.hw_counters && run.hw_counters.available) ? run.hw_counters : null;
}

// Log-log roofline scatter: ops (s1) and sweep points (s2) at
// (arithmetic intensity, achieved FLOP/cycle), under the measured roof
// min(peak_flop, ai * peak_bytes) from the calibration microbenchmark.
function renderRoofline(runs) {
  const root = document.getElementById('roofchart');
  root.textContent = '';
  const withHw = runs.filter(r => hwOf(r));
  if (!withHw.length) {
    const last = runs[runs.length - 1];
    const reason = last && last.hw_counters && last.hw_counters.reason;
    el('p', { class: 'empty', text: 'No measured hardware counters in scope' +
              (reason ? ' — last run: ' + reason : '') + '.' }, root);
    return;
  }
  const latestRun = withHw[withHw.length - 1];
  const hw = hwOf(latestRun);
  const pts = [];
  for (const o of (hw.ops || [])) {
    if (o.arithmetic_intensity > 0 && o.flop_per_cycle > 0) {
      pts.push({ name: o.name, ai: o.arithmetic_intensity,
                 fpc: o.flop_per_cycle, ipc: o.ipc, kind: 'op' });
    }
  }
  for (const s of (hw.sweep || [])) {
    if (s.arithmetic_intensity > 0 && s.flop_per_cycle > 0) {
      pts.push({ name: s.label + ' n=' + s.n, ai: s.arithmetic_intensity,
                 fpc: s.flop_per_cycle, ipc: s.ipc, kind: 'sweep' });
    }
  }
  const cal = (hw.calibration && hw.calibration.measured) ? hw.calibration : null;
  if (!pts.length) {
    el('p', { class: 'empty', text: 'Counters measured but no op carries roofline coordinates (enable the op profiler during a counter-armed run).' }, root);
    return;
  }
  el('p', { class: 'hint', text: 'Source: ' + latestRun.file +
            (cal ? ' · measured peak ' + fmt(cal.flop_per_cycle, 2) +
                   ' flop/cycle, ' + fmt(cal.bytes_per_cycle, 2) + ' bytes/cycle'
                 : ' · no calibration (roof not drawn)') }, root);
  const xs = pts.map(p => p.ai), ys = pts.map(p => p.fpc);
  if (cal) { ys.push(cal.flop_per_cycle); }
  const lg = Math.log10;
  const xmin = Math.floor(lg(Math.min(...xs))) - 0;
  const xmax = Math.ceil(lg(Math.max(...xs))) + 0;
  const ymin = Math.floor(lg(Math.min(...ys)));
  const ymax = Math.ceil(lg(Math.max(...ys)));
  const W = 560, H = 300, L = 48, R = 16, T = 12, B = 30;
  const svg = el('svg', { svg: 1, viewBox: `0 0 ${W} ${H}`, width: '100%' }, root);
  const px = v => L + (W - L - R) * (lg(v) - xmin) / Math.max(xmax - xmin, 1);
  const py = v => T + (H - T - B) * (1 - (lg(v) - ymin) / Math.max(ymax - ymin, 1));
  for (let e = ymin; e <= ymax; ++e) {
    el('line', { svg: 1, x1: L, x2: W - R, y1: py(10 ** e), y2: py(10 ** e),
                 stroke: css('--grid'), 'stroke-width': 1 }, svg);
    el('text', { svg: 1, x: L - 6, y: py(10 ** e) + 4, 'text-anchor': 'end',
                 text: '1e' + e }, svg);
  }
  for (let e = xmin; e <= xmax; ++e) {
    el('text', { svg: 1, x: px(10 ** e), y: H - 8, 'text-anchor': 'middle',
                 text: '1e' + e }, svg);
  }
  el('text', { svg: 1, x: W - R, y: H - 8, 'text-anchor': 'end',
               text: 'flop/byte' }, svg);
  el('text', { svg: 1, x: L + 4, y: T + 10, text: 'flop/cycle' }, svg);
  if (cal) {
    // The roof: y = min(peak_flop, x * peak_bytes), drawn as two segments
    // meeting at the ridge point ai = peak_flop / peak_bytes.
    const ridge = cal.flop_per_cycle / cal.bytes_per_cycle;
    const x0 = 10 ** xmin, x1 = 10 ** xmax;
    const seg = (xa, ya, xb, yb) =>
        el('line', { svg: 1, x1: px(xa), y1: py(ya), x2: px(xb), y2: py(yb),
                     stroke: css('--axis'), 'stroke-width': 2,
                     'stroke-dasharray': '6 4' }, svg);
    if (ridge > x0) {
      seg(x0, Math.max(x0 * cal.bytes_per_cycle, 10 ** ymin),
          Math.min(ridge, x1),
          Math.min(ridge, x1) * cal.bytes_per_cycle);
    }
    if (ridge < x1) {
      seg(Math.max(ridge, x0), cal.flop_per_cycle, x1, cal.flop_per_cycle);
    }
  }
  for (const p of pts) {
    const color = css(p.kind === 'op' ? '--s1' : '--s2');
    const dot = el('circle', { svg: 1, cx: px(p.ai), cy: py(p.fpc), r: 5,
                               fill: color, stroke: css('--surface-1'),
                               'stroke-width': 1.5 }, svg);
    dot.addEventListener('pointermove', ev => showTooltip(ev, p.name, [
      { color, value: fmt(p.fpc, 4), name: 'flop/cycle' },
      { value: fmt(p.ai, 3), name: 'flop/byte' },
      { value: fmt(p.ipc, 2), name: 'IPC' },
    ]));
    dot.addEventListener('pointerleave', hideTooltip);
  }
  legend(root, [{ name: 'profiled ops', color: css('--s1') },
                { name: 'matmul sweep', color: css('--s2') }], 'swatch');
}

function renderKpis(runs) {
  const root = document.getElementById('kpis');
  root.textContent = '';
  const withQ = runs.filter(r => groupsOf(r).length);
  const latest = withQ[withQ.length - 1];
  const prev = withQ[withQ.length - 2];
  if (!latest) {
    el('p', { class: 'empty', text: 'No run in scope carries a quality section.' }, root);
    return;
  }
  const stat = (agg, kind) => {
    let scored = 0, qsum = 0, worstEce = null;
    for (const a of agg.values()) {
      if (a.kind !== kind) continue;
      if (a.mean_quality != null) { scored += a.scored; qsum += a.mean_quality * a.scored; }
      if (a.ece != null && (worstEce == null || a.ece > worstEce)) worstEce = a.ece;
    }
    return { quality: scored > 0 ? qsum / scored : null, worstEce };
  };
  const la = methodAgg(latest);
  const pa = prev ? methodAgg(prev) : null;
  const tiles = [];
  for (const kind of ['mm', 'recovery']) {
    const now = stat(la, kind);
    if (now.quality == null) continue;
    const before = pa ? stat(pa, kind).quality : null;
    tiles.push({ label: KIND_TITLE[kind] || kind, value: fmt(now.quality),
                 delta: before != null ? now.quality - before : null, upGood: true });
    if (now.worstEce != null) {
      const ecePrev = pa ? stat(pa, kind).worstEce : null;
      tiles.push({ label: 'Worst ECE — ' + kind, value: fmt(now.worstEce),
                   delta: ecePrev != null ? now.worstEce - ecePrev : null, upGood: false });
    }
  }
  const drift = (latest.quality && latest.quality.drift) ? latest.quality.drift : [];
  const live = drift.filter(d => !d.degenerate);
  if (live.length) {
    const maxPsi = Math.max(...live.map(d => d.psi));
    tiles.push({ label: 'Max feature PSI', value: fmt(maxPsi), delta: null });
  }
  for (const t of tiles) {
    const tile = el('div', { class: 'tile' }, root);
    el('div', { class: 'label', text: t.label }, tile);
    el('div', { class: 'value', text: t.value }, tile);
    if (t.delta != null) {
      const good = t.upGood ? t.delta >= 0 : t.delta <= 0;
      const cls = Math.abs(t.delta) < 1e-9 ? 'flat' : (good ? 'up' : 'down');
      el('div', { class: 'delta ' + cls,
                  text: (t.delta >= 0 ? '+' : '') + t.delta.toFixed(3) + ' vs previous run' }, tile);
    }
  }
}

function renderRuns(runs) {
  const root = document.getElementById('runstable');
  root.textContent = '';
  const tbl = el('table', {}, root);
  const head = el('tr', {}, el('thead', {}, tbl));
  for (const h of ['#', 'File', 'Bench']) el('th', { text: h }, head);
  for (const h of ['Wall (s)', 'Quality section']) el('th', { class: 'num', text: h }, head);
  const body = el('tbody', {}, tbl);
  runs.forEach((r, i) => {
    const tr = el('tr', {}, body);
    el('td', { text: '#' + (i + 1) }, tr);
    el('td', { text: r.file }, tr);
    el('td', { text: r.name }, tr);
    el('td', { class: 'num', text: fmt(r.wall_seconds, 1) }, tr);
    el('td', { class: 'num', text: groupsOf(r).length ? 'yes' : '–' }, tr);
  });
}

function render() {
  const sel = document.getElementById('benchsel').value;
  const runs = sel === '*' ? ALL_RUNS : ALL_RUNS.filter(r => r.name === sel);
  document.getElementById('subtitle').textContent =
      runs.length + ' run report(s) in scope' +
      (runs.length ? ', newest: ' + runs[runs.length - 1].file : '');
  renderKpis(runs);
  renderEpsCharts(runs);
  renderHistory(runs);
  renderReliability(runs);
  renderSlices(runs);
  renderDrift(runs);
  renderMemory(runs);
  renderRoofline(runs);
  renderRuns(runs);
}

(function init() {
  const sel = document.getElementById('benchsel');
  el('option', { value: '*', text: 'All benches' }, sel);
  for (const name of [...new Set(ALL_RUNS.map(r => r.name))].sort()) {
    el('option', { value: name, text: name }, sel);
  }
  sel.addEventListener('change', render);
  render();
})();
</script>
</body>
</html>
)HTML";

}  // namespace

std::string RenderQualityDashboard(const std::vector<BenchRunSummary>& runs) {
  std::string payload = BuildDashboardPayload(runs);
  // "</" would terminate the embedding <script> block early; JSON accepts
  // the escaped form, so rewrite defensively (method/city names are repo
  // controlled, but the payload embeds arbitrary report strings).
  std::string safe;
  safe.reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] == '<' && i + 1 < payload.size() && payload[i + 1] == '/') {
      safe += "<\\/";
      ++i;
    } else {
      safe += payload[i];
    }
  }
  std::string out;
  out.reserve(sizeof(kDashboardPrefix) + safe.size() +
              sizeof(kDashboardSuffix));
  out += kDashboardPrefix;
  out += safe;
  out += kDashboardSuffix;
  return out;
}

}  // namespace trmma
