#ifndef TRMMA_EVAL_EXPERIMENT_H_
#define TRMMA_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "gen/presets.h"
#include "graph/spatial_index.h"
#include "graph/transition_stats.h"
#include "graph/ubodt.h"
#include "mm/deep_mm_lite.h"
#include "mm/hmm.h"
#include "mm/lhmm.h"
#include "mm/mma.h"
#include "mm/nearest.h"
#include "node2vec/node2vec.h"
#include "recovery/linear.h"
#include "recovery/seq2seq.h"
#include "recovery/trmma.h"
#include "traj/dataset.h"

namespace trmma {

/// Configuration of a full experiment stack (substrates + all methods).
struct StackConfig {
  Node2VecConfig node2vec;
  HmmConfig hmm;
  MmaConfig mma;
  TrmmaConfig trmma;
  DeepMmConfig deepmm;
  Seq2SeqConfig seq2seq;
  double ubodt_delta_m = 4000.0;
  uint64_t seed = 77;
};

/// One training call applied to a stack, in order. The log is the replay
/// contract of the flight recorder: every Train* helper draws from a fresh
/// Rng seeded off the stack seed, so re-applying the same entries to a
/// freshly built stack reproduces the weights bit-exactly.
struct TrainLogEntry {
  std::string key;  ///< "mma", "lhmm", "deepmm", "trmma", or a seq2seq name
  int epochs = 0;
  double fraction = 1.0;
};

/// Everything built on top of one dataset: spatial index, routing
/// substrates, and the matchers/recovery methods under comparison. The
/// models are constructed untrained; call the Train* helpers.
struct ExperimentStack {
  const Dataset* dataset = nullptr;
  StackConfig config;
  std::vector<TrainLogEntry> training_log;  ///< appended by the Train* helpers

  std::unique_ptr<SegmentRTree> index;
  std::unique_ptr<ShortestPathEngine> engine;
  std::unique_ptr<Ubodt> ubodt;
  std::unique_ptr<TransitionStats> stats;
  std::unique_ptr<DaRoutePlanner> planner;
  nn::Matrix node2vec_table;

  std::unique_ptr<NearestMatcher> nearest;
  std::unique_ptr<HmmMatcher> hmm;
  std::unique_ptr<FmmMatcher> fmm;
  std::unique_ptr<LhmmMatcher> lhmm;
  std::unique_ptr<MmaMatcher> mma;
  std::unique_ptr<DeepMmLiteMatcher> deepmm;

  std::unique_ptr<TrmmaRecovery> trmma;
  std::unique_ptr<LinearRecovery> linear;           ///< FMM + linear interp
  std::unique_ptr<LinearRecovery> mma_linear;       ///< ablation MMA+linear
  std::unique_ptr<LinearRecovery> nearest_linear;   ///< Nearest+linear
  std::unique_ptr<Seq2SeqRecovery> mtrajrec;        ///< GRU enc (MTrajRec-lite)
  std::unique_ptr<Seq2SeqRecovery> trajformer;      ///< transformer enc + Dec
};

/// Builds substrates and constructs all methods for a dataset. Transition
/// statistics are harvested from the training split's ground-truth routes
/// (the historical data of the DA planner [2]). The Node2Vec table is
/// trained here (it is a pre-processing step in the paper) and loaded into
/// MMA.
ExperimentStack BuildStack(const Dataset& dataset, const StackConfig& config);

/// Result of timed training.
struct TrainStats {
  double seconds_per_epoch = 0.0;
  double final_loss = 0.0;
};

/// Timed multi-epoch training of each learnable method. `train_fraction`
/// in (0,1] subsamples the training split (paper Fig. 8).
TrainStats TrainMma(ExperimentStack& stack, int epochs,
                    double train_fraction = 1.0);
TrainStats TrainLhmm(ExperimentStack& stack, int epochs);
TrainStats TrainDeepMm(ExperimentStack& stack, int epochs);
TrainStats TrainTrmma(ExperimentStack& stack, int epochs,
                      double train_fraction = 1.0);
TrainStats TrainSeq2Seq(ExperimentStack& stack, Seq2SeqRecovery& model,
                        int epochs, double train_fraction = 1.0);

/// The stack's training log as "key:epochs:fraction" strings (the form the
/// flight recorder stores in RequestRecord::train_state).
std::vector<std::string> FormatTrainingLog(const ExperimentStack& stack);

/// Re-applies a formatted training log to a freshly built stack, calling
/// the Train* helpers in the recorded order. Errors on an unknown key or a
/// malformed entry.
Status ApplyTrainingLog(ExperimentStack& stack,
                        const std::vector<std::string>& log);

/// Map-matching evaluation on the test split: per-trajectory set metrics
/// of the stitched route vs the ground-truth route, plus inference time
/// normalized to 1000 trajectories (paper Table V / Fig. 9).
struct MapMatchEval {
  SetMetrics metrics;
  double seconds_per_1000 = 0.0;
};

MapMatchEval EvaluateMapMatching(ExperimentStack& stack, MapMatcher& matcher,
                                 int max_trajectories = -1);

/// Recovery evaluation on the test split (paper Table III / Fig. 5).
struct RecoveryEval {
  SetMetrics metrics;
  double accuracy = 0.0;
  double mae_m = 0.0;
  double rmse_m = 0.0;
  double seconds_per_1000 = 0.0;
};

RecoveryEval EvaluateRecovery(ExperimentStack& stack, RecoveryMethod& method,
                              int max_trajectories = -1);

/// Re-sparsifies every sample of a dataset with a new γ (paper Figs. 7/11).
void ResparsifyDataset(Dataset& dataset, double gamma, uint64_t seed);

/// Fixed-width table-row printing helpers shared by the bench binaries.
void PrintRow(const std::string& name, const std::vector<double>& values,
              int name_width = 16, int col_width = 10, int precision = 2);
void PrintHeader(const std::string& name,
                 const std::vector<std::string>& columns, int name_width = 16,
                 int col_width = 10);

}  // namespace trmma

#endif  // TRMMA_EVAL_EXPERIMENT_H_
