#ifndef TRMMA_EVAL_REPORT_HTML_H_
#define TRMMA_EVAL_REPORT_HTML_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json_parse.h"

namespace trmma {

/// One parsed BENCH_*.json run report, reduced to what the quality
/// dashboard consumes. `quality` and `memory` are null-typed JsonValues
/// when the run predates those report sections.
struct BenchRunSummary {
  std::string file;  ///< basename of the source report
  std::string name;  ///< report "name" ("table3_recovery_quality", ...)
  std::int64_t created_unix = 0;
  double wall_seconds = 0.0;
  obs::JsonValue quality;
  obs::JsonValue memory;  ///< rss_bytes / rss_peak_bytes / subsystems[]
  /// The report's "hw_counters" section (availability, calibration peaks,
  /// per-op roofline coordinates, matmul sweep). Null for runs predating
  /// the section; {"available": false, ...} on perf-restricted hosts.
  obs::JsonValue hw_counters;
};

/// Re-serializes a parsed JsonValue with JsonWriter's deterministic number
/// formatting. Object keys come out sorted (JsonValue stores a std::map),
/// so output is stable regardless of input key order.
std::string WriteJsonValue(const obs::JsonValue& value);

/// Parses one BENCH_*.json report. Errors on unreadable files, malformed
/// JSON, or a document without a "name" member.
StatusOr<BenchRunSummary> LoadBenchReport(const std::string& path);

/// Loads every BENCH_*.json directly inside `dir`, sorted by
/// (created_unix, name, file) so older runs come first. Errors when the
/// directory cannot be read, a report is malformed, or no report is found.
StatusOr<std::vector<BenchRunSummary>> LoadBenchReports(const std::string& dir);

/// The dashboard's embedded data payload: {"runs":[...]} with one entry per
/// summary, in input order, quality sections included verbatim (re-encoded
/// deterministically). This exact string is what the golden test pins.
std::string BuildDashboardPayload(const std::vector<BenchRunSummary>& runs);

/// Renders the self-contained HTML quality dashboard (inline CSS/JS, no
/// external resources): accuracy-vs-ε curves, run-over-run history,
/// reliability diagrams, slice tables, and the drift table, all driven by
/// the embedded payload.
std::string RenderQualityDashboard(const std::vector<BenchRunSummary>& runs);

}  // namespace trmma

#endif  // TRMMA_EVAL_REPORT_HTML_H_
