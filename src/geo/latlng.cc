#include "geo/latlng.h"

#include <cmath>

namespace trmma {
namespace {

constexpr double kEarthRadiusMeters = 6371008.8;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double Vec2::Norm() const { return std::sqrt(x * x + y * y); }

double HaversineMeters(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                       std::sin(dlng / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(s)));
}

LocalProjection::LocalProjection(const LatLng& origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lng_ =
      kEarthRadiusMeters * kDegToRad * std::cos(origin.lat * kDegToRad);
}

Vec2 LocalProjection::ToMeters(const LatLng& p) const {
  return {(p.lng - origin_.lng) * meters_per_deg_lng_,
          (p.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLng LocalProjection::ToLatLng(const Vec2& v) const {
  return {origin_.lat + v.y / meters_per_deg_lat_,
          origin_.lng + v.x / meters_per_deg_lng_};
}

}  // namespace trmma
