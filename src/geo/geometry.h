#ifndef TRMMA_GEO_GEOMETRY_H_
#define TRMMA_GEO_GEOMETRY_H_

#include "geo/latlng.h"

namespace trmma {

/// Axis-aligned bounding box in local-meter coordinates.
struct BBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// Returns the smallest box covering both inputs.
  static BBox Union(const BBox& a, const BBox& b);

  /// Box covering a line segment.
  static BBox OfSegment(const Vec2& a, const Vec2& b);

  /// Enlarges the box by `margin` meters on every side.
  BBox Expanded(double margin) const;

  bool Contains(const Vec2& p) const;

  /// Minimum distance from `p` to the box (0 when inside).
  double DistanceTo(const Vec2& p) const;

  double CenterX() const { return 0.5 * (min_x + max_x); }
  double CenterY() const { return 0.5 * (min_y + max_y); }
};

/// Result of projecting a point onto a segment.
struct SegmentProjection {
  double distance = 0.0;  ///< perpendicular (clamped) distance in meters
  double ratio = 0.0;     ///< position ratio in [0,1] along the segment
  Vec2 point;             ///< the closest point on the segment
};

/// Projects `p` onto segment (a,b); the ratio is clamped to [0,1] so the
/// closest point always lies on the segment (paper Def. 5).
SegmentProjection ProjectOntoSegment(const Vec2& p, const Vec2& a,
                                     const Vec2& b);

/// Point on segment (a,b) at position ratio r in [0,1].
Vec2 InterpolateOnSegment(const Vec2& a, const Vec2& b, double r);

/// Cosine similarity between two vectors; 0 when either is ~zero length.
double CosineSimilarity(const Vec2& u, const Vec2& v);

}  // namespace trmma

#endif  // TRMMA_GEO_GEOMETRY_H_
