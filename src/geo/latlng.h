#ifndef TRMMA_GEO_LATLNG_H_
#define TRMMA_GEO_LATLNG_H_

namespace trmma {

/// A WGS-84 coordinate in degrees.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;

  friend bool operator==(const LatLng& a, const LatLng& b) {
    return a.lat == b.lat && a.lng == b.lng;
  }
};

/// A point in a local planar frame, in meters (x east, y north).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double Norm() const;
};

/// Great-circle distance in meters between two coordinates.
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Equirectangular projection around a reference latitude. All geometry in
/// this project operates on city-scale extents (<~50km) where this local
/// planar approximation is accurate to well under GPS noise levels.
class LocalProjection {
 public:
  LocalProjection() = default;

  /// Creates a projection centered at `origin`.
  explicit LocalProjection(const LatLng& origin);

  /// Projects a coordinate to local meters.
  Vec2 ToMeters(const LatLng& p) const;

  /// Inverse projection from local meters to a coordinate.
  LatLng ToLatLng(const Vec2& v) const;

  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
  double meters_per_deg_lat_ = 0.0;
  double meters_per_deg_lng_ = 0.0;
};

}  // namespace trmma

#endif  // TRMMA_GEO_LATLNG_H_
