#include "geo/geometry.h"

#include <algorithm>
#include <cmath>

namespace trmma {

BBox BBox::Union(const BBox& a, const BBox& b) {
  return {std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
          std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y)};
}

BBox BBox::OfSegment(const Vec2& a, const Vec2& b) {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
          std::max(a.y, b.y)};
}

BBox BBox::Expanded(double margin) const {
  return {min_x - margin, min_y - margin, max_x + margin, max_y + margin};
}

bool BBox::Contains(const Vec2& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

double BBox::DistanceTo(const Vec2& p) const {
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

SegmentProjection ProjectOntoSegment(const Vec2& p, const Vec2& a,
                                     const Vec2& b) {
  SegmentProjection out;
  const Vec2 ab = b - a;
  const double len2 = ab.Dot(ab);
  double t = 0.0;
  if (len2 > 0.0) {
    t = std::clamp((p - a).Dot(ab) / len2, 0.0, 1.0);
  }
  out.ratio = t;
  out.point = a + ab * t;
  out.distance = (p - out.point).Norm();
  return out;
}

Vec2 InterpolateOnSegment(const Vec2& a, const Vec2& b, double r) {
  return a + (b - a) * r;
}

double CosineSimilarity(const Vec2& u, const Vec2& v) {
  const double nu = u.Norm();
  const double nv = v.Norm();
  if (nu < 1e-9 || nv < 1e-9) return 0.0;
  return std::clamp(u.Dot(v) / (nu * nv), -1.0, 1.0);
}

}  // namespace trmma
