#ifndef TRMMA_GRAPH_ROUTE_H_
#define TRMMA_GRAPH_ROUTE_H_

#include <vector>

#include "graph/road_network.h"

namespace trmma {

/// A route R: a sequence of road segments forming a path on G (paper
/// Def. 3). Consecutive segments are connected (seg[i].to == seg[i+1].from)
/// and, per the paper, consecutive segments differ.
using Route = std::vector<SegmentId>;

/// True iff every consecutive pair of segments is connected in `network`.
bool IsConnectedRoute(const RoadNetwork& network, const Route& route);

/// Total length of all segments in the route, in meters.
double RouteLength(const RoadNetwork& network, const Route& route);

/// Appends `suffix` to `route`, dropping the first segment of `suffix`
/// when it repeats the current tail (used when stitching per-gap routes in
/// MMA Algorithm 1 lines 10-13).
void AppendRoute(Route& route, const Route& suffix);

/// Removes immediate duplicates (e.g. <e1,e1,e2> -> <e1,e2>).
Route DeduplicateConsecutive(const Route& route);

/// Distance along `route` from position (index i1, ratio r1) to (i2, r2).
/// Requires i1 <= i2 (and r1 <= r2 when equal); asserts on a malformed
/// request.
double DistanceAlongRoute(const RoadNetwork& network, const Route& route,
                          int i1, double r1, int i2, double r2);

}  // namespace trmma

#endif  // TRMMA_GRAPH_ROUTE_H_
