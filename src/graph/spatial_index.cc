#include "graph/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "obs/mem_stats.h"
#include "obs/trace.h"

namespace trmma {
namespace {

/// Sort-Tile-Recursive packing order: sorts `items` in place so that
/// consecutive runs of `capacity` items form spatially coherent tiles.
/// `center` extracts the (x,y) center used for tiling.
template <typename T, typename CenterFn>
void StrSort(std::vector<T>& items, int capacity, CenterFn center) {
  const size_t n = items.size();
  if (n == 0) return;
  const size_t num_pages = (n + capacity - 1) / capacity;
  const size_t num_slabs =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_pages))));
  const size_t slab_size = num_slabs * capacity;

  std::sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    return center(a).x < center(b).x;
  });
  for (size_t begin = 0; begin < n; begin += slab_size) {
    const size_t end = std::min(begin + slab_size, n);
    std::sort(items.begin() + begin, items.begin() + end,
              [&](const T& a, const T& b) { return center(a).y < center(b).y; });
  }
}

}  // namespace

SegmentRTree::SegmentRTree(const RoadNetwork& network, int leaf_capacity)
    : network_(network), leaf_capacity_(leaf_capacity) {
  TRMMA_CHECK(network.finalized());
  TRMMA_CHECK_GT(leaf_capacity, 1);
  const int n = network.num_segments();
  TRMMA_CHECK_GT(n, 0);

  entries_.reserve(n);
  for (SegmentId id = 0; id < n; ++id) {
    entries_.push_back(Entry{
        BBox::OfSegment(network.SegmentStartXy(id), network.SegmentEndXy(id)),
        id});
  }

  // Pack the leaf level: physically reorder entries so each leaf covers a
  // contiguous range.
  StrSort(entries_, leaf_capacity_, [](const Entry& e) {
    return Vec2{e.box.CenterX(), e.box.CenterY()};
  });
  std::vector<int> level;
  for (int begin = 0; begin < n; begin += leaf_capacity_) {
    const int count = std::min(leaf_capacity_, n - begin);
    BBox box = entries_[begin].box;
    for (int i = 1; i < count; ++i) {
      box = BBox::Union(box, entries_[begin + i].box);
    }
    nodes_.push_back(TreeNode{box, begin, count, /*is_leaf=*/true});
    level.push_back(static_cast<int>(nodes_.size()) - 1);
  }
  height_ = 1;

  // Pack internal levels bottom-up until a single root remains. Children of
  // an internal node are stored contiguously in nodes_, so each level is
  // rebuilt in STR order and appended.
  while (level.size() > 1) {
    StrSort(level, leaf_capacity_, [this](int idx) {
      return Vec2{nodes_[idx].box.CenterX(), nodes_[idx].box.CenterY()};
    });
    // Re-append the level's nodes in sorted order so parents can reference
    // contiguous ranges.
    const int base = static_cast<int>(nodes_.size());
    for (int idx : level) nodes_.push_back(nodes_[idx]);

    std::vector<int> parents;
    const int level_size = static_cast<int>(level.size());
    for (int begin = 0; begin < level_size; begin += leaf_capacity_) {
      const int count = std::min(leaf_capacity_, level_size - begin);
      BBox box = nodes_[base + begin].box;
      for (int i = 1; i < count; ++i) {
        box = BBox::Union(box, nodes_[base + begin + i].box);
      }
      nodes_.push_back(
          TreeNode{box, base + begin, count, /*is_leaf=*/false});
      parents.push_back(static_cast<int>(nodes_.size()) - 1);
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.front();
  obs::MemSet(obs::MemTag::kRtree, ApproxBytes());
}

SegmentHit SegmentRTree::Evaluate(SegmentId id, const Vec2& query) const {
  const SegmentProjection proj = network_.ProjectOnto(id, query);
  return SegmentHit{id, proj.distance, proj.ratio};
}

std::vector<SegmentHit> SegmentRTree::KNearest(const Vec2& query,
                                               int k) const {
  if (k <= 0) return {};
  TRMMA_SPAN("rtree.knn");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const queries =
        obs::MetricRegistry::Global().GetCounter("rtree.knn.queries");
    queries->Increment();
  }

  // Best-first search: frontier ordered by lower-bound (bbox) distance; a
  // node is expanded only while its bound can beat the current k-th best.
  struct Frontier {
    double bound;
    int node;
    bool operator<(const Frontier& o) const { return bound > o.bound; }
  };
  auto worse = [](const SegmentHit& a, const SegmentHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.segment < b.segment;
  };

  std::priority_queue<Frontier> frontier;
  frontier.push({nodes_[root_].box.DistanceTo(query), root_});
  // Max-heap of the current k best hits (worst on top).
  std::priority_queue<SegmentHit, std::vector<SegmentHit>, decltype(worse)>
      best(worse);

  while (!frontier.empty()) {
    const Frontier top = frontier.top();
    frontier.pop();
    if (static_cast<int>(best.size()) >= k &&
        top.bound > best.top().distance) {
      break;
    }
    const TreeNode& node = nodes_[top.node];
    if (node.is_leaf) {
      for (int i = 0; i < node.num_children; ++i) {
        const Entry& entry = entries_[node.first_child + i];
        SegmentHit hit = Evaluate(entry.segment, query);
        if (static_cast<int>(best.size()) < k) {
          best.push(hit);
        } else if (worse(hit, best.top())) {
          best.pop();
          best.push(hit);
        }
      }
    } else {
      for (int i = 0; i < node.num_children; ++i) {
        const int child = node.first_child + i;
        const double bound = nodes_[child].box.DistanceTo(query);
        if (static_cast<int>(best.size()) < k ||
            bound <= best.top().distance) {
          frontier.push({bound, child});
        }
      }
    }
  }

  std::vector<SegmentHit> out(best.size());
  for (int i = static_cast<int>(best.size()) - 1; i >= 0; --i) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

std::vector<SegmentHit> SegmentRTree::WithinRadius(const Vec2& query,
                                                   double radius) const {
  TRMMA_SPAN("rtree.within_radius");
  std::vector<SegmentHit> out;
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const TreeNode& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.box.DistanceTo(query) > radius) continue;
    if (node.is_leaf) {
      for (int i = 0; i < node.num_children; ++i) {
        const Entry& entry = entries_[node.first_child + i];
        SegmentHit hit = Evaluate(entry.segment, query);
        if (hit.distance <= radius) out.push_back(hit);
      }
    } else {
      for (int i = 0; i < node.num_children; ++i) {
        stack.push_back(node.first_child + i);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const SegmentHit& a, const SegmentHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.segment < b.segment;
  });
  return out;
}

}  // namespace trmma
