#ifndef TRMMA_GRAPH_SPATIAL_INDEX_H_
#define TRMMA_GRAPH_SPATIAL_INDEX_H_

#include <vector>

#include "geo/geometry.h"
#include "graph/road_network.h"

namespace trmma {

/// A segment returned by a spatial query, with its projection onto the
/// query point.
struct SegmentHit {
  SegmentId segment = kInvalidSegment;
  double distance = 0.0;  ///< perpendicular distance from the query point
  double ratio = 0.0;     ///< position ratio of the projection
};

/// STR-packed R-tree over road segments (paper §IV-A cites STR packing
/// [42]); supports the top-k_c nearest-segment query that defines the
/// candidate set C_{p_i} (Def. 8) plus radius queries for the HMM family.
///
/// The index is immutable after construction: road networks do not change
/// during an experiment, so a bulk-loaded packed tree gives near-optimal
/// fanout utilization without any balancing logic.
class SegmentRTree {
 public:
  /// Builds the index over all segments of a finalized network.
  /// `leaf_capacity` is the R-tree node fanout B.
  explicit SegmentRTree(const RoadNetwork& network, int leaf_capacity = 16);

  SegmentRTree(const SegmentRTree&) = delete;
  SegmentRTree& operator=(const SegmentRTree&) = delete;

  /// Returns up to k nearest segments by perpendicular distance, sorted
  /// ascending (ties broken by segment id for determinism).
  std::vector<SegmentHit> KNearest(const Vec2& query, int k) const;

  /// Returns all segments within `radius` meters, sorted by distance.
  std::vector<SegmentHit> WithinRadius(const Vec2& query,
                                       double radius) const;

  /// Height of the packed tree (1 for a single leaf level).
  int height() const { return height_; }

  /// Rough heap footprint (capacity-based) of entries and tree nodes; feeds
  /// the `rtree` subsystem memory gauge after construction.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(entries_.capacity() * sizeof(Entry) +
                                nodes_.capacity() * sizeof(TreeNode));
  }

 private:
  struct TreeNode {
    BBox box;
    int first_child = 0;  ///< index into nodes_ (internal) or entries_ (leaf)
    int num_children = 0;
    bool is_leaf = false;
  };

  struct Entry {
    BBox box;
    SegmentId segment = kInvalidSegment;
  };

  SegmentHit Evaluate(SegmentId id, const Vec2& query) const;

  const RoadNetwork& network_;
  int leaf_capacity_;
  std::vector<Entry> entries_;
  std::vector<TreeNode> nodes_;
  int root_ = -1;
  int height_ = 0;
};

}  // namespace trmma

#endif  // TRMMA_GRAPH_SPATIAL_INDEX_H_
