#ifndef TRMMA_GRAPH_SHORTEST_PATH_H_
#define TRMMA_GRAPH_SHORTEST_PATH_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/road_network.h"

namespace trmma {

/// Result of a shortest-path query.
struct PathResult {
  bool found = false;
  double distance_m = 0.0;
  /// Segments along the path, in travel order. For SegmentToSegment this
  /// includes the source and destination segments themselves.
  std::vector<SegmentId> segments;
};

/// Dijkstra-based shortest paths over a road network, weighted by segment
/// length. A reusable engine: internal arrays are allocated once and reset
/// lazily between queries, so repeated calls (HMM transitions, metric
/// computation) stay cheap.
class ShortestPathEngine {
 public:
  explicit ShortestPathEngine(const RoadNetwork& network);

  ShortestPathEngine(const ShortestPathEngine&) = delete;
  ShortestPathEngine& operator=(const ShortestPathEngine&) = delete;

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Shortest node-to-node path. Stops early when `dst` is settled or all
  /// reachable nodes within `max_dist_m` are exhausted.
  PathResult NodeToNode(NodeId src, NodeId dst,
                        double max_dist_m = kInfinity);

  /// Shortest route from segment `from` to segment `to`, both included.
  /// distance_m is the gap length between from's exit and to's entrance
  /// (0 when from == to or they are adjacent).
  PathResult SegmentToSegment(SegmentId from, SegmentId to,
                              double max_dist_m = kInfinity);

  /// Network distance between position `r1` on `e1` and position `r2` on
  /// `e2`, traveling forward. Returns infinity when unreachable within
  /// `max_dist_m`.
  double PointToPointDistance(SegmentId e1, double r1, SegmentId e2, double r2,
                              double max_dist_m = kInfinity);

  /// Runs bounded Dijkstra from `src`, invoking `visit(node, dist,
  /// via_segment)` for every settled node (including src with via
  /// kInvalidSegment).
  void Bounded(NodeId src, double max_dist_m,
               const std::function<void(NodeId, double, SegmentId)>& visit);

 private:
  void Reset();

  const RoadNetwork& network_;
  std::vector<double> dist_;
  std::vector<SegmentId> via_;      ///< incoming segment on the best path
  std::vector<int> touched_;        ///< nodes to reset lazily
};

}  // namespace trmma

#endif  // TRMMA_GRAPH_SHORTEST_PATH_H_
