#include "graph/route.h"

#include "common/logging.h"

namespace trmma {

bool IsConnectedRoute(const RoadNetwork& network, const Route& route) {
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    if (network.segment(route[i]).to != network.segment(route[i + 1]).from) {
      return false;
    }
  }
  return true;
}

double RouteLength(const RoadNetwork& network, const Route& route) {
  double total = 0.0;
  for (SegmentId sid : route) total += network.segment(sid).length_m;
  return total;
}

void AppendRoute(Route& route, const Route& suffix) {
  size_t start = 0;
  if (!route.empty() && !suffix.empty() && suffix.front() == route.back()) {
    start = 1;
  }
  for (size_t i = start; i < suffix.size(); ++i) {
    route.push_back(suffix[i]);
  }
}

Route DeduplicateConsecutive(const Route& route) {
  Route out;
  for (SegmentId sid : route) {
    if (out.empty() || out.back() != sid) out.push_back(sid);
  }
  return out;
}

double DistanceAlongRoute(const RoadNetwork& network, const Route& route,
                          int i1, double r1, int i2, double r2) {
  TRMMA_CHECK_GE(i1, 0);
  TRMMA_CHECK_LT(static_cast<size_t>(i2), route.size());
  TRMMA_CHECK_LE(i1, i2);
  if (i1 == i2) {
    TRMMA_CHECK_LE(r1, r2 + 1e-12);
    return (r2 - r1) * network.segment(route[i1]).length_m;
  }
  double total = (1.0 - r1) * network.segment(route[i1]).length_m;
  for (int i = i1 + 1; i < i2; ++i) {
    total += network.segment(route[i]).length_m;
  }
  total += r2 * network.segment(route[i2]).length_m;
  return total;
}

}  // namespace trmma
