#ifndef TRMMA_GRAPH_ROAD_NETWORK_H_
#define TRMMA_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geo/geometry.h"
#include "geo/latlng.h"

namespace trmma {

using NodeId = int32_t;
using SegmentId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr SegmentId kInvalidSegment = -1;

/// An intersection or road end (paper Def. 1).
struct RoadNode {
  LatLng pos;
  Vec2 xy;  ///< local-meter coordinates, filled by Finalize()
};

/// A directed road segment e=(u,v) (paper Def. 1).
struct RoadSegment {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double length_m = 0.0;    ///< planar length, filled by Finalize()
  double speed_mps = 13.9;  ///< free-flow speed used by the simulator
};

/// A directed road network G=(V,E). Build with AddNode/AddSegment, then call
/// Finalize() exactly once before using any query method.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;

  /// Adds an intersection at the given coordinate and returns its id.
  NodeId AddNode(const LatLng& pos);

  /// Adds a directed segment. Returns an error for bad endpoints or
  /// nonpositive speed.
  StatusOr<SegmentId> AddSegment(NodeId from, NodeId to, double speed_mps);

  /// Computes the local projection, planar coordinates, segment lengths and
  /// adjacency lists. Must be called once after construction.
  Status Finalize();

  bool finalized() const { return finalized_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_segments() const { return static_cast<int>(segments_.size()); }

  const RoadNode& node(NodeId id) const { return nodes_[id]; }
  const RoadSegment& segment(SegmentId id) const { return segments_[id]; }

  /// Segments leaving / entering a node.
  const std::vector<SegmentId>& OutSegments(NodeId id) const {
    return out_segments_[id];
  }
  const std::vector<SegmentId>& InSegments(NodeId id) const {
    return in_segments_[id];
  }

  /// Segments that can directly follow `id` on a route (those leaving
  /// segment(id).to).
  const std::vector<SegmentId>& NextSegments(SegmentId id) const {
    return out_segments_[segments_[id].to];
  }

  /// Planar endpoints of a segment.
  Vec2 SegmentStartXy(SegmentId id) const { return nodes_[segments_[id].from].xy; }
  Vec2 SegmentEndXy(SegmentId id) const { return nodes_[segments_[id].to].xy; }

  /// Planar point at position ratio r on a segment.
  Vec2 PointOnSegment(SegmentId id, double r) const;

  /// Coordinate at position ratio r on a segment.
  LatLng LatLngOnSegment(SegmentId id, double r) const;

  /// Perpendicular projection of a planar point onto a segment.
  SegmentProjection ProjectOnto(SegmentId id, const Vec2& p) const;

  const LocalProjection& projection() const { return projection_; }

  /// Maximum out-degree over all nodes (the paper's deg~).
  int MaxOutDegree() const;

  /// Rough heap footprint (capacity-based) of nodes, segments and adjacency
  /// lists; feeds the `graph` subsystem memory gauge after Finalize().
  int64_t ApproxBytes() const;

 private:
  bool finalized_ = false;
  std::vector<RoadNode> nodes_;
  std::vector<RoadSegment> segments_;
  std::vector<std::vector<SegmentId>> out_segments_;
  std::vector<std::vector<SegmentId>> in_segments_;
  LocalProjection projection_;
};

}  // namespace trmma

#endif  // TRMMA_GRAPH_ROAD_NETWORK_H_
