#ifndef TRMMA_GRAPH_TRANSITION_STATS_H_
#define TRMMA_GRAPH_TRANSITION_STATS_H_

#include <unordered_map>
#include <vector>

#include "graph/road_network.h"
#include "graph/route.h"
#include "graph/shortest_path.h"

namespace trmma {

/// Historical segment-to-segment transition counts harvested from training
/// routes, plus the DA-style route planner built on them (the "route
/// planning method relying on basic statistical counts" the paper adopts
/// from [2] for its own method and all baselines).
class TransitionStats {
 public:
  explicit TransitionStats(const RoadNetwork& network);

  TransitionStats(const TransitionStats&) = delete;
  TransitionStats& operator=(const TransitionStats&) = delete;

  /// Accumulates every consecutive segment pair of `route`.
  void AddRoute(const Route& route);

  /// Observed count for the transition from -> to (0 if never seen).
  int Count(SegmentId from, SegmentId to) const;

  /// Total outgoing observations from `from`.
  int TotalFrom(SegmentId from) const;

  /// Laplace-smoothed transition probability P(to | from) over the physical
  /// successors of `from`.
  double Probability(SegmentId from, SegmentId to) const;

 private:
  const RoadNetwork& network_;
  std::vector<std::unordered_map<SegmentId, int>> counts_;
  std::vector<int> totals_;
};

/// Plans routes between segments preferring historically popular
/// transitions. Cost of entering segment e' from e is
///   length(e') * (1 + kPopularityWeight * (-log P(e'|e)))
/// so the planner stays goal-directed (length term) but favors observed
/// driving behaviour; with no statistics it degrades to shortest path.
class DaRoutePlanner {
 public:
  DaRoutePlanner(const RoadNetwork& network, const TransitionStats& stats);

  DaRoutePlanner(const DaRoutePlanner&) = delete;
  DaRoutePlanner& operator=(const DaRoutePlanner&) = delete;

  /// Route from `from` to `to`, both included. `max_cost` caps the search
  /// (scaled cost units ~= meters). found=false when disconnected within
  /// the budget.
  PathResult Plan(SegmentId from, SegmentId to, double max_cost = 3.0e4);

 private:
  const RoadNetwork& network_;
  const TransitionStats& stats_;
  std::vector<double> cost_;
  std::vector<SegmentId> prev_;
  std::vector<int> touched_;
};

}  // namespace trmma

#endif  // TRMMA_GRAPH_TRANSITION_STATS_H_
