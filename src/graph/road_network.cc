#include "graph/road_network.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/mem_stats.h"

namespace trmma {

NodeId RoadNetwork::AddNode(const LatLng& pos) {
  TRMMA_CHECK(!finalized_);
  nodes_.push_back(RoadNode{pos, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

StatusOr<SegmentId> RoadNetwork::AddSegment(NodeId from, NodeId to,
                                            double speed_mps) {
  if (finalized_) {
    return Status::FailedPrecondition("AddSegment after Finalize");
  }
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return Status::InvalidArgument("segment endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop segments are not supported");
  }
  if (speed_mps <= 0.0) {
    return Status::InvalidArgument("speed must be positive");
  }
  segments_.push_back(RoadSegment{from, to, 0.0, speed_mps});
  return static_cast<SegmentId>(segments_.size() - 1);
}

Status RoadNetwork::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  if (nodes_.empty()) return Status::FailedPrecondition("no nodes");

  // Center the projection on the centroid of all intersections.
  double lat = 0.0;
  double lng = 0.0;
  for (const auto& n : nodes_) {
    lat += n.pos.lat;
    lng += n.pos.lng;
  }
  projection_ = LocalProjection(
      LatLng{lat / nodes_.size(), lng / nodes_.size()});
  for (auto& n : nodes_) n.xy = projection_.ToMeters(n.pos);

  out_segments_.assign(nodes_.size(), {});
  in_segments_.assign(nodes_.size(), {});
  for (SegmentId id = 0; id < num_segments(); ++id) {
    auto& seg = segments_[id];
    seg.length_m = (nodes_[seg.to].xy - nodes_[seg.from].xy).Norm();
    if (seg.length_m <= 0.0) {
      return Status::InvalidArgument("zero-length segment " +
                                     std::to_string(id));
    }
    out_segments_[seg.from].push_back(id);
    in_segments_[seg.to].push_back(id);
  }
  finalized_ = true;
  obs::MemSet(obs::MemTag::kGraph, ApproxBytes());
  return Status::OK();
}

int64_t RoadNetwork::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(nodes_.capacity() * sizeof(RoadNode) +
                                       segments_.capacity() *
                                           sizeof(RoadSegment));
  for (const auto* adj : {&out_segments_, &in_segments_}) {
    bytes += static_cast<int64_t>(adj->capacity() *
                                  sizeof(std::vector<SegmentId>));
    for (const auto& v : *adj) {
      bytes += static_cast<int64_t>(v.capacity() * sizeof(SegmentId));
    }
  }
  return bytes;
}

Vec2 RoadNetwork::PointOnSegment(SegmentId id, double r) const {
  const auto& seg = segments_[id];
  return InterpolateOnSegment(nodes_[seg.from].xy, nodes_[seg.to].xy, r);
}

LatLng RoadNetwork::LatLngOnSegment(SegmentId id, double r) const {
  return projection_.ToLatLng(PointOnSegment(id, r));
}

SegmentProjection RoadNetwork::ProjectOnto(SegmentId id, const Vec2& p) const {
  const auto& seg = segments_[id];
  return ProjectOntoSegment(p, nodes_[seg.from].xy, nodes_[seg.to].xy);
}

int RoadNetwork::MaxOutDegree() const {
  int best = 0;
  for (const auto& outs : out_segments_) {
    best = std::max(best, static_cast<int>(outs.size()));
  }
  return best;
}

}  // namespace trmma
