#include "graph/ubodt.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/mem_stats.h"
#include "obs/trace.h"

namespace trmma {
namespace {

/// Hit/miss counters for the bounded table. A miss is not an error — it
/// means the pair is farther apart than delta and the caller falls back to
/// Dijkstra — but the ratio tells whether delta fits the workload.
void CountLookup(bool hit) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter* const hits =
      obs::MetricRegistry::Global().GetCounter("ubodt.lookup.hit");
  static obs::Counter* const misses =
      obs::MetricRegistry::Global().GetCounter("ubodt.lookup.miss");
  (hit ? hits : misses)->Increment();
}

}  // namespace

Ubodt::Ubodt(const RoadNetwork& network, double delta_m)
    : network_(network), delta_m_(delta_m) {
  TRMMA_SPAN("ubodt.build");
  TRMMA_CHECK(network.finalized());
  ShortestPathEngine engine(network);
  for (NodeId src = 0; src < network.num_nodes(); ++src) {
    engine.Bounded(src, delta_m, [&](NodeId u, double d, SegmentId via) {
      if (u == src) return;
      // Nodes settle in distance order, so the predecessor's row exists by
      // the time we need it to derive the first hop.
      const RoadSegment& seg = network_.segment(via);
      SegmentId first = via;
      if (seg.from != src) {
        auto it = table_.find(Key(src, seg.from));
        TRMMA_CHECK(it != table_.end());
        first = it->second.first_segment;
      }
      table_.emplace(Key(src, u), Row{static_cast<float>(d), first});
    });
  }
  obs::MemSet(obs::MemTag::kUbodt, ApproxBytes());
}

double Ubodt::Distance(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  auto it = table_.find(Key(src, dst));
  CountLookup(it != table_.end());
  if (it == table_.end()) return ShortestPathEngine::kInfinity;
  return it->second.distance;
}

PathResult Ubodt::Path(NodeId src, NodeId dst) const {
  PathResult result;
  if (src == dst) {
    result.found = true;
    return result;
  }
  auto it = table_.find(Key(src, dst));
  CountLookup(it != table_.end());
  if (it == table_.end()) return result;
  result.found = true;
  result.distance_m = it->second.distance;
  NodeId at = src;
  while (at != dst) {
    auto row = table_.find(Key(at, dst));
    TRMMA_CHECK(row != table_.end());
    const SegmentId sid = row->second.first_segment;
    result.segments.push_back(sid);
    at = network_.segment(sid).to;
  }
  return result;
}

}  // namespace trmma
