#include "graph/transition_stats.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "graph/shortest_path.h"

namespace trmma {
namespace {

// Strength of the historical-popularity term in the planner cost.
constexpr double kPopularityWeight = 0.25;

}  // namespace

TransitionStats::TransitionStats(const RoadNetwork& network)
    : network_(network),
      counts_(network.num_segments()),
      totals_(network.num_segments(), 0) {}

void TransitionStats::AddRoute(const Route& route) {
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    const SegmentId from = route[i];
    const SegmentId to = route[i + 1];
    if (from == to) continue;
    ++counts_[from][to];
    ++totals_[from];
  }
}

int TransitionStats::Count(SegmentId from, SegmentId to) const {
  const auto& row = counts_[from];
  auto it = row.find(to);
  return it == row.end() ? 0 : it->second;
}

int TransitionStats::TotalFrom(SegmentId from) const { return totals_[from]; }

double TransitionStats::Probability(SegmentId from, SegmentId to) const {
  const int fanout =
      static_cast<int>(network_.NextSegments(from).size());
  if (fanout == 0) return 0.0;
  // Laplace smoothing over the physical successors.
  return (Count(from, to) + 1.0) / (totals_[from] + fanout);
}

DaRoutePlanner::DaRoutePlanner(const RoadNetwork& network,
                               const TransitionStats& stats)
    : network_(network), stats_(stats) {
  cost_.assign(network.num_segments(), ShortestPathEngine::kInfinity);
  prev_.assign(network.num_segments(), kInvalidSegment);
}

PathResult DaRoutePlanner::Plan(SegmentId from, SegmentId to,
                                double max_cost) {
  PathResult result;
  if (from == to) {
    result.found = true;
    result.segments = {from};
    return result;
  }
  for (int sid : touched_) {
    cost_[sid] = ShortestPathEngine::kInfinity;
    prev_[sid] = kInvalidSegment;
  }
  touched_.clear();

  using QueueItem = std::pair<double, SegmentId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  cost_[from] = 0.0;
  touched_.push_back(from);
  queue.push({0.0, from});

  while (!queue.empty()) {
    const auto [c, e] = queue.top();
    queue.pop();
    if (c > cost_[e]) continue;
    if (e == to) break;
    if (c > max_cost) break;
    for (SegmentId next : network_.NextSegments(e)) {
      if (next == e) continue;
      const double nll = -std::log(stats_.Probability(e, next));
      const double step = network_.segment(next).length_m *
                          (1.0 + kPopularityWeight * nll);
      const double nc = c + step;
      if (nc < cost_[next] && nc <= max_cost) {
        if (cost_[next] == ShortestPathEngine::kInfinity) {
          touched_.push_back(next);
        }
        cost_[next] = nc;
        prev_[next] = e;
        queue.push({nc, next});
      }
    }
  }

  if (cost_[to] == ShortestPathEngine::kInfinity) return result;
  result.found = true;
  result.distance_m = cost_[to];
  for (SegmentId at = to; at != kInvalidSegment; at = prev_[at]) {
    result.segments.push_back(at);
  }
  std::reverse(result.segments.begin(), result.segments.end());
  return result;
}

}  // namespace trmma
