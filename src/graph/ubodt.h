#ifndef TRMMA_GRAPH_UBODT_H_
#define TRMMA_GRAPH_UBODT_H_

#include <unordered_map>
#include <vector>

#include "graph/road_network.h"
#include "graph/shortest_path.h"

namespace trmma {

/// Upper-Bounded Origin-Destination Table (the precomputation at the heart
/// of FMM [28]): all-pairs shortest paths whose length does not exceed
/// `delta`, stored as (origin node, destination node) -> (distance, first
/// segment on the path). Lookups are O(1); full paths are reconstructed by
/// chaining first segments.
class Ubodt {
 public:
  /// Precomputes the table with bounded Dijkstra from every node.
  Ubodt(const RoadNetwork& network, double delta_m);

  Ubodt(const Ubodt&) = delete;
  Ubodt& operator=(const Ubodt&) = delete;

  /// Shortest distance from src to dst, or infinity if above delta.
  double Distance(NodeId src, NodeId dst) const;

  /// Reconstructs the segment path from src to dst; empty when src == dst.
  /// Returns found=false when the pair is not in the table.
  PathResult Path(NodeId src, NodeId dst) const;

  double delta() const { return delta_m_; }
  size_t size() const { return table_.size(); }

  /// Rough heap footprint of the table (buckets + one node per entry, the
  /// libstdc++ unordered_map layout); feeds the `ubodt` subsystem memory
  /// gauge after construction.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(
        table_.bucket_count() * sizeof(void*) +
        table_.size() * (sizeof(std::pair<const uint64_t, Row>) +
                         2 * sizeof(void*)));
  }

 private:
  struct Row {
    float distance = 0.0f;
    SegmentId first_segment = kInvalidSegment;
  };

  static uint64_t Key(NodeId src, NodeId dst) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
           static_cast<uint32_t>(dst);
  }

  const RoadNetwork& network_;
  double delta_m_;
  std::unordered_map<uint64_t, Row> table_;
};

}  // namespace trmma

#endif  // TRMMA_GRAPH_UBODT_H_
