#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "obs/trace.h"

namespace trmma {
namespace {

/// Settled-node count per Dijkstra run: the natural cost measure for the
/// routing hot path (bounded searches make wall time misleading on its own).
void RecordSettled(size_t touched) {
  if (!obs::MetricsEnabled()) return;
  static obs::Histogram* const settled =
      obs::MetricRegistry::Global().GetHistogram(
          "sp.dijkstra.settled", {},
          obs::Histogram::ExponentialBounds(1.0, 2.0, 22));
  static obs::Counter* const runs =
      obs::MetricRegistry::Global().GetCounter("sp.dijkstra.runs");
  settled->Observe(static_cast<double>(touched));
  runs->Increment();
}

}  // namespace

ShortestPathEngine::ShortestPathEngine(const RoadNetwork& network)
    : network_(network) {
  TRMMA_CHECK(network.finalized());
  dist_.assign(network.num_nodes(), kInfinity);
  via_.assign(network.num_nodes(), kInvalidSegment);
}

void ShortestPathEngine::Reset() {
  for (int node : touched_) {
    dist_[node] = kInfinity;
    via_[node] = kInvalidSegment;
  }
  touched_.clear();
}

PathResult ShortestPathEngine::NodeToNode(NodeId src, NodeId dst,
                                          double max_dist_m) {
  TRMMA_SPAN("sp.node_to_node");
  TRMMA_CHECK_GE(src, 0);
  TRMMA_CHECK_LT(src, network_.num_nodes());
  TRMMA_CHECK_GE(dst, 0);
  TRMMA_CHECK_LT(dst, network_.num_nodes());
  Reset();

  using QueueItem = std::pair<double, NodeId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  dist_[src] = 0.0;
  via_[src] = kInvalidSegment;
  touched_.push_back(src);
  queue.push({0.0, src});

  PathResult result;
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist_[u]) continue;  // stale entry
    if (u == dst) break;
    if (d > max_dist_m) break;
    for (SegmentId sid : network_.OutSegments(u)) {
      const RoadSegment& seg = network_.segment(sid);
      const double nd = d + seg.length_m;
      if (nd < dist_[seg.to] && nd <= max_dist_m) {
        if (dist_[seg.to] == kInfinity) touched_.push_back(seg.to);
        dist_[seg.to] = nd;
        via_[seg.to] = sid;
        queue.push({nd, seg.to});
      }
    }
  }

  RecordSettled(touched_.size());
  if (dist_[dst] == kInfinity) return result;
  result.found = true;
  result.distance_m = dist_[dst];
  for (NodeId at = dst; via_[at] != kInvalidSegment;
       at = network_.segment(via_[at]).from) {
    result.segments.push_back(via_[at]);
  }
  std::reverse(result.segments.begin(), result.segments.end());
  return result;
}

PathResult ShortestPathEngine::SegmentToSegment(SegmentId from, SegmentId to,
                                                double max_dist_m) {
  PathResult result;
  if (from == to) {
    result.found = true;
    result.segments = {from};
    return result;
  }
  const RoadSegment& seg_from = network_.segment(from);
  const RoadSegment& seg_to = network_.segment(to);
  PathResult gap = NodeToNode(seg_from.to, seg_to.from, max_dist_m);
  if (!gap.found) return result;
  result.found = true;
  result.distance_m = gap.distance_m;
  result.segments.reserve(gap.segments.size() + 2);
  result.segments.push_back(from);
  for (SegmentId sid : gap.segments) result.segments.push_back(sid);
  result.segments.push_back(to);
  return result;
}

double ShortestPathEngine::PointToPointDistance(SegmentId e1, double r1,
                                                SegmentId e2, double r2,
                                                double max_dist_m) {
  const RoadSegment& s1 = network_.segment(e1);
  const RoadSegment& s2 = network_.segment(e2);
  if (e1 == e2 && r2 >= r1) {
    return (r2 - r1) * s1.length_m;
  }
  // Travel to the exit of e1, across the gap, then into e2.
  const double head = (1.0 - r1) * s1.length_m;
  const double tail = r2 * s2.length_m;
  PathResult gap = NodeToNode(s1.to, s2.from, max_dist_m);
  if (!gap.found) return kInfinity;
  return head + gap.distance_m + tail;
}

void ShortestPathEngine::Bounded(
    NodeId src, double max_dist_m,
    const std::function<void(NodeId, double, SegmentId)>& visit) {
  Reset();
  using QueueItem = std::pair<double, NodeId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  dist_[src] = 0.0;
  touched_.push_back(src);
  queue.push({0.0, src});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist_[u]) continue;
    visit(u, d, via_[u]);
    for (SegmentId sid : network_.OutSegments(u)) {
      const RoadSegment& seg = network_.segment(sid);
      const double nd = d + seg.length_m;
      if (nd < dist_[seg.to] && nd <= max_dist_m) {
        if (dist_[seg.to] == kInfinity) touched_.push_back(seg.to);
        dist_[seg.to] = nd;
        via_[seg.to] = sid;
        queue.push({nd, seg.to});
      }
    }
  }
}

}  // namespace trmma
