#ifndef TRMMA_SERVE_ENGINE_H_
#define TRMMA_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "mm/route_stitch.h"
#include "serve/breaker.h"
#include "traj/types.h"

namespace trmma {

class FaultInjector;

namespace serve {

/// Request classes served by the engine (one circuit breaker each).
enum class RequestKind { kMatch = 0, kRecover = 1 };

/// Stable lowercase label ("match", "recover").
const char* RequestKindName(RequestKind kind);

/// Terminal classification of every submitted request — exactly one per
/// request, so success + degraded + shed + timeout == submitted always
/// holds (the engine's no-silent-drops invariant).
enum class Outcome {
  kSuccess = 0,  ///< full-fidelity result within the deadline
  kDegraded,     ///< partial result: deadline checkpoints fired, the
                 ///< pipeline degraded, or a terminal error left an empty
                 ///< payload (degraded answers beat no answers)
  kShed,         ///< rejected at admission (queue, breaker, SLO, shutdown)
  kTimeout,      ///< deadline expired before the request ever executed
};

/// Stable lowercase label ("success", "degraded", "shed", "timeout").
const char* OutcomeName(Outcome outcome);

/// Map-matching payload: per-point segments plus the stitched sections.
struct MatchOutput {
  std::vector<SegmentId> segments;
  std::vector<RouteSection> sections;
};

struct ServeRequest {
  RequestKind kind = RequestKind::kMatch;
  Trajectory traj;
  double epsilon = 15.0;  ///< recovery sampling interval (kRecover only)
};

struct ServeResponse {
  Outcome outcome = Outcome::kShed;
  Status status;             ///< terminal error detail; OK on clean results
  std::string shed_reason;   ///< queue_full|breaker_open|slo_pressure|...
  double retry_after_ms = 0.0;  ///< backoff hint on kShed
  MatchOutput match;            ///< kMatch payload
  MatchedTrajectory recovered;  ///< kRecover payload
  bool deadline_degraded = false;  ///< a deadline checkpoint fired
  bool pipeline_degraded = false;  ///< robust pipeline degraded/repaired
  int attempts = 0;
  bool hedge_won = false;  ///< the hedged attempt produced this response
  double latency_us = 0.0; ///< submit-to-finalize wall time
  uint64_t id = 0;
  /// Request trace id (obs/trace.h), allocated at admission. Every span and
  /// exemplar produced for this request carries it; render with TraceIdHex.
  uint64_t trace_id = 0;
};

/// Per-worker execution context over shared immutable substrates. One
/// instance per worker thread, so implementations may hold mutable state
/// (planner scratch, model clones) without synchronization.
class Worker {
 public:
  virtual ~Worker() = default;
  virtual Status Match(const Trajectory& traj, MatchOutput* out) = 0;
  virtual Status Recover(const Trajectory& traj, double epsilon,
                         MatchedTrajectory* out, bool* degraded) = 0;
};

/// Builds the context for worker `index`; called on the Start() thread
/// (not the worker thread), so it need not be thread-safe.
using WorkerFactory = std::function<std::unique_ptr<Worker>(int index)>;

struct ServeConfig {
  int threads = 4;
  int queue_cap = 64;
  double deadline_ms = 250.0;  ///< <= 0 disables per-request deadlines
  /// p99-pressure shedding: reject when the observed p99 latency exceeds
  /// this and the queue is at least `shed_p99_min_depth` deep. 0 disables;
  /// FromEnv loads the serve.latency.us objective from TRMMA_SLO_FILE.
  double shed_p99_us = 0.0;
  int shed_p99_min_depth = 8;
  int max_retries = 1;            ///< extra attempts for transient failures
  double backoff_base_ms = 5.0;   ///< jittered exponential backoff base
  double backoff_max_ms = 50.0;
  double hedge_after_ms = 0.0;    ///< > 0 launches a hedged second attempt
  BreakerConfig breaker;
  uint64_t seed = 2025;           ///< retry/hedge jitter stream
  /// Fault source for per-request input corruption (TRMMA_FAULTS chaos);
  /// nullptr uses FaultInjector::Global(). Tests inject their own.
  const FaultInjector* faults = nullptr;

  /// Applies TRMMA_SERVE_THREADS / TRMMA_QUEUE_CAP / TRMMA_DEADLINE_MS and
  /// reads the serve p99 objective out of TRMMA_SLO_FILE when present.
  static ServeConfig FromEnv();
};

/// Aggregate request accounting (also mirrored on serve.* metrics).
struct ServeStats {
  int64_t submitted = 0;
  int64_t success = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t timeout = 0;
  int64_t retries = 0;
  int64_t hedges_launched = 0;
  int64_t hedge_wins = 0;
  int64_t deadline_expired = 0;
  int64_t peak_queue_depth = 0;

  /// The no-silent-drops invariant over finalized requests.
  bool Consistent() const {
    return success + degraded + shed + timeout == submitted;
  }
};

/// Concurrent request executor with deadlines, admission control and
/// overload resilience (DESIGN.md §11): a bounded queue feeding a worker
/// pool of per-thread contexts, per-class circuit breakers, p99/queue
/// load-shedding, bounded jittered-backoff retries for transient failures,
/// and optional request hedging. Every submitted request resolves to
/// exactly one Outcome.
class ServeEngine {
 public:
  using Clock = std::chrono::steady_clock;

  ServeEngine(const ServeConfig& config, WorkerFactory factory);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Builds every worker context (on this thread) and launches the pool.
  Status Start();

  /// Sheds new arrivals, drains the queue by execution (every pending
  /// future resolves), joins all threads. Idempotent.
  void Stop();

  /// Submits a request; never blocks on the queue. Sheds resolve the
  /// future immediately with Outcome::kShed + a retry_after_ms hint.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Convenience closed-loop call.
  ServeResponse SubmitAndWait(ServeRequest request);

  ServeStats stats() const;
  const ServeConfig& config() const { return config_; }
  int queue_depth() const;
  BreakerState breaker_state(RequestKind kind) const;
  /// Observed completion-latency p99 over a recent window (microseconds);
  /// 0 until enough samples exist.
  double ObservedP99Us() const;

 private:
  struct RequestState {
    ServeRequest request;
    uint64_t id = 0;
    std::promise<ServeResponse> promise;
    /// First finalize wins; doubles as the hedge/cancel flag observed by
    /// DeadlineScope checkpoints in the twin attempt.
    std::atomic<bool> done{false};
    std::atomic<int> attempts{0};
    Clock::time_point submitted_at{};
    Deadline deadline;
    /// Trace identity captured at admission and re-installed on whichever
    /// worker/timer thread touches the request (ScopedTraceContext).
    uint64_t trace_id = 0;
    int64_t root_seq = -1;   ///< request-lane root span seq (kTrace only)
    double submit_us = 0.0;  ///< NowMicros() at admission (root span start)
    /// InflightRegistry slot (obs/postmortem.h); -1 when not tracked. Held
    /// from admission to finalize so crash reports and the stall watchdog
    /// see exactly the requests inside the engine.
    int inflight_token = -1;
  };

  struct Task {
    std::shared_ptr<RequestState> req;
    bool hedge = false;
  };

  struct TimerEntry {
    Clock::time_point at;
    uint64_t seq = 0;
    std::function<void()> fn;
    bool operator>(const TimerEntry& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  void WorkerLoop(int index);
  void TimerLoop();
  void Execute(const Task& task, Worker* worker);
  /// Resolves the request exactly once; later calls (hedge twin) drop out.
  void Finalize(const std::shared_ptr<RequestState>& req,
                ServeResponse&& response, bool from_hedge);
  void FinalizeShed(const std::shared_ptr<RequestState>& req,
                    const std::string& reason, double retry_after_ms);
  ServeResponse ShedResponse(const ServeRequest& request,
                             const std::string& reason,
                             double retry_after_ms);
  /// Enqueues under mu_; false when the queue is full or shedding.
  bool TryEnqueue(Task task);
  void ScheduleAt(Clock::time_point at, std::function<void()> fn);
  void CountShed(const std::string& reason);
  void CountOutcome(RequestKind kind, Outcome outcome);
  CircuitBreaker& breaker(RequestKind kind) {
    return kind == RequestKind::kMatch ? match_breaker_ : recover_breaker_;
  }
  double JitteredBackoffMs(int attempt);
  void PreRegisterMetrics();

  const ServeConfig config_;
  WorkerFactory factory_;
  const FaultInjector* faults_;

  CircuitBreaker match_breaker_;
  CircuitBreaker recover_breaker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool started_ = false;
  bool stopping_ = false;   ///< admission sheds; timer drains
  bool draining_ = false;   ///< workers exit once the queue empties
  uint64_t next_id_ = 1;
  ServeStats stats_;

  mutable std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  uint64_t timer_seq_ = 0;
  bool timer_stopping_ = false;

  mutable std::mutex jitter_mu_;
  Rng jitter_rng_;

  /// Recent completion latencies for ObservedP99Us — engine-internal so
  /// p99 shedding works even with metrics off.
  mutable std::mutex latency_mu_;
  std::vector<double> latency_ring_;
  size_t latency_pos_ = 0;
  size_t latency_count_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::thread timer_thread_;
};

}  // namespace serve
}  // namespace trmma

#endif  // TRMMA_SERVE_ENGINE_H_
