#ifndef TRMMA_SERVE_SESSION_H_
#define TRMMA_SERVE_SESSION_H_

#include <memory>

#include "common/status.h"
#include "eval/experiment.h"
#include "robust/sanitize.h"
#include "serve/engine.h"

namespace trmma {
namespace serve {

struct SessionConfig {
  ServeConfig serve;
  /// Default recovery sampling interval; a ServeRequest may override it.
  double epsilon = 15.0;
  /// Sanitizer rules for the recovery path; Create fills the network bbox
  /// rules from the stack when left at the default.
  SanitizeConfig sanitize;
};

/// Session/facade over a trained ExperimentStack: a concurrent serving
/// engine whose workers each hold a private execution context (route
/// planner scratch and model clones) over the stack's shared immutable
/// substrates (network, spatial index, transition statistics).
///
/// Create snapshots the stack's trained MMA/TRMMA weights and loads them
/// into per-worker clones, because the matcher and recovery models keep
/// mutable decode scratch and the planners keep Dijkstra scratch — none of
/// which is thread-safe to share. The stack must outlive the session; the
/// session never mutates it.
class ServingSession {
 public:
  /// Requires stack.mma and stack.trmma (trained or not — weights are
  /// copied as-is; Save/Load need mutable access, hence the non-const
  /// stack). Fails with kIOError when weight snapshotting fails.
  static StatusOr<std::unique_ptr<ServingSession>> Create(
      ExperimentStack& stack, const SessionConfig& config);

  ~ServingSession();

  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;

  ServeEngine& engine() { return *engine_; }
  const SessionConfig& config() const { return config_; }

  std::future<ServeResponse> Submit(ServeRequest request) {
    return engine_->Submit(std::move(request));
  }
  ServeResponse SubmitAndWait(ServeRequest request) {
    return engine_->SubmitAndWait(std::move(request));
  }
  void Stop() { engine_->Stop(); }
  ServeStats stats() const { return engine_->stats(); }

 private:
  ServingSession() = default;

  SessionConfig config_;
  std::unique_ptr<ServeEngine> engine_;
};

}  // namespace serve
}  // namespace trmma

#endif  // TRMMA_SERVE_SESSION_H_
