#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_points.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/hw_counters.h"
#include "obs/json_parse.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/slo.h"
#include "obs/stack_walk.h"
#include "obs/stall_watchdog.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace trmma {
namespace serve {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    TRMMA_LOG(Warning) << name << ": ignoring malformed value '" << env << "'";
    return fallback;
  }
  return static_cast<int>(v);
}

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || !std::isfinite(v)) {
    TRMMA_LOG(Warning) << name << ": ignoring malformed value '" << env << "'";
    return fallback;
  }
  return v;
}

/// Pulls the serve-latency objective out of the TRMMA_SLO_FILE document so
/// p99 shedding uses the same threshold the watchdog enforces.
double SloServeP99Us() {
  const char* path = std::getenv("TRMMA_SLO_FILE");
  if (path == nullptr || *path == '\0') return 0.0;
  std::ifstream in(path);
  if (!in) return 0.0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto doc = obs::ParseJson(buffer.str());
  if (!doc.ok()) return 0.0;
  auto objectives = obs::ParseSloObjectives(doc.value());
  if (!objectives.ok()) return 0.0;
  for (const obs::SloObjective& o : objectives.value()) {
    if (o.kind == obs::SloObjective::Kind::kHistogram &&
        o.metric == "serve.latency.us") {
      return o.max;
    }
  }
  return 0.0;
}

void Count(const std::string& name, const obs::Labels& labels = {},
           int64_t delta = 1) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricRegistry::Global().GetCounter(name, labels)->Increment(delta);
}

void SetGauge(const std::string& name, double value,
              const obs::Labels& labels = {}) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricRegistry::Global().GetGauge(name, labels)->Set(value);
}

/// Synthetic request lane for a request's root + queue_wait spans: a small
/// fixed set of lanes (exported as pid 2 in the Chrome trace) keeps
/// concurrent requests readable without one lane per request.
int RequestLane(uint64_t id) { return 1 + static_cast<int>(id % 8); }

bool TracingEnabled() {
  return obs::CurrentTraceMode() == obs::TraceMode::kTrace;
}

}  // namespace

const char* RequestKindName(RequestKind kind) {
  return kind == RequestKind::kMatch ? "match" : "recover";
}

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kSuccess: return "success";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kShed: return "shed";
    case Outcome::kTimeout: return "timeout";
  }
  return "unknown";
}

ServeConfig ServeConfig::FromEnv() {
  ServeConfig config;
  config.threads = EnvInt("TRMMA_SERVE_THREADS", config.threads);
  config.queue_cap = EnvInt("TRMMA_QUEUE_CAP", config.queue_cap);
  config.deadline_ms = EnvDouble("TRMMA_DEADLINE_MS", config.deadline_ms);
  config.shed_p99_us = SloServeP99Us();
  return config;
}

ServeEngine::ServeEngine(const ServeConfig& config, WorkerFactory factory)
    : config_(config), factory_(std::move(factory)),
      faults_(config.faults != nullptr ? config.faults
                                       : &FaultInjector::Global()),
      match_breaker_("match", config.breaker),
      recover_breaker_("recover", config.breaker),
      jitter_rng_(config.seed), latency_ring_(256, 0.0) {}

ServeEngine::~ServeEngine() { Stop(); }

void ServeEngine::PreRegisterMetrics() {
  if (!obs::MetricsEnabled()) return;
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  // Cycle/cache-miss accounting needs its own bucket grids: a request can
  // burn 1e10+ cycles, far past the ~6.7e7 top of the default latency
  // bounds (bounds are fixed at first registration, so they are pinned
  // here before any Observe can register the family with defaults).
  const std::vector<double> cycle_bounds =
      obs::Histogram::ExponentialBounds(1e4, 4.0, 16);
  const std::vector<double> miss_bounds =
      obs::Histogram::ExponentialBounds(100.0, 4.0, 14);
  for (const char* cls : {"match", "recover"}) {
    reg.GetCounter("serve.requests.total", {{"class", cls}});
    reg.GetHistogram("serve.latency.us", {{"class", cls}});
    reg.GetHistogram("serve.cycles", {{"class", cls}}, cycle_bounds);
    reg.GetHistogram("serve.llc_misses", {{"class", cls}}, miss_bounds);
    reg.GetGauge("serve.breaker.state", {{"class", cls}})->Set(0.0);
  }
  for (const char* outcome : {"success", "degraded", "shed", "timeout"}) {
    reg.GetCounter("serve.outcome.total", {{"outcome", outcome}});
  }
  for (const char* reason : {"queue_full", "breaker_open", "slo_pressure",
                             "shutdown", "retry_queue_full"}) {
    reg.GetCounter("serve.shed.total", {{"reason", reason}});
  }
  reg.GetCounter("serve.retry.total");
  reg.GetCounter("serve.hedge.launched");
  reg.GetCounter("serve.hedge.won");
  reg.GetCounter("serve.deadline.expired.total");
  reg.GetGauge("serve.queue.depth")->Set(0.0);
  reg.GetGauge("serve.queue.depth_peak")->Set(0.0);
  reg.GetHistogram("serve.queue.wait.us");
}

Status ServeEngine::Start() {
  if (config_.threads <= 0) {
    return Status::InvalidArgument("serve threads must be positive");
  }
  if (config_.queue_cap <= 0) {
    return Status::InvalidArgument("serve queue_cap must be positive");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("engine already started");
  }
  // Worker contexts are built here, on the caller's thread, so the factory
  // needn't be thread-safe and the caller may release staging resources
  // (e.g. temp weight snapshots) as soon as Start returns.
  workers_.clear();
  workers_.reserve(static_cast<size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    std::unique_ptr<Worker> worker = factory_(i);
    if (worker == nullptr) {
      workers_.clear();
      return Status::Internal("worker factory returned null for worker " +
                              std::to_string(i));
    }
    workers_.push_back(std::move(worker));
  }
  PreRegisterMetrics();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
    draining_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stopping_ = false;
  }
  timer_thread_ = std::thread(&ServeEngine::TimerLoop, this);
  threads_.reserve(static_cast<size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    threads_.emplace_back(&ServeEngine::WorkerLoop, this, i);
  }
  // Environment-gated postmortem hooks (both no-ops when unset): the stall
  // watchdog scanning this engine's in-flight requests, and the crash
  // handler so a faulting worker leaves a report with those requests in it.
  obs::StallWatchdog::Global().StartFromEnv();
  obs::InstallCrashHandlerFromEnv();
  return Status::OK();
}

void ServeEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;  // admission sheds from here on
  }
  cv_.notify_all();
  // Join the timer first: it drains every pending retry/hedge closure
  // (each re-checks engine state and finalizes-as-shed when it can't
  // re-enqueue), so no request is left waiting on a timer that never fires.
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stopping_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Workers drain the queue by execution — every queued future resolves.
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
}

std::future<ServeResponse> ServeEngine::Submit(ServeRequest request) {
  const Clock::time_point now = Clock::now();
  const RequestKind kind = request.kind;
  auto req = std::make_shared<RequestState>();
  req->request = std::move(request);
  req->submitted_at = now;
  std::future<ServeResponse> future = req->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    req->id = next_id_++;
    ++stats_.submitted;
  }
  // Trace identity is captured here, at admission: the trace id always (it
  // is the exemplar key even in kMetrics mode), the request-lane root span
  // seq only under full tracing, reserved up front so attempt spans on
  // worker threads can link to the root before it completes.
  req->trace_id = obs::NewTraceId();
  req->submit_us = obs::NowMicros();
  if (TracingEnabled()) {
    req->root_seq = obs::TraceRing::Global().AllocSeq();
  }
  Count("serve.requests.total", {{"class", RequestKindName(kind)}});

  // Admission, cheapest check first. The breaker goes last so a half-open
  // probe slot is only consumed by a request that will actually run.
  std::string reason;
  double retry_after_ms = config_.backoff_max_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      reason = "shutdown";
    } else if (static_cast<int>(queue_.size()) >= config_.queue_cap) {
      reason = "queue_full";
    }
  }
  if (reason.empty() && config_.shed_p99_us > 0.0 &&
      queue_depth() >= config_.shed_p99_min_depth &&
      ObservedP99Us() > config_.shed_p99_us) {
    reason = "slo_pressure";
  }
  if (reason.empty() && !breaker(kind).Admit(now, &retry_after_ms)) {
    reason = "breaker_open";
  }
  if (!reason.empty()) {
    FinalizeShed(req, reason, retry_after_ms);
    return future;
  }

  // The deadline starts at admission, so queue wait burns request budget.
  req->deadline = config_.deadline_ms > 0.0
                      ? Deadline::AfterMillis(config_.deadline_ms)
                      : Deadline::Unbounded();
  // Admitted: visible to crash reports and the stall watchdog until
  // Finalize releases the slot (-1 when the registry is off or full).
  req->inflight_token = obs::InflightRegistry::Global().Register(
      req->trace_id, RequestKindName(kind), config_.deadline_ms);
  if (!TryEnqueue(Task{req, false})) {
    // Lost the race with a concurrent enqueue or shutdown.
    FinalizeShed(req, "queue_full", retry_after_ms);
    return future;
  }
  if (config_.hedge_after_ms > 0.0) {
    ScheduleAt(
        now + std::chrono::microseconds(
                  static_cast<int64_t>(config_.hedge_after_ms * 1000.0)),
        [this, req] {
          if (req->done.load(std::memory_order_acquire)) return;
          bool launched = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            if (!stopping_ &&
                static_cast<int>(queue_.size()) < config_.queue_cap) {
              queue_.push_back(Task{req, true});
              launched = true;
              ++stats_.hedges_launched;
              stats_.peak_queue_depth =
                  std::max(stats_.peak_queue_depth,
                           static_cast<int64_t>(queue_.size()));
            }
          }
          if (launched) {
            Count("serve.hedge.launched");
            cv_.notify_one();
          }
          // No capacity for a hedge: the primary attempt still owns the
          // request, nothing to finalize.
        });
  }
  return future;
}

ServeResponse ServeEngine::SubmitAndWait(ServeRequest request) {
  return Submit(std::move(request)).get();
}

bool ServeEngine::TryEnqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || static_cast<int>(queue_.size()) >= config_.queue_cap) {
      return false;
    }
    queue_.push_back(std::move(task));
    stats_.peak_queue_depth = std::max(
        stats_.peak_queue_depth, static_cast<int64_t>(queue_.size()));
    SetGauge("serve.queue.depth", static_cast<double>(queue_.size()));
    SetGauge("serve.queue.depth_peak",
             static_cast<double>(stats_.peak_queue_depth));
  }
  cv_.notify_one();
  return true;
}

void ServeEngine::WorkerLoop(int index) {
  // Registered so all-thread stack dumps (SIGUSR2 rendezvous, crash
  // reports, the watchdog's stuck-worker dumps) can see this thread.
  obs::ScopedThreadRegistration registration("serve.worker");
  Worker* worker = workers_[static_cast<size_t>(index)].get();
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
      SetGauge("serve.queue.depth", static_cast<double>(queue_.size()));
    }
    Execute(task, worker);
  }
}

void ServeEngine::Execute(const Task& task, Worker* worker) {
  const std::shared_ptr<RequestState>& req = task.req;
  if (req->done.load(std::memory_order_acquire)) return;  // twin finished
  const RequestKind kind = req->request.kind;
  const Clock::time_point start = Clock::now();
  // Re-install the request's trace identity on this worker thread: every
  // span opened below (attempt, execute, stitch/decode) joins the request
  // trace and links causally back to the request-lane root span, and every
  // RequestScope flight record picks up the trace id.
  obs::ScopedTraceContext trace_ctx(req->trace_id, req->root_seq);
  if (obs::MetricsEnabled()) {
    obs::MetricRegistry::Global()
        .GetHistogram("serve.queue.wait.us")
        ->Observe(std::chrono::duration<double, std::micro>(
                      start - req->submitted_at)
                      .count(),
                  req->trace_id);
  }
  if (req->root_seq >= 0 && !task.hedge && TracingEnabled()) {
    // The queue-wait child lives on the request lane (admission to first
    // pickup), nested inside the root by start order and time containment.
    // Hedge pickups skip it: their wait started at hedge launch, which the
    // attempt span on the worker lane already shows.
    obs::SpanRecord qw;
    qw.name = "serve.queue_wait";
    qw.seq = obs::TraceRing::Global().AllocSeq();
    qw.parent_seq = req->root_seq;
    qw.depth = 1;
    qw.tid = obs::ThreadTraceId();
    qw.lane = RequestLane(req->id);
    qw.trace_id = req->trace_id;
    qw.start_us = req->submit_us;
    qw.duration_us = obs::NowMicros() - req->submit_us;
    obs::TraceRing::Global().Record(qw);
  }

  // Expired while queued: return a timeout instead of burning the worker,
  // and capture the request in the flight recorder for postmortem replay.
  if (req->deadline.bounded() && req->deadline.Expired()) {
    {
      TRMMA_SPAN("serve.deadline_expired");
      obs::RequestScope scope("serve.timeout");
      if (obs::RequestRecord* rec = scope.record()) {
        rec->method = RequestKindName(kind);
        rec->outcome = "failed";
        rec->error = "deadline expired in queue";
        rec->input.reserve(req->request.traj.points.size());
        for (const GpsPoint& p : req->request.traj.points) {
          rec->input.push_back({p.pos.lat, p.pos.lng, p.t});
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_expired;
    }
    Count("serve.deadline.expired.total");
    ServeResponse resp;
    resp.outcome = Outcome::kTimeout;
    resp.status =
        Status::FailedPrecondition("deadline expired before execution");
    Finalize(req, std::move(resp), task.hedge);
    return;
  }

  const int attempt = req->attempts.fetch_add(1, std::memory_order_relaxed) + 1;

  // Attempt span on the worker lane: a thread-root span, so it picks up the
  // installed context — same trace id as the request, its own span id (seq),
  // and a flow link back to the request-lane root. Retries and hedges each
  // open their own attempt span under the same trace.
  TRMMA_SPAN("serve.attempt");

  // Chaos input corruption is a pure function of (config, request id):
  // retries and hedges of one request re-read the identical corrupted
  // input, never an interleaving-dependent stream.
  Trajectory input = req->request.traj;
  if (faults_->enabled()) {
    faults_->CorruptTrajectorySeeded(&input, req->id);
  }

  obs::InflightRegistry::Global().MarkExecuting(req->inflight_token);
  // Crash-drill hook (common/fault_points.h): lets the crash-smoke harness
  // fault a real worker mid-request so the postmortem shows a genuine
  // serving stack plus the in-flight requests around it.
  if (FaultPointTriggered("serve.worker.crash")) {
    volatile int* fault = nullptr;
    *fault = 1;
  }

  ServeResponse resp;
  Status status;
  bool pipeline_degraded = false;
  // Cycle accounting brackets exactly the worker execution (not queueing or
  // finalization), so the per-class histograms answer "which request class
  // burns the machine" rather than "which class waits the longest".
  obs::HwCounterScope hw_scope(true);
  {
    TRMMA_SPAN("serve.execute");
    obs::RequestScope scope(kind == RequestKind::kMatch ? "serve.match"
                                                        : "serve.recover");
    DeadlineScope deadline_scope(req->deadline, &req->done);
    if (kind == RequestKind::kMatch) {
      status = worker->Match(input, &resp.match);
    } else {
      status = worker->Recover(input, req->request.epsilon, &resp.recovered,
                               &pipeline_degraded);
    }
    resp.deadline_degraded = DeadlineDegradationNoted();
    if (obs::RequestRecord* rec = scope.record()) {
      rec->method = RequestKindName(kind);
      rec->outcome = !status.ok()
                         ? "failed"
                         : (resp.deadline_degraded || pipeline_degraded
                                ? "degraded"
                                : "ok");
      if (!status.ok()) rec->error = status.message();
    }
  }
  obs::HwCounterDelta hw;
  if (hw_scope.End(&hw) && obs::MetricsEnabled()) {
    obs::MetricRegistry& reg = obs::MetricRegistry::Global();
    const char* cls = RequestKindName(kind);
    // The exemplars tie heavy-tail buckets back to a concrete trace, the
    // same way the latency histogram does in Finalize.
    reg.GetHistogram("serve.cycles", {{"class", cls}})
        ->Observe(hw.cycles(), req->trace_id);
    if (hw.measured[obs::kHwLlcMisses]) {
      reg.GetHistogram("serve.llc_misses", {{"class", cls}})
          ->Observe(hw.value[obs::kHwLlcMisses], req->trace_id);
    }
  }
  resp.pipeline_degraded = pipeline_degraded;
  resp.status = status;

  if (status.ok()) {
    resp.outcome = resp.deadline_degraded || pipeline_degraded
                       ? Outcome::kDegraded
                       : Outcome::kSuccess;
    Finalize(req, std::move(resp), task.hedge);
    return;
  }

  // Transient failures get bounded retries with jittered backoff, as long
  // as the deadline still has budget and no twin already answered.
  const bool transient = status.code() == StatusCode::kIOError ||
                         status.code() == StatusCode::kInternal;
  const bool expired = req->deadline.bounded() && req->deadline.Expired();
  if (transient && !expired && attempt <= config_.max_retries &&
      !req->done.load(std::memory_order_acquire)) {
    const double backoff_ms = JitteredBackoffMs(attempt);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    Count("serve.retry.total");
    const bool hedge = task.hedge;
    ScheduleAt(
        Clock::now() + std::chrono::microseconds(
                           static_cast<int64_t>(backoff_ms * 1000.0)),
        [this, req, hedge] {
          if (req->done.load(std::memory_order_acquire)) return;
          if (!TryEnqueue(Task{req, hedge})) {
            FinalizeShed(req, "retry_queue_full", config_.backoff_max_ms);
          }
        });
    return;  // the scheduled retry owns the request now
  }

  // Terminal failure: degraded answers beat no answers — classify as
  // degraded with an empty payload and the Status attached, keeping the
  // four-way accounting exact.
  resp.match = MatchOutput{};
  resp.recovered.clear();
  resp.outcome = Outcome::kDegraded;
  Finalize(req, std::move(resp), task.hedge);
}

void ServeEngine::Finalize(const std::shared_ptr<RequestState>& req,
                           ServeResponse&& response, bool from_hedge) {
  if (req->done.exchange(true, std::memory_order_acq_rel)) {
    return;  // the twin attempt already answered
  }
  obs::InflightRegistry::Global().Release(req->inflight_token);
  const Clock::time_point now = Clock::now();
  const RequestKind kind = req->request.kind;
  response.id = req->id;
  response.trace_id = req->trace_id;
  response.attempts = req->attempts.load(std::memory_order_relaxed);
  response.hedge_won = from_hedge;
  response.latency_us =
      std::chrono::duration<double, std::micro>(now - req->submitted_at)
          .count();

  const bool executed = response.outcome != Outcome::kShed;
  if (executed) {
    {
      std::lock_guard<std::mutex> lock(latency_mu_);
      latency_ring_[latency_pos_] = response.latency_us;
      latency_pos_ = (latency_pos_ + 1) % latency_ring_.size();
      latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
    }
    if (obs::MetricsEnabled()) {
      // The exemplar ties the latency histogram's tail quantile back to
      // this request's trace (/metrics ` # {trace_id=...}` annotation).
      obs::MetricRegistry::Global()
          .GetHistogram("serve.latency.us",
                        {{"class", RequestKindName(kind)}})
          ->Observe(response.latency_us, req->trace_id);
    }
    // Breaker feedback: a timeout or terminal error is a failure; a
    // degraded-but-delivered answer is a success (the class is healthy,
    // the budget was just tight).
    if (response.outcome == Outcome::kTimeout || !response.status.ok()) {
      breaker(kind).RecordFailure(now);
    } else {
      breaker(kind).RecordSuccess(now);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (response.outcome) {
      case Outcome::kSuccess: ++stats_.success; break;
      case Outcome::kDegraded: ++stats_.degraded; break;
      case Outcome::kShed: ++stats_.shed; break;
      case Outcome::kTimeout: ++stats_.timeout; break;
    }
    if (from_hedge) ++stats_.hedge_wins;
  }
  CountOutcome(kind, response.outcome);
  if (from_hedge) Count("serve.hedge.won");

  // Close the request-lane root span (admission to finalize). Its seq was
  // reserved at admission, so the attempt spans' flow links resolve even
  // though the root is recorded last.
  if (req->root_seq >= 0 && TracingEnabled()) {
    obs::SpanRecord root;
    root.name = "serve.request";
    root.seq = req->root_seq;
    root.parent_seq = -1;
    root.depth = 0;
    root.tid = obs::ThreadTraceId();
    root.lane = RequestLane(req->id);
    root.trace_id = req->trace_id;
    root.start_us = req->submit_us;
    root.duration_us = obs::NowMicros() - req->submit_us;
    obs::TraceRing::Global().Record(root);
  }
  req->promise.set_value(std::move(response));
}

void ServeEngine::FinalizeShed(const std::shared_ptr<RequestState>& req,
                               const std::string& reason,
                               double retry_after_ms) {
  CountShed(reason);
  Finalize(req, ShedResponse(req->request, reason, retry_after_ms), false);
}

ServeResponse ServeEngine::ShedResponse(const ServeRequest& request,
                                        const std::string& reason,
                                        double retry_after_ms) {
  (void)request;
  ServeResponse resp;
  resp.outcome = Outcome::kShed;
  resp.shed_reason = reason;
  resp.retry_after_ms = retry_after_ms;
  resp.status = Status::FailedPrecondition("request shed: " + reason);
  return resp;
}

void ServeEngine::CountShed(const std::string& reason) {
  Count("serve.shed.total", {{"reason", reason}});
}

void ServeEngine::CountOutcome(RequestKind kind, Outcome outcome) {
  (void)kind;
  Count("serve.outcome.total", {{"outcome", OutcomeName(outcome)}});
}

double ServeEngine::JitteredBackoffMs(int attempt) {
  double base = config_.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) base *= 2.0;
  base = std::min(base, config_.backoff_max_ms);
  std::lock_guard<std::mutex> lock(jitter_mu_);
  return base * (0.5 + 0.5 * jitter_rng_.Uniform());
}

void ServeEngine::ScheduleAt(Clock::time_point at, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (!timer_stopping_) {
      timers_.push(TimerEntry{at, timer_seq_++, std::move(fn)});
      timer_cv_.notify_one();
      return;
    }
  }
  // Timer already gone (shutdown): run inline — the closure re-checks
  // engine state and finalizes instead of enqueueing.
  fn();
}

void ServeEngine::TimerLoop() {
  obs::ScopedThreadRegistration registration("serve.timer");
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!timer_stopping_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock,
                     [&] { return timer_stopping_ || !timers_.empty(); });
      continue;
    }
    const Clock::time_point at = timers_.top().at;
    if (Clock::now() < at) {
      timer_cv_.wait_until(lock, at);
      continue;
    }
    std::function<void()> fn =
        std::move(const_cast<TimerEntry&>(timers_.top()).fn);
    timers_.pop();
    lock.unlock();
    fn();
    lock.lock();
  }
  // Shutdown drain: fire everything now so no pending retry or hedge
  // leaves a future unresolved. Closures observe stopping_ and finalize.
  while (!timers_.empty()) {
    std::function<void()> fn =
        std::move(const_cast<TimerEntry&>(timers_.top()).fn);
    timers_.pop();
    lock.unlock();
    fn();
    lock.lock();
  }
}

ServeStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int ServeEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

BreakerState ServeEngine::breaker_state(RequestKind kind) const {
  return kind == RequestKind::kMatch ? match_breaker_.state()
                                     : recover_breaker_.state();
}

double ServeEngine::ObservedP99Us() const {
  std::vector<double> sample;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_count_ < 32) return 0.0;
    sample.assign(latency_ring_.begin(),
                  latency_ring_.begin() +
                      static_cast<std::ptrdiff_t>(latency_count_));
  }
  const size_t rank =
      static_cast<size_t>(0.99 * static_cast<double>(sample.size() - 1));
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<std::ptrdiff_t>(rank),
                   sample.end());
  return sample[rank];
}

}  // namespace serve
}  // namespace trmma
