#include "serve/breaker.h"

#include <algorithm>

#include "obs/metrics.h"

namespace trmma {
namespace serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half_open";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string request_class,
                               const BreakerConfig& config)
    : class_(std::move(request_class)), config_(config),
      window_(static_cast<size_t>(std::max(config.window, 1)), false) {}

void CircuitBreaker::TransitionLocked(BreakerState next) {
  if (state_ == next) return;
  state_ = next;
  if (obs::MetricsEnabled()) {
    obs::MetricRegistry::Global()
        .GetGauge("serve.breaker.state", {{"class", class_}})
        ->Set(static_cast<double>(next));
    obs::MetricRegistry::Global()
        .GetCounter("serve.breaker.transitions",
                    {{"class", class_}, {"to", BreakerStateName(next)}})
        ->Increment();
  }
}

double CircuitBreaker::FailureRatioLocked() const {
  if (window_count_ == 0) return 0.0;
  int failures = 0;
  for (int i = 0; i < window_count_; ++i) {
    if (window_[static_cast<size_t>(i)]) ++failures;
  }
  return static_cast<double>(failures) / window_count_;
}

bool CircuitBreaker::Admit(Clock::time_point now, double* retry_after_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kClosed) return true;
  if (state_ == BreakerState::kOpen) {
    const double waited_ms =
        std::chrono::duration<double, std::milli>(now - opened_at_).count();
    if (waited_ms < config_.cooldown_ms) {
      if (retry_after_ms != nullptr) {
        *retry_after_ms = config_.cooldown_ms - waited_ms;
      }
      return false;
    }
    TransitionLocked(BreakerState::kHalfOpen);
    probes_admitted_ = 0;
    probe_successes_ = 0;
  }
  // Half-open: admit a bounded number of probes to test the downstream.
  if (probes_admitted_ < config_.half_open_probes) {
    ++probes_admitted_;
    return true;
  }
  if (retry_after_ms != nullptr) *retry_after_ms = config_.cooldown_ms;
  return false;
}

void CircuitBreaker::RecordSuccess(Clock::time_point now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    if (++probe_successes_ >= config_.half_open_probes) {
      // Downstream recovered: close with a clean window so the old failure
      // burst can't immediately re-trip the breaker.
      std::fill(window_.begin(), window_.end(), false);
      window_pos_ = 0;
      window_count_ = 0;
      TransitionLocked(BreakerState::kClosed);
    }
    return;
  }
  window_[static_cast<size_t>(window_pos_)] = false;
  window_pos_ = (window_pos_ + 1) % static_cast<int>(window_.size());
  window_count_ = std::min(window_count_ + 1,
                           static_cast<int>(window_.size()));
}

void CircuitBreaker::RecordFailure(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately: the downstream is still sick.
    opened_at_ = now;
    TransitionLocked(BreakerState::kOpen);
    return;
  }
  window_[static_cast<size_t>(window_pos_)] = true;
  window_pos_ = (window_pos_ + 1) % static_cast<int>(window_.size());
  window_count_ = std::min(window_count_ + 1,
                           static_cast<int>(window_.size()));
  if (state_ == BreakerState::kClosed &&
      window_count_ >= config_.min_samples &&
      FailureRatioLocked() >= config_.trip_ratio) {
    opened_at_ = now;
    TransitionLocked(BreakerState::kOpen);
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

}  // namespace serve
}  // namespace trmma
