#include "serve/session.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "robust/pipeline.h"

namespace trmma {
namespace serve {
namespace {

/// One worker's private execution context. The network, spatial index and
/// transition statistics are shared read-only; everything with mutable
/// state (Dijkstra scratch, model decode scratch) is owned per worker.
class StackWorker : public Worker {
 public:
  StackWorker(const ExperimentStack& stack, const SessionConfig& config)
      : network_(*stack.dataset->network),
        engine_(std::make_unique<ShortestPathEngine>(network_)),
        planner_(std::make_unique<DaRoutePlanner>(network_, *stack.stats)),
        mma_(std::make_unique<MmaMatcher>(network_, *stack.index,
                                          stack.mma->config())),
        trmma_(std::make_unique<TrmmaRecovery>(
            network_, mma_.get(), planner_.get(), engine_.get(),
            stack.trmma->config(), stack.trmma->name())),
        sanitize_(config.sanitize), epsilon_(config.epsilon) {}

  Status LoadWeights(const std::string& mma_path,
                     const std::string& trmma_path) {
    TRMMA_RETURN_IF_ERROR(mma_->Load(mma_path));
    return trmma_->Load(trmma_path);
  }

  Status Match(const Trajectory& traj, MatchOutput* out) override {
    out->segments = mma_->MatchPoints(traj);
    bool any = false;
    for (SegmentId s : out->segments) any = any || s != kInvalidSegment;
    if (!any) {
      return Status::FailedPrecondition(
          "map matching produced no usable segment for any point");
    }
    // Route stitching is the post-matching half of a match request; its own
    // span splits serve.execute into match vs stitch time in the trace.
    TRMMA_SPAN("serve.stitch");
    out->sections =
        StitchRouteSections(network_, *planner_, *engine_, out->segments);
    return Status::OK();
  }

  Status Recover(const Trajectory& traj, double epsilon,
                 MatchedTrajectory* out, bool* degraded) override {
    PipelineConfig pipeline_config;
    pipeline_config.sanitize = sanitize_;
    pipeline_config.epsilon = epsilon > 0.0 ? epsilon : epsilon_;
    // The pipeline is a thin wrapper (pointer + config), so a per-call
    // instance costs nothing and lets each request pick its ε. The engine
    // already applied per-request fault corruption, so take the
    // post-corruption entry point.
    RobustRecoveryPipeline pipeline(trmma_.get(), pipeline_config);
    // The decode span covers the model-driven recovery (sanitize + encode +
    // decode + fallbacks) — the execute-time remainder is dispatch overhead.
    TRMMA_SPAN("serve.decode");
    PipelineResult result = pipeline.RunSanitized(traj);
    if (result.failed()) {
      return Status::FailedPrecondition(
          result.error.empty() ? "recovery failed" : result.error);
    }
    *out = std::move(result.recovered);
    *degraded = result.outcome != RecoveryOutcome::kOk;
    return Status::OK();
  }

 private:
  const RoadNetwork& network_;
  std::unique_ptr<ShortestPathEngine> engine_;
  std::unique_ptr<DaRoutePlanner> planner_;
  std::unique_ptr<MmaMatcher> mma_;
  std::unique_ptr<TrmmaRecovery> trmma_;
  SanitizeConfig sanitize_;
  double epsilon_;
};

/// Collision-free staging path for one weight snapshot.
std::string StagingPath(const char* tag) {
  static std::atomic<int> counter{0};
  const std::string name = "trmma_serve_" + std::string(tag) + "_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(counter.fetch_add(1)) + ".bin";
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

StatusOr<std::unique_ptr<ServingSession>> ServingSession::Create(
    ExperimentStack& stack, const SessionConfig& config) {
  if (stack.dataset == nullptr || stack.dataset->network == nullptr ||
      stack.index == nullptr || stack.stats == nullptr) {
    return Status::InvalidArgument(
        "serving session needs a built stack (dataset, index, stats)");
  }
  if (stack.mma == nullptr || stack.trmma == nullptr) {
    return Status::InvalidArgument(
        "serving session needs the MMA and TRMMA models");
  }

  SessionConfig cfg = config;
  if (cfg.sanitize.network == nullptr) {
    // Keep the caller's policy knobs; just bind the bbox validation to the
    // stack's network.
    cfg.sanitize.network = stack.dataset->network.get();
  }

  // Snapshot the trained weights once; every worker clone loads from the
  // snapshot, then the staging files are deleted before Create returns.
  const std::string mma_path = StagingPath("mma");
  const std::string trmma_path = StagingPath("trmma");
  Status saved = stack.mma->Save(mma_path);
  if (saved.ok()) saved = stack.trmma->Save(trmma_path);
  if (!saved.ok()) {
    std::remove(mma_path.c_str());
    std::remove(trmma_path.c_str());
    return Status::IOError("weight snapshot failed: " + saved.ToString());
  }

  auto session = std::unique_ptr<ServingSession>(new ServingSession());
  session->config_ = cfg;
  session->engine_ = std::make_unique<ServeEngine>(
      cfg.serve,
      [&stack, cfg, mma_path, trmma_path](int index) -> std::unique_ptr<Worker> {
        auto worker = std::make_unique<StackWorker>(stack, cfg);
        const Status loaded = worker->LoadWeights(mma_path, trmma_path);
        if (!loaded.ok()) {
          TRMMA_LOG(Warning) << "serve worker " << index
                             << " failed to load weights: "
                             << loaded.ToString();
          return nullptr;
        }
        return worker;
      });
  const Status started = session->engine_->Start();
  std::remove(mma_path.c_str());
  std::remove(trmma_path.c_str());
  if (!started.ok()) return started;
  return session;
}

ServingSession::~ServingSession() {
  if (engine_ != nullptr) engine_->Stop();
}

}  // namespace serve
}  // namespace trmma
